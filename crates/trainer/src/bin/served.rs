//! `goggles-served` — the std-only TCP labeling server.
//!
//! Loads a [`FittedLabeler`] snapshot (any format), spawns the
//! micro-batching [`LabelService`], and serves the wire protocol on a
//! `TcpListener` through [`WireServer`]. No async runtime, no registry
//! dependencies — plain std threads end to end.
//!
//! ```text
//! goggles-served --snapshot model.ggl --addr 127.0.0.1:7878 --workers 2
//! goggles-served --demo-fit --addr 127.0.0.1:0     # self-contained demo
//! ```
//!
//! The resolved listen address is printed as the first stdout line
//! (`listening on <addr>`), so callers binding port 0 can parse the
//! ephemeral port. With `--metrics-addr`, a second machine-readable line
//! (`metrics listening on <addr>`) reports the HTTP scrape endpoint. The
//! process exits cleanly (status 0) when a client sends the wire shutdown
//! op — the listener stops accepting, in-flight requests drain, and the
//! service joins its workers.
//!
//! With `--retrain` (requires `--demo-fit`), the continuous-learning loop
//! runs alongside serving: wire `Ingest` ops feed the background
//! [`goggles_trainer::Trainer`], which appends affinity rows against the
//! frozen prototype bank, warm-refits, and republishes through the shared
//! snapshot registry behind the accuracy gate.

use goggles_obs::{log, MetricsServer, Value};
use goggles_serve::{
    sweep_snapshot_dir, FaultPlan, FittedLabeler, LabelService, ServeConfig, ServerOptions,
    SnapshotRegistry, WireServer,
};
use goggles_trainer::{Trainer, TrainerConfig};
use std::io::Write as _;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "usage: goggles-served (--snapshot PATH | --demo-fit) [options]

options:
  --snapshot PATH     serve this FittedLabeler snapshot (v1 or v2); a
                      directory is swept and the newest valid snapshot
                      served (torn/corrupt files are quarantined)
  --demo-fit          fit a small synthetic labeler instead of loading one
  --addr ADDR         listen address (default 127.0.0.1:7878; port 0 = ephemeral)
  --workers N         micro-batch worker threads (default 2)
  --conn-threads N    concurrent connections served (default 4)
  --max-batch N       largest micro-batch (default 8)
  --linger-ms N       batch linger timeout in ms (default 2)
  --shed-watermark N  shed submissions (Overloaded) at queue depth N (default 0 = block)
  --max-inflight N    per-connection inflight cap, shed past it (default 0 = unlimited)
  --drain-grace-ms N  graceful-drain grace window in ms (default 250)
  --metrics-addr ADDR also serve HTTP GET /metrics and GET /healthz on ADDR
  --fault-plan SPEC   enable the deterministic fault injector, e.g.
                      'seed=42;wire.read:flaky@p0.05;snapshot.write:torn@#1'
  --log-level LEVEL   stderr log threshold: error|warn|info|debug (default info)
  --log-json          emit logs as JSONL instead of text

continuous learning (requires --demo-fit):
  --retrain             run the background trainer; wire Ingest ops feed it
  --retrain-min-batch N images to accumulate before a refit cycle (default 4)
  --retrain-queue N     intake queue capacity, shed past it (default 256)
  --retrain-epsilon F   dev-score slack the offline gate allows (default 0.0)
  --retrain-canary N    requests the candidate must serve before acceptance
                        (default 0 = offline gate only)
  --retrain-snapshot P  persist each published candidate snapshot to P
";

struct Args {
    snapshot: Option<String>,
    demo_fit: bool,
    addr: String,
    workers: usize,
    conn_threads: usize,
    max_batch: usize,
    linger_ms: u64,
    shed_watermark: usize,
    max_inflight: u64,
    drain_grace_ms: u64,
    metrics_addr: Option<String>,
    fault_plan: Option<FaultPlan>,
    log_level: log::Level,
    log_json: bool,
    retrain: bool,
    retrain_min_batch: usize,
    retrain_queue: usize,
    retrain_epsilon: f64,
    retrain_canary: u64,
    retrain_snapshot: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        snapshot: None,
        demo_fit: false,
        addr: "127.0.0.1:7878".into(),
        workers: 2,
        conn_threads: 4,
        max_batch: 8,
        linger_ms: 2,
        shed_watermark: 0,
        max_inflight: 0,
        drain_grace_ms: 250,
        metrics_addr: None,
        fault_plan: None,
        log_level: log::Level::Info,
        log_json: false,
        retrain: false,
        retrain_min_batch: 4,
        retrain_queue: 256,
        retrain_epsilon: 0.0,
        retrain_canary: 0,
        retrain_snapshot: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--snapshot" => args.snapshot = Some(value("--snapshot")?),
            "--demo-fit" => args.demo_fit = true,
            "--addr" => args.addr = value("--addr")?,
            "--workers" => args.workers = parse_num(&value("--workers")?, "--workers")?,
            "--conn-threads" => {
                args.conn_threads = parse_num(&value("--conn-threads")?, "--conn-threads")?
            }
            "--max-batch" => args.max_batch = parse_num(&value("--max-batch")?, "--max-batch")?,
            "--linger-ms" => {
                args.linger_ms = parse_num(&value("--linger-ms")?, "--linger-ms")? as u64
            }
            "--shed-watermark" => {
                args.shed_watermark = parse_num(&value("--shed-watermark")?, "--shed-watermark")?
            }
            "--max-inflight" => {
                args.max_inflight = parse_num(&value("--max-inflight")?, "--max-inflight")? as u64
            }
            "--drain-grace-ms" => {
                args.drain_grace_ms =
                    parse_num(&value("--drain-grace-ms")?, "--drain-grace-ms")? as u64
            }
            "--metrics-addr" => args.metrics_addr = Some(value("--metrics-addr")?),
            "--fault-plan" => {
                let spec = value("--fault-plan")?;
                args.fault_plan =
                    Some(FaultPlan::parse(&spec).map_err(|e| format!("--fault-plan: {e}"))?);
            }
            "--log-level" => {
                let s = value("--log-level")?;
                args.log_level = log::Level::parse(&s)
                    .map_err(|_| format!("--log-level: {s:?} is not error|warn|info|debug"))?;
            }
            "--log-json" => args.log_json = true,
            "--retrain" => args.retrain = true,
            "--retrain-min-batch" => {
                args.retrain_min_batch =
                    parse_num(&value("--retrain-min-batch")?, "--retrain-min-batch")?
            }
            "--retrain-queue" => {
                args.retrain_queue = parse_num(&value("--retrain-queue")?, "--retrain-queue")?
            }
            "--retrain-epsilon" => {
                let s = value("--retrain-epsilon")?;
                args.retrain_epsilon =
                    s.parse().map_err(|_| format!("--retrain-epsilon: {s:?} is not a number"))?;
            }
            "--retrain-canary" => {
                args.retrain_canary =
                    parse_num(&value("--retrain-canary")?, "--retrain-canary")? as u64
            }
            "--retrain-snapshot" => args.retrain_snapshot = Some(value("--retrain-snapshot")?),
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.snapshot.is_none() && !args.demo_fit {
        return Err("need --snapshot FILE or --demo-fit".into());
    }
    if args.snapshot.is_some() && args.demo_fit {
        return Err("--snapshot and --demo-fit are mutually exclusive".into());
    }
    if args.workers == 0 || args.conn_threads == 0 || args.max_batch == 0 {
        return Err("--workers, --conn-threads and --max-batch must be ≥ 1".into());
    }
    if args.retrain && !args.demo_fit {
        return Err("--retrain needs --demo-fit (the trainer bootstraps from the in-process fit; \
             a loaded snapshot carries no training affinity rows)"
            .into());
    }
    Ok(args)
}

fn parse_num(s: &str, name: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("{name}: {s:?} is not a number"))
}

/// Fit a small synthetic labeler so the server can be tried without any
/// artifact on disk (mirrors the quick-scale test fixture).
fn demo_labeler() -> Result<FittedLabeler, String> {
    use goggles_core::GogglesConfig;
    use goggles_datasets::{generate, TaskConfig, TaskKind};
    let seed = 7u64;
    let mut task = TaskConfig::new(TaskKind::Cub { class_a: 0, class_b: 1 }, 8, 4, seed);
    task.image_size = 32;
    let ds = generate(&task);
    let dev = ds.sample_dev_set(3, seed);
    let config = GogglesConfig { seed, ..GogglesConfig::fast() };
    let (labeler, _) =
        FittedLabeler::fit(&config, &ds, &dev).map_err(|e| format!("demo fit failed: {e}"))?;
    Ok(labeler)
}

/// [`demo_labeler`], but through [`FittedLabeler::fit_for_training`] so
/// the training affinity rows and dev set survive — the bootstrap for the
/// continuous-learning trainer.
fn demo_bootstrap(
) -> Result<(goggles_serve::TrainingBootstrap, goggles_core::GogglesConfig), String> {
    use goggles_core::GogglesConfig;
    use goggles_datasets::{generate, TaskConfig, TaskKind};
    let seed = 7u64;
    let mut task = TaskConfig::new(TaskKind::Cub { class_a: 0, class_b: 1 }, 8, 4, seed);
    task.image_size = 32;
    let ds = generate(&task);
    let dev = ds.sample_dev_set(3, seed);
    let config = GogglesConfig { seed, ..GogglesConfig::fast() };
    let bootstrap = FittedLabeler::fit_for_training(&config, &ds, &dev)
        .map_err(|e| format!("demo fit failed: {e}"))?;
    Ok((bootstrap, config))
}

/// Load the snapshot to serve, with crash recovery. A directory is swept
/// (torn/corrupt files quarantined) and the newest valid snapshot loaded.
/// A file that fails to load triggers the same sweep over its parent
/// directory — a server restarting onto a torn artifact falls back to the
/// newest surviving version instead of refusing to start.
fn load_snapshot(path: &std::path::Path) -> Result<FittedLabeler, String> {
    if path.is_dir() {
        return newest_valid_in(path);
    }
    match FittedLabeler::load_from(path) {
        Ok(l) => Ok(l),
        Err(e) => {
            log::warn(
                "served",
                "snapshot failed to load; sweeping its directory for a fallback",
                &[
                    ("path", Value::from(path.display().to_string())),
                    ("err", Value::from(e.to_string())),
                ],
            );
            let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
            match dir {
                Some(dir) => newest_valid_in(dir)
                    .map_err(|sweep_err| format!("{e}; fallback sweep: {sweep_err}")),
                None => Err(e.to_string()),
            }
        }
    }
}

/// Sweep `dir` and load its newest valid snapshot.
fn newest_valid_in(dir: &std::path::Path) -> Result<FittedLabeler, String> {
    let report = sweep_snapshot_dir(dir).map_err(|e| e.to_string())?;
    for quarantined in &report.quarantined {
        log::warn(
            "served",
            "quarantined a torn or corrupt snapshot file",
            &[("path", Value::from(quarantined.display().to_string()))],
        );
    }
    let newest =
        report.valid.first().ok_or_else(|| format!("no valid snapshot in {}", dir.display()))?;
    log::info(
        "served",
        "serving the newest valid snapshot",
        &[("path", Value::from(newest.display().to_string()))],
    );
    FittedLabeler::load_from(newest).map_err(|e| e.to_string())
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("goggles-served: {msg}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    log::set_level(args.log_level);
    log::set_json(args.log_json);
    let config = ServeConfig {
        max_batch: args.max_batch,
        batch_timeout: Duration::from_millis(args.linger_ms),
        shed_watermark: args.shed_watermark,
        fault_plan: args.fault_plan.clone(),
        ..ServeConfig::with_workers(args.workers)
    };
    let (service, trainer) = if args.retrain {
        log::info("served", "fitting the demo labeler (retrain bootstrap)", &[]);
        let (bootstrap, goggles_config) = match demo_bootstrap() {
            Ok(v) => v,
            Err(msg) => {
                log::error("served", "demo fit failed", &[("err", Value::from(msg))]);
                std::process::exit(1);
            }
        };
        let registry = match SnapshotRegistry::new(bootstrap.labeler.clone()) {
            Ok(r) => Arc::new(r),
            Err(e) => {
                log::error(
                    "served",
                    "registering the bootstrap labeler failed",
                    &[("err", Value::from(e.to_string()))],
                );
                std::process::exit(1);
            }
        };
        let service = Arc::new(LabelService::spawn_with_registry(Arc::clone(&registry), config));
        let trainer_config = TrainerConfig {
            queue_capacity: args.retrain_queue,
            min_batch: args.retrain_min_batch,
            epsilon: args.retrain_epsilon,
            canary_served: args.retrain_canary,
            snapshot_path: args.retrain_snapshot.as_ref().map(std::path::PathBuf::from),
            ..TrainerConfig::default()
        };
        let trainer = Trainer::spawn(bootstrap, &goggles_config, registry, trainer_config);
        (service, Some(trainer))
    } else {
        let labeler = if args.demo_fit {
            log::info("served", "fitting the demo labeler", &[]);
            match demo_labeler() {
                Ok(l) => l,
                Err(msg) => {
                    log::error("served", "demo fit failed", &[("err", Value::from(msg))]);
                    std::process::exit(1);
                }
            }
        } else {
            let path = args.snapshot.as_deref().expect("checked in parse_args");
            match load_snapshot(std::path::Path::new(path)) {
                Ok(l) => l,
                Err(e) => {
                    log::error(
                        "served",
                        "loading snapshot failed",
                        &[("path", Value::from(path)), ("err", Value::from(e))],
                    );
                    std::process::exit(1);
                }
            }
        };
        (Arc::new(LabelService::spawn(labeler, config)), None)
    };
    let options = ServerOptions {
        max_inflight_per_conn: args.max_inflight,
        drain_grace: Duration::from_millis(args.drain_grace_ms),
    };
    let bound = match &trainer {
        Some(t) => WireServer::bind_with_ingest(
            args.addr.as_str(),
            Arc::clone(&service),
            args.conn_threads,
            options,
            t.sink(),
        ),
        None => WireServer::bind_with(
            args.addr.as_str(),
            Arc::clone(&service),
            args.conn_threads,
            options,
        ),
    };
    let server = match bound {
        Ok(server) => server,
        Err(e) => {
            log::error(
                "served",
                "binding listener failed",
                &[("addr", Value::from(args.addr.as_str())), ("err", Value::from(e.to_string()))],
            );
            std::process::exit(1);
        }
    };
    // The HTTP front renders the service registry (plus the global
    // fit-path registry) on every GET /metrics and answers GET /healthz
    // from the server's readiness flag (503 once a drain starts). Held
    // until shutdown.
    let _metrics_server = match args.metrics_addr.as_deref() {
        Some(addr) => {
            let render_service = Arc::clone(&service);
            let bound = MetricsServer::bind_with_health(
                addr,
                Arc::new(move || render_service.render_metrics()),
                Some(server.ready_flag()),
            );
            match bound {
                Ok(ms) => Some(ms),
                Err(e) => {
                    log::error(
                        "served",
                        "binding metrics listener failed",
                        &[("addr", Value::from(addr)), ("err", Value::from(e.to_string()))],
                    );
                    std::process::exit(1);
                }
            }
        }
        None => None,
    };
    // First stdout line is machine-readable: callers binding port 0 parse
    // the resolved ephemeral address from it. The metrics line follows the
    // same contract.
    println!("listening on {}", server.local_addr());
    if let Some(ms) = _metrics_server.as_ref() {
        println!("metrics listening on {}", ms.local_addr());
    }
    std::io::stdout().flush().expect("flush stdout");
    log::info(
        "served",
        "serving",
        &[
            ("addr", Value::from(server.local_addr().to_string())),
            ("workers", Value::from(args.workers)),
            ("conn_threads", Value::from(args.conn_threads)),
        ],
    );
    server.wait();
    println!("shutdown complete");
}

//! Embedding benchmark: single-image latency of the im2col + blocked-GEMM
//! backbone versus the retained scalar convolution reference, plus the
//! embed-vs-affinity per-stage split of one online request.
//!
//! ```text
//! GOGGLES_SCALE=quick|standard|paper cargo bench -p goggles-bench --bench embed
//! ```
//!
//! Also drops `BENCH_embed.json` in the results dir (see
//! `goggles::experiments::report::results_dir`).

use goggles::experiments::report::results_dir;
use goggles::experiments::{embed_bench, Scale};
use goggles_bench::timed;

fn main() {
    let scale = Scale::from_env();
    let params = scale.params();
    println!("scale: {scale:?} → {params:?}\n");
    let report = timed("Embedding backbone", || embed_bench::run(&params));
    println!("{}", report.to_table().render());
    let path = results_dir().join("BENCH_embed.json");
    match report.write_json(&path) {
        Ok(()) => println!("[saved {}]\n", path.display()),
        Err(e) => eprintln!("[warn: could not write {}: {e}]\n", path.display()),
    }
    // Acceptance guardrails of the GEMM backbone: the fast trunk must agree
    // with the scalar reference within the 1e-5 tolerance on every tap
    // value, and a full single-image embedding must be at least 2.5× faster
    // than the retained naive path.
    assert!(
        report.max_abs_dev < 1e-5,
        "GEMM trunk disagrees with the scalar reference: {:.3e}",
        report.max_abs_dev
    );
    assert!(
        report.embed_speedup() >= 2.5,
        "single-image embedding speedup {:.2}× below the 2.5× bar",
        report.embed_speedup()
    );
}

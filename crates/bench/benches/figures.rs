//! Regenerates **Figures 2, 5, 7, 8 and 9** of the paper:
//!
//! * Figure 2 — affinity-score distributions (same vs cross class) of a
//!   good / medium / useless affinity function on the CUB task,
//! * Figure 5 — the class-sorted affinity-matrix block means for the same
//!   three functions,
//! * Figure 7 — the Theorem-1 lower bound on P(correct cluster→class
//!   mapping) vs dev-set size,
//! * Figure 8 — labeling accuracy vs dev-set size on all five datasets,
//! * Figure 9 — labeling accuracy vs number of affinity functions.
//!
//! ```text
//! GOGGLES_SCALE=quick|standard|paper cargo bench -p goggles-bench --bench figures
//! ```

use goggles::experiments::report::Table;
use goggles::experiments::{figures, Scale, TrialContext};
use goggles_bench::{emit, mean, timed};

fn main() {
    let scale = Scale::from_env();
    let params = scale.params();
    println!("scale: {scale:?} → {params:?}\n");

    // --- Figures 2 & 5 on the CUB task (as in the paper's examples) ---
    let tasks = params.tasks_for_trial(0);
    let cub_ctx = timed("build CUB context", || TrialContext::build(&params, &tasks[0], 0));
    let fig2 = figures::figure2(&cub_ctx, 10);
    emit(&fig2.to_table(), "figure2");
    emit(&figures::figure5(&cub_ctx), "figure5");

    // --- Figure 7: pure theory, no data needed ---
    emit(&figures::figure7(&[0.7, 0.8, 0.9], 25), "figure7");

    // --- Figures 8 & 9 across all five datasets ---
    let sizes = [0usize, 1, 2, 3, 4, 5, 8, 10];
    let counts = [1usize, 2, 5, 10, 20, 30, 50];
    let mut fig8 = Table::new(
        "Figure 8: labeling accuracy (%) vs development set size (per class)",
        &std::iter::once("Dataset".to_string())
            .chain(sizes.iter().map(|s| format!("d={s}")))
            .collect::<Vec<_>>()
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>(),
    );
    let mut fig9 = Table::new(
        "Figure 9: labeling accuracy (%) vs number of affinity functions",
        &std::iter::once("Dataset".to_string())
            .chain(counts.iter().map(|c| format!("α={c}")))
            .collect::<Vec<_>>()
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>(),
    );
    for (d, task) in tasks.iter().enumerate() {
        let name = task.kind.dataset_name();
        let ctx = if d == 0 {
            // reuse the CUB context built above
            None
        } else {
            Some(timed(&format!("build {name} context"), || TrialContext::build(&params, task, 0)))
        };
        let ctx = ctx.as_ref().unwrap_or(&cub_ctx);

        let series8 = figures::figure8(ctx, &sizes, 0xF18);
        let mut row = vec![name.to_string()];
        row.extend(series8.iter().map(|&(_, a)| format!("{:.2}", 100.0 * a)));
        fig8.push_row(row);

        let series9 = figures::figure9(ctx, &counts, 0xF19);
        let mut row = vec![name.to_string()];
        row.extend(series9.iter().map(|&(_, a)| format!("{:.2}", 100.0 * a)));
        fig9.push_row(row);

        println!(
            "{name}: fig8 mean {:.1}%, fig9 mean {:.1}%",
            100.0 * mean(&series8.iter().map(|&(_, a)| a).collect::<Vec<_>>()),
            100.0 * mean(&series9.iter().map(|&(_, a)| a).collect::<Vec<_>>()),
        );
    }
    emit(&fig8, "figure8");
    emit(&fig9, "figure9");

    println!("expected shapes: fig8 rises from chance at d=0 and plateaus by d≈5;");
    println!("fig9 is broadly increasing in the number of affinity functions.");
}

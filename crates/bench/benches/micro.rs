//! Criterion micro-benchmarks of the pipeline's hot kernels: CNN inference,
//! prototype extraction, affinity-matrix construction, the EM fits and the
//! assignment solver. These are performance benches (wall-clock), not
//! accuracy reproductions — the paper's §5.3 running-time discussion is the
//! nearest analogue.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use goggles::cnn::{Vgg16, VggConfig};
use goggles::core::affinity::AffinityMatrix;
use goggles::core::prototypes::{embed_image, embed_images};
use goggles::core::theory;
use goggles::models::{BernoulliMixture, DiagonalGmm, EmOptions, KMeans};
use goggles::tensor::rng::{normal, std_rng};
use goggles::tensor::Matrix;
use goggles::vision::{draw, Image};
use goggles_models::solve_assignment;
use std::hint::black_box;

fn test_image(seed: usize) -> Image {
    let mut img = Image::filled(3, 32, 32, 0.3);
    draw::fill_disc(&mut img, 8.0 + (seed % 12) as f32, 16.0, 6.0, &[0.9, 0.2, 0.1]);
    draw::fill_rect(&mut img, 20, 4, 28, 28, &[0.1, 0.5, 0.8]);
    img
}

fn bench_cnn(c: &mut Criterion) {
    let net = Vgg16::new(&VggConfig::tiny(), 1);
    let img = test_image(0);
    c.bench_function("cnn/forward_pool_taps_32px", |b| {
        b.iter(|| black_box(net.forward_pool_taps(black_box(&img))))
    });
    c.bench_function("cnn/logits_32px", |b| b.iter(|| black_box(net.logits(black_box(&img)))));
}

fn bench_prototypes(c: &mut Criterion) {
    let net = Vgg16::new(&VggConfig::tiny(), 1);
    let img = test_image(1);
    c.bench_function("prototypes/embed_image_z4", |b| {
        b.iter(|| black_box(embed_image(&net, black_box(&img), 4, true)))
    });
}

fn bench_affinity(c: &mut Criterion) {
    let net = Vgg16::new(&VggConfig::tiny(), 1);
    let images: Vec<Image> = (0..24).map(test_image).collect();
    let refs: Vec<&Image> = images.iter().collect();
    let embeddings = embed_images(&net, &refs, 4, 4, true);
    c.bench_function("affinity/build_n24_alpha20", |b| {
        b.iter(|| black_box(AffinityMatrix::build(black_box(&embeddings), 4)))
    });
}

fn synthetic_block(n: usize, d: usize, seed: u64) -> Matrix<f64> {
    let mut rng = std_rng(seed);
    Matrix::from_fn(n, d, |i, _| {
        let c = if i < n / 2 { -1.0 } else { 1.0 };
        c + normal(&mut rng)
    })
}

fn bench_models(c: &mut Criterion) {
    let data = synthetic_block(64, 64, 2);
    let em = EmOptions { restarts: 1, ..EmOptions::default() };
    c.bench_function("models/diag_gmm_fit_64x64", |b| {
        b.iter(|| black_box(DiagonalGmm::fit(black_box(&data), 2, &em, 0).unwrap()))
    });
    let binary = data.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
    c.bench_function("models/bernoulli_fit_64x64", |b| {
        b.iter(|| black_box(BernoulliMixture::fit(black_box(&binary), 2, &em, 0).unwrap()))
    });
    c.bench_function("models/kmeans_fit_64x64", |b| {
        b.iter(|| black_box(KMeans::fit(black_box(&data), 2, 1, 0).unwrap()))
    });
}

fn bench_assignment(c: &mut Criterion) {
    let mut rng = std_rng(3);
    c.bench_function("assignment/hungarian_16x16", |b| {
        b.iter_batched(
            || Matrix::from_fn(16, 16, |_, _| normal(&mut rng)),
            |score| black_box(solve_assignment(&score)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_theory(c: &mut Criterion) {
    c.bench_function("theory/p_mapping_correct_k4_d20", |b| {
        b.iter(|| black_box(theory::p_mapping_correct(black_box(0.8), 4, 20)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cnn, bench_prototypes, bench_affinity, bench_models,
              bench_assignment, bench_theory
}
criterion_main!(benches);

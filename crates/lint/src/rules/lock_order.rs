//! `lock-order`: cross-function lock discipline over the semantic model.
//!
//! Three findings, all with full call-chain witnesses:
//!
//! 1. **Inversion** — lock `A` is acquired while `B` is held on one path
//!    and `B` while `A` is held on another (possibly through calls): the
//!    classic ABBA deadlock. One diagnostic per unordered lock pair, with
//!    both witness chains.
//! 2. **Re-entry** — a call chain re-acquires a non-reentrant lock the
//!    caller already holds: a guaranteed self-deadlock.
//! 3. **Blocking under a lock** — `wait`/`recv`/`join`/blocking I/O (direct
//!    or transitive) while a guard is live. The condvar protocol
//!    (`cvar.wait(guard)` consuming the guard it re-acquires) is exempt.

use crate::engine::{Diagnostic, Workspace};
use crate::model::guards::Held;
use crate::model::SemanticModel;
use std::collections::BTreeMap;

/// `crates/serve/src/service.rs::state` → `state` for prose; the full id
/// stays in the chain text.
fn short(lock: &str) -> &str {
    lock.rsplit("::").next().unwrap_or(lock)
}

pub(crate) fn check(ws: &Workspace, model: &SemanticModel, out: &mut Vec<Diagnostic>) {
    let fns = &model.fns;
    let n = fns.len();
    let rel = |i: usize| ws.files[fns[i].file].rel.as_str();

    // Transitive lock sets: fn index → lock id → witness chain starting at
    // that fn and ending at the acquire site.
    let mut acq: Vec<BTreeMap<String, Vec<String>>> = vec![BTreeMap::new(); n];
    for (i, g) in model.guards.iter().enumerate() {
        for a in &g.acquires {
            acq[i].entry(a.lock.clone()).or_insert_with(|| {
                vec![format!(
                    "{} [takes `{}` @ {}:{}]",
                    fns[i].display,
                    short(&a.lock),
                    rel(i),
                    a.line
                )]
            });
        }
    }
    // Transitive blocking: fn index → (op, witness chain).
    let mut blk: Vec<Option<(String, Vec<String>)>> = vec![None; n];
    for (i, g) in model.guards.iter().enumerate() {
        if let Some(b) = g.blocking.first() {
            blk[i] = Some((
                b.op.clone(),
                vec![format!("{} [blocks on `{}` @ {}:{}]", fns[i].display, b.op, rel(i), b.line)],
            ));
        }
    }
    // Propagate both over the call graph to a fixed point. The graph is
    // small (one entry per workspace fn) and each fn gains each lock at
    // most once, so this terminates quickly.
    loop {
        let mut changed = false;
        for i in 0..n {
            if fns[i].is_test {
                continue;
            }
            for site in &model.graph.sites[i] {
                for &g in &site.targets {
                    let hop = format!(
                        "{} [calls `{}` @ {}:{}]",
                        fns[i].display,
                        site.name,
                        rel(i),
                        site.line
                    );
                    let new_locks: Vec<(String, Vec<String>)> = acq[g]
                        .iter()
                        .filter(|(lock, _)| !acq[i].contains_key(*lock))
                        .map(|(lock, chain)| {
                            let mut c = vec![hop.clone()];
                            c.extend(chain.iter().cloned());
                            (lock.clone(), c)
                        })
                        .collect();
                    if !new_locks.is_empty() {
                        changed = true;
                        acq[i].extend(new_locks);
                    }
                    if blk[i].is_none() {
                        if let Some((op, chain)) = &blk[g] {
                            let mut c = vec![hop.clone()];
                            c.extend(chain.iter().cloned());
                            blk[i] = Some((op.clone(), c));
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Ordered pairs (A held while B acquired) with one witness each, plus
    // the per-site violations that need no partner to be wrong.
    let mut pairs: BTreeMap<(String, String), (usize, usize, Vec<String>)> = BTreeMap::new();
    let mut record = |a: &Held, b: &str, file: usize, line: usize, chain: Vec<String>| {
        pairs.entry((a.lock.clone(), b.to_string())).or_insert((file, line, chain));
    };
    for (i, g) in model.guards.iter().enumerate() {
        if fns[i].is_test {
            continue;
        }
        // Direct nesting inside one fn.
        for a in &g.acquires {
            for h in &a.live {
                let chain = vec![format!(
                    "{} [holds `{}` ({}:{}), takes `{}` @ {}:{}]",
                    fns[i].display,
                    short(&h.lock),
                    rel(i),
                    h.line,
                    short(&a.lock),
                    rel(i),
                    a.line
                )];
                if h.lock == a.lock {
                    report(ws, out, fns[i].file, a.line, format!(
                        "re-acquires `{}` already held since line {} — non-reentrant Mutex, guaranteed deadlock",
                        short(&a.lock), h.line
                    ), chain);
                } else {
                    record(h, &a.lock, fns[i].file, a.line, chain);
                }
            }
        }
        // Locks acquired (and blocking reached) through calls made while a
        // guard is live.
        for (s, site) in model.graph.sites[i].iter().enumerate() {
            let live = &g.live_at_site[s];
            if live.is_empty() {
                continue;
            }
            let mut site_blocking_reported = false;
            for &t in &site.targets {
                let hop = |h: &Held| {
                    format!(
                        "{} [holds `{}` ({}:{}), calls `{}` @ {}:{}]",
                        fns[i].display,
                        short(&h.lock),
                        rel(i),
                        h.line,
                        site.name,
                        rel(i),
                        site.line
                    )
                };
                for (lock, tail) in &acq[t] {
                    if let Some(h) = live.iter().find(|h| &h.lock == lock) {
                        let mut chain = vec![hop(h)];
                        chain.extend(tail.iter().cloned());
                        report(ws, out, fns[i].file, site.line, format!(
                            "call re-acquires `{}` already held since line {} — non-reentrant Mutex, guaranteed deadlock",
                            short(lock), h.line
                        ), chain);
                    } else {
                        for h in live {
                            let mut chain = vec![hop(h)];
                            chain.extend(tail.iter().cloned());
                            record(h, lock, fns[i].file, site.line, chain);
                        }
                    }
                }
                if let (false, Some((op, tail))) = (site_blocking_reported, &blk[t]) {
                    site_blocking_reported = true;
                    let h = &live[0];
                    let mut chain = vec![hop(h)];
                    chain.extend(tail.iter().cloned());
                    report(ws, out, fns[i].file, site.line, format!(
                        "call blocks (`{}`) while `{}` is held (acquired line {}) — stalls every thread contending for the lock",
                        op, short(&h.lock), h.line
                    ), chain);
                }
            }
        }
        // Direct blocking ops under a live guard.
        for b in &g.blocking {
            if let Some(h) = b.live.first() {
                let chain = vec![format!(
                    "{} [holds `{}` ({}:{}), blocks on `{}` @ {}:{}]",
                    fns[i].display,
                    short(&h.lock),
                    rel(i),
                    h.line,
                    b.op,
                    rel(i),
                    b.line
                )];
                report(ws, out, fns[i].file, b.line, format!(
                    "blocking `{}` while `{}` is held (acquired line {}) — stalls every thread contending for the lock",
                    b.op, short(&h.lock), h.line
                ), chain);
            }
        }
    }

    // Inversions: both (A, B) and (B, A) exist.
    for ((a, b), (file, line, chain)) in &pairs {
        if a < b {
            if let Some((_, _, rev_chain)) = pairs.get(&(b.clone(), a.clone())) {
                let mut full = chain.clone();
                full.push("— reverse order —".to_string());
                full.extend(rev_chain.iter().cloned());
                report(ws, out, *file, *line, format!(
                    "lock-order inversion between `{}` and `{}`: this path takes {} then {}, another takes {} then {} — deadlock when the paths interleave",
                    short(a), short(b), short(a), short(b), short(b), short(a)
                ), full);
            }
        }
    }
}

fn report(
    ws: &Workspace,
    out: &mut Vec<Diagnostic>,
    file: usize,
    line: usize,
    message: String,
    chain: Vec<String>,
) {
    ws.files[file].report_chain(out, "lock-order", line, message, chain);
}

//! Chaos suite: the loopback serving stack under seeded fault plans.
//!
//! Each test installs a deterministic [`FaultPlan`] (seed from
//! `GOGGLES_CHAOS_SEED`, default 42 — the seed is printed so a randomized
//! CI failure reproduces with one env var) and drives the full
//! `LabelService` + `WireServer` + `RemoteLabeler` stack through it:
//! flaky and hard I/O faults on the wire, a worker panic, a torn snapshot
//! write, an overload burst, a graceful drain. The invariants are always
//! the same: **zero lost tickets** (every request resolves — bit-identical
//! success or a typed retryable error), **zero hangs** (every wait is
//! bounded), and **clean recovery** (the stack serves correctly after the
//! faults stop).
//!
//! The fault injector is process-global, so these tests serialize on one
//! lock and run in this dedicated integration binary, away from every
//! other test process.

// The lint's panic-rule audit keys off #[cfg(test)] scoping; integration
// tests compile with cfg(test), so this gate is a tautology that makes
// the intentional assert!/unwrap chaos explicit and lint-visible.
#[cfg(test)]
mod chaos {
    use goggles::prelude::*;
    use goggles::serve::{fault, ServeError};
    use std::sync::{Mutex, MutexGuard, PoisonError};
    use std::time::{Duration, Instant};

    /// One lock for the whole suite: the injector is process-global.
    fn serial() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Clears the installed plan even when an assertion unwinds, so one
    /// failing test cannot leak faults into the next.
    struct PlanGuard;
    impl Drop for PlanGuard {
        fn drop(&mut self) {
            fault::clear();
        }
    }

    fn install(spec: &str) -> PlanGuard {
        fault::install(&FaultPlan::parse(spec).unwrap());
        PlanGuard
    }

    fn chaos_seed() -> u64 {
        let seed =
            std::env::var("GOGGLES_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42u64);
        // Shown on failure: rerun with GOGGLES_CHAOS_SEED=<seed> to repro.
        eprintln!("chaos seed: {seed}");
        seed
    }

    fn fixture(seed: u64) -> (FittedLabeler, Dataset) {
        let mut cfg = TaskConfig::new(TaskKind::Cub { class_a: 0, class_b: 1 }, 8, 6, seed);
        cfg.image_size = 32;
        let ds = generate(&cfg);
        let dev = ds.sample_dev_set(3, seed);
        let config = GogglesConfig { seed, ..GogglesConfig::fast() };
        let (labeler, _) = FittedLabeler::fit(&config, &ds, &dev).unwrap();
        (labeler, ds)
    }

    const HANG_GUARD: Duration = Duration::from_secs(60);

    /// Wait for a ticket with the suite's hang guard: a request that
    /// neither resolves nor fails within the guard is a lost ticket.
    fn bounded_wait(ticket: &mut Ticket) -> Result<LabelResponse, ServeError> {
        ticket.wait_timeout(HANG_GUARD).expect("ticket neither resolved nor failed: lost")
    }

    /// ≥5% injected I/O faults on the wire (transient flaky reads/writes
    /// plus periodic hard read errors that kill whole connections): with a
    /// retrying, reconnecting client every answer is still bit-identical
    /// to in-process inference, and nothing hangs or gets lost.
    #[test]
    fn flaky_wire_still_answers_bit_identically() {
        let _lock = serial();
        let seed = chaos_seed();
        let _plan = install(&format!(
            "seed={seed};wire.read:flaky@p0.08;wire.write:flaky@p0.05;wire.read:io@%41"
        ));
        let (labeler, ds) = fixture(81);
        let service =
            std::sync::Arc::new(LabelService::spawn(labeler.clone(), ServeConfig::default()));
        let server = WireServer::bind("127.0.0.1:0", std::sync::Arc::clone(&service), 2).unwrap();
        let policy = RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(2),
            jitter_seed: seed,
            ..RetryPolicy::default()
        };
        let client = RemoteLabeler::connect_with(server.local_addr(), policy).unwrap();
        for round in 0..4 {
            for (i, img) in ds.test_images().iter().enumerate() {
                let (expected_label, expected_probs) = labeler.label_one(img);
                let resp = client.label(img).unwrap();
                assert_eq!(resp.label, expected_label, "round {round} image {i}");
                assert_eq!(
                    resp.probs, expected_probs,
                    "round {round} image {i}: must be bit-identical"
                );
            }
        }
        // A deadline-budgeted call under the same faults: the total budget
        // spans every retry attempt and the answer is still bit-identical.
        let budgeted =
            client.label_with_deadline(ds.test_images()[1], Instant::now() + HANG_GUARD).unwrap();
        assert_eq!(budgeted.label, labeler.label_one(ds.test_images()[1]).0);
        // Recovery: with the plan cleared the stack keeps serving.
        fault::clear();
        assert!(client.label(ds.test_images()[0]).is_ok());
        assert!(!client.is_closed(), "a just-served client holds a live connection");
    }

    /// A worker panic mid-stream: the held batch's tickets resolve with the
    /// typed retryable `Closed` (never silently lost), the watchdog
    /// respawns the worker (counted in stats and metrics), and the service
    /// keeps serving bit-identically.
    #[test]
    fn worker_panic_is_respawned_by_the_watchdog() {
        let _lock = serial();
        let seed = chaos_seed();
        let (labeler, ds) = fixture(82);
        let config = ServeConfig {
            workers: 1,
            max_batch: 2,
            batch_timeout: Duration::from_millis(1),
            fault_plan: Some(
                FaultPlan::parse(&format!("seed={seed};worker.batch:panic@#2")).unwrap(),
            ),
            ..ServeConfig::default()
        };
        let service = LabelService::spawn(labeler.clone(), config);
        let images = ds.test_images();
        let mut failed = 0u32;
        for img in &images {
            let mut ticket = service.submit((*img).clone()).unwrap();
            match bounded_wait(&mut ticket) {
                Ok(resp) => {
                    let (expected_label, _) = labeler.label_one(img);
                    assert_eq!(resp.label, expected_label);
                }
                Err(e) => {
                    assert!(e.retryable(), "panic fallout must be typed retryable, got {e:?}");
                    failed += 1;
                }
            }
        }
        assert!(failed >= 1, "the injected panic must surface on at least one ticket");
        let stats = service.stats();
        assert_eq!(stats.worker_restarts, 1, "exactly one watchdog respawn");
        assert!(
            service.render_metrics().contains("goggles_worker_restarts_total 1"),
            "restart must be exported"
        );
        // Recovery: the respawned worker serves correctly.
        fault::clear();
        let resp = service.label(images[0]).unwrap();
        assert_eq!(resp.label, labeler.label_one(images[0]).0);
    }

    /// A torn snapshot write (simulated crash mid-write): the final name is
    /// never clobbered, the startup sweep quarantines the torn temp file,
    /// and a directory reload falls back to the newest valid version.
    #[test]
    fn torn_snapshot_write_quarantines_and_falls_back() {
        let _lock = serial();
        let seed = chaos_seed();
        let (labeler, ds) = fixture(83);
        let dir = std::env::temp_dir().join(format!("goggles_chaos_snapdir_{seed}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        // A good snapshot lands first, fault-free.
        let good = dir.join("model_a.ggl");
        labeler.save_to(&good).unwrap();

        // The next write tears: error surfaced, temp orphan left behind,
        // the good file untouched.
        let _plan = install(&format!("seed={seed};snapshot.write:torn@#1"));
        let torn = dir.join("model_b.ggl");
        let err = labeler.save_to(&torn).unwrap_err();
        assert!(matches!(err, ServeError::Io(_)), "torn write must fail typed: {err:?}");
        assert!(!torn.exists(), "a torn write must never land under the final name");
        assert!(dir.join("model_b.ggl.tmp").exists(), "the torn temp file is the evidence");
        fault::clear();

        // Reloading from the directory sweeps: the torn temp is
        // quarantined and the newest valid snapshot is published.
        let service = LabelService::spawn(labeler.clone(), ServeConfig::default());
        let version = service.reload_from(&dir).unwrap();
        assert_eq!(version, 2, "fallback publishes the surviving valid snapshot");
        assert!(
            dir.join("model_b.ggl.tmp.quarantined").exists(),
            "torn temp must be quarantined, not deleted"
        );
        assert!(good.exists(), "the valid snapshot survives the sweep untouched");
        let resp = service.label(ds.test_images()[0]).unwrap();
        assert_eq!(resp.version, 2);
        assert_eq!(resp.label, labeler.label_one(ds.test_images()[0]).0);

        // A second sweep is idempotent: already-quarantined files are
        // skipped and the valid snapshot is the lone survivor.
        let report: goggles::serve::SweepReport = goggles::serve::sweep_snapshot_dir(&dir).unwrap();
        assert_eq!(report.valid, vec![good.clone()]);
        assert!(report.quarantined.is_empty(), "{:?}", report.quarantined);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// An overload burst against a tiny queue: shed requests fail fast with
    /// the typed, retryable `Overloaded` over the wire (never a hang, never
    /// a dropped connection), the shed counter reflects them, and the
    /// server stays ready and serves normally afterwards.
    #[test]
    fn overload_burst_sheds_typed_and_recovers() {
        let _lock = serial();
        let seed = chaos_seed();
        let (labeler, ds) = fixture(84);
        let config = ServeConfig {
            workers: 1,
            max_batch: 2,
            batch_timeout: Duration::from_millis(20),
            shed_watermark: 2,
            fault_plan: Some(
                // A slow worker makes the burst pile up deterministically.
                FaultPlan::parse(&format!("seed={seed};worker.batch:delay:30@%1")).unwrap(),
            ),
            ..ServeConfig::default()
        };
        let service = std::sync::Arc::new(LabelService::spawn(labeler.clone(), config));
        let server = WireServer::bind("127.0.0.1:0", std::sync::Arc::clone(&service), 2).unwrap();
        assert!(server.ready_flag().load(std::sync::atomic::Ordering::Acquire));
        // No retries: the raw overload outcome must reach the caller.
        let client = RemoteLabeler::connect_with(server.local_addr(), RetryPolicy::none()).unwrap();

        let images = ds.test_images();
        let burst: Vec<Ticket> = (0..24)
            .map(|i| {
                client
                    .submit_with_deadline(
                        std::sync::Arc::new(images[i % images.len()].clone()),
                        None,
                    )
                    .unwrap()
            })
            .collect();
        let mut ok = 0u32;
        let mut shed = 0u32;
        let start = Instant::now();
        for (i, mut ticket) in burst.into_iter().enumerate() {
            match bounded_wait(&mut ticket) {
                Ok(resp) => {
                    ok += 1;
                    let img = images[i % images.len()];
                    assert_eq!(resp.label, labeler.label_one(img).0, "request {i}");
                }
                Err(ServeError::Overloaded) => {
                    assert!(ServeError::Overloaded.retryable());
                    shed += 1;
                }
                Err(other) => panic!("request {i}: expected success or Overloaded, got {other:?}"),
            }
        }
        assert!(start.elapsed() < HANG_GUARD, "burst resolution must be bounded");
        assert!(ok >= 1, "some of the burst must be served");
        assert!(shed >= 1, "a 24-deep burst over watermark 2 must shed");
        assert_eq!(service.stats().shed, u64::from(shed), "stats count every shed");

        // Recovery: faults off, queue drained — the server is still ready
        // and a retrying client sails through.
        fault::clear();
        let retrying = RemoteLabeler::connect_with(
            server.local_addr(),
            RetryPolicy { jitter_seed: seed, ..RetryPolicy::default() },
        )
        .unwrap();
        let resp = retrying.label(images[0]).unwrap();
        assert_eq!(resp.label, labeler.label_one(images[0]).0);
        assert!(server.ready_flag().load(std::sync::atomic::Ordering::Acquire));
    }

    /// Graceful drain: a wire shutdown flips readiness immediately, but
    /// every ticket already in flight is still answered before the server
    /// exits — and the whole sequence is bounded.
    #[test]
    fn drain_answers_every_inflight_ticket() {
        let _lock = serial();
        let seed = chaos_seed();
        let (labeler, ds) = fixture(85);
        let config = ServeConfig {
            workers: 1,
            max_batch: 2,
            batch_timeout: Duration::from_millis(5),
            fault_plan: Some(
                // Slow batches keep tickets in flight across the drain.
                FaultPlan::parse(&format!("seed={seed};worker.batch:delay:15@%1")).unwrap(),
            ),
            ..ServeConfig::default()
        };
        let service = std::sync::Arc::new(LabelService::spawn(labeler.clone(), config));
        let server = WireServer::bind_with(
            "127.0.0.1:0",
            std::sync::Arc::clone(&service),
            2,
            ServerOptions { drain_grace: Duration::from_millis(400), ..ServerOptions::default() },
        )
        .unwrap();
        let addr = server.local_addr();
        let ready = server.ready_flag();
        let client = RemoteLabeler::connect(addr).unwrap();
        let images = ds.test_images();
        let tickets: Vec<Ticket> = images
            .iter()
            .map(|img| {
                client.submit_with_deadline(std::sync::Arc::new((*img).clone()), None).unwrap()
            })
            .collect();

        let controller = RemoteLabeler::connect(addr).unwrap();
        controller.shutdown_server().unwrap();
        // Readiness flips as the drain starts, before the server is gone.
        let flip_deadline = Instant::now() + HANG_GUARD;
        while ready.load(std::sync::atomic::Ordering::Acquire) {
            assert!(Instant::now() < flip_deadline, "readiness never flipped during drain");
            std::thread::sleep(Duration::from_millis(2));
        }
        // Every in-flight ticket still resolves — answered during the
        // grace window, bit-identically.
        for (i, mut ticket) in tickets.into_iter().enumerate() {
            let resp = bounded_wait(&mut ticket)
                .unwrap_or_else(|e| panic!("in-flight ticket {i} lost to the drain: {e:?}"));
            assert_eq!(resp.label, labeler.label_one(images[i]).0, "ticket {i}");
        }
        // The server winds down fully (bounded, no hang) once drained.
        let joiner = std::thread::spawn(move || server.wait());
        let join_deadline = Instant::now() + HANG_GUARD;
        while !joiner.is_finished() {
            assert!(Instant::now() < join_deadline, "drained server failed to exit");
            std::thread::sleep(Duration::from_millis(5));
        }
        joiner.join().unwrap();
        fault::clear();
    }

    /// The per-connection inflight cap sheds typed errors while a capped
    /// burst is pending, without disturbing other connections.
    #[test]
    fn per_connection_inflight_cap_sheds_only_the_noisy_connection() {
        let _lock = serial();
        let seed = chaos_seed();
        let (labeler, ds) = fixture(86);
        let config = ServeConfig {
            workers: 1,
            max_batch: 2,
            batch_timeout: Duration::from_millis(20),
            fault_plan: Some(
                FaultPlan::parse(&format!("seed={seed};worker.batch:delay:25@%1")).unwrap(),
            ),
            ..ServeConfig::default()
        };
        let service = std::sync::Arc::new(LabelService::spawn(labeler.clone(), config));
        let server = WireServer::bind_with(
            "127.0.0.1:0",
            std::sync::Arc::clone(&service),
            2,
            ServerOptions { max_inflight_per_conn: 3, ..ServerOptions::default() },
        )
        .unwrap();
        let noisy = RemoteLabeler::connect(server.local_addr()).unwrap();
        let images = ds.test_images();
        let burst: Vec<Ticket> = (0..16)
            .map(|i| {
                noisy
                    .submit_with_deadline(
                        std::sync::Arc::new(images[i % images.len()].clone()),
                        None,
                    )
                    .unwrap()
            })
            .collect();
        let mut shed = 0u32;
        for (i, mut ticket) in burst.into_iter().enumerate() {
            match bounded_wait(&mut ticket) {
                Ok(resp) => assert_eq!(resp.label, labeler.label_one(images[i % images.len()]).0),
                Err(ServeError::Overloaded) => shed += 1,
                Err(other) => panic!("request {i}: expected success or Overloaded, got {other:?}"),
            }
        }
        assert!(shed >= 1, "a 16-deep pipeline over cap 3 must shed");
        fault::clear();
        // A fresh, polite connection is unaffected.
        let polite = RemoteLabeler::connect(server.local_addr()).unwrap();
        assert_eq!(polite.label(images[0]).unwrap().label, labeler.label_one(images[0]).0);
    }
}

//! Fixture: acquire ordering on a hot-path module (flagged hot-only).

use std::sync::atomic::{AtomicBool, Ordering};

pub(crate) fn is_closed(flag: &AtomicBool) -> bool {
    flag.load(Ordering::Acquire)
}

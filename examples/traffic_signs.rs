//! Hard-task scenario: GTSRB-like traffic signs, where the class evidence is
//! a small glyph inside a shared sign shape — the paper's hardest dataset
//! (70.51% in Table 1). Demonstrates per-affinity-function diagnostics:
//! which of the α functions carry signal, and what the ensemble thinks of
//! them (§4.1's "affinity function selection").
//!
//! ```text
//! cargo run --release --example traffic_signs
//! ```

use goggles::core::affinity::AffinityFunction;
use goggles::prelude::*;

fn main() {
    // Two signs from the same family: identical shape and colors, glyph
    // differs (see goggles-datasets::gtsrb).
    let task = TaskConfig::new(TaskKind::Gtsrb { class_a: 0, class_b: 8 }, 32, 8, 11);
    let dataset = generate(&task);
    let dev = dataset.sample_dev_set(5, 11);
    println!("{}: same shape family, glyph-only difference", dataset.name);

    let goggles = Goggles::new(GogglesConfig::fast());
    let affinity = goggles.build_affinity_matrix(&dataset.train_images());

    // Rank affinity functions by their class-separation AUC (Example 2 /
    // Figure 2 of the paper: some functions separate, many are noise).
    let truth = dataset.train_labels();
    let z = goggles.config().top_z;
    let lib = AffinityFunction::library(affinity.alpha / z, z);
    let mut ranked: Vec<(usize, f64)> =
        (0..affinity.alpha).map(|f| (f, affinity.score_distribution(f, &truth).auc)).collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\ntop-5 affinity functions by separation AUC:");
    for &(f, auc) in ranked.iter().take(5) {
        println!("  {}  AUC = {:.3}", lib[f], auc);
    }
    println!("bottom-3 (noise, the ensemble must discount these):");
    for &(f, auc) in ranked.iter().rev().take(3) {
        println!("  {}  AUC = {:.3}", lib[f], auc);
    }

    // Full inference, then compare the ensemble's learned reliabilities
    // against the ground-truth AUC ranking.
    let dev_rows = DevSet {
        indices: dev
            .indices
            .iter()
            .map(|&i| dataset.train_indices.iter().position(|&t| t == i).unwrap())
            .collect(),
        labels: dev.labels.clone(),
    };
    let (labels, mapping, model) =
        goggles.infer_from_affinity(&affinity, &dev_rows).expect("inference failed");
    let rel = model.function_reliabilities();
    let best_by_model =
        (0..rel.len()).max_by(|&a, &b| rel[a].partial_cmp(&rel[b]).unwrap()).unwrap();
    println!(
        "\nensemble's most-trusted function: {} (reliability {:.3}, true AUC {:.3})",
        lib[best_by_model],
        rel[best_by_model],
        affinity.score_distribution(best_by_model, &truth).auc
    );
    println!("cluster→class mapping: {mapping:?}");

    let mut correct = 0;
    let hard = labels.hard_labels();
    for (i, &t) in truth.iter().enumerate() {
        if hard[i] == t {
            correct += 1;
        }
    }
    println!(
        "labeling accuracy: {:.2}% ({} / {} training images)",
        100.0 * correct as f64 / truth.len() as f64,
        correct,
        truth.len()
    );
}

//! Integration tests of the serving subsystem: snapshot round-tripping and
//! out-of-sample agreement with the batch pipeline (the guarantees
//! `goggles-serve` is sold on).

use goggles::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn task(train_per_class: usize, test_per_class: usize, seed: u64) -> (Dataset, DevSet) {
    let mut cfg = TaskConfig::new(
        TaskKind::Cub { class_a: 0, class_b: 1 },
        train_per_class,
        test_per_class,
        seed,
    );
    cfg.image_size = 32;
    let ds = generate(&cfg);
    let dev = ds.sample_dev_set(4, seed);
    (ds, dev)
}

#[test]
fn snapshot_round_trip_is_byte_deterministic_and_label_stable() {
    let (ds, dev) = task(10, 8, 21);
    let config = GogglesConfig { seed: 21, ..GogglesConfig::fast() };
    let (labeler, _) = FittedLabeler::fit(&config, &ds, &dev).unwrap();

    // save is deterministic, and save→load→save is byte-for-byte stable
    let bytes = labeler.save();
    assert_eq!(bytes, labeler.save());
    let reloaded = FittedLabeler::load(&bytes).unwrap();
    assert_eq!(reloaded.save(), bytes);

    // label_batch is identical before and after reload
    let held_out = ds.test_images();
    let before = labeler.label_batch(&held_out, 2);
    let after = reloaded.label_batch(&held_out, 2);
    assert_eq!(before.probs, after.probs);
}

#[test]
fn out_of_sample_labels_agree_with_batch_pipeline() {
    // Serve held-out images from a snapshot, then refit the batch pipeline
    // transductively over train + held-out and compare accuracy on exactly
    // those images: the gap must be within 2 points.
    let (ds, dev) = task(20, 15, 7);
    let config = GogglesConfig { seed: 7, ..GogglesConfig::fast() };
    let (labeler, _) = FittedLabeler::fit(&config, &ds, &dev).unwrap();

    let held_out = ds.test_images();
    let truth = ds.test_labels();
    let served = labeler.label_batch(&held_out, 2);
    let served_acc = served.accuracy(&truth);

    let all: Vec<(Image, usize)> = ds
        .train_indices
        .iter()
        .chain(&ds.test_indices)
        .map(|&i| (ds.images[i].clone(), ds.labels[i]))
        .collect();
    let transductive = Dataset::from_parts(ds.name.clone(), ds.kind, ds.num_classes, all, vec![]);
    let batch = Goggles::new(config).label_dataset(&transductive, &dev).unwrap();
    let hard = batch.labels.hard_labels();
    let n_train = ds.train_indices.len();
    let batch_acc = (0..truth.len()).filter(|&i| hard[n_train + i] == truth[i]).count() as f64
        / truth.len() as f64;

    // One-sided: the snapshot fold-in must not *degrade* accuracy by more
    // than 2 points relative to a full refit (beating it is fine — the
    // frozen models were fit on a cleaner, train-only affinity matrix).
    assert!(
        served_acc + 0.02 + 1e-9 >= batch_acc,
        "served {served_acc:.3} trails batch {batch_acc:.3} by more than 2 points"
    );
}

#[test]
fn service_answers_match_direct_inference_and_count_requests() {
    let (ds, dev) = task(8, 6, 33);
    let config = GogglesConfig { seed: 33, ..GogglesConfig::fast() };
    let (labeler, _) = FittedLabeler::fit(&config, &ds, &dev).unwrap();
    let expected = labeler.label_batch(&ds.test_images(), 1);

    let service = Arc::new(LabelService::spawn(
        FittedLabeler::load(&labeler.save()).unwrap(),
        ServeConfig {
            workers: 2,
            max_batch: 4,
            batch_timeout: Duration::from_millis(10),
            ..ServeConfig::default()
        },
    ));
    let handles: Vec<_> = ds
        .test_images()
        .iter()
        .enumerate()
        .map(|(i, img)| {
            let service = Arc::clone(&service);
            let img = (*img).clone();
            std::thread::spawn(move || (i, service.label(&img).unwrap()))
        })
        .collect();
    for h in handles {
        let (i, resp) = h.join().unwrap();
        assert_eq!(resp.probs, expected.probs.row(i), "request {i}");
    }
    let stats = service.stats();
    assert_eq!(stats.requests, ds.test_indices.len() as u64);
    assert!(stats.batches >= 1 && stats.batches <= stats.requests);
}

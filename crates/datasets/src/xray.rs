//! Chest X-ray screening tasks: TB (Shenzhen set analogue) and pneumonia
//! (pediatric chest set analogue) — the two medical rows of Table 1, chosen
//! by the paper because they have **no domain overlap with ImageNet**.
//!
//! Both tasks share the same anatomical substrate (torso, lung fields, ribs,
//! spine, heart shadow) with per-patient jitter; they differ in how disease
//! presents:
//!
//! * **TB** (`generate_tb`): focal manifestations — bright cavities and
//!   nodular opacities concentrated in the upper lung zones.
//! * **Pneumonia** (`generate_pn`): diffuse manifestations — low-frequency
//!   haze (consolidation) spread through a lung field, a subtler signal,
//!   which is why PN-Xray sits below TB-Xray in Table 1.

use crate::types::{Dataset, TaskConfig, TaskKind};
use goggles_tensor::rng::{normal, std_rng};
use goggles_vision::noise::ValueNoise;
use goggles_vision::{draw, filter, noise, Image};
use rand::rngs::StdRng;
use rand::Rng;

/// Anatomy geometry sampled per patient.
struct Anatomy {
    cy: f32,
    cx: f32,
    lung_ry: f32,
    lung_rx: f32,
    lung_gap: f32,
}

/// Render the shared healthy-chest substrate and return the lung geometry.
fn render_chest(rng: &mut StdRng, size: usize) -> (Image, Anatomy) {
    let s = size as f32;
    let mut img = Image::new(1, size, size);

    // Dark film background.
    img.tensor_mut().channel_mut(0).fill(0.06);

    // Patient jitter (kept modest: radiographs are positioned consistently).
    let cy = s * (0.5 + 0.02 * normal(rng) as f32);
    let cx = s * (0.5 + 0.02 * normal(rng) as f32);
    let torso_rx = s * (0.40 + 0.02 * rng.random::<f32>());
    let torso_ry = s * (0.46 + 0.02 * rng.random::<f32>());

    // Soft tissue (bright-ish torso).
    draw::fill_ellipse(&mut img, cy, cx, torso_ry, torso_rx, &[0.55]);

    // Lung fields: two darker ellipses.
    let lung_ry = torso_ry * 0.62;
    let lung_rx = torso_rx * 0.38;
    let lung_gap = torso_rx * 0.42;
    let lung_cy = cy - 0.05 * s;
    for side in [-1.0f32, 1.0] {
        draw::fill_ellipse(&mut img, lung_cy, cx + side * lung_gap, lung_ry, lung_rx, &[0.22]);
    }

    // Ribs: bright arcs across the lung fields (drawn as shallow lines).
    let n_ribs = 5;
    for r in 0..n_ribs {
        let t = r as f32 / (n_ribs - 1) as f32;
        let ry = lung_cy - lung_ry * 0.8 + t * lung_ry * 1.6;
        for side in [-1.0f32, 1.0] {
            let x0 = cx + side * (lung_gap - lung_rx * 0.9);
            let x1 = cx + side * (lung_gap + lung_rx * 0.9);
            draw::draw_line(&mut img, ry - 1.5, x0, ry + 1.5, x1, 1.4, &[0.33]);
        }
    }

    // Spine: bright vertical column; heart: bright blob left of center.
    draw::fill_rect(
        &mut img,
        (cy - torso_ry * 0.9) as i32,
        (cx - s * 0.035) as i32,
        (cy + torso_ry * 0.9) as i32,
        (cx + s * 0.035) as i32,
        &[0.45],
    );
    draw::fill_ellipse(&mut img, cy + 0.12 * s, cx - 0.07 * s, 0.14 * s, 0.11 * s, &[0.48]);

    (img, Anatomy { cy: lung_cy, cx, lung_ry, lung_rx, lung_gap })
}

/// Shared photographic post-processing (film grain, exposure, defocus).
fn finalize(mut img: Image, rng: &mut StdRng) -> Image {
    noise::add_gaussian_noise(&mut img, rng, 0.025);
    let exposure = 0.95 + 0.12 * rng.random::<f32>();
    for v in img.tensor_mut().as_mut_slice() {
        *v *= exposure;
    }
    let mut out = filter::gaussian_blur(&img, 0.4 + 0.25 * rng.random::<f32>());
    out.clamp01();
    out
}

/// Render a TB-screening image; `abnormal` adds focal upper-zone disease.
pub(crate) fn render_tb(rng: &mut StdRng, size: usize, abnormal: bool) -> Image {
    let (mut img, anat) = render_chest(rng, size);
    if abnormal {
        // Disease severity varies per patient: florid cases carry large
        // bright consolidations, early cases are radiologically subtle. The
        // subtle tail is what caps labeling accuracy below 80% on the real
        // Shenzhen set (Table 1: 76.89%).
        let severity = rng.random::<f32>();
        let n = 2 + (4.0 * severity) as usize;
        for _ in 0..n {
            let side = if rng.random::<f32>() < 0.5 { -1.0 } else { 1.0 };
            let oy = anat.cy - anat.lung_ry * (0.15 + 0.6 * rng.random::<f32>());
            let ox =
                anat.cx + side * (anat.lung_gap + anat.lung_rx * 0.6 * (rng.random::<f32>() - 0.5));
            let r = size as f32 * (0.02 + 0.07 * severity * (0.5 + 0.5 * rng.random::<f32>()));
            let bright = 0.3 + 0.65 * severity;
            draw::blend_disc(&mut img, oy, ox, r, &[bright], 0.5 + 0.5 * severity);
        }
        // Advanced disease disseminates: a miliary scatter of micro-nodules
        // through both lung fields turns the focal signal into a texture
        // change, which is how florid TB actually reads on film.
        if severity > 0.2 {
            let spread = ((severity - 0.2) / 0.8).clamp(0.0, 1.0);
            let micro = (55.0 * spread) as usize;
            for _ in 0..micro {
                let side = if rng.random::<f32>() < 0.5 { -1.0f32 } else { 1.0 };
                let u = 2.0 * rng.random::<f32>() - 1.0;
                let v = 2.0 * rng.random::<f32>() - 1.0;
                if u * u + v * v > 1.0 {
                    continue;
                }
                let oy = anat.cy + u * anat.lung_ry * 0.9;
                let ox = anat.cx + side * anat.lung_gap + v * anat.lung_rx * 0.8;
                let r = 1.0 + 2.0 * rng.random::<f32>();
                draw::blend_disc(&mut img, oy, ox, r, &[0.6 + 0.3 * spread], 0.8);
            }
        }
        // Florid cases usually show a cavity (ring lesion) as well.
        if rng.random::<f32>() < 0.2 + 0.7 * severity {
            let side = if rng.random::<f32>() < 0.5 { -1.0 } else { 1.0 };
            let oy = anat.cy - anat.lung_ry * 0.5;
            let ox = anat.cx + side * anat.lung_gap;
            let r = size as f32 * (0.03 + 0.05 * severity);
            draw::fill_ring(&mut img, oy, ox, r * 0.55, r, &[0.3 + 0.6 * severity]);
        }
    }
    finalize(img, rng)
}

/// Render a pneumonia-screening image; `pneumonia` adds diffuse haze in one
/// or both lung fields.
pub(crate) fn render_pn(rng: &mut StdRng, size: usize, pneumonia: bool) -> Image {
    let (mut img, anat) = render_chest(rng, size);
    if pneumonia {
        let vn = ValueNoise::new(rng, 16);
        let s = size as f32;
        // Per-patient severity: early pneumonia is a faint unilateral haze,
        // advanced disease is dense and bilateral (the subtle tail keeps
        // PN-Xray below TB-Xray in Table 1: 74.39 vs 76.89).
        let severity = rng.random::<f32>();
        // Multifocal presentation: a dominant lung plus fainter
        // contralateral involvement. (A strictly unilateral generator makes
        // "left-sided vs right-sided" the dominant clustering axis, which
        // swamps the sick-vs-healthy signal — and is also clinically less
        // typical for the pediatric set the paper uses.)
        let dominant: f32 = if rng.random::<f32>() < 0.5 { -1.0 } else { 1.0 };
        let amp = 0.22 + 0.5 * severity;
        for (side, amp) in [(dominant, amp), (-dominant, 0.45 * amp)] {
            let lx = anat.cx + side * anat.lung_gap;
            let y0 = (anat.cy - anat.lung_ry).max(0.0) as usize;
            let y1 = ((anat.cy + anat.lung_ry) as usize).min(size - 1);
            let x0 = (lx - anat.lung_rx).max(0.0) as usize;
            let x1 = ((lx + anat.lung_rx) as usize).min(size - 1);
            for y in y0..=y1 {
                for x in x0..=x1 {
                    let ny = (y as f32 - anat.cy) / anat.lung_ry;
                    let nx = (x as f32 - lx) / anat.lung_rx;
                    let d2 = ny * ny + nx * nx;
                    if d2 > 1.0 {
                        continue;
                    }
                    // Low-frequency haze, strongest mid-lung, fading at rim.
                    let h = vn.fbm(y as f32 / s, x as f32 / s, 9.0, 3).max(0.0);
                    let gain = amp * (1.0 - d2) * (0.35 + 1.3 * h);
                    let cur = img.get(0, y, x);
                    img.set(0, y, x, cur + gain);
                }
            }
        }
    }
    finalize(img, rng)
}

/// Generate the TB-Xray dataset (class 0 = normal, class 1 = abnormal).
pub(crate) fn generate_tb(config: &TaskConfig) -> Dataset {
    let mut rng = std_rng(config.seed ^ 0x7B_0001);
    let mut train = Vec::new();
    let mut test = Vec::new();
    for cls in 0..2usize {
        for _ in 0..config.n_train_per_class {
            train.push((render_tb(&mut rng, config.image_size, cls == 1), cls));
        }
        for _ in 0..config.n_test_per_class {
            test.push((render_tb(&mut rng, config.image_size, cls == 1), cls));
        }
    }
    Dataset::from_parts("TB-Xray".into(), TaskKind::TbXray, 2, train, test)
}

/// Generate the PN-Xray dataset (class 0 = normal, class 1 = pneumonia).
pub(crate) fn generate_pn(config: &TaskConfig) -> Dataset {
    let mut rng = std_rng(config.seed ^ 0x9E00_0002);
    let mut train = Vec::new();
    let mut test = Vec::new();
    for cls in 0..2usize {
        for _ in 0..config.n_train_per_class {
            train.push((render_pn(&mut rng, config.image_size, cls == 1), cls));
        }
        for _ in 0..config.n_test_per_class {
            test.push((render_pn(&mut rng, config.image_size, cls == 1), cls));
        }
    }
    Dataset::from_parts("PN-Xray".into(), TaskKind::PnXray, 2, train, test)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chest_substrate_has_lung_contrast() {
        let mut rng = std_rng(1);
        let (img, anat) = render_chest(&mut rng, 64);
        // Lung interior darker than torso tissue beside it.
        let lung = img.get(0, anat.cy as usize, (anat.cx + anat.lung_gap) as usize);
        let spine = img.get(0, anat.cy as usize, anat.cx as usize);
        assert!(lung < spine, "lung {lung} vs spine {spine}");
    }

    #[test]
    fn tb_abnormal_brightens_upper_lungs() {
        let mut rng_a = std_rng(2);
        let mut rng_b = std_rng(2);
        let normal_img = render_tb(&mut rng_a, 64, false);
        let abnormal_img = render_tb(&mut rng_b, 64, true);
        // Same anatomy (same rng stream start), so intensity gain in the
        // upper half is attributable to lesions.
        let upper_mean = |img: &Image| {
            let mut acc = 0.0;
            for y in 8..32 {
                for x in 8..56 {
                    acc += img.get(0, y, x);
                }
            }
            acc / (24.0 * 48.0)
        };
        assert!(upper_mean(&abnormal_img) > upper_mean(&normal_img));
    }

    #[test]
    fn pneumonia_haze_raises_lung_intensity() {
        let mut rng_a = std_rng(3);
        let mut rng_b = std_rng(3);
        let healthy = render_pn(&mut rng_a, 64, false);
        let sick = render_pn(&mut rng_b, 64, true);
        let mid_mean = |img: &Image| {
            let mut acc = 0.0;
            for y in 16..48 {
                for x in 4..60 {
                    acc += img.get(0, y, x);
                }
            }
            acc / (32.0 * 56.0)
        };
        assert!(mid_mean(&sick) > mid_mean(&healthy));
    }

    #[test]
    fn xray_images_are_single_channel_valid() {
        let mut rng = std_rng(4);
        for img in [render_tb(&mut rng, 64, true), render_pn(&mut rng, 64, true)] {
            assert_eq!(img.channels(), 1);
            assert!(img.tensor().as_slice().iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn generators_layout_and_determinism() {
        let cfg = TaskConfig::new(TaskKind::TbXray, 4, 2, 5);
        let a = generate_tb(&cfg);
        let b = generate_tb(&cfg);
        assert_eq!(a.train_indices.len(), 8);
        assert_eq!(a.images[1], b.images[1]);
        let cfg_pn = TaskConfig::new(TaskKind::PnXray, 4, 2, 5);
        let p = generate_pn(&cfg_pn);
        assert_eq!(p.test_indices.len(), 4);
        assert_eq!(p.name, "PN-Xray");
    }
}

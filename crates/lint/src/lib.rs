//! goggles-lint — a workspace invariant checker.
//!
//! The GOGGLES workspace carries invariants that `rustc` and clippy cannot
//! see because they are *policy*, not language rules: the serving hot path
//! is panic-free (PR 3's salvage machinery assumes it), fits are
//! bit-deterministic given a seed, the metrics fast path uses relaxed
//! atomics only (PR 6), the workspace is `unsafe`-free, the wire protocol's
//! opcode set stays closed across encoder/decoder/dispatch (PR 5), and no
//! manifest may reach for a registry (the offline constraint). Each of
//! those held by convention and review; this crate makes them hold by
//! machine.
//!
//! Design constraints mirror the workspace's: std-only, no `syn`, no
//! registry deps. The analysis is a hand-rolled lexer ([`lexer`]) feeding
//! token-shape rules ([`rules`]) through a path-scoped engine ([`engine`])
//! — deliberately *not* an AST, because every invariant above is expressible
//! over token shapes, and a lexer is auditable in one sitting.
//!
//! Findings print as `file:line: rule: message`. Intentional exceptions are
//! annotated in source:
//!
//! ```text
//! // goggles-lint: allow(panic): mutex poisoning is recovered two lines up
//! // goggles-lint: allow-file(index): register-tiled kernels index by design
//! ```
//!
//! The reason is mandatory, the rule name must be real, and malformed
//! annotations are themselves violations — a typo must not silently disable
//! a rule.

pub mod engine;
pub mod lexer;
pub mod model;
pub mod rules;

pub use engine::{Diagnostic, SourceFile, Workspace};

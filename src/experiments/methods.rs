//! The labeling methods compared in Table 1, each returning hard labels for
//! the training block (plus probabilistic labels where the method defines
//! them, for the Table 2 end-model protocol).

use super::TrialContext;
use goggles_core::AffinityMatrix;
use goggles_datasets::{cub, TaskKind};
use goggles_labelmodels::{cub_lfs, primitives, SnorkelModel, Snuba, SnubaConfig};
use goggles_models::{DiagonalGmm, EmOptions, KMeans, SpectralCoclustering};
use goggles_tensor::Matrix;
use goggles_vision::{hog_descriptor, HogParams};

/// A method's output on one trial.
#[derive(Debug, Clone)]
pub struct MethodOutput {
    /// Hard labels per training row (class-aligned where the method maps
    /// clusters itself; cluster ids for the clustering baselines).
    pub hard_labels: Vec<usize>,
    /// Probabilistic labels when the method produces them.
    pub probs: Option<Matrix<f64>>,
    /// Whether `hard_labels` are raw cluster ids that still need the
    /// optimal mapping (the §5.1.6 protocol for clustering baselines).
    pub needs_optimal_mapping: bool,
}

impl MethodOutput {
    fn mapped(hard_labels: Vec<usize>, probs: Matrix<f64>) -> Self {
        Self { hard_labels, probs: Some(probs), needs_optimal_mapping: false }
    }

    fn clusters(hard_labels: Vec<usize>) -> Self {
        Self { hard_labels, probs: None, needs_optimal_mapping: true }
    }

    /// Table 1 accuracy under the appropriate protocol.
    pub fn labeling_accuracy(&self, ctx: &TrialContext) -> f64 {
        if self.needs_optimal_mapping {
            ctx.optimal_mapping_accuracy(&self.hard_labels, ctx.dataset.num_classes)
        } else {
            ctx.labeling_accuracy(&self.hard_labels)
        }
    }
}

/// GOGGLES itself: hierarchical inference on the prototype affinity matrix,
/// dev-set mapping.
pub fn run_goggles(ctx: &TrialContext) -> MethodOutput {
    let (labels, _, _) = ctx
        .goggles
        .infer_from_affinity(&ctx.affinity, &ctx.dev_rows)
        .expect("GOGGLES inference failed");
    MethodOutput::mapped(labels.hard_labels(), labels.probs)
}

/// Snorkel on CUB attribute-annotation LFs (§5.1.2). Returns `None` on
/// datasets without attribute metadata — the `-` cells of Table 1.
pub fn run_snorkel(ctx: &TrialContext) -> Option<MethodOutput> {
    if !matches!(ctx.dataset.kind, TaskKind::Cub { .. }) {
        return None;
    }
    let attrs = cub::attributes_for(&ctx.dataset, ctx.dataset.train_indices.len() as u64);
    let lm = cub_lfs::attribute_label_matrix(&attrs).expect("attribute LF matrix");
    let model = SnorkelModel::fit(&lm, 100, 1e-6).expect("Snorkel EM");
    Some(MethodOutput::mapped(model.hard_labels(), model.probs))
}

/// Snuba on automatically extracted primitives: PCA-10 of the backbone
/// logits (§5.1.2), synthesized stump LFs, generative aggregation.
pub fn run_snuba(ctx: &TrialContext) -> MethodOutput {
    let prim = primitives::extract_primitives(&ctx.train_logits, 10).expect("primitive extraction");
    let snuba = Snuba::fit(
        &prim.values,
        &ctx.dev_rows.indices,
        &ctx.dev_rows.labels,
        &SnubaConfig::default(),
    )
    .expect("Snuba synthesis");
    MethodOutput::mapped(snuba.hard_labels(), snuba.probs.clone())
}

/// HOG representation baseline (§5.1.5): pairwise-cosine affinity over HOG
/// descriptors, then the GOGGLES inference module.
pub fn run_hog(ctx: &TrialContext) -> MethodOutput {
    let params = HogParams::default();
    let feats: Vec<Vec<f32>> =
        ctx.dataset.train_images().iter().map(|img| hog_descriptor(img, &params)).collect();
    let d = feats[0].len().max(1);
    let features =
        Matrix::from_fn(feats.len(), d, |i, j| feats[i].get(j).copied().unwrap_or(0.0) as f64);
    let affinity = AffinityMatrix::from_feature_vectors(&features);
    let (labels, _, _) =
        ctx.goggles.infer_from_affinity(&affinity, &ctx.dev_rows).expect("HOG inference failed");
    MethodOutput::mapped(labels.hard_labels(), labels.probs)
}

/// Logits representation baseline (§5.1.5): pairwise-cosine affinity over
/// the backbone logits, then the GOGGLES inference module.
pub fn run_logits(ctx: &TrialContext) -> MethodOutput {
    let affinity = AffinityMatrix::from_feature_vectors(&ctx.train_logits);
    let (labels, _, _) =
        ctx.goggles.infer_from_affinity(&affinity, &ctx.dev_rows).expect("logits inference failed");
    MethodOutput::mapped(labels.hard_labels(), labels.probs)
}

/// K-Means baseline on the rows of the full affinity matrix (§5.1.6: "we
/// simply concatenate all affinity functions to create the feature set").
pub fn run_kmeans(ctx: &TrialContext) -> MethodOutput {
    let km =
        KMeans::fit(&ctx.affinity.data, ctx.dataset.num_classes, 3, 0x4B).expect("k-means failed");
    MethodOutput::clusters(km.labels)
}

/// Flat GMM baseline on the full affinity matrix.
///
/// Deviation note (recorded in EXPERIMENTS.md): with `d = αN ≫ N` a
/// full-covariance GMM is not even factorizable; we fit the diagonal
/// variant, which is the strongest flat GMM that exists in this regime —
/// the hierarchical-vs-flat comparison is unaffected.
pub fn run_flat_gmm(ctx: &TrialContext) -> MethodOutput {
    let opts = EmOptions { restarts: 2, ..EmOptions::default() };
    let gmm = DiagonalGmm::fit(&ctx.affinity.data, ctx.dataset.num_classes, &opts, 0x6A)
        .expect("flat GMM failed");
    MethodOutput::clusters(gmm.train_labels())
}

/// Spectral co-clustering baseline on the (shifted non-negative) affinity
/// matrix.
pub fn run_spectral(ctx: &TrialContext) -> MethodOutput {
    // Cosine scores live in [-1, 1]; shift into [0, 1] for the bipartite
    // graph interpretation.
    let shifted = ctx.affinity.data.map(|v| (v + 1.0) / 2.0);
    let sc = SpectralCoclustering::fit(&shifted, ctx.dataset.num_classes, 0x5C)
        .expect("spectral failed");
    MethodOutput::clusters(sc.row_labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::RunParams;

    fn quick_params() -> RunParams {
        RunParams {
            n_train_per_class: 8,
            n_test_per_class: 2,
            image_size: 32,
            pairs: 1,
            trials: 1,
            dev_per_class: 2,
            top_z: 2,
            tiny_backbone: true,
        }
    }

    #[test]
    fn all_methods_produce_full_label_vectors() {
        let params = quick_params();
        let task = params.tasks_for_trial(0)[0]; // CUB so Snorkel also runs
        let ctx = TrialContext::build(&params, &task, 0);
        let n = ctx.dataset.train_indices.len();
        let outputs = [
            run_goggles(&ctx),
            run_snorkel(&ctx).expect("CUB has attributes"),
            run_snuba(&ctx),
            run_hog(&ctx),
            run_logits(&ctx),
            run_kmeans(&ctx),
            run_flat_gmm(&ctx),
            run_spectral(&ctx),
        ];
        for (m, out) in outputs.iter().enumerate() {
            assert_eq!(out.hard_labels.len(), n, "method {m}");
            assert!(out.hard_labels.iter().all(|&l| l < 2), "method {m}");
            let acc = out.labeling_accuracy(&ctx);
            assert!((0.0..=1.0).contains(&acc), "method {m}: {acc}");
        }
    }

    #[test]
    fn snorkel_abstains_on_non_cub() {
        let params = quick_params();
        let task = params.tasks_for_trial(0)[2]; // Surface
        let ctx = TrialContext::build(&params, &task, 0);
        assert!(run_snorkel(&ctx).is_none());
    }

    #[test]
    fn probabilistic_methods_expose_probs() {
        let params = quick_params();
        let task = params.tasks_for_trial(0)[2];
        let ctx = TrialContext::build(&params, &task, 0);
        assert!(run_goggles(&ctx).probs.is_some());
        assert!(run_snuba(&ctx).probs.is_some());
        assert!(run_kmeans(&ctx).probs.is_none());
    }
}

//! The length-framed, checksummed binary wire protocol of the network
//! front.
//!
//! Every message travels as one **frame**:
//!
//! ```text
//! ┌────────────┬──────────┬────────┬───────────┬─────────┬──────────────┐
//! │ magic GWP1 │ len u32  │ op u8  │ req id u64│ payload │ fnv1a u64    │
//! │  4 bytes   │ LE       │        │ LE        │ op-dep. │ over op..pay │
//! └────────────┴──────────┴────────┴───────────┴─────────┴──────────────┘
//! ```
//!
//! `len` counts everything after itself (opcode + id + payload + checksum),
//! is bounded by [`MAX_FRAME_LEN`] before any allocation, and the trailing
//! FNV-1a checksum (same as the snapshot container) covers opcode, request
//! id and payload — truncation, bit rot and garbage are all rejected at the
//! framing layer. Payload encodings reuse the [`crate::codec`] conventions:
//! little-endian, length-prefixed, bounded lengths.
//!
//! Request ids are chosen by the client and echoed verbatim in the
//! matching reply (or [`Opcode::ErrorReply`]), which is what makes
//! pipelining possible: a client may have any number of requests in flight
//! on one connection and match replies by id.
//!
//! The operation set mirrors the serving control plane: label (image +
//! optional deadline budget), stats, hot-reload, shutdown, and a metrics
//! dump (the full observability registry as Prometheus text).

use crate::codec::{fnv1a, Reader, Writer};
use crate::fault;
use crate::service::{LabelResponse, LatencyHistogram, ServiceStats};
use crate::{ServeError, ServeResult};
use goggles_tensor::Tensor3;
use goggles_vision::Image;
use std::io::{ErrorKind, Read, Write as IoWrite};

/// Magic bytes opening every frame ("GoggleS Wire Protocol v1").
pub(crate) const WIRE_MAGIC: [u8; 4] = *b"GWP1";
/// Hard cap on `len` (bytes after the length field). A 64 MiB frame fits a
/// 3 × 2048 × 2048 float image plus headers; anything larger is garbage and
/// must not trigger a huge allocation.
pub const MAX_FRAME_LEN: usize = 1 << 26;
/// Fixed non-payload bytes inside `len`: opcode (1) + request id (8) +
/// checksum (8).
const FRAME_OVERHEAD: usize = 1 + 8 + 8;
/// Largest payload a frame can carry ([`MAX_FRAME_LEN`] minus the frame
/// overhead). Senders must check against this **before** encoding — an
/// oversized frame would be rejected by the peer's framing layer, killing
/// the whole pipelined connection instead of just the one request.
pub(crate) const MAX_PAYLOAD_LEN: usize = MAX_FRAME_LEN - FRAME_OVERHEAD;
/// Largest image edge the protocol accepts.
pub(crate) const MAX_IMAGE_DIM: usize = 1 << 14;
/// Largest channel count the protocol accepts.
pub(crate) const MAX_IMAGE_CHANNELS: usize = 64;

/// Frame opcodes. Requests flow client → server, replies server → client;
/// [`Opcode::ErrorReply`] answers any request that failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Image + deadline budget → [`Opcode::LabelReply`].
    LabelRequest = 1,
    /// Label, probability row, serving version, batch size.
    LabelReply = 2,
    /// Error code + message, echoing the failed request's id.
    ErrorReply = 3,
    /// Ask for the service counters → [`Opcode::StatsReply`].
    StatsRequest = 4,
    /// Full [`ServiceStats`] (histogram included) + current version.
    StatsReply = 5,
    /// Server-side snapshot path to hot-reload → [`Opcode::ReloadReply`].
    ReloadRequest = 6,
    /// Version number the reload published.
    ReloadReply = 7,
    /// Ask the server to shut down cleanly → [`Opcode::ShutdownReply`].
    ShutdownRequest = 8,
    /// Acknowledged; the server stops accepting and drains.
    ShutdownReply = 9,
    /// Ask for the full observability registry → [`Opcode::MetricsReply`].
    MetricsRequest = 10,
    /// Prometheus text exposition dump of the server's metrics registry.
    MetricsReply = 11,
    /// Hand the server a new **training** image for the continuous-learning
    /// intake queue → [`Opcode::IngestReply`]. Unlike a label request the
    /// image is not answered, it is enqueued for the background trainer.
    Ingest = 12,
    /// Total images accepted into the intake queue so far (u64).
    IngestReply = 13,
}

impl Opcode {
    /// Parse a wire byte; unknown opcodes are a protocol error (garbage
    /// must never be dispatched).
    pub(crate) fn from_u8(b: u8) -> ServeResult<Self> {
        Ok(match b {
            1 => Opcode::LabelRequest,
            2 => Opcode::LabelReply,
            3 => Opcode::ErrorReply,
            4 => Opcode::StatsRequest,
            5 => Opcode::StatsReply,
            6 => Opcode::ReloadRequest,
            7 => Opcode::ReloadReply,
            8 => Opcode::ShutdownRequest,
            9 => Opcode::ShutdownReply,
            10 => Opcode::MetricsRequest,
            11 => Opcode::MetricsReply,
            12 => Opcode::Ingest,
            13 => Opcode::IngestReply,
            b => return Err(ServeError::Wire(format!("unknown opcode {b:#04x}"))),
        })
    }
}

/// One decoded frame: opcode, the client-chosen request id, and the
/// opcode-specific payload bytes (still encoded).
#[derive(Debug, Clone, PartialEq, Eq)]
// goggles-lint: allow(dead-pub): parameter/return type of the pub read_frame/decode_frame codec API; reached through inference
pub struct Frame {
    /// What this frame asks for / answers.
    pub opcode: Opcode,
    /// Client-chosen id echoed in the reply; pipelining key.
    pub request_id: u64,
    /// Opcode-specific payload (see the `encode_*`/`decode_*` pairs).
    pub payload: Vec<u8>,
}

/// Encode one frame to bytes (magic + length + checksummed body).
pub fn encode_frame(opcode: Opcode, request_id: u64, payload: &[u8]) -> Vec<u8> {
    let len = FRAME_OVERHEAD + payload.len();
    let mut out = Vec::with_capacity(8 + len);
    out.extend_from_slice(&WIRE_MAGIC);
    out.extend_from_slice(&(len as u32).to_le_bytes());
    let body_start = out.len();
    out.push(opcode as u8);
    out.extend_from_slice(&request_id.to_le_bytes());
    out.extend_from_slice(payload);
    let checksum = fnv1a(out.get(body_start..).unwrap_or_default());
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Decode one frame from the front of `bytes`; returns the frame and the
/// number of bytes consumed. Truncation, bad magic, implausible lengths,
/// checksum mismatches and unknown opcodes all come back as
/// [`ServeError::Wire`] — never a panic, never an unbounded allocation.
pub fn decode_frame(bytes: &[u8]) -> ServeResult<(Frame, usize)> {
    let Some((&[m0, m1, m2, m3, l0, l1, l2, l3], after_header)) = bytes.split_first_chunk::<8>()
    else {
        return Err(ServeError::Wire(format!("frame header truncated ({} bytes)", bytes.len())));
    };
    if [m0, m1, m2, m3] != WIRE_MAGIC {
        return Err(ServeError::Wire("bad frame magic".into()));
    }
    let len = u32::from_le_bytes([l0, l1, l2, l3]) as usize;
    if !(FRAME_OVERHEAD..=MAX_FRAME_LEN).contains(&len) {
        return Err(ServeError::Wire(format!(
            "implausible frame length {len} (bounds {FRAME_OVERHEAD}..={MAX_FRAME_LEN})"
        )));
    }
    let Some(body) = after_header.get(..len) else {
        return Err(ServeError::Wire(format!(
            "frame truncated: header promises {len} bytes, {} available",
            after_header.len()
        )));
    };
    // `len >= FRAME_OVERHEAD` makes the three splits below infallible, but
    // each still degrades to a Wire error rather than trusting arithmetic.
    let Some((checked, trailer)) = body.split_last_chunk::<8>() else {
        return Err(ServeError::Wire("frame body too short for checksum".into()));
    };
    let stored = u64::from_le_bytes(*trailer);
    let actual = fnv1a(checked);
    if stored != actual {
        return Err(ServeError::Wire(format!(
            "frame checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
        )));
    }
    let Some((&op, after_op)) = checked.split_first() else {
        return Err(ServeError::Wire("frame body too short for opcode".into()));
    };
    let opcode = Opcode::from_u8(op)?;
    let Some((rid, payload)) = after_op.split_first_chunk::<8>() else {
        return Err(ServeError::Wire("frame body too short for request id".into()));
    };
    let request_id = u64::from_le_bytes(*rid);
    Ok((Frame { opcode, request_id, payload: payload.to_vec() }, 8 + len))
}

/// A transient I/O error: the operation was interrupted or would block —
/// retry it instead of treating the connection as dead. (`TimedOut` is what
/// a socket read timeout surfaces on some platforms where Unix reports
/// `WouldBlock`.)
fn is_transient(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::Interrupted | ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Back off before retrying a transient read: `Interrupted` retries
/// immediately (the syscall was merely preempted), `WouldBlock`/`TimedOut`
/// pause briefly so a not-ready socket is not spun on.
fn transient_pause(e: &std::io::Error) {
    if e.kind() != ErrorKind::Interrupted {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}

/// Write one frame to a stream.
pub(crate) fn write_frame(
    w: &mut impl IoWrite,
    opcode: Opcode,
    request_id: u64,
    payload: &[u8],
) -> ServeResult<()> {
    if fault::enabled() {
        if let Some(e) = fault::inject_io("wire.write") {
            if !is_transient(&e) {
                return Err(ServeError::Io(format!("writing frame: {e}")));
            }
            // A transient write fault only delays; write_all below retries
            // `Interrupted` internally anyway.
            transient_pause(&e);
        }
    }
    let bytes = encode_frame(opcode, request_id, payload);
    w.write_all(&bytes).map_err(|e| ServeError::Io(format!("writing frame: {e}")))?;
    w.flush().map_err(|e| ServeError::Io(format!("flushing frame: {e}")))
}

/// Read one frame from a stream. `Ok(None)` is a clean end-of-stream (the
/// peer closed between frames); closing *inside* a frame, and every other
/// protocol violation, is an error.
pub fn read_frame(r: &mut impl Read) -> ServeResult<Option<Frame>> {
    // First byte read separately so a clean close (0 bytes) is not an error.
    let mut first = [0u8; 1];
    loop {
        if let Some(e) = fault::inject_io("wire.read") {
            if is_transient(&e) {
                transient_pause(&e);
                continue;
            }
            // goggles-lint: allow(alloc-hot): injected-fault return path; the retry loop exits here
            return Err(ServeError::Io(format!("reading frame: {e}")));
        }
        match r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            // Transient errors (`Interrupted`, `WouldBlock`, `TimedOut`)
            // retry instead of killing a healthy pipelined connection.
            Err(e) if is_transient(&e) => transient_pause(&e),
            // goggles-lint: allow(alloc-hot): I/O error return path; the retry loop exits here
            Err(e) => return Err(ServeError::Io(format!("reading frame: {e}"))),
        }
    }
    let [first_byte] = first;
    let mut header = [first_byte, 0, 0, 0, 0, 0, 0, 0];
    if let Some((_, rest)) = header.split_first_mut() {
        read_exact(r, rest)?;
    }
    let [m0, m1, m2, m3, l0, l1, l2, l3] = header;
    if [m0, m1, m2, m3] != WIRE_MAGIC {
        return Err(ServeError::Wire("bad frame magic".into()));
    }
    let len = u32::from_le_bytes([l0, l1, l2, l3]) as usize;
    if !(FRAME_OVERHEAD..=MAX_FRAME_LEN).contains(&len) {
        return Err(ServeError::Wire(format!(
            "implausible frame length {len} (bounds {FRAME_OVERHEAD}..={MAX_FRAME_LEN})"
        )));
    }
    let mut body = vec![0u8; len];
    read_exact(r, &mut body)?;
    let mut framed = Vec::with_capacity(8 + len);
    framed.extend_from_slice(&header);
    framed.extend_from_slice(&body);
    decode_frame(&framed).map(|(frame, _)| Some(frame))
}

/// Fill `buf` completely, retrying transient errors (`Interrupted`,
/// `WouldBlock`, `TimedOut`) instead of treating them as fatal — the std
/// `read_exact` only retries `Interrupted`, so a stray `WouldBlock` (e.g. a
/// socket read timeout mid-frame) used to kill the whole pipelined
/// connection. EOF mid-frame is still a protocol error.
fn read_exact(r: &mut impl Read, buf: &mut [u8]) -> ServeResult<()> {
    let mut filled = 0usize;
    while filled < buf.len() {
        if let Some(e) = fault::inject_io("wire.read") {
            if is_transient(&e) {
                transient_pause(&e);
                continue;
            }
            // goggles-lint: allow(alloc-hot): injected-fault return path; the retry loop exits here
            return Err(ServeError::Io(format!("reading frame: {e}")));
        }
        let Some(dst) = buf.get_mut(filled..) else {
            break;
        };
        match r.read(dst) {
            Ok(0) => return Err(ServeError::Wire("connection closed mid-frame".into())),
            Ok(n) => filled += n,
            Err(e) if is_transient(&e) => transient_pause(&e),
            // goggles-lint: allow(alloc-hot): I/O error return path; the retry loop exits here
            Err(e) => return Err(ServeError::Io(format!("reading frame: {e}"))),
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// payload encodings
// ---------------------------------------------------------------------

/// Decoded [`Opcode::LabelRequest`] payload.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelRequest {
    /// The image to label (decoded straight into its final buffer; the
    /// server wraps it in an `Arc` without copying).
    pub image: Image,
    /// Deadline *budget* in microseconds relative to receipt; 0 = none.
    /// Relative, not absolute: the two hosts do not share a clock.
    pub deadline_us: u64,
}

/// Encode an image + deadline budget for [`Opcode::LabelRequest`].
pub fn encode_label_request(image: &Image, deadline_us: u64) -> Vec<u8> {
    let (c, h, w) = image.shape();
    let mut wr = Writer::new();
    wr.put_u64(deadline_us);
    wr.put_u32(c as u32);
    wr.put_u32(h as u32);
    wr.put_u32(w as u32);
    wr.put_f32_slice_raw(image.tensor().as_slice());
    wr.into_bytes()
}

/// Decode an [`Opcode::LabelRequest`] payload. Dimensions are bounded
/// (`MAX_IMAGE_CHANNELS`, `MAX_IMAGE_DIM`) and the pixel count must
/// exactly match the remaining payload, so a corrupt frame can neither
/// over-allocate nor smuggle in trailing garbage.
pub fn decode_label_request(payload: &[u8]) -> ServeResult<LabelRequest> {
    let mut r = Reader::new(payload);
    let deadline_us = r.get_u64().map_err(wire_err)?;
    let c = r.get_len_u32(MAX_IMAGE_CHANNELS).map_err(wire_err)?;
    let h = r.get_len_u32(MAX_IMAGE_DIM).map_err(wire_err)?;
    let w = r.get_len_u32(MAX_IMAGE_DIM).map_err(wire_err)?;
    if c == 0 || h == 0 || w == 0 {
        return Err(ServeError::Wire(format!("image with zero dimension ({c}×{h}×{w})")));
    }
    let pixels = c
        .checked_mul(h)
        .and_then(|p| p.checked_mul(w))
        .ok_or_else(|| ServeError::Wire(format!("image shape {c}×{h}×{w} overflows")))?;
    if r.remaining() != pixels * 4 {
        return Err(ServeError::Wire(format!(
            "image payload is {} bytes, shape {c}×{h}×{w} needs {}",
            r.remaining(),
            pixels * 4
        )));
    }
    let data = r.get_f32_vec(pixels).map_err(wire_err)?;
    let tensor = Tensor3::from_vec(c, h, w, data)
        .map_err(|e| ServeError::Wire(format!("image decode: {e}")))?;
    Ok(LabelRequest { image: Image::from_tensor(tensor), deadline_us })
}

/// Encode a [`LabelResponse`] for [`Opcode::LabelReply`]. Probabilities are
/// bit-exact `f64`s, so a remote answer is bit-identical to the in-process
/// one.
pub fn encode_label_reply(resp: &LabelResponse) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u32(resp.label as u32);
    w.put_u64(resp.version);
    w.put_u32(resp.batch_size as u32);
    w.put_f64_slice(&resp.probs);
    w.into_bytes()
}

/// Decode an [`Opcode::LabelReply`] payload.
pub fn decode_label_reply(payload: &[u8]) -> ServeResult<LabelResponse> {
    let mut r = Reader::new(payload);
    let label = r.get_u32().map_err(wire_err)? as usize;
    let version = r.get_u64().map_err(wire_err)?;
    let batch_size = r.get_u32().map_err(wire_err)? as usize;
    let probs = r.get_f64_slice().map_err(wire_err)?;
    if probs.is_empty() || label >= probs.len() {
        return Err(ServeError::Wire(format!(
            "label {label} out of range for {} probabilities",
            probs.len()
        )));
    }
    if r.remaining() != 0 {
        return Err(ServeError::Wire("trailing bytes after label reply".into()));
    }
    Ok(LabelResponse { label, probs, batch_size, version })
}

/// Error codes carried by [`Opcode::ErrorReply`] — the wire image of
/// [`ServeError`].
fn error_code(e: &ServeError) -> u8 {
    match e {
        ServeError::Snapshot(_) => 1,
        ServeError::Corrupt(_) => 2,
        ServeError::Io(_) => 3,
        ServeError::Pipeline(_) => 4,
        ServeError::Registry(_) => 5,
        ServeError::Closed => 6,
        ServeError::Deadline => 7,
        ServeError::Wire(_) => 8,
        ServeError::Overloaded => 9,
    }
}

/// Encode a [`ServeError`] for [`Opcode::ErrorReply`]: error code, a
/// retryable flag byte (the wire image of [`ServeError::retryable`], so a
/// client decides retry-vs-fail without string matching), and the display
/// message.
pub fn encode_error_reply(e: &ServeError) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u8(error_code(e));
    w.put_u8(u8::from(e.retryable()));
    put_string(&mut w, &e.to_string());
    w.into_bytes()
}

/// Decode an [`Opcode::ErrorReply`] payload back into the native error.
/// Variants that carry structured inner errors ([`ServeError::Pipeline`])
/// come back with their display string. The retryable flag must agree with
/// the decoded variant's own [`ServeError::retryable`] — a disagreement
/// means the peer speaks a different protocol revision (or the frame is
/// corrupt despite its checksum) and is rejected rather than silently
/// mis-classifying the error.
pub fn decode_error_reply(payload: &[u8]) -> ServeResult<ServeError> {
    let mut r = Reader::new(payload);
    let code = r.get_u8().map_err(wire_err)?;
    let flag = r.get_u8().map_err(wire_err)?;
    if flag > 1 {
        return Err(ServeError::Wire(format!("bad retryable flag {flag:#04x}")));
    }
    let msg = get_string(&mut r)?;
    let decoded = match code {
        1 => ServeError::Snapshot(msg),
        2 => ServeError::Corrupt(msg),
        3 => ServeError::Io(msg),
        4 => ServeError::Pipeline(goggles_core::GogglesError::InvalidInput(msg)),
        5 => ServeError::Registry(msg),
        6 => ServeError::Closed,
        7 => ServeError::Deadline,
        8 => ServeError::Wire(msg),
        9 => ServeError::Overloaded,
        c => return Err(ServeError::Wire(format!("unknown error code {c}"))),
    };
    if (flag == 1) != decoded.retryable() {
        return Err(ServeError::Wire(format!(
            "retryable flag {flag} disagrees with error code {code}"
        )));
    }
    Ok(decoded)
}

/// What [`Opcode::StatsReply`] carries: the server's full counter snapshot
/// (histogram included, so the client can derive any percentile) plus the
/// registry version currently serving.
#[derive(Debug, Clone, Copy, PartialEq)]
// goggles-lint: allow(dead-pub): return type of pub RemoteLabeler::stats; external callers reach it through inference
pub struct RemoteStats {
    /// Counter snapshot of the remote service.
    pub stats: ServiceStats,
    /// Version new batches currently resolve on the server.
    pub version: u64,
}

/// Encode a [`RemoteStats`] for [`Opcode::StatsReply`].
pub(crate) fn encode_stats_reply(remote: &RemoteStats) -> Vec<u8> {
    let s = &remote.stats;
    let mut w = Writer::new();
    w.put_u64(remote.version);
    w.put_u64(s.requests);
    w.put_u64(s.batches);
    w.put_u64(s.images);
    w.put_u64(s.total_latency_us);
    w.put_u64(s.max_latency_us);
    w.put_u64(s.failed_batches);
    w.put_u64(s.failed_requests);
    w.put_u64(s.deadline_expired);
    w.put_u64(s.cancelled);
    w.put_u64(s.shed);
    w.put_u64(s.worker_restarts);
    w.put_u64(s.queue_depth);
    for &count in &s.latency.counts {
        w.put_u64(count);
    }
    for &count in &s.batch_size.counts {
        w.put_u64(count);
    }
    w.into_bytes()
}

/// Decode an [`Opcode::StatsReply`] payload.
pub fn decode_stats_reply(payload: &[u8]) -> ServeResult<RemoteStats> {
    let mut r = Reader::new(payload);
    let version = r.get_u64().map_err(wire_err)?;
    let mut stats = ServiceStats {
        requests: r.get_u64().map_err(wire_err)?,
        batches: r.get_u64().map_err(wire_err)?,
        images: r.get_u64().map_err(wire_err)?,
        total_latency_us: r.get_u64().map_err(wire_err)?,
        max_latency_us: r.get_u64().map_err(wire_err)?,
        failed_batches: r.get_u64().map_err(wire_err)?,
        failed_requests: r.get_u64().map_err(wire_err)?,
        deadline_expired: r.get_u64().map_err(wire_err)?,
        cancelled: r.get_u64().map_err(wire_err)?,
        shed: r.get_u64().map_err(wire_err)?,
        worker_restarts: r.get_u64().map_err(wire_err)?,
        queue_depth: r.get_u64().map_err(wire_err)?,
        latency: LatencyHistogram::default(),
        batch_size: LatencyHistogram::default(),
    };
    for count in stats.latency.counts.iter_mut() {
        *count = r.get_u64().map_err(wire_err)?;
    }
    for count in stats.batch_size.counts.iter_mut() {
        *count = r.get_u64().map_err(wire_err)?;
    }
    if r.remaining() != 0 {
        return Err(ServeError::Wire("trailing bytes after stats reply".into()));
    }
    Ok(RemoteStats { stats, version })
}

/// Encode a registry dump (Prometheus text) for [`Opcode::MetricsReply`].
/// The text is length-prefixed UTF-8, same convention as every string on
/// this wire.
pub fn encode_metrics_reply(text: &str) -> Vec<u8> {
    let mut w = Writer::new();
    put_string(&mut w, text);
    w.into_bytes()
}

/// Decode an [`Opcode::MetricsReply`] payload back into exposition text.
pub fn decode_metrics_reply(payload: &[u8]) -> ServeResult<String> {
    let mut r = Reader::new(payload);
    let text = get_string(&mut r)?;
    if r.remaining() != 0 {
        return Err(ServeError::Wire("trailing bytes after metrics reply".into()));
    }
    Ok(text)
}

/// Encode a server-side snapshot path for [`Opcode::ReloadRequest`].
pub fn encode_reload_request(path: &str) -> Vec<u8> {
    let mut w = Writer::new();
    put_string(&mut w, path);
    w.into_bytes()
}

/// Decode an [`Opcode::ReloadRequest`] payload.
pub fn decode_reload_request(payload: &[u8]) -> ServeResult<String> {
    let mut r = Reader::new(payload);
    let path = get_string(&mut r)?;
    if r.remaining() != 0 {
        return Err(ServeError::Wire("trailing bytes after reload request".into()));
    }
    Ok(path)
}

/// Encode the published version for [`Opcode::ReloadReply`].
pub(crate) fn encode_reload_reply(version: u64) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(version);
    w.into_bytes()
}

/// Decode an [`Opcode::ReloadReply`] payload.
pub fn decode_reload_reply(payload: &[u8]) -> ServeResult<u64> {
    let mut r = Reader::new(payload);
    let version = r.get_u64().map_err(wire_err)?;
    if r.remaining() != 0 {
        return Err(ServeError::Wire("trailing bytes after reload reply".into()));
    }
    Ok(version)
}

/// Encode a training image for [`Opcode::Ingest`]. Same image layout as a
/// label request (shape header + raw f32 pixels) but no deadline — intake
/// is asynchronous by design.
pub fn encode_ingest_request(image: &Image) -> Vec<u8> {
    let (c, h, w) = image.shape();
    let mut wr = Writer::new();
    wr.put_u32(c as u32);
    wr.put_u32(h as u32);
    wr.put_u32(w as u32);
    wr.put_f32_slice_raw(image.tensor().as_slice());
    wr.into_bytes()
}

/// Decode an [`Opcode::Ingest`] payload. Bounds mirror
/// [`decode_label_request`]: dimensions are capped and the pixel count must
/// exactly match the remaining bytes.
pub fn decode_ingest_request(payload: &[u8]) -> ServeResult<Image> {
    let mut r = Reader::new(payload);
    let c = r.get_len_u32(MAX_IMAGE_CHANNELS).map_err(wire_err)?;
    let h = r.get_len_u32(MAX_IMAGE_DIM).map_err(wire_err)?;
    let w = r.get_len_u32(MAX_IMAGE_DIM).map_err(wire_err)?;
    if c == 0 || h == 0 || w == 0 {
        return Err(ServeError::Wire(format!("image with zero dimension ({c}×{h}×{w})")));
    }
    let pixels = c
        .checked_mul(h)
        .and_then(|p| p.checked_mul(w))
        .ok_or_else(|| ServeError::Wire(format!("image shape {c}×{h}×{w} overflows")))?;
    if r.remaining() != pixels * 4 {
        return Err(ServeError::Wire(format!(
            "image payload is {} bytes, shape {c}×{h}×{w} needs {}",
            r.remaining(),
            pixels * 4
        )));
    }
    let data = r.get_f32_vec(pixels).map_err(wire_err)?;
    let tensor = Tensor3::from_vec(c, h, w, data)
        .map_err(|e| ServeError::Wire(format!("image decode: {e}")))?;
    Ok(Image::from_tensor(tensor))
}

/// Encode the running intake count for [`Opcode::IngestReply`].
pub(crate) fn encode_ingest_reply(accepted: u64) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(accepted);
    w.into_bytes()
}

/// Decode an [`Opcode::IngestReply`] payload.
pub fn decode_ingest_reply(payload: &[u8]) -> ServeResult<u64> {
    let mut r = Reader::new(payload);
    let accepted = r.get_u64().map_err(wire_err)?;
    if r.remaining() != 0 {
        return Err(ServeError::Wire("trailing bytes after ingest reply".into()));
    }
    Ok(accepted)
}

/// Length-prefixed UTF-8 string (u32 length, bounded by the remaining
/// payload before allocation).
fn put_string(w: &mut Writer, s: &str) {
    w.put_u32(s.len() as u32);
    w.put_bytes(s.as_bytes());
}

fn get_string(r: &mut Reader<'_>) -> ServeResult<String> {
    let len = r.get_len_u32(r.remaining()).map_err(wire_err)?;
    let bytes = r.take(len).map_err(wire_err)?;
    String::from_utf8(bytes.to_vec())
        .map_err(|_| ServeError::Wire("string payload is not UTF-8".into()))
}

/// Re-brand a codec-level error ([`ServeError::Snapshot`]) as a wire error:
/// the payload readers reuse the snapshot codec, but the failure domain is
/// the network frame.
fn wire_err(e: ServeError) -> ServeError {
    match e {
        ServeError::Snapshot(msg) => ServeError::Wire(msg),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip_and_stream_read() {
        let payload = b"hello wire".to_vec();
        let bytes = encode_frame(Opcode::LabelRequest, 42, &payload);
        let (frame, consumed) = decode_frame(&bytes).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(frame.opcode, Opcode::LabelRequest);
        assert_eq!(frame.request_id, 42);
        assert_eq!(frame.payload, payload);

        // the same bytes through the streaming reader, twice in a row
        let mut doubled = bytes.clone();
        doubled.extend_from_slice(&encode_frame(Opcode::StatsRequest, 7, &[]));
        let mut cursor = std::io::Cursor::new(doubled);
        let a = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(a.request_id, 42);
        let b = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(b.opcode, Opcode::StatsRequest);
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF between frames");
    }

    #[test]
    fn truncation_bitflips_and_garbage_opcodes_are_errors() {
        let bytes = encode_frame(Opcode::LabelReply, 3, b"payload");
        for cut in 0..bytes.len() {
            assert!(decode_frame(&bytes[..cut]).is_err(), "cut {cut}");
            let mut cursor = std::io::Cursor::new(bytes[..cut].to_vec());
            if cut == 0 {
                assert!(read_frame(&mut cursor).unwrap().is_none());
            } else {
                assert!(read_frame(&mut cursor).is_err(), "stream cut {cut}");
            }
        }
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x20;
            assert!(decode_frame(&bad).is_err(), "flip at {pos}");
        }
        // garbage opcode, re-checksummed so it reaches the opcode check
        let mut garbage = bytes.clone();
        garbage[8] = 0xEE;
        let len = garbage.len();
        let c = fnv1a(&garbage[8..len - 8]);
        garbage[len - 8..].copy_from_slice(&c.to_le_bytes());
        match decode_frame(&garbage) {
            Err(ServeError::Wire(msg)) => assert!(msg.contains("opcode"), "{msg}"),
            other => panic!("expected Wire error, got {other:?}"),
        }
    }

    #[test]
    fn oversized_lengths_are_rejected_before_allocation() {
        let mut bytes = encode_frame(Opcode::StatsRequest, 1, &[]);
        bytes[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        match decode_frame(&bytes) {
            Err(ServeError::Wire(msg)) => assert!(msg.contains("implausible"), "{msg}"),
            other => panic!("expected Wire error, got {other:?}"),
        }
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn label_request_round_trip_is_bit_exact() {
        let mut image = Image::new(3, 4, 5);
        for (i, v) in image.tensor_mut().as_mut_slice().iter_mut().enumerate() {
            *v = (i as f32 - 20.0) * 0.37;
        }
        let payload = encode_label_request(&image, 12_345);
        let decoded = decode_label_request(&payload).unwrap();
        assert_eq!(decoded.deadline_us, 12_345);
        assert_eq!(decoded.image, image);
    }

    #[test]
    fn label_request_rejects_bad_shapes_and_sizes() {
        let image = Image::filled(1, 2, 2, 0.5);
        let good = encode_label_request(&image, 0);
        // truncated pixels
        assert!(decode_label_request(&good[..good.len() - 2]).is_err());
        // trailing garbage
        let mut padded = good.clone();
        padded.extend_from_slice(&[0u8; 4]);
        assert!(decode_label_request(&padded).is_err());
        // zero dimension
        let mut w = Writer::new();
        w.put_u64(0);
        w.put_u32(0);
        w.put_u32(2);
        w.put_u32(2);
        assert!(decode_label_request(&w.into_bytes()).is_err());
        // implausible dimension
        let mut w = Writer::new();
        w.put_u64(0);
        w.put_u32(3);
        w.put_u32(u32::MAX);
        w.put_u32(u32::MAX);
        assert!(decode_label_request(&w.into_bytes()).is_err());
    }

    #[test]
    fn label_reply_round_trip_and_validation() {
        let resp = LabelResponse { label: 1, probs: vec![0.25, 0.75], batch_size: 4, version: 9 };
        let payload = encode_label_reply(&resp);
        assert_eq!(decode_label_reply(&payload).unwrap(), resp);
        // out-of-range label rejected
        let bad = LabelResponse { label: 2, ..resp.clone() };
        assert!(decode_label_reply(&encode_label_reply(&bad)).is_err());
        for cut in 0..payload.len() {
            assert!(decode_label_reply(&payload[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn error_reply_round_trips_every_variant() {
        let errors = [
            ServeError::Snapshot("s".into()),
            ServeError::Corrupt("c".into()),
            ServeError::Io("i".into()),
            ServeError::Pipeline(goggles_core::GogglesError::InvalidInput("p".into())),
            ServeError::Registry("r".into()),
            ServeError::Closed,
            ServeError::Deadline,
            ServeError::Wire("w".into()),
            ServeError::Overloaded,
        ];
        for e in errors {
            let decoded = decode_error_reply(&encode_error_reply(&e)).unwrap();
            assert_eq!(error_code(&decoded), error_code(&e), "{e}");
            assert_eq!(decoded.retryable(), e.retryable(), "{e}");
        }
        assert!(decode_error_reply(&[0xFF, 0, 0, 0, 0, 0]).is_err(), "unknown code");
        // a lying retryable flag is rejected, both polarities
        let mut lie = encode_error_reply(&ServeError::Overloaded);
        lie[1] = 0;
        assert!(decode_error_reply(&lie).is_err(), "retryable error flagged non-retryable");
        let mut lie = encode_error_reply(&ServeError::Deadline);
        lie[1] = 1;
        assert!(decode_error_reply(&lie).is_err(), "non-retryable error flagged retryable");
        let mut lie = encode_error_reply(&ServeError::Closed);
        lie[1] = 2;
        assert!(decode_error_reply(&lie).is_err(), "out-of-range flag byte");
    }

    #[test]
    fn stats_reply_round_trips_with_histogram() {
        let mut stats = ServiceStats { requests: 10, batches: 3, images: 10, ..Default::default() };
        stats.latency.record(100);
        stats.latency.record(90_000);
        let remote = RemoteStats { stats, version: 4 };
        let decoded = decode_stats_reply(&encode_stats_reply(&remote)).unwrap();
        assert_eq!(decoded, remote);
        assert_eq!(decoded.stats.latency.total(), 2);
        let payload = encode_stats_reply(&remote);
        for cut in 0..payload.len() {
            assert!(decode_stats_reply(&payload[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn metrics_reply_round_trips_and_rejects_corruption() {
        let text = "# HELP goggles_requests_total requests\n\
                    # TYPE goggles_requests_total counter\n\
                    goggles_requests_total{result=\"ok\"} 12\n";
        let payload = encode_metrics_reply(text);
        assert_eq!(decode_metrics_reply(&payload).unwrap(), text);
        for cut in 0..payload.len() {
            assert!(decode_metrics_reply(&payload[..cut]).is_err(), "cut {cut}");
        }
        // trailing garbage
        let mut padded = payload.clone();
        padded.extend_from_slice(&[0u8; 3]);
        assert!(decode_metrics_reply(&padded).is_err());
        // non-UTF-8 body
        let mut w = Writer::new();
        w.put_u32(2);
        w.put_bytes(&[0xFF, 0xFE]);
        assert!(decode_metrics_reply(&w.into_bytes()).is_err());
        // and the new opcodes survive the framing layer
        let frame = encode_frame(Opcode::MetricsRequest, 5, &[]);
        assert_eq!(decode_frame(&frame).unwrap().0.opcode, Opcode::MetricsRequest);
        let frame = encode_frame(Opcode::MetricsReply, 6, &payload);
        assert_eq!(decode_frame(&frame).unwrap().0.opcode, Opcode::MetricsReply);
    }

    #[test]
    fn ingest_round_trips_and_rejects_bad_shapes() {
        let mut image = Image::new(3, 4, 5);
        for (i, v) in image.tensor_mut().as_mut_slice().iter_mut().enumerate() {
            *v = (i as f32 - 10.0) * 0.21;
        }
        let payload = encode_ingest_request(&image);
        assert_eq!(decode_ingest_request(&payload).unwrap(), image);
        // truncated pixels / trailing garbage
        assert!(decode_ingest_request(&payload[..payload.len() - 1]).is_err());
        let mut padded = payload.clone();
        padded.extend_from_slice(&[0u8; 4]);
        assert!(decode_ingest_request(&padded).is_err());
        // zero dimension
        let mut w = Writer::new();
        w.put_u32(0);
        w.put_u32(2);
        w.put_u32(2);
        assert!(decode_ingest_request(&w.into_bytes()).is_err());
        // reply round trip
        assert_eq!(decode_ingest_reply(&encode_ingest_reply(17)).unwrap(), 17);
        assert!(decode_ingest_reply(&[1, 2]).is_err());
        // new opcodes survive the framing layer
        let frame = encode_frame(Opcode::Ingest, 8, &payload);
        assert_eq!(decode_frame(&frame).unwrap().0.opcode, Opcode::Ingest);
        let frame = encode_frame(Opcode::IngestReply, 9, &encode_ingest_reply(1));
        assert_eq!(decode_frame(&frame).unwrap().0.opcode, Opcode::IngestReply);
    }

    #[test]
    fn reload_round_trips_and_rejects_non_utf8() {
        let payload = encode_reload_request("/tmp/snap_v2.ggl");
        assert_eq!(decode_reload_request(&payload).unwrap(), "/tmp/snap_v2.ggl");
        let mut w = Writer::new();
        w.put_u32(2);
        w.put_bytes(&[0xFF, 0xFE]);
        assert!(decode_reload_request(&w.into_bytes()).is_err());
        assert_eq!(decode_reload_reply(&encode_reload_reply(7)).unwrap(), 7);
        assert!(decode_reload_reply(&[1, 2]).is_err());
    }
}

//! Regenerates **Table 2** of the paper: end-model accuracy on the held-out
//! test set for FSL (Baseline++ on the dev set), Snorkel (CUB), Snuba,
//! GOGGLES and the supervised upper bound.
//!
//! ```text
//! GOGGLES_SCALE=quick|standard|paper cargo bench -p goggles-bench --bench table2
//! ```
//!
//! Expected shape: UpperBound ≥ GOGGLES ≥ FSL ≥ Snuba, with GOGGLES within
//! single digits of the upper bound (paper: 82.03 vs 89.14 average).

use goggles::experiments::{table2, Scale};
use goggles_bench::{emit, timed};

fn main() {
    let scale = Scale::from_env();
    let params = scale.params();
    println!("scale: {scale:?} → {params:?}\n");
    let results = timed("Table 2", || table2::run(&params));
    emit(&results.to_table(), "table2");

    let avg = results.averages();
    println!("paper averages:   FSL 77.23, Snuba 60.60, GOGGLES 82.03, UpperBound 89.14");
    println!(
        "this run:         FSL {}, Snuba {}, GOGGLES {}, UpperBound {}",
        fmt(avg[0]),
        fmt(avg[2]),
        fmt(avg[3]),
        fmt(avg[4]),
    );
}

fn fmt(v: Option<f64>) -> String {
    v.map(|x| format!("{:.2}", 100.0 * x)).unwrap_or_else(|| "-".into())
}

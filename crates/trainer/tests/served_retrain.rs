//! Retrain smoke over the real wire: spawn the `goggles-served` binary
//! with `--retrain`, push a batch through the `Ingest` op, and watch the
//! continuous-learning loop publish (or reject / roll back, under injected
//! faults) while a live label load observes zero drops. Trainer-internal
//! outcomes are asserted through the `/metrics` scrape — the same signal
//! an operator's alerting would use.

use goggles_datasets::{generate, TaskConfig, TaskKind};
use goggles_serve::{Labeler, RemoteLabeler};
use goggles_vision::Image;
use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Kill the child on drop so a failing assert never leaks a server process.
struct Reaper(Child);

impl Drop for Reaper {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// A running `goggles-served --retrain` plus its resolved addresses.
struct Served {
    child: Reaper,
    reader: Option<std::thread::JoinHandle<()>>,
    addr: String,
    metrics_addr: String,
}

impl Served {
    /// Spawn with the retrain loop on (min batch 2, gate held open so the
    /// only rejections are the injected ones) plus any extra flags.
    fn spawn(extra: &[&str]) -> Served {
        let mut args = vec![
            "--demo-fit",
            "--retrain",
            "--retrain-min-batch",
            "2",
            "--retrain-epsilon",
            "1.0",
            "--addr",
            "127.0.0.1:0",
            "--metrics-addr",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--conn-threads",
            "2",
        ];
        args.extend_from_slice(extra);
        let child = Command::new(env!("CARGO_BIN_EXE_goggles-served"))
            .args(&args)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn goggles-served --retrain");
        let mut child = Reaper(child);
        let stdout = child.0.stdout.take().expect("piped stdout");
        let (addr_tx, addr_rx) = std::sync::mpsc::channel();
        let reader = std::thread::spawn(move || {
            let mut lines = std::io::BufReader::new(stdout).lines();
            for _ in 0..2 {
                let _ = addr_tx.send(lines.next().and_then(Result::ok).unwrap_or_default());
            }
            for _ in lines.by_ref() {}
        });
        let banner = addr_rx
            .recv_timeout(Duration::from_secs(120))
            .expect("server never printed its address");
        let addr = banner
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
            .to_string();
        let metrics_banner = addr_rx
            .recv_timeout(Duration::from_secs(30))
            .expect("server never printed its metrics address");
        let metrics_addr = metrics_banner
            .strip_prefix("metrics listening on ")
            .unwrap_or_else(|| panic!("unexpected metrics banner {metrics_banner:?}"))
            .to_string();
        Served { child, reader: Some(reader), addr, metrics_addr }
    }

    /// Counter value of `goggles_trainer_refits_total{outcome="..."}` in
    /// the current scrape (0 when the family has not been exported yet).
    fn refits(&self, outcome: &str) -> u64 {
        let needle = format!("goggles_trainer_refits_total{{outcome=\"{outcome}\"}}");
        http_get_metrics(&self.metrics_addr)
            .lines()
            .find_map(|l| l.strip_prefix(needle.as_str()))
            .and_then(|rest| rest.trim().parse().ok())
            .unwrap_or(0)
    }

    /// Poll the scrape until the outcome counter reaches `want`.
    fn wait_refits(&self, outcome: &str, want: u64, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        loop {
            if self.refits(outcome) >= want {
                return;
            }
            assert!(
                Instant::now() < deadline,
                "refits_total{{outcome={outcome:?}}} never reached {want}; scrape:\n{}",
                http_get_metrics(&self.metrics_addr)
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    fn shutdown(mut self) {
        let client = RemoteLabeler::connect(self.addr.as_str()).expect("connect for shutdown");
        client.shutdown_server().expect("shutdown op");
        drop(client);
        let status = wait_with_timeout(&mut self.child.0, Duration::from_secs(60))
            .expect("server did not exit after the shutdown op");
        assert!(status.success(), "server exited with {status:?}");
        if let Some(reader) = self.reader.take() {
            reader.join().expect("stdout reader");
        }
    }
}

/// Images shaped like the demo bootstrap corpus (3 × 32 × 32).
fn fresh_images(seed: u64, per_class: usize) -> Vec<Image> {
    let mut task = TaskConfig::new(TaskKind::Cub { class_a: 0, class_b: 1 }, per_class, 1, seed);
    task.image_size = 32;
    generate(&task).train_images().into_iter().cloned().collect()
}

/// Label continuously on an own connection until `stop`; every request
/// must succeed — a single drop fails the test at join time.
fn label_load(addr: String, stop: Arc<AtomicBool>, probe: Image) -> std::thread::JoinHandle<u64> {
    std::thread::spawn(move || {
        let client = RemoteLabeler::connect(addr.as_str()).expect("load connection");
        let mut answered = 0u64;
        while !stop.load(Ordering::Relaxed) {
            client.label(&probe).expect("label request dropped during retrain");
            answered += 1;
        }
        answered
    })
}

#[test]
fn retrain_publishes_under_live_load_with_zero_drops() {
    let served = Served::spawn(&[]);
    let client = RemoteLabeler::connect(served.addr.as_str()).expect("connect");
    let images = fresh_images(411, 2);

    assert_eq!(client.label(&images[0]).expect("pre-retrain label").version, 1);

    let stop = Arc::new(AtomicBool::new(false));
    let load = label_load(served.addr.clone(), Arc::clone(&stop), images[0].clone());

    assert_eq!(client.ingest(&images[0]).expect("ingest"), 1);
    assert_eq!(client.ingest(&images[1]).expect("ingest"), 2);
    served.wait_refits("published", 1, Duration::from_secs(120));

    // The swap is atomic: the very next label answers from version 2.
    let resp = client.label(&images[0]).expect("post-publish label");
    assert_eq!(resp.version, 2, "publish must be visible over the wire");

    stop.store(true, Ordering::Relaxed);
    let answered = load.join().expect("zero drops under load");
    assert!(answered > 0, "load thread never got a response");

    assert_eq!(served.refits("rejected"), 0);
    assert_eq!(served.refits("rolled_back"), 0);
    served.shutdown();
}

#[test]
fn retrain_gate_failure_rejects_then_recovers() {
    let served = Served::spawn(&["--fault-plan", "trainer.gate:io@#1"]);
    let client = RemoteLabeler::connect(served.addr.as_str()).expect("connect");
    let images = fresh_images(423, 4);

    // Cycle 1: the injected gate failure rejects the candidate; serving
    // stays on version 1.
    client.ingest(&images[0]).expect("ingest");
    client.ingest(&images[1]).expect("ingest");
    served.wait_refits("rejected", 1, Duration::from_secs(120));
    assert_eq!(client.label(&images[0]).expect("label").version, 1);
    assert_eq!(served.refits("published"), 0);

    // Cycle 2: the failpoint is exhausted (`#1` fires once); the loop
    // recovers and publishes without a restart.
    client.ingest(&images[2]).expect("ingest");
    client.ingest(&images[3]).expect("ingest");
    served.wait_refits("published", 1, Duration::from_secs(120));
    assert_eq!(client.label(&images[0]).expect("label").version, 2);
    assert_eq!(served.refits("rejected"), 1);
    served.shutdown();
}

#[test]
fn retrain_canary_regression_rolls_back() {
    let served = Served::spawn(&["--fault-plan", "trainer.canary:io@#1", "--retrain-canary", "1"]);
    let client = RemoteLabeler::connect(served.addr.as_str()).expect("connect");
    let images = fresh_images(437, 2);

    // Live load so the canary actually serves traffic on the candidate.
    let stop = Arc::new(AtomicBool::new(false));
    let load = label_load(served.addr.clone(), Arc::clone(&stop), images[0].clone());

    client.ingest(&images[0]).expect("ingest");
    client.ingest(&images[1]).expect("ingest");
    served.wait_refits("rolled_back", 1, Duration::from_secs(120));

    stop.store(true, Ordering::Relaxed);
    load.join().expect("zero drops across publish + rollback");

    // Rolled back: serving answers from version 1 again.
    assert_eq!(client.label(&images[0]).expect("label").version, 1);
    assert_eq!(served.refits("published"), 0);
    served.shutdown();
}

/// Raw HTTP/1.0 `GET /metrics` against the binary's scrape endpoint.
fn http_get_metrics(addr: &str) -> String {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to metrics endpoint");
    stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("malformed HTTP response");
    assert!(head.starts_with("HTTP/1.0 200"), "scrape failed: {head}");
    body.to_string()
}

/// `Child::wait` with a crude polling timeout (std has no native one).
fn wait_with_timeout(child: &mut Child, timeout: Duration) -> Option<std::process::ExitStatus> {
    let start = Instant::now();
    loop {
        if let Ok(Some(status)) = child.try_wait() {
            return Some(status);
        }
        if start.elapsed() > timeout {
            return None;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

//! Linear-sum assignment (Hungarian algorithm, Jonker–Volgenant shortest
//! augmenting path variant) in `O(K³)`.
//!
//! §4.3 of the paper reduces the cluster→class mapping to an assignment
//! problem: "there are known algorithms \[12\] that solve it with a worst case
//! time complexity of O(K³)". This module provides both a minimizing and a
//! maximizing entry point over a square score matrix.

use goggles_tensor::Matrix;

/// Solve the **minimum**-cost assignment on a square `n × n` cost matrix.
/// Returns `assign` with `assign[row] = col`.
///
/// Implementation: shortest augmenting paths with dual potentials (the JV /
/// "Hungarian with potentials" formulation), `O(n³)` worst case.
///
/// # Panics
/// Panics if `cost` is not square or contains NaN.
pub(crate) fn solve_assignment_min(cost: &Matrix<f64>) -> Vec<usize> {
    let n = cost.rows();
    assert_eq!(n, cost.cols(), "assignment requires a square matrix");
    assert!(cost.as_slice().iter().all(|v| !v.is_nan()), "NaN cost");
    if n == 0 {
        return Vec::new();
    }
    // Potentials over rows (u) and columns (v); matching from columns to
    // rows in `way`/`matched_row`. 1-based sentinel formulation.
    let inf = f64::INFINITY;
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    let mut matched_row = vec![0usize; n + 1]; // column -> row (1-based; 0 = free)
    let mut way = vec![0usize; n + 1];

    for i in 1..=n {
        matched_row[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = matched_row[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost[(i0 - 1, j - 1)] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[matched_row[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if matched_row[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path.
        loop {
            let j1 = way[j0];
            matched_row[j0] = matched_row[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut assign = vec![0usize; n];
    for j in 1..=n {
        if matched_row[j] != 0 {
            assign[matched_row[j] - 1] = j - 1;
        }
    }
    assign
}

/// Solve the **maximum**-score assignment (used for the paper's `L_g`
/// maximization, Equation 14/16): returns `assign[row] = col` maximizing
/// `Σ score[row, assign[row]]`.
pub fn solve_assignment(score: &Matrix<f64>) -> Vec<usize> {
    let neg = score.map(|v| -v);
    solve_assignment_min(&neg)
}

/// Total score of an assignment.
pub fn assignment_score(score: &Matrix<f64>, assign: &[usize]) -> f64 {
    assign.iter().enumerate().map(|(r, &c)| score[(r, c)]).sum()
}

/// Exhaustive `O(K!)` maximizer, for cross-checking in tests and for tiny K
/// (the paper notes brute force "is actually feasible for a small K").
pub fn solve_assignment_brute_force(score: &Matrix<f64>) -> Vec<usize> {
    let n = score.rows();
    assert_eq!(n, score.cols());
    let mut perm: Vec<usize> = (0..n).collect();
    let mut best = perm.clone();
    let mut best_score = assignment_score(score, &perm);
    // Heap's algorithm.
    let mut c = vec![0usize; n];
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                perm.swap(0, i);
            } else {
                perm.swap(c[i], i);
            }
            let s = assignment_score(score, &perm);
            if s > best_score {
                best_score = s;
                best = perm.clone();
            }
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use goggles_tensor::rng::std_rng;
    use rand::Rng;

    #[test]
    fn identity_is_optimal_for_diagonal_scores() {
        let score = Matrix::from_rows(&[&[5.0, 0.0, 0.0], &[0.0, 5.0, 0.0], &[0.0, 0.0, 5.0]]);
        assert_eq!(solve_assignment(&score), vec![0, 1, 2]);
    }

    #[test]
    fn picks_permutation_over_greedy() {
        // Greedy row-wise would pick (0,0)=9 then be forced to (1,1)=0;
        // optimal is (0,1)+(1,0) = 8 + 8.
        let score = Matrix::from_rows(&[&[9.0, 8.0], &[8.0, 0.0]]);
        let a = solve_assignment(&score);
        assert_eq!(a, vec![1, 0]);
        assert_eq!(assignment_score(&score, &a), 16.0);
    }

    #[test]
    fn min_variant_on_known_cost() {
        let cost = Matrix::from_rows(&[&[4.0, 1.0, 3.0], &[2.0, 0.0, 5.0], &[3.0, 2.0, 2.0]]);
        let a = solve_assignment_min(&cost);
        // optimal: (0,1)+(1,0)+(2,2) = 1+2+2 = 5
        let total: f64 = a.iter().enumerate().map(|(r, &c)| cost[(r, c)]).sum();
        assert_eq!(total, 5.0);
    }

    #[test]
    fn result_is_a_permutation() {
        let mut rng = std_rng(1);
        let score = Matrix::from_fn(7, 7, |_, _| rng.random::<f64>());
        let mut a = solve_assignment(&score);
        a.sort_unstable();
        assert_eq!(a, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        for seed in 0..20u64 {
            let mut rng = std_rng(seed);
            let n = 2 + (seed as usize % 4); // 2..=5
            let score = Matrix::from_fn(n, n, |_, _| rng.random::<f64>() * 10.0 - 5.0);
            let fast = solve_assignment(&score);
            let brute = solve_assignment_brute_force(&score);
            let fs = assignment_score(&score, &fast);
            let bs = assignment_score(&score, &brute);
            assert!(
                (fs - bs).abs() < 1e-9,
                "seed {seed}: fast {fs} != brute {bs} ({fast:?} vs {brute:?})"
            );
        }
    }

    #[test]
    fn handles_negative_scores() {
        let score = Matrix::from_rows(&[&[-1.0, -5.0], &[-5.0, -1.0]]);
        assert_eq!(solve_assignment(&score), vec![0, 1]);
    }

    #[test]
    fn empty_matrix_yields_empty_assignment() {
        let score = Matrix::<f64>::zeros(0, 0);
        assert!(solve_assignment(&score).is_empty());
    }

    #[test]
    fn one_by_one() {
        let score = Matrix::from_rows(&[&[3.0]]);
        assert_eq!(solve_assignment(&score), vec![0]);
    }
}

//! Fixture: `used` is consumed by the serve crate; `orphan` is not.

pub fn used() -> u32 {
    1
}

pub fn orphan() -> u32 {
    2
}

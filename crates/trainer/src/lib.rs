//! # goggles-trainer
//!
//! The continuous-learning loop behind a GOGGLES serving stack: a
//! background fitter that grows the training corpus **incrementally** and
//! republishes better snapshots behind an accuracy gate, while the
//! [`goggles_serve::LabelService`] it feeds keeps answering requests
//! bit-identically from the currently published version.
//!
//! The paper's system (Das et al., SIGMOD 2020) is batch-only: adding even
//! one image means re-embedding everything and rebuilding the `N × αN`
//! affinity matrix. This crate closes the loop online, in four steps:
//!
//! 1. **Intake** — a bounded queue ([`Trainer::sink`]) implementing
//!    [`goggles_serve::IngestSink`], fed by the wire protocol's `Ingest`
//!    op. A full queue sheds with the retryable
//!    [`goggles_serve::ServeError::Overloaded`]; accepted images are never
//!    dropped (a shutdown drains the queue through one final cycle).
//! 2. **Incremental growth** — new images are embedded and their affinity
//!    rows computed against the **frozen** prototype bank
//!    ([`goggles_serve::FittedLabeler::affinity_rows_for`]), then appended
//!    to the training matrix: `(N+m) × αN` instead of an `O((N+m)²α)`
//!    rebuild. Appending is bit-identical to rebuilding for the frozen
//!    columns, so nothing the serving path computed ever shifts.
//! 3. **Warm-started refit** — each cycle refits the hierarchical model
//!    from the previous snapshot's parameters
//!    ([`goggles_core::Goggles::refit_from_affinity`]): a deterministic
//!    warm candidate plus seeded cold restarts, ranked on the held-out dev
//!    set.
//! 4. **Gated publish** — a two-phase gate guards the
//!    [`goggles_serve::SnapshotRegistry`]: *offline*, the winner's
//!    dev-set score must not regress below the live baseline (minus a
//!    configured slack); *online*, the candidate is canaried on live
//!    traffic (per-version serve counters) and rolled back automatically
//!    if the `trainer.canary` failpoint — or a real regression signal —
//!    fires. Torn snapshot writes (the `snapshot.write` failpoint) fail
//!    the cycle *before* the registry is touched, so the server keeps
//!    serving the previous version untouched.
//!
//! Every stage is observable on the process-global metrics registry
//! (`goggles_trainer_*` families), which the serving stack's
//! `/metrics` scrape already merges.

use goggles_core::{AffinityMatrix, Goggles, GogglesConfig, HierarchicalModel};
use goggles_datasets::DevSet;
use goggles_serve::{FittedLabeler, IngestSink, ServeError, SnapshotRegistry, TrainingBootstrap};
use goggles_tensor::Matrix;
use goggles_vision::Image;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Alias matching the serving crate's result type.
type ServeResult<T> = goggles_serve::Result<T>;

/// Tuning for a [`Trainer`]. The defaults are sized for tests and demos;
/// a real deployment raises `queue_capacity` and `min_batch`.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainerConfig {
    /// Intake queue capacity; a full queue sheds ingests with the
    /// retryable [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Images to accumulate before a refit cycle starts. The cycle drains
    /// the whole queue, so bursts larger than this train together.
    pub min_batch: usize,
    /// Offline gate slack: a candidate may score up to `epsilon` below
    /// the live baseline on the dev set and still publish. `0.0` demands
    /// no regression at all.
    pub epsilon: f64,
    /// Online gate: requests the candidate must serve before acceptance.
    /// `0` skips the canary wait (offline gate only).
    pub canary_served: u64,
    /// Upper bound on the canary wait; on expiry the candidate is judged
    /// on whatever traffic it saw.
    pub canary_timeout: Duration,
    /// Persist each publishable candidate here before the registry sees
    /// it (crash-safe atomic write; the `snapshot.write` failpoint tears
    /// it). `None` publishes in memory only.
    pub snapshot_path: Option<PathBuf>,
    /// Retired versions kept after each publish
    /// ([`SnapshotRegistry::prune_retired`]); `≥ 1` preserves the
    /// rollback target.
    pub keep_retired: usize,
    /// Threads for embedding ingested images.
    pub embed_threads: usize,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 256,
            min_batch: 4,
            epsilon: 0.0,
            canary_served: 0,
            canary_timeout: Duration::from_secs(2),
            snapshot_path: None,
            keep_retired: 2,
            embed_threads: 1,
        }
    }
}

/// How one refit cycle ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefitOutcome {
    /// The candidate passed both gate phases and is now serving.
    Published,
    /// The offline gate refused the candidate (dev-set regression or an
    /// injected gate failure); the registry was never touched.
    Rejected,
    /// The candidate published but failed the online canary; the registry
    /// was rolled back to the previous version.
    RolledBack,
    /// The cycle failed mechanically (refit error, torn snapshot write,
    /// publish failure); the previous version keeps serving.
    Failed,
}

impl RefitOutcome {
    fn label(self) -> &'static str {
        match self {
            RefitOutcome::Published => "published",
            RefitOutcome::Rejected => "rejected",
            RefitOutcome::RolledBack => "rolled_back",
            RefitOutcome::Failed => "failed",
        }
    }
}

/// Point-in-time view of a [`Trainer`], for polling and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainerStatus {
    /// Images accepted by the intake queue, ever.
    pub ingested: u64,
    /// Images currently waiting in the intake queue.
    pub queue_depth: usize,
    /// Rows of the training affinity matrix (frozen `N` + appended).
    pub rows: usize,
    /// Completed refit cycles (any outcome).
    pub refits: u64,
    /// Cycles that ended [`RefitOutcome::Published`].
    pub published: u64,
    /// Cycles that ended [`RefitOutcome::Rejected`].
    pub rejected: u64,
    /// Cycles that ended [`RefitOutcome::RolledBack`].
    pub rolled_back: u64,
    /// Cycles that ended [`RefitOutcome::Failed`].
    pub failed: u64,
    /// Dev-set score of the most recent candidate (whatever its fate).
    pub dev_score: f64,
    /// Dev-set score of the version currently serving (the gate's bar).
    pub baseline: f64,
    /// Registry version of the last successful publish, if any.
    pub last_published_version: Option<u64>,
    /// Outcome of the most recent cycle, if any cycle ran.
    pub last_outcome: Option<RefitOutcome>,
}

/// Handles into the process-global metrics registry. Registered once per
/// trainer spawn; get-or-create, so repeated spawns share families.
struct TrainerMetrics {
    ingested: goggles_obs::Counter,
    queue_depth: goggles_obs::Gauge,
    rows: goggles_obs::Gauge,
    dev_score: goggles_obs::FloatGauge,
    refit_latency: goggles_obs::Histogram,
    outcomes: [(RefitOutcome, goggles_obs::Counter); 4],
}

impl TrainerMetrics {
    fn new() -> Self {
        let reg = goggles_obs::global();
        let outcome_counter = |o: RefitOutcome| {
            (
                o,
                reg.counter(
                    "goggles_trainer_refits_total",
                    "Completed trainer refit cycles by outcome",
                    &[("outcome", o.label())],
                ),
            )
        };
        Self {
            ingested: reg.counter(
                "goggles_trainer_ingested_total",
                "Images accepted by the trainer intake queue",
                &[],
            ),
            queue_depth: reg.gauge(
                "goggles_trainer_queue_depth",
                "Images waiting in the trainer intake queue",
                &[],
            ),
            rows: reg.gauge(
                "goggles_trainer_rows",
                "Rows of the trainer's growing affinity matrix",
                &[],
            ),
            dev_score: reg.float_gauge(
                "goggles_trainer_dev_score",
                "Dev-set score of the most recent refit candidate",
                &[],
            ),
            refit_latency: reg.histogram(
                "goggles_trainer_refit_latency_us",
                "Wall time of one incremental refit cycle (embed + append + EM)",
                &[],
            ),
            outcomes: [
                outcome_counter(RefitOutcome::Published),
                outcome_counter(RefitOutcome::Rejected),
                outcome_counter(RefitOutcome::RolledBack),
                outcome_counter(RefitOutcome::Failed),
            ],
        }
    }

    fn record_outcome(&self, outcome: RefitOutcome) {
        for (o, c) in &self.outcomes {
            if *o == outcome {
                c.inc();
            }
        }
    }
}

/// Intake-queue state under the mutex.
struct IntakeState {
    queue: VecDeque<Image>,
    accepted: u64,
    shutdown: bool,
}

/// The bounded intake queue: the [`IngestSink`] half of the trainer,
/// shared with the wire server. Backpressure is shed-style (never blocks
/// a connection thread): a full queue answers [`ServeError::Overloaded`].
struct Intake {
    state: Mutex<IntakeState>,
    cond: Condvar,
    capacity: usize,
    ingested: goggles_obs::Counter,
    queue_depth: goggles_obs::Gauge,
}

impl Intake {
    fn lock(&self) -> std::sync::MutexGuard<'_, IntakeState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Block until at least `min_batch` images are queued (or shutdown),
    /// then drain the whole queue. Returns `None` only on shutdown with
    /// an empty queue — queued images always get one final cycle, so an
    /// accepted ingest is never silently dropped.
    fn next_batch(&self, min_batch: usize) -> Option<Vec<Image>> {
        let mut st = self.lock();
        loop {
            if st.shutdown || st.queue.len() >= min_batch.max(1) {
                if st.queue.is_empty() {
                    return if st.shutdown { None } else { Some(Vec::new()) };
                }
                let batch: Vec<Image> = st.queue.drain(..).collect();
                self.queue_depth.set(0);
                return Some(batch);
            }
            st = self.cond.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn initiate_shutdown(&self) {
        self.lock().shutdown = true;
        self.cond.notify_all();
    }
}

impl IngestSink for Intake {
    fn ingest(&self, image: Image) -> ServeResult<u64> {
        let mut st = self.lock();
        if st.shutdown {
            return Err(ServeError::Closed);
        }
        if st.queue.len() >= self.capacity {
            return Err(ServeError::Overloaded);
        }
        st.queue.push_back(image);
        st.accepted += 1;
        let accepted = st.accepted;
        self.ingested.inc();
        self.queue_depth.set(st.queue.len() as i64);
        self.cond.notify_all();
        Ok(accepted)
    }
}

/// Cycle counters shared between the loop thread and status readers.
#[derive(Default)]
struct StatusInner {
    rows: usize,
    refits: u64,
    published: u64,
    rejected: u64,
    rolled_back: u64,
    failed: u64,
    dev_score: f64,
    baseline: f64,
    last_published_version: Option<u64>,
    last_outcome: Option<RefitOutcome>,
}

struct TrainerShared {
    status: Mutex<StatusInner>,
    /// Signaled after every completed cycle, for [`Trainer::wait_for_refits`].
    cycle_done: Condvar,
}

impl TrainerShared {
    fn status(&self) -> std::sync::MutexGuard<'_, StatusInner> {
        self.status.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// State owned by the background loop thread.
struct LoopState {
    goggles: Goggles,
    labeler: FittedLabeler,
    prev: HierarchicalModel,
    /// Row-major affinity data, grown by appending `m × αN` blocks.
    data: Vec<f64>,
    total_rows: usize,
    n: usize,
    alpha: usize,
    z_per_layer: usize,
    dev_rows: DevSet,
    baseline: f64,
    registry: Arc<SnapshotRegistry>,
    options: TrainerConfig,
    metrics: TrainerMetrics,
    shared: Arc<TrainerShared>,
}

/// The background continuous-learning loop. Spawn with
/// [`Trainer::spawn`], hand [`Trainer::sink`] to a
/// [`goggles_serve::WireServer`] (via `bind_with_ingest`), poll with
/// [`Trainer::status`], stop with [`Trainer::shutdown`] (or drop).
pub struct Trainer {
    intake: Arc<Intake>,
    shared: Arc<TrainerShared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Trainer {
    /// Start the loop over a fitted bootstrap
    /// ([`FittedLabeler::fit_for_training`]) and the registry the serving
    /// stack reads from ([`goggles_serve::LabelService::spawn_with_registry`]
    /// shares it). `config` must be the configuration the bootstrap was
    /// fitted with — restarts and seed feed the cold-restart candidates.
    pub fn spawn(
        bootstrap: TrainingBootstrap,
        config: &GogglesConfig,
        registry: Arc<SnapshotRegistry>,
        options: TrainerConfig,
    ) -> Self {
        let metrics = TrainerMetrics::new();
        let intake = Arc::new(Intake {
            state: Mutex::new(IntakeState { queue: VecDeque::new(), accepted: 0, shutdown: false }),
            cond: Condvar::new(),
            capacity: options.queue_capacity.max(1),
            ingested: metrics.ingested.clone(),
            queue_depth: metrics.queue_depth.clone(),
        });
        let shared = Arc::new(TrainerShared {
            status: Mutex::new(StatusInner::default()),
            cycle_done: Condvar::new(),
        });
        let baseline = dev_accuracy(bootstrap.result.labels.hard_labels(), &bootstrap.dev_rows);
        {
            let mut st = shared.status();
            st.rows = bootstrap.rows.rows();
            st.baseline = baseline;
            st.dev_score = baseline;
        }
        metrics.rows.set(bootstrap.rows.rows() as i64);
        metrics.dev_score.set(baseline);
        let min_batch = options.min_batch.max(1);
        let state = LoopState {
            goggles: Goggles::new(config.clone()),
            prev: bootstrap.labeler.frozen_model(),
            n: bootstrap.labeler.n_train(),
            alpha: bootstrap.labeler.alpha(),
            z_per_layer: bootstrap.labeler.bank().z_per_layer,
            total_rows: bootstrap.rows.rows(),
            data: bootstrap.rows.as_slice().to_vec(),
            labeler: bootstrap.labeler,
            dev_rows: bootstrap.dev_rows,
            baseline,
            registry,
            options,
            metrics,
            shared: Arc::clone(&shared),
        };
        let loop_intake = Arc::clone(&intake);
        let handle = std::thread::Builder::new()
            .name("goggles-trainer".into())
            .spawn(move || trainer_main(state, &loop_intake, min_batch))
            // goggles-lint: allow(panic): spawn only fails on OS thread exhaustion at startup; this constructor is infallible by API, matching LabelService::spawn
            .expect("spawn trainer thread");
        Self { intake, shared, handle: Some(handle) }
    }

    /// The intake queue as an [`IngestSink`], for
    /// [`goggles_serve::WireServer::bind_with_ingest`].
    pub fn sink(&self) -> Arc<dyn IngestSink> {
        Arc::clone(&self.intake) as Arc<dyn IngestSink>
    }

    /// Enqueue one image locally (same path as a wire `Ingest` op).
    /// Returns the total accepted so far, or [`ServeError::Overloaded`] on
    /// a full queue.
    pub fn ingest(&self, image: Image) -> ServeResult<u64> {
        self.intake.ingest(image)
    }

    /// Current counters and gate state.
    pub fn status(&self) -> TrainerStatus {
        let intake = self.intake.lock();
        let (ingested, queue_depth) = (intake.accepted, intake.queue.len());
        drop(intake);
        let st = self.shared.status();
        TrainerStatus {
            ingested,
            queue_depth,
            rows: st.rows,
            refits: st.refits,
            published: st.published,
            rejected: st.rejected,
            rolled_back: st.rolled_back,
            failed: st.failed,
            dev_score: st.dev_score,
            baseline: st.baseline,
            last_published_version: st.last_published_version,
            last_outcome: st.last_outcome,
        }
    }

    /// Block until at least `refits` cycles have completed (any outcome)
    /// or `timeout` expires; returns whether the target was reached.
    pub fn wait_for_refits(&self, refits: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.status();
        while st.refits < refits {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _timeout) = self
                .shared
                .cycle_done
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
        true
    }

    /// Stop the loop: the intake refuses further images, queued ones get
    /// one final cycle, then the thread exits and is joined. Idempotent;
    /// also invoked on drop.
    pub fn shutdown(&mut self) {
        self.intake.initiate_shutdown();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Trainer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Trainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let status = self.status();
        f.debug_struct("Trainer").field("status", &status).finish()
    }
}

/// Fraction of dev rows whose hard label matches the dev label.
fn dev_accuracy(hard: Vec<usize>, dev: &DevSet) -> f64 {
    if dev.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    for (&row, &label) in dev.indices.iter().zip(&dev.labels) {
        if hard.get(row) == Some(&label) {
            correct += 1;
        }
    }
    correct as f64 / dev.len() as f64
}

fn trainer_main(mut state: LoopState, intake: &Intake, min_batch: usize) {
    while let Some(batch) = intake.next_batch(min_batch) {
        if batch.is_empty() {
            continue;
        }
        let started = Instant::now();
        let outcome = run_cycle(&mut state, &batch);
        state
            .metrics
            .refit_latency
            .observe(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        state.metrics.record_outcome(outcome);
        let mut st = state.shared.status();
        st.refits += 1;
        st.rows = state.total_rows;
        st.baseline = state.baseline;
        st.last_outcome = Some(outcome);
        match outcome {
            RefitOutcome::Published => st.published += 1,
            RefitOutcome::Rejected => st.rejected += 1,
            RefitOutcome::RolledBack => st.rolled_back += 1,
            RefitOutcome::Failed => st.failed += 1,
        }
        drop(st);
        state.shared.cycle_done.notify_all();
    }
}

/// One full cycle: embed + append, warm refit, two-phase gate.
fn run_cycle(state: &mut LoopState, batch: &[Image]) -> RefitOutcome {
    // 1. Incremental growth: affinity rows against the frozen bank.
    let refs: Vec<&Image> = batch.iter().collect();
    let new_rows = state.labeler.affinity_rows_for(&refs, state.options.embed_threads);
    state.data.extend_from_slice(new_rows.as_slice());
    state.total_rows += new_rows.rows();
    state.metrics.rows.set(state.total_rows as i64);
    let cols = state.alpha * state.n;
    let matrix = match Matrix::from_vec(state.total_rows, cols, state.data.clone()) {
        Ok(m) => m,
        Err(e) => {
            goggles_obs::log::error(
                "trainer",
                "appended affinity rows have inconsistent width",
                &[("error", goggles_obs::Value::from(e.to_string()))],
            );
            return RefitOutcome::Failed;
        }
    };
    let affinity = AffinityMatrix {
        data: matrix,
        n: state.n,
        alpha: state.alpha,
        z_per_layer: state.z_per_layer,
    };

    // 2. Warm-started refit, ranked against seeded cold restarts.
    let selection = match state.goggles.refit_from_affinity(&affinity, &state.dev_rows, &state.prev)
    {
        Ok(s) => s,
        Err(e) => {
            goggles_obs::log::error(
                "trainer",
                "incremental refit failed",
                &[("error", goggles_obs::Value::from(e.to_string()))],
            );
            return RefitOutcome::Failed;
        }
    };
    state.metrics.dev_score.set(selection.dev_score);
    state.shared.status().dev_score = selection.dev_score;

    // 3. Offline gate (phase A): the candidate must hold the baseline
    // (minus the configured slack) on the held-out dev set. The
    // `trainer.gate` failpoint forces a regression here.
    let injected_gate = goggles_serve::fault::enabled()
        && goggles_serve::fault::inject_control("trainer.gate").is_some();
    if injected_gate || selection.dev_score < state.baseline - state.options.epsilon - 1e-12 {
        goggles_obs::log::warn(
            "trainer",
            "candidate rejected by offline gate",
            &[
                ("dev_score", goggles_obs::Value::from(selection.dev_score)),
                ("baseline", goggles_obs::Value::from(state.baseline)),
                ("injected", goggles_obs::Value::from(injected_gate)),
            ],
        );
        return RefitOutcome::Rejected;
    }

    // 4. Candidate construction + persistence. A torn snapshot write
    // fails the cycle before the registry is touched.
    let candidate = match state.labeler.with_models(&selection.model, selection.mapping.clone()) {
        Ok(c) => c,
        Err(e) => {
            goggles_obs::log::error(
                "trainer",
                "candidate failed validation",
                &[("error", goggles_obs::Value::from(e.to_string()))],
            );
            return RefitOutcome::Failed;
        }
    };
    if let Some(path) = &state.options.snapshot_path {
        if let Err(e) = candidate.save_to(path) {
            goggles_obs::log::error(
                "trainer",
                "candidate snapshot write failed; registry untouched",
                &[("error", goggles_obs::Value::from(e.to_string()))],
            );
            return RefitOutcome::Failed;
        }
    }

    // 5. Publish + online canary (phase B). The registry swap is atomic;
    // in-flight batches finish on the previous version.
    let version = match state.registry.publish(candidate.clone()) {
        Ok(v) => v,
        Err(e) => {
            goggles_obs::log::error(
                "trainer",
                "publish failed",
                &[("error", goggles_obs::Value::from(e.to_string()))],
            );
            return RefitOutcome::Failed;
        }
    };
    let served = wait_for_canary(
        &state.registry,
        version,
        state.options.canary_served,
        state.options.canary_timeout,
    );
    let canary_regressed = goggles_serve::fault::enabled()
        && goggles_serve::fault::inject_control("trainer.canary").is_some();
    if canary_regressed {
        let rolled = state.registry.rollback();
        goggles_obs::log::warn(
            "trainer",
            "canary regression; rolled back",
            &[
                ("version", goggles_obs::Value::from(version)),
                ("served", goggles_obs::Value::from(served)),
                ("rollback_ok", goggles_obs::Value::from(rolled.is_ok())),
            ],
        );
        return RefitOutcome::RolledBack;
    }

    // 6. Accepted: the candidate is the new baseline and warm seed.
    state.prev = selection.model;
    state.baseline = selection.dev_score;
    state.labeler = candidate;
    state.registry.prune_retired(state.options.keep_retired.max(1));
    state.shared.status().last_published_version = Some(version);
    goggles_obs::log::info(
        "trainer",
        "candidate published",
        &[
            ("version", goggles_obs::Value::from(version)),
            ("dev_score", goggles_obs::Value::from(selection.dev_score)),
            ("rows", goggles_obs::Value::from(state.total_rows as u64)),
        ],
    );
    RefitOutcome::Published
}

/// Poll the registry's per-version serve counter until the canary saw
/// `need` requests or `timeout` expires; returns the count it saw.
fn wait_for_canary(registry: &SnapshotRegistry, version: u64, need: u64, timeout: Duration) -> u64 {
    let deadline = Instant::now() + timeout;
    loop {
        let served = registry
            .versions()
            .iter()
            .find(|v| v.version == version)
            .map(|v| v.served)
            .unwrap_or(0);
        if served >= need || Instant::now() >= deadline {
            return served;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

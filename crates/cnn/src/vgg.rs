//! The VGG-16 backbone (Simonyan & Zisserman, 2014) at configurable width,
//! with taps at the five max-pooling layers — the exact surface the paper's
//! affinity functions consume — plus the "logits" feature head the
//! Snuba/Logits baselines use (§5.1.2, §5.1.5).

use crate::layers::{relu_in_place, Conv2d, ConvScratch, Linear, MaxPool2d};
use goggles_tensor::rng::std_rng;
use goggles_tensor::Tensor3;
use goggles_vision::Image;

/// Configuration of the surrogate VGG-16.
#[derive(Debug, Clone, PartialEq)]
pub struct VggConfig {
    /// Input channel count (3 for RGB; grayscale images are broadcast).
    pub input_channels: usize,
    /// Channel widths of the five convolutional blocks. The canonical VGG-16
    /// is `[64, 128, 256, 512, 512]`; the default here is 1/8 of that, which
    /// keeps full-dataset evaluation CPU-friendly while preserving topology.
    pub block_channels: [usize; 5],
    /// Spatial input size (square). VGG-16 uses 224; the reproduction
    /// defaults to 64 so that the pool-5 map is 2×2 (DESIGN.md §5).
    pub input_size: usize,
    /// Widths of the two hidden fully-connected layers (VGG: 4096, 4096).
    pub fc_dims: [usize; 2],
    /// Output ("logits") dimension (VGG: 1000 ImageNet classes).
    pub logits_dim: usize,
}

impl Default for VggConfig {
    fn default() -> Self {
        Self {
            input_channels: 3,
            block_channels: [8, 16, 32, 64, 64],
            input_size: 64,
            fc_dims: [128, 128],
            logits_dim: 100,
        }
    }
}

impl VggConfig {
    /// A very small configuration for fast unit tests (32×32 input).
    pub fn tiny() -> Self {
        Self {
            input_channels: 3,
            block_channels: [4, 8, 8, 16, 16],
            input_size: 32,
            fc_dims: [32, 32],
            logits_dim: 16,
        }
    }

    /// Number of convolution layers per block — fixed by the VGG-16 paper.
    pub const CONVS_PER_BLOCK: [usize; 5] = [2, 2, 3, 3, 3];

    /// Spatial size of the pool-`i` output (0-based block index).
    pub fn pool_size(&self, block: usize) -> usize {
        assert!(block < 5);
        self.input_size >> (block + 1)
    }

    /// Flattened feature length after pool-5 (input to the first FC layer).
    pub(crate) fn flattened_len(&self) -> usize {
        let s = self.pool_size(4);
        self.block_channels[4] * s * s
    }

    /// Estimated flops of one forward pass (2 flops per multiply-add),
    /// counting the 13 3×3 convolutions at their block resolutions plus the
    /// three dense layers. Pooling, bias and ReLU sweeps are omitted — they
    /// are linear in the activation count and vanish next to the products.
    /// The observability layer divides GEMM throughput by this to report
    /// effective GFLOP/s per image.
    pub fn forward_flops_per_image(&self) -> u64 {
        let mut flops = 0u64;
        let mut in_c = self.input_channels as u64;
        for (b, &out_c) in self.block_channels.iter().enumerate() {
            // Convolutions run at the block's input resolution; the 2× pool
            // comes after the block.
            let s = (self.input_size >> b) as u64;
            for _ in 0..Self::CONVS_PER_BLOCK[b] {
                flops += 2 * 9 * in_c * (out_c as u64) * s * s;
                in_c = out_c as u64;
            }
        }
        let dims = [
            self.flattened_len() as u64,
            self.fc_dims[0] as u64,
            self.fc_dims[1] as u64,
            self.logits_dim as u64,
        ];
        for pair in dims.windows(2) {
            flops += 2 * pair[0] * pair[1];
        }
        flops
    }
}

/// The VGG-16 network: 13 convolutions in 5 max-pooled blocks + 3 dense
/// layers, with deterministic seeded weights.
#[derive(Debug, Clone)]
pub struct Vgg16 {
    config: VggConfig,
    blocks: Vec<Vec<Conv2d>>,
    fc: [Linear; 3],
}

impl Vgg16 {
    /// Build the network with He-initialized weights drawn from `seed`.
    ///
    /// The same `(config, seed)` pair always produces the same network, so
    /// every pipeline in the workspace shares one frozen backbone exactly as
    /// the paper shares one pretrained VGG-16 across all datasets.
    pub fn new(config: &VggConfig, seed: u64) -> Self {
        assert!(config.input_size >= 32, "input_size must be ≥ 32 for five 2x pools");
        assert!(
            config.input_size.is_power_of_two(),
            "input_size must be a power of two so pool maps stay aligned"
        );
        let mut rng = std_rng(seed);
        let mut blocks = Vec::with_capacity(5);
        let mut in_c = config.input_channels;
        for (b, &out_c) in config.block_channels.iter().enumerate() {
            let mut layers = Vec::with_capacity(VggConfig::CONVS_PER_BLOCK[b]);
            for _ in 0..VggConfig::CONVS_PER_BLOCK[b] {
                layers.push(Conv2d::new_he_init(&mut rng, in_c, out_c, 3));
                in_c = out_c;
            }
            blocks.push(layers);
        }
        let fc = [
            Linear::new_he_init(&mut rng, config.flattened_len(), config.fc_dims[0]),
            Linear::new_he_init(&mut rng, config.fc_dims[0], config.fc_dims[1]),
            Linear::new_he_init(&mut rng, config.fc_dims[1], config.logits_dim),
        ];
        Self { config: config.clone(), blocks, fc }
    }

    /// The configuration this network was built with.
    pub fn config(&self) -> &VggConfig {
        &self.config
    }

    /// Estimated flops of one forward pass — see
    /// [`VggConfig::forward_flops_per_image`].
    pub fn forward_flops_per_image(&self) -> u64 {
        self.config.forward_flops_per_image()
    }

    /// Normalize an arbitrary image into the network's input tensor:
    /// grayscale is broadcast to the input channel count, spatial size is
    /// bilinearly resized to `input_size`, and values are shifted/scaled by
    /// **fixed** constants — the analogue of VGG's dataset-mean subtraction.
    /// (Per-image standardization would erase cross-image color statistics,
    /// which are a primary class signal on color datasets.)
    pub(crate) fn prepare_input(&self, img: &Image) -> Tensor3<f32> {
        let mut buf = Vec::new();
        self.prepare_input_into(img, &mut buf);
        let s = self.config.input_size;
        Tensor3::from_vec(self.config.input_channels, s, s, buf)
            .expect("prepare_input: geometry invariant")
    }

    /// [`Vgg16::prepare_input`] into a caller-owned buffer (resized to
    /// `input_channels · s²`). The image is only borrowed until a copy is
    /// genuinely needed: a matching-geometry image is normalized in one
    /// pass straight into `out`, a mismatched spatial size goes through one
    /// bilinear resize (on the *source* channel count — a grayscale image
    /// is resized once, not three times), and channel broadcast happens
    /// during the final write.
    pub(crate) fn prepare_input_into(&self, img: &Image, out: &mut Vec<f32>) {
        let s = self.config.input_size;
        let cin = self.config.input_channels;
        assert!(
            img.channels() == cin || img.channels() == 1,
            "prepare_input: channel count mismatch"
        );
        let resized_storage;
        let src: &Tensor3<f32> = if img.height() != s || img.width() != s {
            resized_storage = goggles_vision::filter::resize_bilinear(img, s, s);
            resized_storage.tensor()
        } else {
            img.tensor()
        };
        out.resize(cin * s * s, 0.0);
        // Fixed affine normalization: mean 0.45, std 0.25 (≈ ImageNet
        // statistics in [0,1] units).
        let norm = |v: f32| (v - 0.45) * 4.0;
        if src.channels() == cin {
            for (d, &v) in out.iter_mut().zip(src.as_slice()) {
                *d = norm(v);
            }
        } else {
            // Broadcast the single grayscale plane to every input channel.
            let plane = s * s;
            let (first, rest) = out.split_at_mut(plane);
            for (d, &v) in first.iter_mut().zip(src.as_slice()) {
                *d = norm(v);
            }
            for chunk in rest.chunks_exact_mut(plane) {
                chunk.copy_from_slice(first);
            }
        }
    }

    /// Run the convolutional trunk and return the filter map after **each**
    /// of the five max-pool layers (the paper's Algorithm 1, line 1).
    ///
    /// Runs the im2col + blocked-GEMM fast path with a throwaway arena —
    /// hot loops should hold a [`ConvScratch`] and call
    /// [`Vgg16::forward_pool_taps_into`]. The pre-GEMM scalar path is
    /// retained as [`Vgg16::forward_pool_taps_naive`].
    pub fn forward_pool_taps(&self, img: &Image) -> Vec<Tensor3<f32>> {
        self.forward_pool_taps_into(&mut ConvScratch::new(), img)
    }

    /// [`Vgg16::forward_pool_taps`] against a caller-owned scratch arena:
    /// the 13 convolutions ping-pong between the arena's two activation
    /// buffers (im2col panel and GEMM packing reused layer to layer, bias +
    /// ReLU fused into each GEMM's output write), and each block's 2×2 pool
    /// writes **directly into the returned tap tensor** — the five taps are
    /// the only per-call allocations once the arena has warmed up.
    ///
    /// Bit-deterministic: the same `(network, image)` pair produces
    /// bit-identical taps for any arena history and any thread's arena.
    pub fn forward_pool_taps_into(
        &self,
        scratch: &mut ConvScratch,
        img: &Image,
    ) -> Vec<Tensor3<f32>> {
        let ConvScratch { col, gemm, act } = scratch;
        let [ping, pong] = act;
        self.prepare_input_into(img, ping);
        let mut c = self.config.input_channels;
        let mut h = self.config.input_size;
        let mut w = h;
        // `flip == false` ⇒ the current activation lives in `ping`.
        let mut flip = false;
        let mut taps = Vec::with_capacity(5);
        for block in &self.blocks {
            for conv in block {
                let out_c = conv.out_channels();
                let (src, dst) = if flip { (&*pong, &mut *ping) } else { (&*ping, &mut *pong) };
                if dst.len() < out_c * h * w {
                    dst.resize(out_c * h * w, 0.0);
                }
                conv.forward_cols(
                    &src[..c * h * w],
                    h,
                    w,
                    col,
                    gemm,
                    true,
                    &mut dst[..out_c * h * w],
                );
                c = out_c;
                flip = !flip;
            }
            let (oh, ow) = (h / 2, w / 2);
            let mut tap = Tensor3::zeros(c, oh, ow);
            let src = if flip { &*pong } else { &*ping };
            MaxPool2d.forward_into(&src[..c * h * w], c, h, w, tap.as_mut_slice());
            // Stage the pooled map back into the current buffer as the next
            // block's input (a ~KiB memcpy; the taps Vec may reallocate, so
            // the next conv cannot borrow the tap directly while later taps
            // are pushed).
            let dst = if flip { &mut *pong } else { &mut *ping };
            dst[..c * oh * ow].copy_from_slice(tap.as_slice());
            taps.push(tap);
            h = oh;
            w = ow;
        }
        taps
    }

    /// Scalar reference trunk — the original per-pixel convolution loop
    /// ([`Conv2d::forward_naive`]) with per-layer tensor allocation. Kept
    /// as the semantic ground truth for the property tests and the
    /// `repro -- embed` baseline; agrees with the fast path within `1e-5`
    /// per tap value.
    pub fn forward_pool_taps_naive(&self, img: &Image) -> Vec<Tensor3<f32>> {
        let mut x = self.prepare_input(img);
        let mut taps = Vec::with_capacity(5);
        for block in &self.blocks {
            for conv in block {
                x = conv.forward_naive(&x);
                relu_in_place(&mut x);
            }
            x = MaxPool2d.forward(&x);
            taps.push(x.clone());
        }
        taps
    }

    /// Full forward pass to the logits feature vector (the representation
    /// the Snuba-primitives and "Logits" baselines consume).
    pub fn logits(&self, img: &Image) -> Vec<f32> {
        self.logits_with(&mut ConvScratch::new(), img)
    }

    /// [`Vgg16::logits`] against a caller-owned scratch arena (see
    /// [`Vgg16::forward_pool_taps_into`]).
    pub(crate) fn logits_with(&self, scratch: &mut ConvScratch, img: &Image) -> Vec<f32> {
        let taps = self.forward_pool_taps_into(scratch, img);
        let last = taps.last().expect("five taps");
        let mut x: Vec<f32> = last.as_slice().to_vec();
        for (i, layer) in self.fc.iter().enumerate() {
            x = layer.forward(&x);
            // ReLU between dense layers but not after the logits output.
            if i < 2 {
                for v in &mut x {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
        }
        x
    }

    /// Convenience: logits for a batch of images as an `n × logits_dim`
    /// row-major matrix, fanned out across the machine's available
    /// parallelism (see [`Vgg16::logits_batch_threaded`] for an explicit
    /// budget).
    pub fn logits_batch(&self, imgs: &[Image]) -> goggles_tensor::Matrix<f32> {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        self.logits_batch_threaded(imgs, threads)
    }

    /// Batch logits across an explicit thread budget. Images are
    /// independent, each worker owns one scratch arena and writes disjoint
    /// output rows, so the result is identical for every thread count.
    pub fn logits_batch_threaded(
        &self,
        imgs: &[Image],
        threads: usize,
    ) -> goggles_tensor::Matrix<f32> {
        let ld = self.config.logits_dim;
        let mut out = goggles_tensor::Matrix::zeros(imgs.len(), ld);
        if imgs.is_empty() || ld == 0 {
            return out;
        }
        let threads = threads.max(1).min(imgs.len());
        if threads <= 1 || imgs.len() < 4 {
            let mut scratch = ConvScratch::new();
            for (i, img) in imgs.iter().enumerate() {
                out.row_mut(i).copy_from_slice(&self.logits_with(&mut scratch, img));
            }
            return out;
        }
        let chunk = imgs.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (rows, chunk_imgs) in
                out.as_mut_slice().chunks_mut(chunk * ld).zip(imgs.chunks(chunk))
            {
                scope.spawn(move || {
                    let mut scratch = ConvScratch::new();
                    for (row, img) in rows.chunks_mut(ld).zip(chunk_imgs) {
                        row.copy_from_slice(&self.logits_with(&mut scratch, img));
                    }
                });
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goggles_vision::draw;

    fn test_net() -> Vgg16 {
        Vgg16::new(&VggConfig::tiny(), 7)
    }

    #[test]
    fn forward_flops_match_hand_count_on_tiny_config() {
        let cfg = VggConfig::tiny();
        // Block 0 at 32×32: 3→4 then 4→4.
        let mut expected = 2 * 9 * (3 * 4 + 4 * 4) * 32 * 32;
        // Block 1 at 16×16: 4→8, 8→8.
        expected += 2 * 9 * (4 * 8 + 8 * 8) * 16 * 16;
        // Block 2 at 8×8: 8→8 ×3.
        expected += 2 * 9 * (3 * 8 * 8) * 8 * 8;
        // Block 3 at 4×4: 8→16, then 16→16 ×2.
        expected += 2 * 9 * (8 * 16 + 2 * 16 * 16) * 4 * 4;
        // Block 4 at 2×2: 16→16 ×3.
        expected += 2 * 9 * (3 * 16 * 16) * 2 * 2;
        // FC: flattened(16·1·1=16)→32→32→16.
        expected += 2 * (16 * 32 + 32 * 32 + 32 * 16);
        assert_eq!(cfg.forward_flops_per_image(), expected as u64);
        assert_eq!(test_net().forward_flops_per_image(), expected as u64);
    }

    fn textured_image(seed_shift: f32) -> Image {
        let mut img = Image::filled(3, 32, 32, 0.4);
        draw::fill_disc(&mut img, 10.0 + seed_shift, 12.0, 6.0, &[0.9, 0.2, 0.1]);
        draw::fill_rect(&mut img, 20, 4, 28, 30, &[0.1, 0.6, 0.9]);
        img
    }

    #[test]
    fn pool_taps_have_expected_shapes() {
        let net = test_net();
        let taps = net.forward_pool_taps(&textured_image(0.0));
        let cfg = VggConfig::tiny();
        assert_eq!(taps.len(), 5);
        for (b, tap) in taps.iter().enumerate() {
            let s = cfg.pool_size(b);
            assert_eq!(tap.shape(), (cfg.block_channels[b], s, s), "block {b}");
        }
    }

    #[test]
    fn logits_have_configured_dim_and_are_finite() {
        let net = test_net();
        let l = net.logits(&textured_image(0.0));
        assert_eq!(l.len(), VggConfig::tiny().logits_dim);
        assert!(l.iter().all(|v| v.is_finite()));
        // not all dead
        assert!(l.iter().any(|&v| v.abs() > 1e-6));
    }

    #[test]
    fn network_is_deterministic() {
        let a = test_net().logits(&textured_image(0.0));
        let b = test_net().logits(&textured_image(0.0));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_networks() {
        let a = Vgg16::new(&VggConfig::tiny(), 1).logits(&textured_image(0.0));
        let b = Vgg16::new(&VggConfig::tiny(), 2).logits(&textured_image(0.0));
        assert_ne!(a, b);
    }

    #[test]
    fn similar_images_have_closer_logits_than_dissimilar() {
        let net = test_net();
        let a = net.logits(&textured_image(0.0));
        let a2 = net.logits(&textured_image(1.0)); // slightly shifted disc
        let mut other = Image::filled(3, 32, 32, 0.4);
        draw::fill_stripes(&mut other, 0.8, 5.0, 0.5, &[0.2, 0.9, 0.3], 1.0);
        let b = net.logits(&other);
        let sim = |x: &[f32], y: &[f32]| goggles_tensor::cosine_similarity(x, y);
        assert!(
            sim(&a, &a2) > sim(&a, &b),
            "near pair {} should beat far pair {}",
            sim(&a, &a2),
            sim(&a, &b)
        );
    }

    #[test]
    fn grayscale_input_is_broadcast() {
        let net = test_net();
        let gray = Image::filled(1, 40, 40, 0.5); // also exercises resize
        let taps = net.forward_pool_taps(&gray);
        assert_eq!(taps[0].channels(), VggConfig::tiny().block_channels[0]);
    }

    #[test]
    fn activations_do_not_explode_or_vanish() {
        let net = test_net();
        let taps = net.forward_pool_taps(&textured_image(0.0));
        for (b, tap) in taps.iter().enumerate() {
            let mx = tap.as_slice().iter().copied().fold(0.0f32, f32::max);
            assert!(mx.is_finite() && mx < 1e4, "block {b} max {mx}");
            assert!(mx > 1e-6, "block {b} is dead (max {mx})");
        }
    }

    #[test]
    fn flattened_len_matches_tap5() {
        let cfg = VggConfig::tiny();
        let net = Vgg16::new(&cfg, 3);
        let taps = net.forward_pool_taps(&textured_image(0.0));
        assert_eq!(taps[4].as_slice().len(), cfg.flattened_len());
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_input_rejected() {
        let cfg = VggConfig { input_size: 48, ..VggConfig::tiny() };
        let _ = Vgg16::new(&cfg, 0);
    }

    #[test]
    fn logits_batch_stacks_rows() {
        let net = test_net();
        let imgs = vec![textured_image(0.0), textured_image(2.0)];
        let m = net.logits_batch(&imgs);
        assert_eq!(m.shape(), (2, VggConfig::tiny().logits_dim));
        assert_eq!(m.row(0), net.logits(&imgs[0]).as_slice());
    }
}

//! # goggles-cnn
//!
//! From-scratch CNN inference for the GOGGLES reproduction.
//!
//! The paper's affinity functions are defined over the filter maps produced
//! at the five max-pooling layers of an ImageNet-pretrained VGG-16 (§3).
//! Pretrained weights cannot be shipped in this offline reproduction, so this
//! crate implements the full **VGG-16 topology** (13 convolutions in 5 blocks,
//! each block closed by a 2×2 max-pool, then 3 fully-connected layers) with
//! **deterministic He-initialized surrogate weights** at a configurable width
//! multiple.
//!
//! Why a random-weight surrogate preserves the paper's behaviour: random
//! convolutional features act as a locality-sensitive projection — two image
//! patches that are similar in pixel space map to similar filter-map columns,
//! and dissimilar patches decorrelate. The affinity-coding premise only needs
//! *some* affinity functions to separate classes while many others are noise
//! (Example 2 of the paper), which is exactly the regime a random backbone
//! produces. DESIGN.md §2 records this substitution.
//!
//! ```
//! use goggles_cnn::{Vgg16, VggConfig};
//! use goggles_vision::Image;
//!
//! let net = Vgg16::new(&VggConfig::tiny(), 42);
//! let img = Image::filled(3, 32, 32, 0.5);
//! let taps = net.forward_pool_taps(&img);
//! assert_eq!(taps.len(), 5); // one filter map per max-pool layer
//! ```

pub mod layers;
pub mod vgg;

pub use layers::{Conv2d, ConvScratch};
pub use vgg::{Vgg16, VggConfig};

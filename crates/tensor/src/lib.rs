//! # goggles-tensor
//!
//! Dense numeric substrate for the GOGGLES reproduction: row-major matrices
//! and small tensors, the linear algebra the paper's inference needs
//! (the fused matmul + column-max affinity kernel, symmetric
//! eigendecomposition, Cholesky, PCA, truncated SVD), statistics helpers
//! (log-sum-exp, histograms, AUC) and deterministic random sampling.
//!
//! Everything is implemented from scratch on top of `std` + `rand`; there is
//! no BLAS/LAPACK dependency. The matrix kernels use the `ikj` loop order and
//! preallocated buffers so release builds auto-vectorize well (see the Rust
//! Performance Book guidance on iterators and bounds checks).
//!
//! ```
//! use goggles_tensor::Matrix;
//! let a = Matrix::<f64>::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::<f64>::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```

pub mod linalg;
pub mod matrix;
pub mod rng;
pub mod scalar;
pub mod stats;
pub mod tensor3;

pub use linalg::EighResult;
pub use linalg::{
    cholesky, colmax_matmul_f32, colmax_matmul_naive_f32, colmax_matmul_panel_f32,
    colmax_matmul_scratch_f32, gemm_bias_relu_f32, gemm_call_count, gemm_flop_count, im2col_3x3,
    orthogonal_iteration, solve_lower_triangular, ColmaxPanel, ColmaxScratch, GemmScratch, Pca,
};
pub use matrix::Matrix;
pub use rng::{normal, sample_weighted, sample_without_replacement, std_rng};
pub use scalar::Scalar;
pub use stats::{argmax, auc, cosine_similarity, histogram, log_sum_exp, mean};
pub use tensor3::Tensor3;

/// Errors produced by tensor and linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
// goggles-lint: allow(dead-pub): error type of the pub tensor API: external callers name it only through `?`/inference
pub enum TensorError {
    /// Two operands had incompatible shapes. The payload carries a
    /// human-readable description of the mismatch.
    ShapeMismatch(String),
    /// A routine that requires a square matrix received a rectangular one.
    NotSquare { rows: usize, cols: usize },
    /// Numerical failure, e.g. Cholesky on a non-positive-definite matrix.
    Numerical(String),
    /// An empty input where at least one element is required.
    Empty(String),
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            TensorError::NotSquare { rows, cols } => {
                write!(f, "expected square matrix, got {rows}x{cols}")
            }
            TensorError::Numerical(msg) => write!(f, "numerical error: {msg}"),
            TensorError::Empty(msg) => write!(f, "empty input: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;

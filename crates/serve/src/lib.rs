//! # goggles-serve
//!
//! Turns a fitted GOGGLES pipeline into a **servable artifact**. The paper's
//! system (Das et al., SIGMOD 2020) is batch-only: labeling even one more
//! image means re-embedding everything, rebuilding the `N × αN` affinity
//! matrix and refitting every mixture model. This crate adds the missing
//! inference path, in three layers:
//!
//! 1. **Snapshot** — [`FittedLabeler`] captures the frozen backbone recipe,
//!    the training corpus' prototype bank, the fitted per-function GMM and
//!    ensemble parameters, and the dev-set cluster→class mapping, with a
//!    hand-rolled dependency-free binary format
//!    ([`FittedLabeler::save`]/[`FittedLabeler::load`], checksummed).
//! 2. **Out-of-sample inference** — [`FittedLabeler::label_one`] /
//!    [`FittedLabeler::label_batch`] embed only the incoming image(s),
//!    compute their `1 × αN` affinity rows against the stored prototypes
//!    and fold them through the stored models (`predict_proba`, no refit).
//!    Per-request cost is `O(image)`, not `O(dataset)`.
//! 3. **Service front** — [`LabelService`] runs worker threads over a
//!    bounded request queue with micro-batching (configurable batch size
//!    and linger timeout) and throughput/latency counters.
//! 4. **Model lifecycle** — a [`SnapshotRegistry`] of versioned
//!    `Arc<FittedLabeler>`s behind every service: atomic
//!    `publish`/`rollback` under live traffic (workers resolve the current
//!    version per batch, no lock held across labeling),
//!    [`LabelService::reload_from`] for hot-reloading snapshot files, and
//!    per-version serve counters. Snapshots come in two formats
//!    ([`SnapshotFormat`]): v1 (lossless `f64`, byte-exact reloads) and v2
//!    (compact `f32` with optional u16-quantized prototype bank — under
//!    half the bytes, argmax-preserving) — both validated at load/publish
//!    time so corrupt artifacts are rejected before they can serve.
//! 5. **Transport-agnostic API + network front** — the [`Labeler`] trait
//!    (`submit`/`label`/`label_all`) is implemented by the in-process
//!    [`FittedLabeler`], the [`LabelService`], and the TCP client
//!    [`RemoteLabeler`], so callers are written once against the trait.
//!    Submission is **ticket-based** ([`Ticket`]: `poll`/`wait`/
//!    `wait_timeout`, drop-to-cancel, per-request deadlines answered with
//!    [`ServeError::Deadline`]); the blocking `label`/`label_all` calls are
//!    thin wrappers over tickets. [`wire`] defines the length-framed,
//!    checksummed binary protocol; [`WireServer`] (and the `goggles-served`
//!    binary) put a std-only `TcpListener` front on a running service.
//!
//! ## Quickstart: fit → snapshot → serve
//!
//! ```no_run
//! use goggles_core::GogglesConfig;
//! use goggles_datasets::{generate, TaskConfig, TaskKind};
//! use goggles_serve::{FittedLabeler, LabelService, ServeConfig};
//!
//! // Fit once (batch), freeze, and persist.
//! let ds = generate(&TaskConfig::new(TaskKind::Surface, 40, 25, 7));
//! let dev = ds.sample_dev_set(5, 7);
//! let (labeler, fit_result) = FittedLabeler::fit(&GogglesConfig::fast(), &ds, &dev).unwrap();
//! let bytes = labeler.save();
//!
//! // Later / elsewhere: reload and serve online traffic.
//! let reloaded = FittedLabeler::load(&bytes).unwrap();
//! let service = LabelService::spawn(reloaded, ServeConfig::default());
//! let response = service.label(&ds.images[ds.test_indices[0]]).unwrap();
//! println!("class {} with p = {:?}", response.label, response.probs);
//! ```

pub mod api;
pub mod client;
pub mod codec;
pub mod fault;
pub mod registry;
pub mod server;
pub mod service;
pub mod snapshot;
pub mod wire;

pub use api::{Labeler, Ticket};
pub use client::{RemoteLabeler, RetryPolicy};
pub use fault::FaultPlan;
pub use registry::{PublishedSnapshot, SnapshotRegistry, VersionInfo};
pub use server::{IngestSink, ServerOptions, WireServer};
pub use service::{
    LabelResponse, LabelService, LatencyHistogram, ServeConfig, ServiceStats, StageStats,
};
pub use snapshot::{
    sweep_snapshot_dir, FittedLabeler, SnapshotFormat, StageTiming, SweepReport, TrainingBootstrap,
};
pub use wire::RemoteStats;

/// Errors surfaced by the serving layer.
///
/// `Clone` so a [`Ticket`] outcome can be observed more than once and a
/// wire reply can be both logged and returned.
#[derive(Debug, Clone)]
pub enum ServeError {
    /// Snapshot encoding/decoding failure (bad magic, checksum, truncation,
    /// implausible lengths…) — the byte stream itself is broken.
    Snapshot(String),
    /// The snapshot decoded cleanly but its *content* is inconsistent (a
    /// non-permutation mapping, mismatched model shapes…). A
    /// corrupted-but-checksummed or hand-built artifact fails here at
    /// load/publish time instead of panicking on the first request.
    Corrupt(String),
    /// Filesystem failure while persisting/loading a snapshot.
    Io(String),
    /// The underlying pipeline failed while fitting.
    Pipeline(goggles_core::GogglesError),
    /// Invalid registry operation (e.g. rolling back past the first
    /// published version).
    Registry(String),
    /// The service is shutting down (or already shut down), or the request
    /// was dropped because the labeler panicked on it.
    Closed,
    /// The request's deadline expired before a worker labeled it. The
    /// micro-batcher answers expired requests with this instead of letting
    /// them occupy a batch slot.
    Deadline,
    /// Wire-protocol damage (bad magic, checksum mismatch, truncated frame,
    /// implausible lengths, unknown opcode…) on the network path.
    Wire(String),
    /// The server shed this request under load: the global queue was at its
    /// shed watermark or the connection exceeded its inflight cap. Always
    /// retryable — back off and resubmit.
    Overloaded,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
            ServeError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            ServeError::Io(msg) => write!(f, "io error: {msg}"),
            ServeError::Pipeline(e) => write!(f, "pipeline error: {e}"),
            ServeError::Registry(msg) => write!(f, "registry error: {msg}"),
            ServeError::Closed => write!(f, "label service is closed"),
            ServeError::Deadline => write!(f, "request deadline expired before labeling"),
            ServeError::Wire(msg) => write!(f, "wire protocol error: {msg}"),
            ServeError::Overloaded => write!(f, "server overloaded; request shed, retry later"),
        }
    }
}

impl ServeError {
    /// Whether a retry of the same request may succeed.
    ///
    /// `Overloaded` (transient load), `Io` (transient filesystem/socket
    /// trouble) and `Closed` (the connection died — a reconnect gets a fresh
    /// one) are retryable; everything else is a property of the request or
    /// the artifact and will fail identically on resubmission. This flag
    /// travels in the wire error reply so remote clients can decide without
    /// string-matching, and [`client::RetryPolicy`] keys off it.
    pub fn retryable(&self) -> bool {
        matches!(self, ServeError::Overloaded | ServeError::Io(_) | ServeError::Closed)
    }
}

impl std::error::Error for ServeError {}

impl From<goggles_core::GogglesError> for ServeError {
    fn from(e: goggles_core::GogglesError) -> Self {
        ServeError::Pipeline(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Internal alias used by submodules (avoids clashing with `core::Result`).
pub(crate) type ServeResult<T> = Result<T>;

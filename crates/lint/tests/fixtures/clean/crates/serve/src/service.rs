//! Fixture: hot-path code that is panic-free, annotated, or test-only,
//! plus clean/annotated examples of the v2 flow rules (`lock-order`,
//! `panic-reach`, `alloc-hot`).

use crate::snapshot::decode_header;
use std::sync::{Mutex, PoisonError};

pub fn checked(xs: &[u8]) -> Option<u8> {
    xs.first().copied()
}

/// `panic-reach`: the helper's panic site is annotated, so this hot-path
/// call inherits nothing.
pub fn handle(xs: &[u8]) -> u8 {
    decode_header(xs)
}

/// `lock-order`: a statement-temporary guard that dies before anything
/// blocks is clean.
pub fn queue_len(q: &Mutex<Vec<u8>>) -> usize {
    q.lock().unwrap_or_else(PoisonError::into_inner).len()
}

/// `lock-order`: copy out under the lock, block after it is released.
pub fn write_drained(w: &Mutex<Vec<u8>>, out: &mut impl std::io::Write) {
    let frame = {
        let buf = w.lock().unwrap_or_else(PoisonError::into_inner);
        buf.clone()
    };
    let _ = out.write_all(&frame);
}

/// `lock-order`: blocking while the guard is live, annotated as intended.
pub fn flush_frames(w: &Mutex<std::io::Sink>, payload: &[u8]) {
    use std::io::Write as _;
    let mut sink = w.lock().unwrap_or_else(PoisonError::into_inner);
    // goggles-lint: allow(lock-order): fixture — the lock exists to serialize whole-frame writes onto the shared sink
    let _ = sink.write_all(payload);
}

/// `alloc-hot`: the buffer is hoisted and cleared per iteration (clean);
/// the one per-item allocation that remains is annotated.
pub fn render_all(xs: &[u8]) -> String {
    let mut out = String::new();
    let mut line = String::new();
    for &x in xs {
        line.clear();
        // goggles-lint: allow(alloc-hot): fixture — demonstrates the per-iteration escape hatch
        line.push_str(&format!("item {x}"));
        out.push_str(&line);
    }
    out
}

pub fn annotated(xs: &[u8]) -> u8 {
    // goggles-lint: allow(panic): fixture exercises the standalone-comment scope
    xs.first().unwrap() + xs[0] // goggles-lint: allow(index): fixture exercises trailing-comment scope
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic() {
        let xs = [1u8];
        assert_eq!(xs[0], xs.first().copied().unwrap());
    }
}

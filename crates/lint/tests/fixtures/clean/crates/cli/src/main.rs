//! Fixture: binary target consuming the workspace API. Binaries count as
//! an external realm for `dead-pub`, so every name mentioned here is alive.

fn main() {
    let _surface = (
        lookup,
        total,
        ordered,
        bump,
        encode_all,
        dispatch,
        is_closed,
        checked,
        annotated,
        from_u8,
        first_unchecked,
        sort_scores,
        queue_len,
        flush_frames,
        write_drained,
        render_all,
        handle,
    );
    let _op: Opcode = Opcode::Label;
}

//! Smoke tests of the experiment harness: every table/figure entry point
//! runs end-to-end at micro scale and produces structurally valid output.

use goggles::experiments::report::Table;
use goggles::experiments::{figures, table1, table2, RunParams, TrialContext};

fn micro_params() -> RunParams {
    RunParams {
        n_train_per_class: 8,
        n_test_per_class: 3,
        image_size: 32,
        pairs: 1,
        trials: 1,
        dev_per_class: 2,
        top_z: 2,
        tiny_backbone: true,
    }
}

#[test]
fn table1_runs_and_has_paper_layout() {
    let results = table1::run(&micro_params());
    assert_eq!(results.datasets.len(), 5);
    for row in &results.accuracy {
        assert_eq!(row.len(), table1::METHOD_NAMES.len());
        // GOGGLES, Snuba, HoG, Logits, K-Means, GMM, Spectral always run.
        assert!(row[0].is_some());
        assert!(row[2].is_some());
    }
    // Snorkel only on CUB.
    assert!(results.accuracy[0][1].is_some());
    assert!(results.accuracy[1][1].is_none());
    let rendered = results.to_table().render();
    assert!(rendered.contains("Average"));
    assert!(rendered.contains("GOGGLES"));
}

#[test]
fn table2_runs_and_has_paper_layout() {
    let results = table2::run(&micro_params());
    assert_eq!(results.datasets.len(), 5);
    for (d, row) in results.accuracy.iter().enumerate() {
        assert_eq!(row.len(), table2::METHOD_NAMES.len());
        for (m, cell) in row.iter().enumerate() {
            if m == 1 {
                // Snorkel: CUB only
                assert_eq!(cell.is_some(), d == 0, "dataset {d}");
            } else {
                assert!(cell.is_some(), "dataset {d} method {m}");
                let v = cell.unwrap();
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }
}

#[test]
fn all_figures_run_at_micro_scale() {
    let params = micro_params();
    let task = params.tasks_for_trial(0)[0];
    let ctx = TrialContext::build(&params, &task, 0);

    let fig2 = figures::figure2(&ctx, 8);
    assert_eq!(fig2.histograms.len(), 3);
    assert_eq!(fig2.to_table().rows.len(), 8);

    let fig5 = figures::figure5(&ctx);
    assert_eq!(fig5.rows.len(), 3);

    let fig7 = figures::figure7(&[0.8], 12);
    assert_eq!(fig7.rows.len(), 12);

    let fig8 = figures::figure8(&ctx, &[0, 1, 2], 1);
    assert_eq!(fig8.len(), 3);
    assert!((fig8[0].1 - 0.5).abs() < 1e-9, "d=0 must be chance for K=2");

    let fig9 = figures::figure9(&ctx, &[1, 5, 10], 1);
    assert_eq!(fig9.len(), 3);
    assert_eq!(fig9[2].0, ctx.affinity.alpha.min(10));
}

#[test]
fn csv_artifacts_round_trip() {
    let dir = std::env::temp_dir().join(format!("goggles_it_{}", std::process::id()));
    let mut t = Table::new("smoke", &["a", "b"]);
    t.push_row(vec!["1".into(), "2".into()]);
    let path = dir.join("smoke.csv");
    t.write_csv(&path).expect("csv write");
    let content = std::fs::read_to_string(&path).expect("read back");
    assert_eq!(content, "a,b\n1,2\n");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn optimal_mapping_accuracy_never_below_dev_mapping() {
    // For any labeling, granting the optimal mapping can only help — the
    // protocol asymmetry the paper gives its clustering baselines.
    let params = micro_params();
    let task = params.tasks_for_trial(0)[2];
    let ctx = TrialContext::build(&params, &task, 0);
    let out = goggles::experiments::methods::run_goggles(&ctx);
    let mapped = ctx.labeling_accuracy(&out.hard_labels);
    let optimal = ctx.optimal_mapping_accuracy(&out.hard_labels, 2);
    assert!(optimal >= mapped - 1e-12, "optimal {optimal} < dev-mapped {mapped}");
}

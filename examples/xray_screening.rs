//! Medical imaging scenario: bootstrap a TB-screening classifier from
//! unlabeled chest X-rays — the paper's motivating use case for domains
//! with **zero** ImageNet overlap (§5.1.1).
//!
//! The full loop: GOGGLES labels the unlabeled X-rays, the probabilistic
//! labels train a downstream model (expected cross-entropy, §2.1), and the
//! downstream model is evaluated on held-out patients — the Table 2
//! protocol, plus a comparison against training on the 10 dev labels alone
//! (the few-shot baseline).
//!
//! ```text
//! cargo run --release --example xray_screening
//! ```

use goggles::endmodel::{accuracy, standardize_fit, CosineClassifier, MlpHead, TrainConfig};
use goggles::prelude::*;
use goggles::tensor::Matrix;

fn main() {
    // Unlabeled screening corpus + 5 radiologist labels per class.
    let task = TaskConfig::new(TaskKind::TbXray, 40, 15, 7);
    let dataset = generate(&task);
    let dev = dataset.sample_dev_set(5, 7);
    println!("{}: {} unlabeled studies, 10 labeled", dataset.name, dataset.train_indices.len());

    // --- Step 1: GOGGLES generates training labels ---
    let goggles = Goggles::new(GogglesConfig::fast());
    let result = goggles.label_dataset(&dataset, &dev).expect("labeling failed");
    println!(
        "GOGGLES labeling accuracy: {:.2}%",
        100.0 * result.accuracy_excluding_dev(&dataset, &dev)
    );

    // --- Step 2: train the downstream screening model ---
    let to_f64 = |m: &Matrix<f32>| Matrix::from_fn(m.rows(), m.cols(), |i, j| m[(i, j)] as f64);
    let train_imgs: Vec<Image> = dataset.train_images().iter().map(|&i| i.clone()).collect();
    let test_imgs: Vec<Image> = dataset.test_images().iter().map(|&i| i.clone()).collect();
    let train_feats_raw = to_f64(&goggles.backbone().logits_batch(&train_imgs));
    let test_feats_raw = to_f64(&goggles.backbone().logits_batch(&test_imgs));
    let standardizer = standardize_fit(&train_feats_raw);
    let train_feats = standardizer.transform(&train_feats_raw);
    let test_feats = standardizer.transform(&test_feats_raw);

    let cfg = TrainConfig { epochs: 200, ..TrainConfig::default() };
    let head = MlpHead::train(&train_feats, &result.labels.probs, 32, &cfg);
    let test_acc = accuracy(&head.predict(&test_feats), &dataset.test_labels());
    println!("downstream model (GOGGLES labels) test accuracy: {:.2}%", 100.0 * test_acc);

    // --- Baseline: few-shot training on the dev set alone ---
    let dev_rows: Vec<usize> = dev
        .indices
        .iter()
        .map(|&i| dataset.train_indices.iter().position(|&t| t == i).unwrap())
        .collect();
    let support = train_feats.select_rows(&dev_rows);
    let fsl = CosineClassifier::train(&support, &dev.labels, 2, 150, 0);
    let fsl_acc = accuracy(&fsl.predict(&test_feats), &dataset.test_labels());
    println!("few-shot baseline (same 10 labels)  test accuracy: {:.2}%", 100.0 * fsl_acc);

    if test_acc >= fsl_acc {
        println!("\n=> exploiting the unlabeled pool beat training on the dev set alone.");
    } else {
        println!("\n=> on this draw the few-shot baseline won — rerun with more unlabeled data.");
    }
}

//! Integration tests of the comparison systems (Table 1 / Table 2 methods)
//! against the shared trial context, checking the relationships the paper's
//! evaluation depends on.

use goggles::experiments::methods::{
    run_flat_gmm, run_goggles, run_hog, run_kmeans, run_logits, run_snorkel, run_snuba,
    run_spectral,
};
use goggles::experiments::{RunParams, TrialContext};

fn params() -> RunParams {
    RunParams {
        n_train_per_class: 12,
        n_test_per_class: 4,
        image_size: 32,
        pairs: 1,
        trials: 1,
        dev_per_class: 3,
        top_z: 3,
        tiny_backbone: true,
    }
}

#[test]
fn goggles_beats_snuba_on_easy_cub() {
    let p = params();
    let task = p.tasks_for_trial(0)[0];
    let ctx = TrialContext::build(&p, &task, 0);
    let goggles_acc = run_goggles(&ctx).labeling_accuracy(&ctx);
    let snuba_acc = run_snuba(&ctx).labeling_accuracy(&ctx);
    // Paper headline: 21-23 point average gap. On one tiny trial just
    // require GOGGLES not to lose.
    assert!(goggles_acc >= snuba_acc - 0.05, "goggles {goggles_acc} vs snuba {snuba_acc}");
}

#[test]
fn snorkel_runs_only_on_cub_and_beats_chance_there() {
    let p = params();
    let tasks = p.tasks_for_trial(0);
    let cub_ctx = TrialContext::build(&p, &tasks[0], 0);
    let out = run_snorkel(&cub_ctx).expect("CUB has attribute annotations");
    let acc = out.labeling_accuracy(&cub_ctx);
    assert!(acc > 0.7, "Snorkel on near-perfect attribute LFs: {acc}");
    for task in &tasks[1..] {
        let ctx = TrialContext::build(&p, task, 0);
        assert!(run_snorkel(&ctx).is_none(), "{:?} has no attributes", task.kind);
    }
}

#[test]
fn clustering_baselines_get_optimal_mapping_protocol() {
    let p = params();
    let task = p.tasks_for_trial(0)[2]; // Surface
    let ctx = TrialContext::build(&p, &task, 0);
    for (name, out) in [
        ("kmeans", run_kmeans(&ctx)),
        ("gmm", run_flat_gmm(&ctx)),
        ("spectral", run_spectral(&ctx)),
    ] {
        assert!(out.needs_optimal_mapping, "{name} must use the §5.1.6 protocol");
        // Optimal mapping accuracy is ≥ 0.5 by construction for K = 2.
        let acc = out.labeling_accuracy(&ctx);
        assert!(acc >= 0.5, "{name}: optimal-mapping accuracy {acc} < 0.5");
    }
}

#[test]
fn representation_ablations_reuse_inference_module() {
    let p = params();
    let task = p.tasks_for_trial(0)[2];
    let ctx = TrialContext::build(&p, &task, 0);
    let hog = run_hog(&ctx);
    let logits = run_logits(&ctx);
    // Both produce class-mapped probabilistic labels over all train rows.
    for (name, out) in [("hog", hog), ("logits", logits)] {
        assert!(!out.needs_optimal_mapping, "{name} maps via dev set");
        let probs = out.probs.expect("probabilistic output");
        assert_eq!(probs.rows(), ctx.dataset.train_indices.len(), "{name}");
    }
}

#[test]
fn snuba_committee_is_nonempty_and_votes() {
    use goggles::labelmodels::primitives::extract_primitives;
    use goggles::labelmodels::{Snuba, SnubaConfig};

    let p = params();
    let task = p.tasks_for_trial(0)[0];
    let ctx = TrialContext::build(&p, &task, 0);
    let prim = extract_primitives(&ctx.train_logits, 10).expect("pca");
    let snuba = Snuba::fit(
        &prim.values,
        &ctx.dev_rows.indices,
        &ctx.dev_rows.labels,
        &SnubaConfig::default(),
    )
    .expect("snuba");
    assert!(!snuba.committee.is_empty());
    assert!(snuba.votes.total_coverage() > 0.0);
    // every committed heuristic had a recorded dev F1
    for heuristic in &snuba.committee {
        assert!(heuristic.dev_f1() > 0.0);
    }
}

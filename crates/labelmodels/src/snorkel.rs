//! Snorkel-style generative label model (Ratner et al., VLDB 2018).
//!
//! Each labeling function `j` is modeled by a full class-conditional vote
//! distribution `θ_j[y][v] = P(LF_j emits v | true class y)` over
//! `v ∈ {abstain, 0, …, K−1}`, assuming conditional independence of LFs
//! given the class. This is the natural-parameter version of Snorkel's
//! independent model and — crucially — keeps abstention class-*dependent*:
//! for unipolar LFs (which only ever vote one class, like attribute
//! annotations) the signal is in *when they fire*, not what they say.
//! A class-independent-abstain model has a degenerate "everything is class
//! k" optimum on such LFs; this parameterization does not.
//!
//! EM is initialized from the majority-vote posterior, which anchors
//! cluster identities to the classes the votes name. "Based on the
//! agreements and disagreements of labels provided by a set of LFs,
//! Snorkel/Snuba then infer the accuracy of different LFs as well as the
//! final probabilistic label for every instance" (§1 of the paper).

use crate::lf::{LabelMatrix, ABSTAIN};
use crate::Result;
use goggles_tensor::{log_sum_exp, Matrix};

/// Dirichlet smoothing mass added to every vote-count cell in the M-step.
const SMOOTHING: f64 = 0.2;

/// Fitted generative label model.
#[derive(Debug, Clone)]
pub struct SnorkelModel {
    /// Class priors π.
    pub class_priors: Vec<f64>,
    /// Per-LF conditional vote tables: `thetas[j]` is `K × (K+1)`
    /// row-stochastic, column 0 = abstain, column `1+c` = vote for class c.
    pub thetas: Vec<Matrix<f64>>,
    /// Probabilistic training labels, `n × K`.
    pub probs: Matrix<f64>,
    /// Final marginal log-likelihood of the votes.
    pub log_likelihood: f64,
    /// EM iterations used.
    pub iterations: usize,
}

impl SnorkelModel {
    /// Fit the generative model on a vote matrix with EM.
    pub fn fit(votes: &LabelMatrix, max_iters: usize, tol: f64) -> Result<Self> {
        let n = votes.n();
        let m = votes.num_lfs();
        let k = votes.num_classes();

        // Init responsibilities from the majority vote: anchors cluster c to
        // "the class the votes call c" and breaks EM's label symmetry.
        let mut probs = votes.majority_vote();
        let mut class_priors = vec![1.0 / k as f64; k];
        let mut thetas: Vec<Matrix<f64>> = vec![Matrix::zeros(k, k + 1); m];
        m_step(votes, &probs, &mut class_priors, &mut thetas);

        let mut ll = f64::NEG_INFINITY;
        let mut prev_ll = f64::NEG_INFINITY;
        let mut iterations = 0;
        let mut log_joint = vec![0.0f64; k];
        for it in 0..max_iters.max(1) {
            iterations = it + 1;
            // --- E-step ---
            ll = 0.0;
            for i in 0..n {
                for (c, lj) in log_joint.iter_mut().enumerate() {
                    *lj = class_priors[c].ln();
                }
                for (j, &v) in votes.row(i).iter().enumerate() {
                    let col = vote_column(v);
                    for (c, lj) in log_joint.iter_mut().enumerate() {
                        *lj += thetas[j][(c, col)].ln();
                    }
                }
                let lse = log_sum_exp(&log_joint);
                ll += lse;
                for (c, &lj) in log_joint.iter().enumerate() {
                    probs[(i, c)] = (lj - lse).exp();
                }
            }
            let rel = if prev_ll.is_finite() {
                (ll - prev_ll).abs() / prev_ll.abs().max(1.0)
            } else {
                f64::INFINITY
            };
            if rel < tol {
                break;
            }
            prev_ll = ll;
            // --- M-step ---
            m_step(votes, &probs, &mut class_priors, &mut thetas);
        }
        Ok(Self { class_priors, thetas, probs, log_likelihood: ll, iterations })
    }

    /// Hard labels by per-row argmax.
    pub fn hard_labels(&self) -> Vec<usize> {
        (0..self.probs.rows()).map(|i| goggles_tensor::argmax(self.probs.row(i))).collect()
    }

    /// Derived per-LF accuracy `P(vote = y | y, vote ≠ abstain)` averaged
    /// over classes — the quantity Snorkel reports.
    // goggles-lint: allow(dead-pub): fitted-parameter accessor of the generative model; exercised only by unit tests
    pub fn accuracies(&self) -> Vec<f64> {
        let k = self.class_priors.len();
        self.thetas
            .iter()
            .map(|theta| {
                let mut acc = 0.0;
                let mut weight = 0.0;
                for c in 0..k {
                    let fire: f64 = (1..=k).map(|v| theta[(c, v)]).sum();
                    if fire > 1e-12 {
                        acc += self.class_priors[c] * theta[(c, 1 + c)] / fire;
                        weight += self.class_priors[c];
                    }
                }
                if weight > 0.0 {
                    acc / weight
                } else {
                    0.5
                }
            })
            .collect()
    }

    /// Derived per-LF, per-class firing propensity `P(vote ≠ abstain | y)`.
    // goggles-lint: allow(dead-pub): fitted-parameter accessor of the generative model; exercised only by unit tests
    pub fn propensities(&self) -> Vec<Vec<f64>> {
        let k = self.class_priors.len();
        self.thetas.iter().map(|theta| (0..k).map(|c| 1.0 - theta[(c, 0)]).collect()).collect()
    }
}

/// Column of the vote table for a raw vote value.
#[inline]
fn vote_column(v: i64) -> usize {
    if v == ABSTAIN {
        0
    } else {
        1 + v as usize
    }
}

/// M-step: smoothed empirical vote tables and class priors from the
/// current responsibilities.
fn m_step(
    votes: &LabelMatrix,
    probs: &Matrix<f64>,
    class_priors: &mut [f64],
    thetas: &mut [Matrix<f64>],
) {
    let n = votes.n();
    let k = votes.num_classes();
    // priors
    for (c, p) in class_priors.iter_mut().enumerate() {
        let mass: f64 = (0..n).map(|i| probs[(i, c)]).sum();
        *p = (mass / n as f64).max(1e-6);
    }
    let s: f64 = class_priors.iter().sum();
    for p in class_priors.iter_mut() {
        *p /= s;
    }
    // vote tables
    for (j, theta) in thetas.iter_mut().enumerate() {
        let mut counts = Matrix::<f64>::filled(k, k + 1, SMOOTHING);
        for i in 0..n {
            let col = vote_column(votes.vote(i, j));
            for c in 0..k {
                counts[(c, col)] += probs[(i, c)];
            }
        }
        for c in 0..k {
            let row_sum: f64 = counts.row(c).iter().sum();
            for v in 0..=k {
                theta[(c, v)] = counts[(c, v)] / row_sum;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goggles_tensor::rng::std_rng;
    use rand::Rng;

    /// Simulate bipolar votes: LF j votes with propensity `prop[j]` and is
    /// correct with probability `acc[j]`, over alternating ground truth.
    fn simulate(n: usize, acc: &[f64], prop: &[f64], seed: u64) -> (LabelMatrix, Vec<usize>) {
        let mut rng = std_rng(seed);
        let truth: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let mut votes = Vec::with_capacity(n * acc.len());
        for &t in &truth {
            for (a, p) in acc.iter().zip(prop) {
                let v = if rng.random::<f64>() > *p {
                    ABSTAIN
                } else if rng.random::<f64>() < *a {
                    t as i64
                } else {
                    1 - t as i64
                };
                votes.push(v);
            }
        }
        (LabelMatrix::new(n, acc.len(), 2, votes).unwrap(), truth)
    }

    fn accuracy_of(labels: &[usize], truth: &[usize]) -> f64 {
        labels.iter().zip(truth).filter(|(a, b)| a == b).count() as f64 / truth.len() as f64
    }

    #[test]
    fn recovers_labels_from_reliable_lfs() {
        let (lm, truth) = simulate(300, &[0.85, 0.8, 0.75], &[0.9, 0.8, 0.9], 1);
        let model = SnorkelModel::fit(&lm, 100, 1e-6).unwrap();
        let acc = accuracy_of(&model.hard_labels(), &truth);
        assert!(acc > 0.85, "accuracy = {acc}");
    }

    #[test]
    fn learned_accuracies_track_true_accuracies() {
        let (lm, _) = simulate(2000, &[0.9, 0.9, 0.9, 0.6], &[1.0, 1.0, 1.0, 1.0], 2);
        let model = SnorkelModel::fit(&lm, 200, 1e-8).unwrap();
        let accs = model.accuracies();
        for good in &accs[..3] {
            assert!(*good > accs[3] + 0.1, "good {good} vs weak {} ({accs:?})", accs[3]);
        }
        assert!((accs[3] - 0.6).abs() < 0.1, "weak LF accuracy {accs:?}");
    }

    #[test]
    fn handles_unipolar_lfs_without_collapse() {
        // LFs that only ever vote one class (attribute-annotation style):
        // firing pattern is the signal. A class-independent-abstain model
        // collapses here; the conditional-table model must not.
        let mut rng = std_rng(7);
        let n = 200;
        let truth: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let mut votes = Vec::with_capacity(n * 2);
        for &t in &truth {
            // LF0 fires "0" mostly on class-0; LF1 fires "1" mostly on 1.
            votes.push(if t == 0 && rng.random::<f64>() < 0.9 { 0 } else { ABSTAIN });
            votes.push(if t == 1 && rng.random::<f64>() < 0.9 { 1 } else { ABSTAIN });
        }
        let lm = LabelMatrix::new(n, 2, 2, votes).unwrap();
        let model = SnorkelModel::fit(&lm, 100, 1e-6).unwrap();
        let acc = accuracy_of(&model.hard_labels(), &truth);
        assert!(acc > 0.9, "unipolar accuracy = {acc}");
        // priors must not collapse
        assert!(model.class_priors.iter().all(|&p| p > 0.2), "{:?}", model.class_priors);
    }

    #[test]
    fn propensities_match_coverage() {
        let (lm, _) = simulate(1000, &[0.8, 0.8], &[0.9, 0.3], 3);
        let model = SnorkelModel::fit(&lm, 50, 1e-6).unwrap();
        let props = model.propensities();
        let avg0 = (props[0][0] + props[0][1]) / 2.0;
        let avg1 = (props[1][0] + props[1][1]) / 2.0;
        assert!((avg0 - 0.9).abs() < 0.05, "avg0 = {avg0}");
        assert!((avg1 - 0.3).abs() < 0.05, "avg1 = {avg1}");
    }

    #[test]
    fn beats_majority_vote_with_mixed_quality_lfs() {
        // Two excellent LFs + three coin-flips: the generative model should
        // discover the good ones and outperform the uniform-weight vote.
        let (lm, truth) = simulate(800, &[0.95, 0.9, 0.5, 0.5, 0.5], &[1.0, 1.0, 1.0, 1.0, 1.0], 4);
        let model = SnorkelModel::fit(&lm, 200, 1e-8).unwrap();
        let mv = lm.majority_vote();
        let mv_labels: Vec<usize> =
            (0..lm.n()).map(|i| goggles_tensor::argmax(mv.row(i))).collect();
        let snorkel_acc = accuracy_of(&model.hard_labels(), &truth);
        let mv_acc = accuracy_of(&mv_labels, &truth);
        assert!(
            snorkel_acc > mv_acc + 0.02,
            "snorkel {snorkel_acc} should beat majority vote {mv_acc}"
        );
    }

    #[test]
    fn all_abstain_instance_posterior_is_valid() {
        let lm = LabelMatrix::new(3, 1, 2, vec![0, 0, ABSTAIN]).unwrap();
        let model = SnorkelModel::fit(&lm, 50, 1e-6).unwrap();
        // Every posterior row must be a distribution; the voting instances
        // must follow their (only) vote.
        for i in 0..3 {
            let p = model.probs.row(i);
            assert!((p[0] + p[1] - 1.0).abs() < 1e-9);
        }
        let hard = model.hard_labels();
        assert_eq!(hard[0], 0);
        assert_eq!(hard[1], 0);
    }

    #[test]
    fn deterministic() {
        let (lm, _) = simulate(100, &[0.8, 0.7], &[0.9, 0.9], 5);
        let a = SnorkelModel::fit(&lm, 50, 1e-6).unwrap();
        let b = SnorkelModel::fit(&lm, 50, 1e-6).unwrap();
        assert_eq!(a.hard_labels(), b.hard_labels());
    }

    #[test]
    fn theta_rows_are_stochastic() {
        let (lm, _) = simulate(150, &[0.8, 0.6], &[0.7, 0.9], 6);
        let model = SnorkelModel::fit(&lm, 50, 1e-6).unwrap();
        for theta in &model.thetas {
            for c in 0..2 {
                let s: f64 = theta.row(c).iter().sum();
                assert!((s - 1.0).abs() < 1e-9);
                assert!(theta.row(c).iter().all(|&v| v > 0.0));
            }
        }
    }
}

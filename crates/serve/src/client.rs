//! [`RemoteLabeler`]: the `TcpStream` client of the wire protocol.
//!
//! One connection, any number of requests in flight: `submit` writes a
//! frame and returns immediately with a [`Ticket`]; a background reader
//! thread demultiplexes replies to their tickets by request id. The
//! blocking [`Labeler::label_all`] therefore *pipelines* — every request is
//! on the wire before the first reply is awaited, so a batch pays one
//! round trip of latency, not one per image, and the server's micro-batcher
//! sees the whole burst at once.
//!
//! Beyond labeling, the client drives the serving control plane remotely:
//! [`RemoteLabeler::stats`] (full counter snapshot + current version),
//! [`RemoteLabeler::reload`] (hot-swap a server-side snapshot file behind
//! live traffic) and [`RemoteLabeler::shutdown_server`].

use crate::api::{Labeler, Ticket};
use crate::service::LabelResponse;
use crate::wire::{
    self, decode_error_reply, decode_label_reply, decode_metrics_reply, decode_reload_reply,
    decode_stats_reply, encode_label_request, encode_reload_request, Frame, Opcode, RemoteStats,
};
use crate::{ServeError, ServeResult};
use goggles_vision::Image;
use std::collections::HashMap;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::Instant;

/// A reply waiter, keyed by request id in [`ClientShared::pending`].
enum Pending {
    Label(mpsc::Sender<ServeResult<LabelResponse>>),
    Stats(mpsc::Sender<ServeResult<RemoteStats>>),
    Metrics(mpsc::Sender<ServeResult<String>>),
    Reload(mpsc::Sender<ServeResult<u64>>),
    Shutdown(mpsc::Sender<ServeResult<()>>),
}

impl Pending {
    /// Resolve this waiter with an error, whatever its reply type.
    fn fail(self, err: ServeError) {
        match self {
            Pending::Label(tx) => drop(tx.send(Err(err))),
            Pending::Stats(tx) => drop(tx.send(Err(err))),
            Pending::Metrics(tx) => drop(tx.send(Err(err))),
            Pending::Reload(tx) => drop(tx.send(Err(err))),
            Pending::Shutdown(tx) => drop(tx.send(Err(err))),
        }
    }
}

struct ClientShared {
    /// Write half; frames are written whole under this lock so concurrent
    /// submitters never interleave bytes.
    writer: Mutex<TcpStream>,
    /// In-flight requests awaiting their reply.
    pending: Mutex<HashMap<u64, Pending>>,
    next_id: AtomicU64,
    /// Set once the connection is unusable (peer closed, protocol error).
    closed: AtomicBool,
}

impl ClientShared {
    /// Register a waiter and write its request frame; on a write failure
    /// the waiter is deregistered and the connection marked closed.
    fn send(&self, opcode: Opcode, payload: &[u8], pending: Pending) -> ServeResult<u64> {
        // goggles-lint: allow(atomics): Acquire pairs with the reader's Release store so the drained map is visible
        if self.closed.load(Ordering::Acquire) {
            return Err(ServeError::Closed);
        }
        // Writing an oversized frame would get the whole connection
        // dropped by the server's framing layer (failing every pipelined
        // request with an opaque `Closed`); fail just this request, with a
        // cause, before anything hits the wire.
        if payload.len() > wire::MAX_PAYLOAD_LEN {
            return Err(ServeError::Wire(format!(
                "request payload of {} bytes exceeds the {}-byte frame cap",
                payload.len(),
                wire::MAX_PAYLOAD_LEN
            )));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.pending.lock().unwrap_or_else(PoisonError::into_inner).insert(id, pending);
        let outcome = {
            let mut writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
            // goggles-lint: allow(lock-order): intentional — the writer mutex exists precisely to serialize whole frames onto the shared socket; writing outside it would interleave frame bytes
            wire::write_frame(&mut *writer, opcode, id, payload)
        };
        if let Err(e) = outcome {
            self.pending.lock().unwrap_or_else(PoisonError::into_inner).remove(&id);
            // goggles-lint: allow(atomics): Release publishes the deregistered waiter before peers see `closed`
            self.closed.store(true, Ordering::Release);
            return Err(e);
        }
        // Re-check after registering: if the reader thread died between the
        // entry check and our insert, it may have already drained `pending`
        // and our waiter would never resolve. Only an entry *still in the
        // map* is unresolvable — a missing one was either dispatched (the
        // reply is on the channel; e.g. a shutdown ack racing the server's
        // close) or drained (the dropped sender resolves the wait to
        // `Closed`). The reader sets `closed` *before* clearing, so one of
        // the paths always fires.
        // goggles-lint: allow(atomics): Acquire pairs with the reader's Release; see the ordering argument above
        if self.closed.load(Ordering::Acquire)
            && self.pending.lock().unwrap_or_else(PoisonError::into_inner).remove(&id).is_some()
        {
            return Err(ServeError::Closed);
        }
        Ok(id)
    }

    /// Route one reply frame to its waiter. Unknown ids are tolerated (the
    /// waiter may have given up); malformed payloads resolve the waiter
    /// with a wire error.
    fn dispatch(&self, frame: Frame) {
        let Some(pending) =
            self.pending.lock().unwrap_or_else(PoisonError::into_inner).remove(&frame.request_id)
        else {
            return;
        };
        match (frame.opcode, pending) {
            (Opcode::ErrorReply, waiter) => {
                let err = decode_error_reply(&frame.payload)
                    .unwrap_or_else(|e| ServeError::Wire(format!("undecodable error reply: {e}")));
                waiter.fail(err);
            }
            (Opcode::LabelReply, Pending::Label(tx)) => {
                let _ = tx.send(decode_label_reply(&frame.payload));
            }
            (Opcode::StatsReply, Pending::Stats(tx)) => {
                let _ = tx.send(decode_stats_reply(&frame.payload));
            }
            (Opcode::MetricsReply, Pending::Metrics(tx)) => {
                let _ = tx.send(decode_metrics_reply(&frame.payload));
            }
            (Opcode::ReloadReply, Pending::Reload(tx)) => {
                let _ = tx.send(decode_reload_reply(&frame.payload));
            }
            (Opcode::ShutdownReply, Pending::Shutdown(tx)) => {
                let _ = tx.send(Ok(()));
            }
            (op, waiter) => {
                waiter.fail(ServeError::Wire(format!("mismatched reply opcode {op:?}")));
            }
        }
    }
}

/// A [`Labeler`] on the far side of a TCP connection — the client half of
/// the wire protocol, speaking to a [`crate::WireServer`] (usually the
/// `goggles-served` binary).
pub struct RemoteLabeler {
    shared: Arc<ClientShared>,
    reader: Option<std::thread::JoinHandle<()>>,
}

impl RemoteLabeler {
    /// Connect to a serving endpoint (e.g. `"127.0.0.1:7878"`).
    pub fn connect(addr: impl ToSocketAddrs) -> ServeResult<Self> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| ServeError::Io(format!("connecting to server: {e}")))?;
        // Frames are whole messages; latency matters more than packing.
        let _ = stream.set_nodelay(true);
        let mut read_half =
            stream.try_clone().map_err(|e| ServeError::Io(format!("cloning connection: {e}")))?;
        let shared = Arc::new(ClientShared {
            writer: Mutex::new(stream),
            pending: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            closed: AtomicBool::new(false),
        });
        let reader = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("goggles-remote-reader".into())
                .spawn(move || {
                    // Reply pump: demultiplex until the peer closes or the
                    // stream breaks, then fail everything still in flight
                    // (dropping a waiter's sender resolves it to `Closed`).
                    while let Ok(Some(frame)) = wire::read_frame(&mut read_half) {
                        shared.dispatch(frame);
                    }
                    // goggles-lint: allow(atomics): Release orders the flag before the drain, the linchpin of send()'s re-check
                    shared.closed.store(true, Ordering::Release);
                    shared.pending.lock().unwrap_or_else(PoisonError::into_inner).clear();
                })
                .map_err(|e| ServeError::Io(format!("spawning reader thread: {e}")))?
        };
        Ok(Self { shared, reader: Some(reader) })
    }

    /// Full counter snapshot of the remote service, plus the snapshot
    /// version currently serving.
    pub fn stats(&self) -> ServeResult<RemoteStats> {
        let (tx, rx) = mpsc::channel();
        self.shared.send(Opcode::StatsRequest, &[], Pending::Stats(tx))?;
        rx.recv().unwrap_or(Err(ServeError::Closed))
    }

    /// Scrape the remote service's metrics registry: the same Prometheus
    /// text exposition that the server's `GET /metrics` HTTP front renders
    /// ([`crate::LabelService::render_metrics`]), shipped over the wire
    /// protocol instead of HTTP.
    pub fn metrics(&self) -> ServeResult<String> {
        let (tx, rx) = mpsc::channel();
        self.shared.send(Opcode::MetricsRequest, &[], Pending::Metrics(tx))?;
        rx.recv().unwrap_or(Err(ServeError::Closed))
    }

    /// Hot-reload a snapshot file **on the server's filesystem** behind the
    /// running service; returns the published version. In-flight batches
    /// finish on their old version — same semantics as
    /// [`crate::LabelService::reload_from`], driven over the wire.
    pub fn reload(&self, server_path: &str) -> ServeResult<u64> {
        let (tx, rx) = mpsc::channel();
        self.shared.send(
            Opcode::ReloadRequest,
            &encode_reload_request(server_path),
            Pending::Reload(tx),
        )?;
        rx.recv().unwrap_or(Err(ServeError::Closed))
    }

    /// Ask the server to shut down cleanly (stop accepting, drain, exit).
    /// Returns once the server acknowledged.
    pub fn shutdown_server(&self) -> ServeResult<()> {
        let (tx, rx) = mpsc::channel();
        self.shared.send(Opcode::ShutdownRequest, &[], Pending::Shutdown(tx))?;
        rx.recv().unwrap_or(Err(ServeError::Closed))
    }

    /// Whether the connection has failed (or the peer closed it).
    pub(crate) fn is_closed(&self) -> bool {
        // goggles-lint: allow(atomics): Acquire pairs with the reader's Release store (see ClientShared::send)
        self.shared.closed.load(Ordering::Acquire)
    }

    /// Encode and send one label request straight from a borrowed image —
    /// the wire frame is the only copy made, so the blocking wrappers
    /// below never clone pixel buffers into throwaway `Arc`s.
    fn submit_borrowed(&self, image: &Image, deadline: Option<Instant>) -> ServeResult<Ticket> {
        let deadline_us = match deadline {
            Some(d) => {
                let now = Instant::now();
                if now >= d {
                    return Ok(Ticket::ready(Err(ServeError::Deadline)));
                }
                // max(1): a sub-microsecond budget must still travel as a
                // deadline (0 means "none" on the wire).
                (d - now).as_micros().min(u128::from(u64::MAX)).max(1) as u64
            }
            None => 0,
        };
        let payload = encode_label_request(image, deadline_us);
        let (tx, rx) = mpsc::channel();
        self.shared.send(Opcode::LabelRequest, &payload, Pending::Label(tx))?;
        Ok(Ticket::pending(rx, None))
    }
}

impl Labeler for RemoteLabeler {
    /// Submission writes one frame and returns immediately; the ticket
    /// resolves when the reply frame arrives. The deadline is shipped as a
    /// *relative* budget (the hosts share no clock) and enforced by the
    /// server's micro-batcher; an already-expired deadline short-circuits
    /// locally without a wire trip.
    fn submit_with_deadline(
        &self,
        image: Arc<Image>,
        deadline: Option<Instant>,
    ) -> ServeResult<Ticket> {
        self.submit_borrowed(&image, deadline)
    }

    /// Overrides the default to encode straight from the borrowed image —
    /// no pixel-buffer clone into a throwaway `Arc`.
    fn label(&self, image: &Image) -> ServeResult<LabelResponse> {
        self.submit_borrowed(image, None)?.wait()
    }

    /// Overrides the default for the same reason as [`Labeler::label`];
    /// still submits everything before awaiting anything (pipelining).
    fn label_all(&self, images: &[&Image]) -> ServeResult<Vec<LabelResponse>> {
        let tickets: Vec<Ticket> =
            images.iter().map(|img| self.submit_borrowed(img, None)).collect::<ServeResult<_>>()?;
        tickets.into_iter().map(Ticket::wait).collect()
    }
}

impl Drop for RemoteLabeler {
    fn drop(&mut self) {
        // Closing the socket unblocks the reader thread, which then fails
        // any still-pending waiters before exiting.
        if let Ok(writer) = self.shared.writer.lock() {
            let _ = writer.shutdown(std::net::Shutdown::Both);
        }
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

impl std::fmt::Debug for RemoteLabeler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteLabeler")
            .field("closed", &self.is_closed())
            .field(
                "in_flight",
                &self.shared.pending.lock().unwrap_or_else(PoisonError::into_inner).len(),
            )
            .finish()
    }
}

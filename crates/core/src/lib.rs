//! # goggles-core
//!
//! The GOGGLES system of *"GOGGLES: Automatic Image Labeling with Affinity
//! Coding"* (Das et al., SIGMOD 2020): a domain-agnostic pipeline that turns
//! a pile of unlabeled images plus a **tiny** development set (5 labels per
//! class) into probabilistic training labels.
//!
//! The pipeline has exactly the two steps of the paper's Figure 3:
//!
//! 1. **Affinity matrix construction** ([`affinity`], [`prototypes`]):
//!    every image is pushed through a frozen VGG-16; at each of the five
//!    max-pool layers the top-Z most-activated prototypes are extracted
//!    (Algorithm 1) and `α = 5·Z` affinity functions
//!    `f_L^z(x_i, x_j) = max_{h,w} cos(v_j^z, v_i^{(h,w)})` fill the
//!    `N × αN` affinity matrix.
//! 2. **Class inference** ([`hierarchical`], [`mapping`]): one
//!    diagonal-covariance GMM per affinity function (base models) feeds a
//!    one-hot concatenated label-prediction matrix into a multivariate
//!    Bernoulli mixture (ensemble model); the development set then picks the
//!    cluster→class mapping by maximizing `L_g` with an `O(K³)` assignment
//!    solver, with a probabilistic guarantee computable from [`theory`].
//!
//! ```no_run
//! use goggles_core::{Goggles, GogglesConfig};
//! use goggles_datasets::{generate, TaskConfig, TaskKind};
//!
//! let ds = generate(&TaskConfig::new(TaskKind::Surface, 40, 10, 7));
//! let dev = ds.sample_dev_set(5, 7);
//! let goggles = Goggles::new(GogglesConfig::default());
//! let result = goggles.label_dataset(&ds, &dev).expect("labeling failed");
//! println!("labeling accuracy: {:.2}%", 100.0 * result.accuracy_excluding_dev(&ds, &dev));
//! ```

pub mod affinity;
pub mod hierarchical;
pub mod mapping;
pub mod pipeline;
pub mod prototypes;
pub mod theory;

pub use affinity::{AffinityFunction, AffinityMatrix, PrototypeBank, ScoreDistribution};
pub use hierarchical::{fold_in_rows, HierarchicalModel, HierarchicalOptions};
pub use mapping::{apply_mapping, map_clusters_via_dev_set};
pub use pipeline::{Goggles, GogglesConfig, LabelingResult, ProbabilisticLabels, RefitSelection};
pub use prototypes::{EmbedScratch, ImageEmbedding, LayerEmbedding};

/// Errors surfaced by the GOGGLES pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GogglesError {
    /// Underlying model-fitting failure.
    Model(goggles_models::ModelError),
    /// Invalid input (description inside).
    InvalidInput(String),
}

impl std::fmt::Display for GogglesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GogglesError::Model(e) => write!(f, "model error: {e}"),
            GogglesError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl std::error::Error for GogglesError {}

impl From<goggles_models::ModelError> for GogglesError {
    fn from(e: goggles_models::ModelError) -> Self {
        GogglesError::Model(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, GogglesError>;

//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest surface this workspace's property
//! tests use: the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! range strategies, [`collection::vec`], and the `prop_assert*` macros.
//!
//! Semantics: each test body runs `cases` times with inputs drawn from the
//! strategies using a deterministic per-test RNG (seeded from the test name
//! and case index). There is no shrinking — a failing case panics with the
//! drawn inputs' debug representation via the standard assert message.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// FNV-1a hash of a string — stable seed derivation for test names.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Deterministic RNG for one (test, case) pair.
pub fn case_rng(test_seed: u64, case: u32) -> StdRng {
    StdRng::seed_from_u64(test_seed ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

pub mod strategy {
    //! Value-generation strategies (subset of `proptest::strategy`).

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draw one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8, f64, f32);

    /// Strategy over `Vec<S::Value>` with random length.
    pub struct VecStrategy<S: Strategy> {
        pub(crate) element: S,
        pub(crate) len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Constant strategy (the `Just` combinator).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    //! Collection strategies (subset of `proptest::collection`).

    use super::strategy::{Strategy, VecStrategy};

    /// Vectors of `element` values with lengths drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
}

/// Assert inside a property (panics with the formatted message on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declare property tests (subset of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::case_rng(seed, case);
                $(
                    let $arg = $crate::strategy::Strategy::generate(
                        &($strat),
                        &mut __proptest_rng,
                    );
                )+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 0usize..10, y in -2.0f64..2.0) {
            prop_assert!(x < 10);
            prop_assert!((-2.0..2.0).contains(&y), "y = {y}");
        }

        /// Vec strategy respects the length range.
        #[test]
        fn vec_lengths(xs in crate::collection::vec(0.0f64..1.0, 1..12)) {
            prop_assert!(!xs.is_empty() && xs.len() < 12);
            prop_assert!(xs.iter().all(|v| (0.0..1.0).contains(v)));
        }
    }

    #[test]
    fn default_case_count() {
        assert_eq!(ProptestConfig::default().cases, 256);
        assert_eq!(ProptestConfig::with_cases(48).cases, 48);
    }
}

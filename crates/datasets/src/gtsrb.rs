//! GTSRB-like synthetic traffic-sign tasks.
//!
//! The German Traffic Sign Recognition Benchmark has 43 sign classes that
//! share a handful of shapes and color schemes — the class identity lives in
//! a small central glyph, photographed under blur, exposure swings and
//! clutter. That is exactly why GTSRB is the hardest dataset for GOGGLES in
//! Table 1 (70.51%): the discriminative evidence is small-scale and the
//! nuisance variation is large-scale. This generator reproduces that regime:
//! 43 procedural sign types drawn from 4 shared shape/color families, with
//! the class signal confined to a compact glyph.

use crate::types::{Dataset, TaskConfig, TaskKind};
use goggles_tensor::rng::{sample_without_replacement, std_rng};
use goggles_vision::{draw, filter, noise, Image};
use rand::rngs::StdRng;
use rand::Rng;

/// Number of procedural sign classes.
pub(crate) const NUM_SIGNS: usize = 43;

/// Shared sign shape families (the discriminative glyph is *inside*).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// goggles-lint: allow(dead-pub): field type of the pub SignType taxonomy surface
pub enum SignShape {
    /// Red-bordered white circle (prohibition family).
    Circle,
    /// Red-bordered white triangle (warning family).
    Triangle,
    /// Blue filled circle (mandatory family).
    BlueCircle,
    /// Yellow diamond (priority family).
    Diamond,
}

/// Glyph drawn inside the sign — the only class-discriminative content.
#[derive(Debug, Clone, Copy, PartialEq)]
// goggles-lint: allow(dead-pub): field type of the pub SignType taxonomy surface
pub enum Glyph {
    /// `n` thin vertical bars (speed-limit-digit analogue).
    Bars(usize),
    /// Arrow at one of 8 orientations (index 0..8).
    Arrow(usize),
    /// Diagonal cross.
    Cross,
    /// `n` small dots in a row.
    Dots(usize),
    /// Horizontal bar (no-entry analogue).
    HorizontalBar,
}

/// Procedural description of one sign class.
#[derive(Debug, Clone)]
// goggles-lint: allow(dead-pub): dataset taxonomy surface with self-describing fields; exercised only by unit tests
pub struct SignType {
    /// Class index in `0..NUM_SIGNS`.
    pub id: usize,
    /// Outer shape/color family — shared by ~11 classes each.
    pub shape: SignShape,
    /// Inner glyph — the class identity.
    pub glyph: Glyph,
}

impl SignType {
    /// Deterministically derive sign class `id`.
    pub fn new(id: usize) -> Self {
        assert!(id < NUM_SIGNS, "sign id {id} out of range");
        let shape = match id % 4 {
            0 => SignShape::Circle,
            1 => SignShape::Triangle,
            2 => SignShape::BlueCircle,
            _ => SignShape::Diamond,
        };
        // Glyph chosen by the quotient so same-family classes differ only in
        // the glyph.
        let g = id / 4;
        let glyph = match g % 5 {
            0 => Glyph::Bars(1 + g % 3),
            1 => Glyph::Arrow(g % 8),
            2 => Glyph::Cross,
            3 => Glyph::Dots(2 + g % 3),
            _ => Glyph::HorizontalBar,
        };
        Self { id, shape, glyph }
    }

    /// Render one photograph of the sign.
    pub fn render(&self, rng: &mut StdRng, size: usize) -> Image {
        let s = size as f32;
        let mut img = Image::new(3, size, size);

        // Street-scene background: muted noise plus a few clutter rectangles.
        for c in 0..3 {
            img.tensor_mut().channel_mut(c).fill(0.35 + 0.1 * rng.random::<f32>());
        }
        noise::add_value_noise_texture(&mut img, rng, 4.0, 3, 0.1);
        for _ in 0..3 {
            let y0 = rng.random_range(0..size) as i32;
            let x0 = rng.random_range(0..size) as i32;
            let col = [0.3 + 0.3 * rng.random::<f32>(); 3];
            draw::fill_rect(
                &mut img,
                y0,
                x0,
                y0 + rng.random_range(4..16),
                x0 + rng.random_range(4..16),
                &col,
            );
        }

        // Sign placement jitter (kept mostly in frame).
        let cy = s * (0.4 + 0.2 * rng.random::<f32>());
        let cx = s * (0.4 + 0.2 * rng.random::<f32>());
        let r = s * (0.22 + 0.08 * rng.random::<f32>());

        let white = [0.92, 0.92, 0.88];
        let red = [0.8, 0.1, 0.1];
        let blue = [0.1, 0.2, 0.75];
        let yellow = [0.9, 0.8, 0.1];
        let dark = [0.08, 0.08, 0.08];

        // Outer plate + glyph color per family.
        let glyph_color = match self.shape {
            SignShape::Circle => {
                draw::fill_disc(&mut img, cy, cx, r, &red);
                draw::fill_disc(&mut img, cy, cx, 0.75 * r, &white);
                dark
            }
            SignShape::Triangle => {
                draw::fill_regular_polygon(
                    &mut img,
                    cy,
                    cx,
                    r,
                    3,
                    -std::f32::consts::FRAC_PI_2,
                    &red,
                );
                draw::fill_regular_polygon(
                    &mut img,
                    cy + 0.08 * r,
                    cx,
                    0.68 * r,
                    3,
                    -std::f32::consts::FRAC_PI_2,
                    &white,
                );
                dark
            }
            SignShape::BlueCircle => {
                draw::fill_disc(&mut img, cy, cx, r, &blue);
                white
            }
            SignShape::Diamond => {
                draw::fill_regular_polygon(&mut img, cy, cx, r, 4, 0.0, &yellow);
                dark
            }
        };

        self.draw_glyph(&mut img, cy, cx, 0.5 * r, &glyph_color);

        // Photographic degradation: most shots are legible, a heavy tail is
        // motion-blurred or under-exposed beyond recognition — the mixture
        // that pins real GTSRB at ~70% labeling accuracy (Table 1).
        let exposure = 0.7 + 0.5 * rng.random::<f32>();
        for v in img.tensor_mut().as_mut_slice() {
            *v *= exposure;
        }
        noise::add_gaussian_noise(&mut img, rng, 0.035);
        let sigma = 0.4 + 1.2 * rng.random::<f32>().powi(2);
        let mut out = filter::gaussian_blur(&img, sigma);
        out.clamp01();
        out
    }

    /// Draw the class glyph centered at `(cy, cx)` with half-extent `g`.
    fn draw_glyph(&self, img: &mut Image, cy: f32, cx: f32, g: f32, color: &[f32]) {
        let t = (g * 0.5).max(1.8); // stroke thickness
        match self.glyph {
            Glyph::Bars(n) => {
                let n = n.max(1);
                for i in 0..n {
                    let off = (i as f32 - (n as f32 - 1.0) / 2.0) * g * 0.8;
                    draw::draw_line(img, cy - g, cx + off, cy + g, cx + off, t, color);
                }
            }
            Glyph::Arrow(dir) => {
                let a = dir as f32 * std::f32::consts::TAU / 8.0;
                let (dy, dx) = (a.sin(), a.cos());
                draw::draw_line(img, cy - dy * g, cx - dx * g, cy + dy * g, cx + dx * g, t, color);
                // arrow head: two short strokes
                let ha = a + 2.6;
                let hb = a - 2.6;
                draw::draw_line(
                    img,
                    cy + dy * g,
                    cx + dx * g,
                    cy + dy * g + ha.sin() * g * 0.5,
                    cx + dx * g + ha.cos() * g * 0.5,
                    t,
                    color,
                );
                draw::draw_line(
                    img,
                    cy + dy * g,
                    cx + dx * g,
                    cy + dy * g + hb.sin() * g * 0.5,
                    cx + dx * g + hb.cos() * g * 0.5,
                    t,
                    color,
                );
            }
            Glyph::Cross => {
                draw::draw_line(img, cy - g, cx - g, cy + g, cx + g, t, color);
                draw::draw_line(img, cy - g, cx + g, cy + g, cx - g, t, color);
            }
            Glyph::Dots(n) => {
                let n = n.max(1);
                for i in 0..n {
                    let off = (i as f32 - (n as f32 - 1.0) / 2.0) * g;
                    draw::fill_disc(img, cy, cx + off, t, color);
                }
            }
            Glyph::HorizontalBar => {
                draw::draw_line(img, cy, cx - g, cy, cx + g, 1.6 * t, color);
            }
        }
    }
}

/// Seed-mixing constant for pair sampling.
const PAIR_SEED_MIX: u64 = 0x6751_12B0;

/// Sample `n_pairs` sign-class pairs **within the same shape family**, so
/// every task hinges on the small glyph (the hard regime of the paper).
pub fn class_pairs(n_pairs: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut rng = std_rng(seed ^ PAIR_SEED_MIX);
    let mut pairs = Vec::with_capacity(n_pairs);
    while pairs.len() < n_pairs {
        let family = rng.random_range(0..4usize);
        let members: Vec<usize> = (0..NUM_SIGNS).filter(|id| id % 4 == family).collect();
        let picks = sample_without_replacement(&mut rng, members.len(), 2);
        let pair = (members[picks[0]], members[picks[1]]);
        if SignType::new(pair.0).glyph != SignType::new(pair.1).glyph {
            pairs.push(pair);
        }
    }
    pairs
}

/// Generate a GTSRB binary task between `class_a` and `class_b`.
pub fn generate(config: &TaskConfig, class_a: usize, class_b: usize) -> Dataset {
    assert_ne!(class_a, class_b, "GTSRB task needs two distinct classes");
    let signs = [SignType::new(class_a), SignType::new(class_b)];
    let mut rng = std_rng(config.seed ^ 0x6751_0001);
    let mut train = Vec::new();
    let mut test = Vec::new();
    for (cls, sign) in signs.iter().enumerate() {
        for _ in 0..config.n_train_per_class {
            train.push((sign.render(&mut rng, config.image_size), cls));
        }
        for _ in 0..config.n_test_per_class {
            test.push((sign.render(&mut rng, config.image_size), cls));
        }
    }
    Dataset::from_parts(
        format!("GTSRB({class_a} vs {class_b})"),
        TaskKind::Gtsrb { class_a, class_b },
        2,
        train,
        test,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_43_signs_construct() {
        for id in 0..NUM_SIGNS {
            let s = SignType::new(id);
            assert_eq!(s.id, id);
        }
    }

    #[test]
    fn same_family_shares_shape() {
        let a = SignType::new(0);
        let b = SignType::new(4);
        assert_eq!(a.shape, b.shape);
        assert_ne!(a.glyph, b.glyph);
    }

    #[test]
    fn render_is_valid_and_varies() {
        let s = SignType::new(5);
        let mut rng = std_rng(1);
        let a = s.render(&mut rng, 64);
        let b = s.render(&mut rng, 64);
        assert_eq!(a.shape(), (3, 64, 64));
        assert!(a.tensor().as_slice().iter().all(|v| (0.0..=1.0).contains(v)));
        assert_ne!(a, b);
    }

    #[test]
    fn class_pairs_same_family_different_glyph() {
        for (a, b) in class_pairs(10, 7) {
            let sa = SignType::new(a);
            let sb = SignType::new(b);
            assert_eq!(sa.shape, sb.shape, "pair ({a},{b}) crosses families");
            assert_ne!(sa.glyph, sb.glyph, "pair ({a},{b}) shares glyph");
        }
    }

    #[test]
    fn generate_layout() {
        let cfg = TaskConfig::new(TaskKind::Gtsrb { class_a: 0, class_b: 4 }, 6, 3, 2);
        let ds = generate(&cfg, 0, 4);
        assert_eq!(ds.train_indices.len(), 12);
        assert_eq!(ds.test_indices.len(), 6);
        assert_eq!(ds.num_classes, 2);
    }

    #[test]
    fn generate_deterministic() {
        let cfg = TaskConfig::new(TaskKind::Gtsrb { class_a: 1, class_b: 5 }, 2, 1, 9);
        assert_eq!(generate(&cfg, 1, 5).images[0], generate(&cfg, 1, 5).images[0]);
    }
}

//! Item-level parsing: `fn` items (free functions and methods), `impl`
//! blocks, `mod` scopes, `use` imports, and `pub` items, recovered from the
//! token stream by keyword matching and brace counting.
//!
//! This is deliberately not a grammar. The recovered facts — "a function
//! named X with this body token range, defined inside `impl Y`" — are the
//! only ones the flow rules need, and each is identifiable from local token
//! shapes: `fn` + name + brace-matched body, `impl [<…>] [Trait for] Type {`,
//! `use root::…;`. Everything else (expressions, types, generics) passes
//! through untouched.

use crate::engine::{SourceFile, Workspace};
use crate::lexer::{Token, TokenKind};
use std::collections::BTreeMap;

/// One `fn` item with its body's token range.
#[derive(Debug)]
pub struct FnItem {
    /// Index into `Workspace::files`.
    pub file: usize,
    pub name: String,
    /// Surrounding `impl` self-type when the fn is a method.
    pub self_ty: Option<String>,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Token index range of the body, inclusive of both braces.
    pub body: (usize, usize),
    /// Declared plain `pub` (`pub(crate)`/`pub(super)` do not count).
    pub is_pub: bool,
    /// Inside a `#[cfg(test)]` range.
    pub is_test: bool,
    /// Chain label for diagnostics: `serve::service::LabelService::submit`.
    pub display: String,
}

/// A `pub` item (fn, struct, enum, trait, const, static, type) eligible for
/// the dead-pub audit.
#[derive(Debug)]
pub struct PubItem {
    pub file: usize,
    pub kind: &'static str,
    pub name: String,
    pub line: usize,
}

/// Everything item-level recovered from one file.
#[derive(Debug, Default)]
pub struct FileItems {
    pub fns: Vec<FnItem>,
    pub pubs: Vec<PubItem>,
    /// Imported name -> path root (`std`, `crate`, `goggles_tensor`, …).
    pub uses: BTreeMap<String, String>,
    /// Names of types declared here (struct/enum/trait/union/type), any
    /// visibility — used to classify `Type::method(` path calls.
    pub types: Vec<String>,
}

/// `crates/serve/src/service.rs` → `serve::service`; `lib.rs`/`mod.rs`/
/// `main.rs` stems collapse into their parent module.
pub fn module_path(rel: &str) -> String {
    let mut segs: Vec<&str> =
        rel.trim_end_matches(".rs").split('/').filter(|s| !s.is_empty()).collect();
    if matches!(segs.last(), Some(&"lib" | &"mod" | &"main")) {
        segs.pop();
    }
    let mut out: Vec<&str> = Vec::new();
    let mut it = segs.into_iter();
    while let Some(s) = it.next() {
        match s {
            "crates" => {
                if let Some(krate) = it.next() {
                    out.push(krate);
                }
            }
            "src" => {}
            _ => out.push(s),
        }
    }
    if rel.starts_with("src/") || out.is_empty() {
        out.insert(0, "goggles");
    }
    out.join("::")
}

/// The workspace crate a file belongs to (`crates/<name>/…`), with the root
/// package as the fallback.
pub fn crate_of(rel: &str) -> &str {
    rel.strip_prefix("crates/").and_then(|r| r.split('/').next()).unwrap_or("goggles")
}

/// Parse every file of the workspace. The result is index-aligned with
/// `ws.files`.
pub fn parse_workspace(ws: &Workspace) -> Vec<FileItems> {
    ws.files.iter().enumerate().map(|(i, f)| parse_file(i, f)).collect()
}

fn parse_file(file_idx: usize, file: &SourceFile) -> FileItems {
    let toks = &file.tokens;
    let modpath = module_path(&file.rel);
    let mut out = FileItems::default();
    // Scopes opened at a given brace depth; popped when that depth closes.
    let mut impl_stack: Vec<(usize, String)> = Vec::new();
    let mut mod_stack: Vec<(usize, String)> = Vec::new();
    let mut depth = 0usize;
    for i in 0..toks.len() {
        match &toks[i].kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                while impl_stack.last().is_some_and(|&(d, _)| d > depth) {
                    impl_stack.pop();
                }
                while mod_stack.last().is_some_and(|&(d, _)| d > depth) {
                    mod_stack.pop();
                }
            }
            TokenKind::Ident(word) => match word.as_str() {
                "use" => parse_use(toks, i, &mut out.uses),
                "impl" if is_impl_item(toks, i) => {
                    if let Some(ty) = impl_self_ty(toks, i) {
                        impl_stack.push((depth + 1, ty));
                    }
                }
                "mod" => {
                    if let (Some(name), Some(open)) =
                        (toks.get(i + 1).and_then(Token::ident), toks.get(i + 2))
                    {
                        if open.is_punct('{') {
                            mod_stack.push((depth + 1, name.to_string()));
                        }
                    }
                }
                "struct" | "enum" | "trait" | "union" | "type" => {
                    record_type(toks, i, file_idx, file, &mut out);
                }
                "const" | "static" => {
                    // `const NAME:` is an item; `const fn` falls through to
                    // the `fn` arm, `<const N: usize>` fails the pub check.
                    if let Some(name) = toks.get(i + 1).and_then(Token::ident) {
                        if toks.get(i + 2).is_some_and(|t| t.is_punct(':')) && is_plain_pub(toks, i)
                        {
                            out.pubs.push(PubItem {
                                file: file_idx,
                                kind: if word == "const" { "const" } else { "static" },
                                name: name.to_string(),
                                line: toks[i].line,
                            });
                        }
                    }
                }
                "fn" => {
                    if let Some(item) = parse_fn(
                        toks,
                        i,
                        file_idx,
                        file,
                        &modpath,
                        &mod_stack,
                        impl_stack.last().map(|(_, ty)| ty.as_str()),
                    ) {
                        if item.is_pub && !item.is_test {
                            out.pubs.push(PubItem {
                                file: file_idx,
                                kind: "fn",
                                name: item.name.clone(),
                                line: item.line,
                            });
                        }
                        out.fns.push(item);
                    }
                }
                _ => {}
            },
            _ => {}
        }
    }
    out
}

/// `impl` opens an item only at item position — not as `-> impl Trait`,
/// `x: impl Fn(…)`, or `&impl …` inside a signature.
fn is_impl_item(toks: &[Token], i: usize) -> bool {
    match i.checked_sub(1).map(|p| &toks[p].kind) {
        None => true,
        Some(TokenKind::Punct('}' | ';' | ']')) => true,
        Some(TokenKind::Ident(w)) => w == "unsafe",
        _ => false,
    }
}

/// The self-type name of an `impl` header: the last path segment before the
/// body brace, taken after `for` when present, stopping at `where`.
fn impl_self_ty(toks: &[Token], i: usize) -> Option<String> {
    let mut angle = 0i32;
    let mut last: Option<&str> = None;
    for j in i + 1..toks.len() {
        match &toks[j].kind {
            TokenKind::Punct('<') => angle += 1,
            // `->` inside generic bounds must not close an angle bracket.
            TokenKind::Punct('>') if !toks[j - 1].is_punct('-') => angle -= 1,
            TokenKind::Punct('{') if angle <= 0 => return last.map(str::to_string),
            TokenKind::Punct(';') if angle <= 0 => return None,
            TokenKind::Ident(w) if angle <= 0 => match w.as_str() {
                "for" => last = None,
                "where" => return last.map(str::to_string),
                "dyn" | "mut" => {}
                _ => last = Some(w),
            },
            _ => {}
        }
    }
    None
}

fn record_type(toks: &[Token], i: usize, file_idx: usize, file: &SourceFile, out: &mut FileItems) {
    let Some(name) = toks.get(i + 1).and_then(Token::ident) else { return };
    // Reject expression-position uses of contextual keywords (`union` as a
    // variable): an item name is followed by `{`, `<`, `(`, `;`, `:`, `=`,
    // or `where`.
    let ok = match toks.get(i + 2).map(|t| &t.kind) {
        Some(TokenKind::Punct('{' | '<' | '(' | ';' | '=')) => true,
        Some(TokenKind::Ident(w)) => w == "where",
        Some(TokenKind::Punct(':')) => true,
        _ => false,
    };
    if !ok {
        return;
    }
    out.types.push(name.to_string());
    let kind = match toks[i].ident() {
        Some("struct") => "struct",
        Some("enum") => "enum",
        Some("trait") => "trait",
        Some("union") => "union",
        _ => "type",
    };
    if is_plain_pub(toks, i) && !file.in_test_code(toks[i].line) {
        out.pubs.push(PubItem { file: file_idx, kind, name: name.to_string(), line: toks[i].line });
    }
}

/// Whether the item keyword at `i` is preceded by a bare `pub` (possibly
/// through `const`/`unsafe`/`async`/`extern "C"`). Scoped `pub(...)` is not
/// "plain pub": it cannot leak out of the workspace.
fn is_plain_pub(toks: &[Token], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        match &toks[j].kind {
            TokenKind::Ident(w)
                if matches!(w.as_str(), "const" | "unsafe" | "async" | "extern") => {}
            TokenKind::Str => {} // the ABI string of `extern "C"`
            TokenKind::Punct(')') => return false, // closes a `pub(...)` scope
            TokenKind::Ident(w) => return w == "pub",
            _ => return false,
        }
    }
    false
}

fn parse_fn(
    toks: &[Token],
    i: usize,
    file_idx: usize,
    file: &SourceFile,
    modpath: &str,
    mod_stack: &[(usize, String)],
    self_ty: Option<&str>,
) -> Option<FnItem> {
    // `fn(` is a function-pointer type, not an item.
    let name = toks.get(i + 1).and_then(Token::ident)?;
    let open = fn_body_open(toks, i + 2)?;
    let close = match_brace(toks, open)?;
    let line = toks[i].line;
    let mut display = String::from(modpath);
    for (_, m) in mod_stack {
        display.push_str("::");
        display.push_str(m);
    }
    if let Some(ty) = self_ty {
        display.push_str("::");
        display.push_str(ty);
    }
    display.push_str("::");
    display.push_str(name);
    Some(FnItem {
        file: file_idx,
        name: name.to_string(),
        self_ty: self_ty.map(str::to_string),
        line,
        body: (open, close),
        is_pub: is_plain_pub(toks, i),
        is_test: file.in_test_code(line),
        display,
    })
}

/// The index of a fn's body `{`: the first brace outside parens/brackets.
/// A `;` first means a bodiless signature (trait method, extern).
fn fn_body_open(toks: &[Token], from: usize) -> Option<usize> {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    for j in from..toks.len() {
        match &toks[j].kind {
            TokenKind::Punct('(') => paren += 1,
            TokenKind::Punct(')') => paren -= 1,
            TokenKind::Punct('[') => bracket += 1,
            TokenKind::Punct(']') => bracket -= 1,
            TokenKind::Punct('{') if paren == 0 && bracket == 0 => return Some(j),
            TokenKind::Punct(';') if paren == 0 && bracket == 0 => return None,
            _ => {}
        }
    }
    None
}

/// Index of the `}` matching the `{` at `open`.
pub fn match_brace(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Record the leaf names a `use` declaration brings into scope, mapped to
/// the path root — enough to tell a `std` import from a workspace one when
/// classifying `Name::method(` qualifiers.
fn parse_use(toks: &[Token], i: usize, uses: &mut BTreeMap<String, String>) {
    let Some(root) = toks.get(i + 1).and_then(Token::ident) else { return };
    let mut group = 0i32;
    let mut j = i + 1;
    while j < toks.len() {
        match &toks[j].kind {
            TokenKind::Punct('{') => group += 1,
            TokenKind::Punct('}') => group -= 1,
            TokenKind::Punct(';') if group <= 0 => break,
            TokenKind::Ident(leaf) if leaf != "as" => {
                // A leaf is an ident directly followed by `,`, `}`, `;`, or
                // ` as alias` (the alias is then its own leaf).
                if matches!(
                    toks.get(j + 1).map(|t| &t.kind),
                    Some(TokenKind::Punct(',' | '}' | ';'))
                ) {
                    uses.insert(leaf.to_string(), root.to_string());
                }
            }
            _ => {}
        }
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(src: &str) -> FileItems {
        let f = SourceFile::new("crates/serve/src/service.rs".into(), src);
        parse_file(0, &f)
    }

    #[test]
    fn fns_and_methods_are_found_with_bodies() {
        let src = "\
fn free() { helper(); }
pub struct S { x: u32 }
impl S {
    pub fn method(&self) -> u32 { self.x }
}
impl std::fmt::Display for S {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { write!(f, \"\") }
}
";
        let it = items(src);
        let names: Vec<(&str, Option<&str>)> =
            it.fns.iter().map(|f| (f.name.as_str(), f.self_ty.as_deref())).collect();
        assert_eq!(
            names,
            vec![("free", None), ("method", Some("S")), ("fmt", Some("S"))],
            "{names:?}"
        );
        assert_eq!(it.fns[1].display, "serve::service::S::method");
        assert!(it.fns[1].is_pub);
        assert!(!it.fns[0].is_pub);
    }

    #[test]
    fn impl_trait_in_signatures_is_not_an_impl_block() {
        let src = "\
fn make() -> impl Iterator<Item = u32> { (0..3).filter(|x| x % 2 == 0) }
fn take(f: impl Fn() -> u32) -> u32 { f() }
";
        let it = items(src);
        assert!(it.fns.iter().all(|f| f.self_ty.is_none()), "{:?}", it.fns);
    }

    #[test]
    fn pub_items_and_scoped_pub() {
        let src = "\
pub fn api() {}
pub(crate) fn internal() {}
pub struct Wide;
pub const MAX: usize = 4;
struct Private;
";
        let it = items(src);
        let pubs: Vec<(&str, &str)> = it.pubs.iter().map(|p| (p.kind, p.name.as_str())).collect();
        assert_eq!(pubs, vec![("fn", "api"), ("struct", "Wide"), ("const", "MAX")], "{pubs:?}");
        assert_eq!(it.types, vec!["Wide", "Private"]);
    }

    #[test]
    fn use_map_records_roots() {
        let src = "\
use std::sync::{Mutex, Arc};
use crate::wire::Opcode;
use goggles_tensor::Matrix as Mat;
";
        let it = items(src);
        assert_eq!(it.uses.get("Mutex").map(String::as_str), Some("std"));
        assert_eq!(it.uses.get("Arc").map(String::as_str), Some("std"));
        assert_eq!(it.uses.get("Opcode").map(String::as_str), Some("crate"));
        assert_eq!(it.uses.get("Mat").map(String::as_str), Some("goggles_tensor"));
    }

    #[test]
    fn module_paths_collapse_lib_and_mod_stems() {
        assert_eq!(module_path("crates/serve/src/service.rs"), "serve::service");
        assert_eq!(module_path("crates/obs/src/lib.rs"), "obs");
        assert_eq!(module_path("src/lib.rs"), "goggles");
        assert_eq!(module_path("src/experiments/harness.rs"), "goggles::experiments::harness");
    }
}

//! Fixture: `Opcode::Stats` decodes nowhere and the server never
//! dispatches it.

#[repr(u8)]
pub enum Opcode {
    Label = 1,
    Stats = 2,
}

pub fn from_u8(v: u8) -> Option<Opcode> {
    match v {
        1 => Some(Opcode::Label),
        _ => None,
    }
}

//! The approximate workspace call graph.
//!
//! Resolution is **name-based and over-approximate** — there is no type
//! inference. A call site resolves to:
//!
//! - `Type::method(` → exactly the methods of workspace `impl Type` blocks
//!   (precise, because the type is named at the call);
//! - `module::f(` → free functions named `f`, preferring ones whose module
//!   path ends in `module`; qualifiers the file's `use` map traces to `std`/
//!   `core`/`alloc` (or that name well-known std types) resolve to nothing;
//! - `recv.method(` → every workspace method named `method`, unless the name
//!   is on the std-collision blocklist (`push`, `get`, `len`, … would alias
//!   half the standard library onto workspace types);
//! - `f(` → free functions named `f`, preferring same-file definitions.
//!
//! Over-approximation (extra edges) makes the flow rules err toward
//! reporting; the blocklist makes the common std calls err toward silence.
//! Both trade-offs are documented in the README's caveats.

use super::items::{FileItems, FnItem};
use crate::engine::Workspace;
use std::collections::{BTreeMap, BTreeSet};

/// One call site inside a fn body.
#[derive(Debug)]
pub struct CallSite {
    /// Token index of the callee name in the file's token stream.
    pub tok: usize,
    pub line: usize,
    pub name: String,
    /// Resolved workspace callees (indices into the fn table); empty when
    /// the call leaves the workspace (std, closures, blocklisted names).
    pub targets: Vec<usize>,
}

/// Call sites per fn, index-aligned with the fn table.
#[derive(Debug)]
pub struct CallGraph {
    pub sites: Vec<Vec<CallSite>>,
}

/// Method names too std-generic to resolve by name alone: a workspace type
/// defining `push` or `get` must not capture every `Vec::push` in the tree.
/// Type-qualified calls (`TraceRing::push(…)`) still resolve precisely.
const METHOD_BLOCKLIST: &[&str] = &[
    "new",
    "clone",
    "default",
    "fmt",
    "drop",
    "len",
    "is_empty",
    "get",
    "get_mut",
    "set",
    "insert",
    "remove",
    "push",
    "pop",
    "iter",
    "iter_mut",
    "next",
    "peek",
    "send",
    "recv",
    "try_recv",
    "lock",
    "try_lock",
    "read",
    "write",
    "wait",
    "wait_timeout",
    "notify_one",
    "notify_all",
    "join",
    "spawn",
    "flush",
    "write_all",
    "read_exact",
    "read_to_end",
    "clear",
    "contains",
    "contains_key",
    "extend",
    "extend_from_slice",
    "take",
    "replace",
    "swap",
    "load",
    "store",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "min",
    "max",
    "clamp",
    "abs",
    "sqrt",
    "exp",
    "ln",
    "powi",
    "powf",
    "floor",
    "ceil",
    "round",
    "to_vec",
    "to_string",
    "to_owned",
    "as_ref",
    "as_mut",
    "as_str",
    "as_bytes",
    "as_slice",
    "into_iter",
    "collect",
    "map",
    "filter",
    "fold",
    "sum",
    "count",
    "zip",
    "rev",
    "chain",
    "enumerate",
    "skip",
    "position",
    "find",
    "any",
    "all",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok_or",
    "ok_or_else",
    "and_then",
    "or_else",
    "expect",
    "unwrap",
    "ok",
    "err",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "shutdown",
    "elapsed",
    "duration_since",
    "parse",
    "split",
    "trim",
    "starts_with",
    "ends_with",
    "get_or_insert_with",
    "retain",
    "entry",
    "keys",
    "values",
    "drain",
    "last",
    "first",
    "copied",
    "cloned",
    "into",
    "from",
    "write_fmt",
];

/// Well-known std path qualifiers, used when a file's `use` map does not
/// classify the name.
const STD_QUALIFIERS: &[&str] = &[
    "std",
    "core",
    "alloc",
    "Vec",
    "VecDeque",
    "String",
    "Box",
    "Arc",
    "Rc",
    "HashMap",
    "HashSet",
    "BTreeMap",
    "BTreeSet",
    "Option",
    "Result",
    "Instant",
    "Duration",
    "Ordering",
    "AtomicBool",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "Mutex",
    "Condvar",
    "RwLock",
    "PoisonError",
    "TcpStream",
    "TcpListener",
    "SocketAddr",
    "Path",
    "PathBuf",
    "OsStr",
    "Command",
    "ExitCode",
    "Iterator",
    "Default",
    "Clone",
    "Drop",
    "From",
    "Into",
    "TryFrom",
    "TryInto",
    "char",
    "str",
    "f32",
    "f64",
    "u8",
    "u16",
    "u32",
    "u64",
    "usize",
    "i8",
    "i16",
    "i32",
    "i64",
    "isize",
    "mem",
    "ptr",
    "fmt",
    "io",
    "fs",
    "env",
    "thread",
    "process",
    "cmp",
    "iter",
    "slice",
    "array",
    "Some",
    "Ok",
    "Err",
];

/// Keywords that read like calls (`if (…)`, `match (…)`) but are not.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "in", "as", "move", "loop", "else", "break",
    "continue", "let", "mut", "ref", "box", "await", "unsafe", "dyn", "fn", "impl", "where", "pub",
    "use", "mod", "struct", "enum", "trait", "type", "const", "static", "crate", "super", "yield",
];

pub fn build(ws: &Workspace, per_file: &[FileItems], fns: &[FnItem]) -> CallGraph {
    // Name → candidate fn indices, test fns excluded (they are not part of
    // the product graph).
    let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_type_method: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut workspace_types: BTreeSet<&str> = BTreeSet::new();
    for (idx, f) in fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        match &f.self_ty {
            None => free_by_name.entry(&f.name).or_default().push(idx),
            Some(ty) => {
                methods_by_name.entry(&f.name).or_default().push(idx);
                by_type_method.entry((ty, &f.name)).or_default().push(idx);
                workspace_types.insert(ty);
            }
        }
    }
    for items in per_file {
        workspace_types.extend(items.types.iter().map(String::as_str));
    }

    let sites = fns
        .iter()
        .map(|f| {
            let file = &ws.files[f.file];
            let uses = &per_file[f.file].uses;
            let toks = &file.tokens;
            let mut sites = Vec::new();
            for j in f.body.0 + 1..f.body.1 {
                let Some(name) = toks[j].ident() else { continue };
                if !toks.get(j + 1).is_some_and(|t| t.is_punct('(')) {
                    continue;
                }
                if NON_CALL_KEYWORDS.contains(&name) {
                    continue;
                }
                let prev = &toks[j - 1];
                if prev.ident() == Some("fn") {
                    continue; // a (nested) declaration, not a call
                }
                let targets = if prev.is_punct('.') {
                    resolve_method(name, &methods_by_name)
                } else if prev.is_punct(':') && j >= 3 && toks[j - 2].is_punct(':') {
                    let qualifier = toks[j - 3].ident();
                    resolve_path(
                        qualifier,
                        name,
                        f,
                        fns,
                        uses,
                        &by_type_method,
                        &workspace_types,
                        &free_by_name,
                    )
                } else {
                    resolve_free(name, f, fns, &free_by_name)
                };
                sites.push(CallSite {
                    tok: j,
                    line: toks[j].line,
                    name: name.to_string(),
                    targets,
                });
            }
            sites
        })
        .collect();
    CallGraph { sites }
}

fn resolve_method(name: &str, methods_by_name: &BTreeMap<&str, Vec<usize>>) -> Vec<usize> {
    if METHOD_BLOCKLIST.contains(&name) {
        return Vec::new();
    }
    methods_by_name.get(name).cloned().unwrap_or_default()
}

#[allow(clippy::too_many_arguments)]
fn resolve_path(
    qualifier: Option<&str>,
    name: &str,
    caller: &FnItem,
    fns: &[FnItem],
    uses: &BTreeMap<String, String>,
    by_type_method: &BTreeMap<(&str, &str), Vec<usize>>,
    workspace_types: &BTreeSet<&str>,
    free_by_name: &BTreeMap<&str, Vec<usize>>,
) -> Vec<usize> {
    let Some(mut q) = qualifier else { return Vec::new() };
    if q == "Self" || q == "self" {
        match &caller.self_ty {
            Some(ty) => q = ty,
            None => return resolve_free(name, caller, fns, free_by_name),
        }
    }
    if workspace_types.contains(q) {
        return by_type_method.get(&(q, name)).cloned().unwrap_or_default();
    }
    // The use map beats the static std list: `use std::io::Write;` makes
    // `Write::…` std even though it is not listed.
    if let Some(root) = uses.get(q) {
        if matches!(root.as_str(), "std" | "core" | "alloc") {
            return Vec::new();
        }
    } else if STD_QUALIFIERS.contains(&q) {
        return Vec::new();
    }
    // A module-qualified free call: prefer fns whose module path ends in the
    // qualifier (`wire::write_frame` → serve::wire::write_frame).
    let all = free_by_name.get(name).cloned().unwrap_or_default();
    let scoped: Vec<usize> =
        all.iter().copied().filter(|&i| fns[i].display.rsplit("::").nth(1) == Some(q)).collect();
    if scoped.is_empty() {
        all
    } else {
        scoped
    }
}

fn resolve_free(
    name: &str,
    caller: &FnItem,
    fns: &[FnItem],
    free_by_name: &BTreeMap<&str, Vec<usize>>,
) -> Vec<usize> {
    let all = free_by_name.get(name).cloned().unwrap_or_default();
    let local: Vec<usize> = all.iter().copied().filter(|&i| fns[i].file == caller.file).collect();
    if local.is_empty() {
        all
    } else {
        local
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::{SourceFile, Workspace};
    use crate::model::SemanticModel;

    fn model(files: &[(&str, &str)]) -> SemanticModel {
        let ws = Workspace {
            root: std::path::PathBuf::new(),
            files: files.iter().map(|(rel, src)| SourceFile::new((*rel).into(), src)).collect(),
            ref_files: Vec::new(),
            manifests: std::collections::BTreeMap::new(),
        };
        SemanticModel::build(&ws)
    }

    fn callees_of<'m>(m: &'m SemanticModel, display: &str) -> Vec<&'m str> {
        let idx = m.fn_by_display(display).expect("caller exists");
        let mut out: Vec<&str> = m.graph.sites[idx]
            .iter()
            .flat_map(|s| s.targets.iter().map(|&t| m.fns[t].display.as_str()))
            .collect();
        out.dedup();
        out
    }

    #[test]
    fn free_calls_prefer_same_file_and_cross_module_calls_resolve() {
        let m = model(&[
            (
                "crates/serve/src/service.rs",
                "fn entry() { helper(); wire::encode(7); }\nfn helper() {}\n",
            ),
            ("crates/serve/src/wire.rs", "pub fn encode(x: u8) -> u8 { x }\nfn helper() {}\n"),
        ]);
        assert_eq!(
            callees_of(&m, "serve::service::entry"),
            vec!["serve::service::helper", "serve::wire::encode"]
        );
    }

    #[test]
    fn type_qualified_calls_are_precise_and_std_is_unresolved() {
        let m = model(&[(
            "crates/serve/src/service.rs",
            "use std::sync::Mutex;\n\
             struct Ring;\n\
             impl Ring { fn push_back(&self) {} }\n\
             fn entry() { Ring::push_back(&Ring); let v: Vec<u8> = Vec::new(); \
             let m = Mutex::new(0); drop((v, m)); }\n",
        )]);
        assert_eq!(
            callees_of(&m, "serve::service::entry"),
            vec!["serve::service::Ring::push_back"]
        );
    }

    #[test]
    fn method_calls_resolve_by_name_unless_blocklisted() {
        let m = model(&[
            (
                "crates/obs/src/span.rs",
                "pub struct Ring;\nimpl Ring { pub fn record_event(&self) {} \
                 pub fn push(&self, _x: u8) {} }\n",
            ),
            (
                "crates/serve/src/service.rs",
                "fn entry(r: &crate::Ring, v: &mut Vec<u8>) { r.record_event(); v.push(1); }\n",
            ),
        ]);
        // `.record_event()` resolves; `.push()` is blocklisted (std collision).
        assert_eq!(callees_of(&m, "serve::service::entry"), vec!["obs::span::Ring::record_event"]);
    }

    #[test]
    fn test_fns_are_not_targets() {
        let m = model(&[(
            "crates/serve/src/service.rs",
            "fn entry() { probe(); }\n\
             #[cfg(test)]\nmod tests { pub fn probe() {} }\n",
        )]);
        assert_eq!(callees_of(&m, "serve::service::entry"), Vec::<&str>::new());
    }
}

//! Integration tests for the semantic model the flow rules share: the
//! lexer, the allow/test scoping in the engine, the item parser, the
//! name-based call graph, and the guard-liveness pass. These exercise the
//! crate's public analysis API directly, against the same fixture trees
//! the rule tests use.

use goggles_lint::engine::{Allow, SourceFile, Workspace};
use goggles_lint::lexer::{lex, Comment, Lexed, Token, TokenKind};
use goggles_lint::model::callgraph::{CallGraph, CallSite};
use goggles_lint::model::guards::{analyze, BlockOp, GuardSummary, Held};
use goggles_lint::model::items::{
    crate_of, match_brace, module_path, parse_workspace, FileItems, FnItem, PubItem,
};
use goggles_lint::model::SemanticModel;
use goggles_lint::rules::RULE_NAMES;
use goggles_lint::Diagnostic;
use std::path::Path;

fn load(fixture: &str) -> Workspace {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(fixture);
    Workspace::load(&root).expect("fixture tree loads")
}

#[test]
fn lexer_separates_tokens_and_comments() {
    let Lexed { tokens, comments } = lex("let x = 1; // note\nf(\"s\");\n");
    let idents: Vec<&str> = tokens.iter().filter_map(Token::ident).collect();
    assert_eq!(idents, vec!["let", "x", "f"]);
    assert!(tokens.iter().any(|t| t.kind == TokenKind::Num && t.line == 1));
    assert!(tokens.iter().any(|t| t.kind == TokenKind::Str && t.line == 2));
    assert!(tokens.iter().any(|t| t.is_punct(';')));
    let note: &Comment = &comments[0];
    assert_eq!((note.text.as_str(), note.line, note.end_line), ("// note", 1, 1));
}

#[test]
fn source_file_scopes_allows_and_test_code() {
    let src = "\
// goggles-lint: allow(panic): reason covering the next line
fn f() { x.unwrap(); }
fn g() { y.unwrap(); }
#[cfg(test)]
mod tests {
    fn t() { z.unwrap(); }
}
";
    let file = SourceFile::new("crates/serve/src/service.rs".to_string(), src);
    assert!(file.is_allowed("panic", 2));
    assert!(!file.is_allowed("panic", 3));
    assert!(!file.in_test_code(3));
    assert!(file.in_test_code(6));

    let mut out: Vec<Diagnostic> = Vec::new();
    file.report_chain(&mut out, "panic", 2, "allowed".into(), Vec::new());
    file.report_chain(&mut out, "panic", 6, "test code".into(), Vec::new());
    file.report_chain(&mut out, "panic", 3, "real".into(), vec!["hop".into()]);
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!((out[0].line, out[0].chain.as_slice()), (3, &["hop".to_string()][..]));
}

#[test]
fn allow_records_scope_flags() {
    let a = Allow { rule: "alloc-hot".to_string(), line: 4, file_scope: false, standalone: true };
    assert!(a.standalone && !a.file_scope);
    assert_eq!((a.rule.as_str(), a.line), ("alloc-hot", 4));
}

#[test]
fn item_parser_recovers_fns_pubs_and_paths() {
    assert_eq!(module_path("crates/serve/src/service.rs"), "serve::service");
    assert_eq!(module_path("crates/core/src/lib.rs"), "core");
    assert_eq!(crate_of("crates/serve/src/service.rs"), "serve");

    let ws = load("clean");
    let per_file: Vec<FileItems> = parse_workspace(&ws);
    let all_fns: Vec<&FnItem> = per_file.iter().flat_map(|f| f.fns.iter()).collect();
    let handle =
        all_fns.iter().find(|f| f.name == "handle").expect("clean fixture declares handle");
    assert!(handle.is_pub && !handle.is_test && handle.self_ty.is_none());
    assert_eq!(handle.display, "serve::service::handle");
    let pubs: Vec<&PubItem> = per_file.iter().flat_map(|f| f.pubs.iter()).collect();
    assert!(pubs.iter().any(|p| p.kind == "fn" && p.name == "sort_scores"));

    // The body range is brace-matched: reparse it directly.
    let toks = &ws.files[handle.file].tokens;
    assert_eq!(match_brace(toks, handle.body.0), Some(handle.body.1));
}

#[test]
fn call_graph_resolves_cross_file_calls() {
    let ws = load("panic_reach");
    let model = SemanticModel::build(&ws);
    let handle = model.fn_by_display("serve::service::handle").expect("handle in model");
    let load_header =
        model.fn_by_display("serve::snapshot::load_header").expect("load_header in model");
    let graph: &CallGraph = &model.graph;
    let site: &CallSite = graph.sites[handle]
        .iter()
        .find(|s| s.name == "load_header")
        .expect("handle calls load_header");
    assert_eq!(site.targets, vec![load_header]);
    assert!(site.line >= 1 && site.tok > 0);
}

#[test]
fn guard_liveness_tracks_acquires_and_blocking() {
    let ws = load("lock_order");
    let model = SemanticModel::build(&ws);

    // enqueue takes `queue` then `stats`: the second acquire sees the first.
    let enqueue = model.fn_by_display("serve::service::enqueue").expect("enqueue in model");
    let g: &GuardSummary = &model.guards[enqueue];
    assert_eq!(g.acquires.len(), 2, "{:?}", g.acquires);
    let held: &Held = &g.acquires[1].live[0];
    assert!(held.lock.ends_with("::queue"), "{held:?}");

    // drain_to blocks on write_all while `queue` is live — visible through
    // a direct `analyze` call too (no call sites in its body).
    let drain = model.fn_by_display("serve::service::drain_to").expect("drain_to in model");
    let f = &model.fns[drain];
    let summary = analyze(&ws.files[f.file], f.body, &[], &[]);
    let b: &BlockOp = summary.blocking.first().expect("write_all is blocking");
    assert_eq!(b.op, "write_all");
    assert!(b.live.iter().any(|h| h.lock.ends_with("::queue")), "{:?}", b.live);
}

#[test]
fn rule_names_cover_the_flow_rules() {
    assert_eq!(RULE_NAMES.len(), 12);
    for rule in ["lock-order", "panic-reach", "alloc-hot", "dead-pub"] {
        assert!(RULE_NAMES.contains(&rule), "{rule} missing from RULE_NAMES");
    }
}

//! # goggles-labelmodels
//!
//! The data-programming systems GOGGLES is compared against in §5:
//!
//! * [`lf`] — labeling-function abstraction and the vote matrix (each LF
//!   emits a class or abstains, exactly the data-programming contract of
//!   Ratner et al.),
//! * [`snorkel`] — a Snorkel-style generative label model: per-LF accuracy
//!   and propensity learned by EM from agreements/disagreements, producing
//!   probabilistic labels (Snorkel's core; the paper runs it on CUB's
//!   attribute annotations, §5.1.2),
//! * [`snuba`] — a Snuba-style synthesizer that *learns* LFs from a small
//!   development set over automatically extracted primitives, with
//!   F1+diversity selection and abstain calibration (Varma & Ré 2018),
//! * [`primitives`] — the primitive extraction the paper's authors
//!   recommended for a fair Snuba comparison: VGG logits projected onto the
//!   top-10 principal components (§5.1.2),
//! * [`cub_lfs`] — attribute-annotation LFs for the CUB task ("each
//!   attribute annotation in the union of the class-specific attributes acts
//!   as a labeling function").

pub mod cub_lfs;
pub mod lf;
pub mod primitives;
pub mod snorkel;
pub mod snuba;

pub use lf::{LabelMatrix, ABSTAIN};
pub use snorkel::SnorkelModel;
pub use snuba::{Snuba, SnubaConfig};

/// Errors from label-model fitting.
#[derive(Debug, Clone, PartialEq, Eq)]
// goggles-lint: allow(dead-pub): error type of the pub label-model API: external callers name it only through `?`/inference
pub enum LabelModelError {
    /// No labeling functions / empty vote matrix.
    EmptyInput,
    /// Invalid configuration or vote values.
    InvalidInput(String),
}

impl std::fmt::Display for LabelModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LabelModelError::EmptyInput => write!(f, "empty input"),
            LabelModelError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl std::error::Error for LabelModelError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LabelModelError>;

//! Regenerates **Table 1** of the paper: labeling accuracy on the training
//! set for GOGGLES vs Snorkel (CUB only), Snuba, the HoG/Logits
//! representation ablations and the K-Means/GMM/Spectral class-inference
//! baselines, over the five datasets.
//!
//! ```text
//! GOGGLES_SCALE=quick|standard|paper cargo bench -p goggles-bench --bench table1
//! ```
//!
//! Expected reproduction shape (not absolute numbers — see EXPERIMENTS.md):
//! GOGGLES ≫ Snuba everywhere, GOGGLES ≥ clustering baselines on average,
//! CUB easiest, GTSRB hardest.

use goggles::experiments::{table1, Scale};
use goggles_bench::{emit, timed};

fn main() {
    let scale = Scale::from_env();
    let params = scale.params();
    println!("scale: {scale:?} → {params:?}\n");
    let results = timed("Table 1", || table1::run(&params));
    emit(&results.to_table(), "table1");

    // Shape summary against the paper.
    let avg = results.averages();
    let goggles_avg = avg[0].unwrap_or(0.0);
    let snuba_avg = avg[2].unwrap_or(0.0);
    println!("paper:   GOGGLES avg 81.76, Snuba avg 58.88 (Δ ≈ 23 points)");
    println!(
        "this run: GOGGLES avg {:.2}, Snuba avg {:.2} (Δ = {:.1} points)",
        100.0 * goggles_avg,
        100.0 * snuba_avg,
        100.0 * (goggles_avg - snuba_avg)
    );
}

//! Fixture: the external observer — referencing `used` keeps it alive.

pub(crate) fn respond() -> u32 {
    used()
}

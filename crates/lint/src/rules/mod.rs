//! The rule set. Each rule is a function over the loaded [`Workspace`]
//! appending [`Diagnostic`]s; scoping (which files a rule applies to) lives
//! here so the whole policy is readable in one place.
//!
//! | rule        | scope                        | protects                      |
//! |-------------|------------------------------|-------------------------------|
//! | `panic`     | hot-path + resilience modules| panic-freedom of serving      |
//! | `index`     | hot-path + resilience modules| panic-freedom (slice indexing)|
//! | `hash-iter` | fit/kernel crates            | bit-deterministic fits        |
//! | `nan-cmp`   | whole workspace              | NaN-safe comparators          |
//! | `atomics`   | whole workspace              | audited memory orderings      |
//! | `unsafe`    | whole workspace              | the unsafe-free invariant     |
//! | `wire`      | serve wire/server/client     | opcode codec exhaustiveness   |
//! | `deps`      | every `Cargo.toml`           | the offline no-registry rule  |
//! | `lock-order`| whole workspace (flow)       | deadlock-free lock discipline |
//! | `panic-reach`| hot-path call sites (flow)  | transitive panic-freedom      |
//! | `alloc-hot` | hot-path loops               | steady-state allocation-free  |
//! | `dead-pub`  | `crates/*/src` pub items     | honest inter-crate API surface|
//!
//! The last four are v2's flow-aware rules: they run over the semantic
//! [`model`](crate::model) (symbol table, approximate call graph, guard
//! liveness) built once per run, instead of per-file token shapes.

mod alloc_hot;
mod atomics;
mod dead_pub;
mod deps;
mod determinism;
mod lock_order;
mod panic_free;
mod panic_reach;
mod unsafety;
mod wire;

use crate::engine::{Diagnostic, SourceFile, Workspace};
use crate::model::SemanticModel;

/// Every rule name `allow(<rule>)` accepts.
pub const RULE_NAMES: &[&str] = &[
    "panic",
    "index",
    "hash-iter",
    "nan-cmp",
    "atomics",
    "unsafe",
    "wire",
    "deps",
    "lock-order",
    "panic-reach",
    "alloc-hot",
    "dead-pub",
];

/// The serving/observability hot paths: modules on the per-request path
/// where a panic poisons co-batched requests (see the PR 3 salvage logic)
/// and where PR 6 claims "relaxed atomics only". Paths are
/// workspace-relative.
pub(crate) const HOT_PATHS: &[&str] = &[
    "crates/serve/src/service.rs",
    "crates/serve/src/server.rs",
    "crates/serve/src/client.rs",
    "crates/serve/src/wire.rs",
    "crates/serve/src/codec.rs",
    "crates/tensor/src/linalg.rs",
    "crates/obs/src/metrics.rs",
    "crates/obs/src/span.rs",
];

/// Crates whose outputs must be bit-deterministic given a seed (fits,
/// kernels, dataset synthesis): HashMap/HashSet *iteration* here can feed
/// numeric accumulation in arbitrary order.
pub(crate) const DETERMINISM_PREFIXES: &[&str] = &[
    "crates/core/src/",
    "crates/models/src/",
    "crates/tensor/src/",
    "crates/cnn/src/",
    "crates/endmodel/src/",
    "crates/labelmodels/src/",
    "crates/datasets/src/",
];

/// Resilience-layer modules added to the *panic* rules' scope only: the
/// fault injector sits inline on every failpoint probe and the health
/// endpoint answers load-balancer traffic, so neither may panic — but both
/// hold locks and non-Relaxed atomics by design, so subjecting them to the
/// full hot-path ruleset (atomics, alloc-hot) would only breed allows.
pub(crate) const PANIC_SCOPE_EXTRA: &[&str] =
    &["crates/serve/src/fault.rs", "crates/obs/src/http.rs"];

pub(crate) fn is_hot_path(file: &SourceFile) -> bool {
    HOT_PATHS.contains(&file.rel.as_str())
}

/// Library modules (not binaries) whose every file is panic-scoped. The
/// continuous-learning trainer runs unattended in a background thread; a
/// panic there silently kills the refit loop while the server keeps
/// answering from a stale snapshot, so it must degrade through
/// `RefitOutcome::Failed` instead.
pub(crate) const PANIC_SCOPE_PREFIXES: &[&str] = &["crates/trainer/src/"];

pub(crate) fn is_panic_scoped(file: &SourceFile) -> bool {
    is_hot_path(file)
        || PANIC_SCOPE_EXTRA.contains(&file.rel.as_str())
        || (!file.rel.contains("/bin/")
            && PANIC_SCOPE_PREFIXES.iter().any(|p| file.rel.starts_with(p)))
}

pub(crate) fn is_determinism_scoped(file: &SourceFile) -> bool {
    DETERMINISM_PREFIXES.iter().any(|p| file.rel.starts_with(p))
}

/// Run every rule over the workspace.
pub(crate) fn run_all(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for file in &ws.files {
        if is_panic_scoped(file) {
            panic_free::check_panics(file, out);
            panic_free::check_indexing(file, out);
        }
        if is_determinism_scoped(file) {
            determinism::check_hash_iteration(file, out);
        }
        determinism::check_nan_comparators(file, out);
        atomics::check_orderings(file, is_hot_path(file), out);
        unsafety::check_unsafe(file, out);
    }
    wire::check_opcode_exhaustiveness(ws, out);
    deps::check_manifests(ws, out);
    panic_free::check_chaos_panic_confinement(ws, out);

    // Flow-aware rules share one semantic model (and, through `Workspace`,
    // one lexing pass per file).
    let model = SemanticModel::build(ws);
    lock_order::check(ws, &model, out);
    panic_reach::check(ws, &model, out);
    alloc_hot::check(ws, out);
    dead_pub::check(ws, &model, out);
}

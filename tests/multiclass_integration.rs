//! Multi-class (K = 3) integration: the paper's machinery is written for
//! general K — the base/ensemble mixtures, the `L_g` assignment (which only
//! has a closed form for K = 2) and the §4.4 multinomial theory. These tests
//! exercise the K = 3 paths end to end on the three-grade surface task.

use goggles::core::theory;
use goggles::prelude::*;

fn graded_task(seed: u64) -> Dataset {
    let mut cfg = TaskConfig::new(TaskKind::SurfaceGrades, 14, 4, seed);
    cfg.image_size = 32;
    generate(&cfg)
}

fn goggles_k3(seed: u64) -> Goggles {
    Goggles::new(GogglesConfig { num_classes: 3, seed, ..GogglesConfig::fast() })
}

#[test]
fn three_class_pipeline_runs_end_to_end() {
    let ds = graded_task(1);
    let dev = ds.sample_dev_set(4, 1);
    let result = goggles_k3(0).label_dataset(&ds, &dev).expect("pipeline");
    assert_eq!(result.labels.probs.cols(), 3);
    assert_eq!(result.labels.probs.rows(), 42);
    // mapping must be a permutation of {0, 1, 2}
    let mut m = result.mapping.clone();
    m.sort_unstable();
    assert_eq!(m, vec![0, 1, 2]);
    // rows are distributions
    for i in 0..result.labels.probs.rows() {
        let s: f64 = result.labels.probs.row(i).iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }
}

#[test]
fn three_class_labeling_beats_chance() {
    // Seeds are pinned against the vendored RNG stream (shims/rand); data
    // seed 1 clears the 0.5 bar for every model seed in 0..4.
    let ds = graded_task(1);
    let dev = ds.sample_dev_set(4, 1);
    let result = goggles_k3(3).label_dataset(&ds, &dev).expect("pipeline");
    let acc = result.accuracy_excluding_dev(&ds, &dev);
    // chance = 1/3; textures are separable so expect comfortably above it.
    assert!(acc > 0.5, "K=3 accuracy = {acc}");
}

#[test]
fn k3_theory_needs_more_dev_than_k2_overall() {
    // Theorem 1: the joint bound is the per-class bound to the K-th power,
    // so at equal per-class quality the joint K=3 guarantee is weaker than
    // squaring would suggest for K=2 when per-class bounds are equal.
    let pc2 = theory::p_class_correct(0.75, 2, 4);
    let pm2 = theory::p_mapping_correct(0.75, 2, 4);
    let pc3 = theory::p_class_correct(0.75, 3, 4);
    let pm3 = theory::p_mapping_correct(0.75, 3, 4);
    assert!((pm2 - pc2.powi(2)).abs() < 1e-12);
    assert!((pm3 - pc3.powi(3)).abs() < 1e-12);
    // and both bounds are valid probabilities
    for p in [pm2, pm3] {
        assert!((0.0..=1.0).contains(&p));
    }
}

#[test]
fn k3_dev_mapping_resolves_all_three_clusters() {
    // Construct responsibilities where clusters are shifted by one position
    // (cluster c holds class (c+1) % 3) and verify the Hungarian mapping
    // recovers the rotation from a labeled handful.
    use goggles::core::mapping::{apply_mapping, map_clusters_via_dev_set};
    use goggles::tensor::Matrix;

    let n = 30;
    let truth: Vec<usize> = (0..n).map(|i| i % 3).collect();
    let mut gamma = Matrix::<f64>::zeros(n, 3);
    for (i, &t) in truth.iter().enumerate() {
        let cluster = (t + 2) % 3; // class t lives in cluster t-1 (mod 3)
        gamma[(i, cluster)] = 0.9;
        gamma[(i, (cluster + 1) % 3)] = 0.05;
        gamma[(i, (cluster + 2) % 3)] = 0.05;
    }
    let dev = DevSet { indices: (0..6).collect(), labels: truth[..6].to_vec() };
    let g = map_clusters_via_dev_set(&gamma, &dev);
    let mapped = apply_mapping(&gamma, &g);
    let hard: Vec<usize> = (0..n).map(|i| goggles::tensor::argmax(mapped.row(i))).collect();
    assert_eq!(hard, truth);
}

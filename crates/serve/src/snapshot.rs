//! Fitted-pipeline snapshots and out-of-sample inference.
//!
//! [`FittedLabeler`] freezes everything a labeling request needs:
//!
//! * the backbone *recipe* (`VggConfig` + seed — the network itself is
//!   deterministic, so it is rebuilt rather than serialized),
//! * the training corpus' [`PrototypeBank`] (per-layer stacked prototypes),
//! * each affinity function's fitted diagonal-GMM parameters,
//! * the Bernoulli-mixture ensemble parameters, and
//! * the dev-set cluster→class mapping.
//!
//! A request then costs `O(image)`: embed the incoming image, compute its
//! `1 × αN` affinity row against the stored prototypes, fold the row through
//! the stored base models and ensemble (`predict_proba`, **no refit**), and
//! apply the stored mapping. The training affinity matrix is never rebuilt.

use crate::codec::{fnv1a, Reader, Writer};
use crate::{ServeError, ServeResult};
use goggles_cnn::{Vgg16, VggConfig};
use goggles_core::hierarchical::fold_in_rows;
use goggles_core::mapping::apply_mapping;
use goggles_core::prototypes::embed_images;
use goggles_core::{
    Goggles, GogglesConfig, HierarchicalModel, LabelingResult, ProbabilisticLabels, PrototypeBank,
};
use goggles_datasets::{Dataset, DevSet};
use goggles_models::{BernoulliMixture, DiagonalGmm, FitStats};
use goggles_tensor::Matrix;
use goggles_vision::Image;

/// Magic bytes + version prefix of the snapshot format.
const MAGIC: &[u8; 8] = b"GGLSNAP\x01";
/// Format version (bump on layout changes).
const VERSION: u32 = 1;
/// Sanity cap for decoded collection lengths (functions, layers, classes).
const MAX_SMALL_LEN: usize = 1 << 20;

/// Frozen `DiagonalGmm`: same parameters, no training-side responsibilities
/// (they are not part of the snapshot) and canonical stats — so labelers
/// built by `fit` and by `load` compare (and serialize) identically.
fn frozen_gmm(weights: Vec<f64>, means: Matrix<f64>, variances: Matrix<f64>) -> DiagonalGmm {
    let k = weights.len();
    DiagonalGmm {
        weights,
        means,
        variances,
        responsibilities: Matrix::zeros(0, k),
        stats: FitStats { log_likelihood: 0.0, iterations: 0, converged: true },
    }
}

/// Frozen `BernoulliMixture`, same convention as [`frozen_gmm`].
fn frozen_ensemble(weights: Vec<f64>, probs: Matrix<f64>) -> BernoulliMixture {
    let k = weights.len();
    BernoulliMixture {
        weights,
        probs,
        responsibilities: Matrix::zeros(0, k),
        stats: FitStats { log_likelihood: 0.0, iterations: 0, converged: true },
    }
}

/// A servable artifact: the frozen GOGGLES pipeline after fitting.
///
/// Obtain one with [`FittedLabeler::fit`] (or [`FittedLabeler::from_fitted`]
/// if you already ran the batch pipeline and kept the embeddings), persist
/// it with [`FittedLabeler::save`], and answer requests with
/// [`FittedLabeler::label_one`] / [`FittedLabeler::label_batch`].
#[derive(Debug, Clone)]
pub struct FittedLabeler {
    // --- serialized state ---
    vgg: VggConfig,
    backbone_seed: u64,
    top_z: usize,
    center_patches: bool,
    num_classes: usize,
    one_hot: bool,
    mapping: Vec<usize>,
    bank: PrototypeBank,
    /// Rehydrated once at construction/load time — `predict_proba`-ready,
    /// never rebuilt on the request path.
    base_models: Vec<DiagonalGmm>,
    ensemble: BernoulliMixture,
    // --- rebuilt on construction/load, never serialized ---
    net: Vgg16,
}

impl FittedLabeler {
    /// Fit the full GOGGLES pipeline on `dataset`'s training block and
    /// freeze it into a servable snapshot. Also returns the batch
    /// [`LabelingResult`] so callers can report training-set accuracy
    /// without re-running anything.
    pub fn fit(
        config: &GogglesConfig,
        dataset: &Dataset,
        dev: &DevSet,
    ) -> ServeResult<(Self, LabelingResult)> {
        let goggles = Goggles::new(config.clone());
        let images = dataset.train_images();
        if images.is_empty() {
            return Err(ServeError::Pipeline(goggles_core::GogglesError::InvalidInput(
                "dataset has no training images".into(),
            )));
        }
        let embeddings = embed_images(
            goggles.backbone(),
            &images,
            config.top_z,
            config.threads,
            config.center_patches,
        );
        let bank = PrototypeBank::from_embeddings(&embeddings);
        let data = bank.affinity_rows(&embeddings, config.threads);
        let affinity = goggles_core::AffinityMatrix {
            data,
            n: bank.n,
            alpha: bank.alpha(),
            z_per_layer: bank.z_per_layer,
        };
        let result = goggles
            .label_dataset_with_affinity(dataset, &affinity, dev)
            .map_err(ServeError::Pipeline)?;
        let labeler = Self::from_fitted(&goggles, bank, &result.model, result.mapping.clone());
        Ok((labeler, result))
    }

    /// Freeze an already-fitted pipeline: the `Goggles` system it ran under,
    /// the prototype bank of the training corpus, the fitted hierarchical
    /// model and the dev-set mapping.
    pub fn from_fitted(
        goggles: &Goggles,
        bank: PrototypeBank,
        model: &HierarchicalModel,
        mapping: Vec<usize>,
    ) -> Self {
        let config = goggles.config();
        assert_eq!(
            bank.alpha(),
            model.alpha(),
            "prototype bank and model disagree on the number of affinity functions"
        );
        assert_eq!(bank.n, model.n_train(), "bank/model disagree on corpus size N");
        Self {
            vgg: config.vgg.clone(),
            backbone_seed: config.backbone_seed,
            top_z: config.top_z,
            center_patches: config.center_patches,
            num_classes: config.num_classes,
            one_hot: model.one_hot,
            mapping,
            bank,
            base_models: model
                .base_models
                .iter()
                .map(|g| frozen_gmm(g.weights.clone(), g.means.clone(), g.variances.clone()))
                .collect(),
            ensemble: frozen_ensemble(model.ensemble.weights.clone(), model.ensemble.probs.clone()),
            net: goggles.backbone().clone(),
        }
    }

    /// Number of classes `K`.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of affinity functions `α`.
    pub fn alpha(&self) -> usize {
        self.base_models.len()
    }

    /// Size `N` of the frozen training corpus.
    pub fn n_train(&self) -> usize {
        self.bank.n
    }

    /// The stored cluster→class mapping.
    pub fn mapping(&self) -> &[usize] {
        &self.mapping
    }

    /// The frozen prototype bank.
    pub fn bank(&self) -> &PrototypeBank {
        &self.bank
    }

    /// Label a batch of new images. Per image this embeds it, computes its
    /// `1 × αN` affinity row against the stored prototypes and folds it
    /// through the stored models — no training-matrix rebuild, no refit.
    /// Returns class-aligned probabilistic labels (mapping applied).
    pub fn label_batch(&self, images: &[&Image], threads: usize) -> ProbabilisticLabels {
        if images.is_empty() {
            return ProbabilisticLabels { probs: Matrix::zeros(0, self.num_classes) };
        }
        let embeddings = embed_images(&self.net, images, self.top_z, threads, self.center_patches);
        let rows = self.bank.affinity_rows(&embeddings, threads);
        let cluster_probs = self.fold_in(&rows);
        ProbabilisticLabels { probs: apply_mapping(&cluster_probs, &self.mapping) }
    }

    /// Label a single image; returns the argmax class and the full
    /// class-probability row. Single-threaded — see
    /// [`FittedLabeler::label_one_sharded`] for the intra-request parallel
    /// variant.
    pub fn label_one(&self, image: &Image) -> (usize, Vec<f64>) {
        self.label_one_sharded(image, 1)
    }

    /// Label a single image with an intra-request thread budget: the
    /// `1 × αN` affinity row against the stored bank is sharded across
    /// `threads` workers along the stacked `n·z` prototype axis, so one
    /// online request can saturate the machine instead of one core. Output
    /// is bit-identical for every thread count.
    pub fn label_one_sharded(&self, image: &Image, threads: usize) -> (usize, Vec<f64>) {
        let labels = self.label_batch(&[image], threads);
        let row = labels.probs.row(0).to_vec();
        (goggles_tensor::argmax(&row), row)
    }

    /// Fold precomputed affinity rows (`m × αN`) through the stored base
    /// models and ensemble: `predict_proba` all the way down, in cluster
    /// space (mapping **not** applied).
    pub fn fold_in(&self, rows: &Matrix<f64>) -> Matrix<f64> {
        fold_in_rows(&self.base_models, &self.ensemble, self.one_hot, rows)
    }

    // ------------------------------------------------------------------
    // persistence
    // ------------------------------------------------------------------

    /// Serialize to the hand-rolled binary snapshot format. Deterministic:
    /// equal labelers produce identical bytes.
    pub fn save(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_bytes(MAGIC);
        w.put_u32(VERSION);
        // backbone recipe
        w.put_usize(self.vgg.input_channels);
        for &c in &self.vgg.block_channels {
            w.put_usize(c);
        }
        w.put_usize(self.vgg.input_size);
        for &d in &self.vgg.fc_dims {
            w.put_usize(d);
        }
        w.put_usize(self.vgg.logits_dim);
        w.put_u64(self.backbone_seed);
        // pipeline shape
        w.put_usize(self.top_z);
        w.put_bool(self.center_patches);
        w.put_usize(self.num_classes);
        w.put_bool(self.one_hot);
        w.put_usize_slice(&self.mapping);
        // prototype bank
        w.put_usize(self.bank.n);
        w.put_usize(self.bank.z_per_layer);
        w.put_usize(self.bank.stacked.len());
        for layer in &self.bank.stacked {
            w.put_matrix_f32(layer);
        }
        // base models
        w.put_usize(self.base_models.len());
        for bm in &self.base_models {
            w.put_f64_slice(&bm.weights);
            w.put_matrix_f64(&bm.means);
            w.put_matrix_f64(&bm.variances);
        }
        // ensemble
        w.put_f64_slice(&self.ensemble.weights);
        w.put_matrix_f64(&self.ensemble.probs);
        // integrity trailer
        let checksum = fnv1a(w.as_bytes());
        w.put_u64(checksum);
        w.into_bytes()
    }

    /// Deserialize a snapshot produced by [`FittedLabeler::save`], rebuild
    /// the frozen backbone, and validate internal consistency.
    pub fn load(bytes: &[u8]) -> ServeResult<Self> {
        if bytes.len() < MAGIC.len() + 4 + 8 {
            return Err(ServeError::Snapshot("snapshot too short".into()));
        }
        let (payload, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
        let actual = fnv1a(payload);
        if stored != actual {
            return Err(ServeError::Snapshot(format!(
                "checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
            )));
        }
        let mut r = Reader::new(payload);
        if r.take(MAGIC.len())? != MAGIC {
            return Err(ServeError::Snapshot("bad magic bytes".into()));
        }
        let version = r.get_u32()?;
        if version != VERSION {
            return Err(ServeError::Snapshot(format!(
                "unsupported snapshot version {version} (supported: {VERSION})"
            )));
        }
        let input_channels = r.get_usize()?;
        let mut block_channels = [0usize; 5];
        for c in &mut block_channels {
            *c = r.get_usize()?;
        }
        let input_size = r.get_usize()?;
        let mut fc_dims = [0usize; 2];
        for d in &mut fc_dims {
            *d = r.get_usize()?;
        }
        let logits_dim = r.get_usize()?;
        let vgg = VggConfig { input_channels, block_channels, input_size, fc_dims, logits_dim };
        let backbone_seed = r.get_u64()?;
        let top_z = r.get_usize()?;
        let center_patches = r.get_bool()?;
        let num_classes = r.get_usize()?;
        let one_hot = r.get_bool()?;
        let mapping = r.get_usize_slice()?;
        let n = r.get_usize()?;
        let z_per_layer = r.get_usize()?;
        let n_layers = r.get_len(MAX_SMALL_LEN)?;
        let mut stacked = Vec::with_capacity(n_layers);
        for _ in 0..n_layers {
            stacked.push(r.get_matrix_f32()?);
        }
        let bank = PrototypeBank { stacked, n, z_per_layer };
        let n_models = r.get_len(MAX_SMALL_LEN)?;
        let mut base_models = Vec::with_capacity(n_models);
        for _ in 0..n_models {
            let weights = r.get_f64_slice()?;
            let means = r.get_matrix_f64()?;
            let variances = r.get_matrix_f64()?;
            base_models.push(frozen_gmm(weights, means, variances));
        }
        let ensemble = frozen_ensemble(r.get_f64_slice()?, r.get_matrix_f64()?);
        if r.remaining() != 0 {
            return Err(ServeError::Snapshot(format!(
                "{} trailing bytes after snapshot payload",
                r.remaining()
            )));
        }
        // --- structural validation before rebuilding the backbone ---
        if mapping.len() != num_classes || mapping.iter().any(|&c| c >= num_classes) {
            return Err(ServeError::Snapshot("mapping is not a K-permutation".into()));
        }
        if n == 0 || z_per_layer == 0 || bank.stacked.is_empty() {
            return Err(ServeError::Snapshot("prototype bank is empty".into()));
        }
        for (l, layer) in bank.stacked.iter().enumerate() {
            if layer.rows() != n * z_per_layer || layer.cols() == 0 {
                return Err(ServeError::Snapshot(format!(
                    "bank layer {l} is {}×{}; expected N·Z = {}·{} = {} rows",
                    layer.rows(),
                    layer.cols(),
                    n,
                    z_per_layer,
                    n * z_per_layer
                )));
            }
        }
        if base_models.len() != bank.stacked.len() * z_per_layer {
            return Err(ServeError::Snapshot(format!(
                "{} base models but bank encodes α = {}",
                base_models.len(),
                bank.stacked.len() * z_per_layer
            )));
        }
        for (f, bm) in base_models.iter().enumerate() {
            if bm.weights.len() != num_classes
                || bm.means.shape() != (num_classes, n)
                || bm.variances.shape() != (num_classes, n)
            {
                return Err(ServeError::Snapshot(format!(
                    "base model {f} has inconsistent shapes"
                )));
            }
        }
        if ensemble.weights.len() != num_classes
            || ensemble.probs.rows() != num_classes
            || ensemble.probs.cols() != base_models.len() * num_classes
        {
            return Err(ServeError::Snapshot("ensemble parameter shapes inconsistent".into()));
        }
        let net = Vgg16::new(&vgg, backbone_seed);
        Ok(Self {
            vgg,
            backbone_seed,
            top_z,
            center_patches,
            num_classes,
            one_hot,
            mapping,
            bank,
            base_models,
            ensemble,
            net,
        })
    }

    /// [`FittedLabeler::save`] straight to a file.
    pub fn save_to(&self, path: &std::path::Path) -> ServeResult<()> {
        std::fs::write(path, self.save())
            .map_err(|e| ServeError::Io(format!("writing {}: {e}", path.display())))
    }

    /// [`FittedLabeler::load`] straight from a file.
    pub fn load_from(path: &std::path::Path) -> ServeResult<Self> {
        let bytes = std::fs::read(path)
            .map_err(|e| ServeError::Io(format!("reading {}: {e}", path.display())))?;
        Self::load(&bytes)
    }
}

impl PartialEq for FittedLabeler {
    /// Equality over the serialized state (the rebuilt backbone is a pure
    /// function of it; model comparison covers exactly the persisted
    /// parameters).
    fn eq(&self, other: &Self) -> bool {
        self.vgg == other.vgg
            && self.backbone_seed == other.backbone_seed
            && self.top_z == other.top_z
            && self.center_patches == other.center_patches
            && self.num_classes == other.num_classes
            && self.one_hot == other.one_hot
            && self.mapping == other.mapping
            && self.bank == other.bank
            && self.base_models.len() == other.base_models.len()
            && self.base_models.iter().zip(&other.base_models).all(|(a, b)| {
                a.weights == b.weights && a.means == b.means && a.variances == b.variances
            })
            && self.ensemble.weights == other.ensemble.weights
            && self.ensemble.probs == other.ensemble.probs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goggles_datasets::{generate, TaskConfig, TaskKind};

    fn fitted(seed: u64) -> (FittedLabeler, LabelingResult, Dataset, DevSet) {
        let mut cfg = TaskConfig::new(TaskKind::Cub { class_a: 0, class_b: 1 }, 10, 6, seed);
        cfg.image_size = 32;
        let ds = generate(&cfg);
        let dev = ds.sample_dev_set(3, seed);
        let gcfg = GogglesConfig { seed, ..GogglesConfig::fast() };
        let (labeler, result) = FittedLabeler::fit(&gcfg, &ds, &dev).unwrap();
        (labeler, result, ds, dev)
    }

    #[test]
    fn fit_matches_batch_pipeline_exactly() {
        // FittedLabeler::fit reuses the same affinity path as the batch
        // pipeline, so its LabelingResult must be identical.
        let mut cfg = TaskConfig::new(TaskKind::Cub { class_a: 0, class_b: 1 }, 10, 4, 3);
        cfg.image_size = 32;
        let ds = generate(&cfg);
        let dev = ds.sample_dev_set(3, 3);
        let gcfg = GogglesConfig { seed: 1, ..GogglesConfig::fast() };
        let (_, via_serve) = FittedLabeler::fit(&gcfg, &ds, &dev).unwrap();
        let batch = Goggles::new(gcfg).label_dataset(&ds, &dev).unwrap();
        assert_eq!(via_serve.labels.hard_labels(), batch.labels.hard_labels());
        assert_eq!(via_serve.mapping, batch.mapping);
        assert!(via_serve.labels.probs.max_abs_diff(&batch.labels.probs) < 1e-12);
    }

    #[test]
    fn save_is_byte_for_byte_deterministic() {
        let (labeler, _, _, _) = fitted(1);
        let a = labeler.save();
        let b = labeler.save();
        assert_eq!(a, b);
        let reloaded = FittedLabeler::load(&a).unwrap();
        assert_eq!(reloaded, labeler);
        assert_eq!(reloaded.save(), a, "save→load→save must be stable");
    }

    #[test]
    fn reload_preserves_label_batch_exactly() {
        let (labeler, _, ds, _) = fitted(2);
        let test_images = ds.test_images();
        let before = labeler.label_batch(&test_images, 2);
        let reloaded = FittedLabeler::load(&labeler.save()).unwrap();
        let after = reloaded.label_batch(&test_images, 2);
        assert_eq!(before.probs, after.probs);
    }

    #[test]
    fn label_one_agrees_with_label_batch() {
        let (labeler, _, ds, _) = fitted(4);
        let imgs = ds.test_images();
        let batch = labeler.label_batch(&imgs, 1);
        for (i, img) in imgs.iter().enumerate() {
            let (hard, row) = labeler.label_one(img);
            assert_eq!(row, batch.probs.row(i));
            assert_eq!(hard, goggles_tensor::argmax(batch.probs.row(i)));
        }
    }

    #[test]
    fn out_of_sample_rows_are_distributions() {
        let (labeler, _, ds, _) = fitted(5);
        let labels = labeler.label_batch(&ds.test_images(), 2);
        assert_eq!(labels.probs.shape(), (ds.test_indices.len(), 2));
        for i in 0..labels.probs.rows() {
            let s: f64 = labels.probs.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
        // empty batch is well-defined
        let empty = labeler.label_batch(&[], 4);
        assert_eq!(empty.probs.shape(), (0, 2));
    }

    #[test]
    fn out_of_sample_path_on_training_images_matches_batch_labels() {
        // Serving the *training* images through the snapshot re-embeds them,
        // recomputes their affinity rows against the stored prototypes and
        // folds in — which must agree with the batch pipeline's converged
        // posteriors on those same rows.
        let (labeler, result, ds, _) = fitted(6);
        assert_eq!(labeler.alpha(), 20, "fast() config has α = 5·4");
        let served = labeler.label_batch(&ds.train_images(), 2);
        assert_eq!(served.probs.rows(), labeler.n_train());
        let diff = served.probs.max_abs_diff(&result.labels.probs);
        assert!(diff < 1e-6, "served vs batch posterior diff = {diff}");
        assert_eq!(served.hard_labels(), result.labels.hard_labels());
    }

    #[test]
    fn corrupted_snapshots_are_rejected() {
        let (labeler, _, _, _) = fitted(7);
        let bytes = labeler.save();
        // flip one payload byte → checksum failure
        let mut bad = bytes.clone();
        bad[MAGIC.len() + 10] ^= 0x40;
        assert!(matches!(FittedLabeler::load(&bad), Err(ServeError::Snapshot(_))));
        // truncation → error, not panic
        for cut in [0, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(FittedLabeler::load(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // bad magic
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert!(FittedLabeler::load(&wrong).is_err());
    }

    #[test]
    fn file_round_trip() {
        let (labeler, _, ds, _) = fitted(8);
        let dir = std::env::temp_dir().join("goggles_serve_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.ggl");
        labeler.save_to(&path).unwrap();
        let reloaded = FittedLabeler::load_from(&path).unwrap();
        let imgs = ds.test_images();
        assert_eq!(labeler.label_batch(&imgs, 1).probs, reloaded.label_batch(&imgs, 1).probs);
        std::fs::remove_file(&path).ok();
    }
}

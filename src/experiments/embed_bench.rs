//! Embedding benchmark: single-image backbone + embedding latency of the
//! im2col + blocked-GEMM fast path (`Vgg16::forward_pool_taps_into` with a
//! reused [`goggles_cnn::ConvScratch`] arena) versus the retained scalar
//! convolution reference (`Vgg16::forward_pool_taps_naive`), plus the
//! per-stage split of one online labeling request (embed vs affinity).
//!
//! Not a paper artifact — the backbone math is unchanged — but the direct
//! quantification of the paper's own cost observation (§5.3: CNN inference
//! dominates end-to-end cost): after the PR 2 affinity kernel, the conv
//! trunk was the serving bottleneck, and this reports exactly what the
//! GEMM lowering buys on it (latency, conv GFLOP/s, and how the embed
//! stage now compares to the affinity stage it feeds).

use super::report::Table;
use super::RunParams;
use goggles_cnn::{ConvScratch, Vgg16};
use goggles_core::prototypes::{embed_from_taps, embed_image_with, embed_images};
use goggles_core::{Goggles, PrototypeBank};
use goggles_datasets::{generate, TaskConfig, TaskKind};
use std::hint::black_box;
use std::time::Instant;

/// Everything one embedding-benchmark run measured.
#[derive(Debug, Clone)]
pub struct EmbedBenchReport {
    /// Backbone input size (square side).
    pub input_size: usize,
    /// Prototypes per layer `Z` (α = 5Z affinity functions).
    pub top_z: usize,
    /// Conv-trunk arithmetic per image, GFLOP (2·Σ Cout·Cin·9·H·W).
    pub conv_gflops_per_image: f64,
    /// Median latency of the scalar-reference trunk, ms.
    pub backbone_naive_ms: f64,
    /// Median latency of the im2col+GEMM trunk with a reused arena, ms.
    pub backbone_fast_ms: f64,
    /// Median latency of a full embedding (naive trunk + extraction), ms.
    pub embed_naive_ms: f64,
    /// Median latency of a full embedding (fast trunk + extraction), ms.
    pub embed_fast_ms: f64,
    /// Median latency of one `1 × αN` affinity row against the stored
    /// bank (the stage the embedding feeds), ms.
    pub affinity_row_ms: f64,
    /// Stored training images `N` behind the affinity-row measurement.
    pub n_train: usize,
    /// Largest elementwise disagreement between fast and naive pool taps
    /// over the sample images (must stay within 1e-5).
    pub max_abs_dev: f64,
}

impl EmbedBenchReport {
    /// Trunk-only speedup of the GEMM path over the scalar reference.
    pub fn backbone_speedup(&self) -> f64 {
        if self.backbone_fast_ms <= 0.0 {
            return 0.0;
        }
        self.backbone_naive_ms / self.backbone_fast_ms
    }

    /// Full single-image embedding speedup — the acceptance number
    /// (≥ 2.5× at default scale).
    pub fn embed_speedup(&self) -> f64 {
        if self.embed_fast_ms <= 0.0 {
            return 0.0;
        }
        self.embed_naive_ms / self.embed_fast_ms
    }

    /// Sustained conv throughput of the fast trunk, GFLOP/s.
    pub fn conv_gflops_per_s(&self) -> f64 {
        if self.backbone_fast_ms <= 0.0 {
            return 0.0;
        }
        self.conv_gflops_per_image / (self.backbone_fast_ms / 1e3)
    }

    /// Embed-stage cost per affinity-stage cost of one online request
    /// (the balance the tentpole targets: ≈ 1 means the backbone keeps up
    /// with the affinity kernel).
    pub fn embed_vs_affinity_ratio(&self) -> f64 {
        if self.affinity_row_ms <= 0.0 {
            return 0.0;
        }
        self.embed_fast_ms / self.affinity_row_ms
    }

    /// Text table for the bench harness.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Embedding hot path: im2col+GEMM trunk vs scalar reference",
            &["metric", "value"],
        );
        let mut row = |k: &str, v: String| t.push_row(vec![k.to_string(), v]);
        row("input size", format!("{0}×{0}", self.input_size));
        row("prototypes per layer (Z)", format!("{}", self.top_z));
        row("conv arithmetic per image", format!("{:.3} GFLOP", self.conv_gflops_per_image));
        row("trunk, scalar reference", format!("{:.3} ms", self.backbone_naive_ms));
        row("trunk, im2col+GEMM", format!("{:.3} ms", self.backbone_fast_ms));
        row("trunk speedup", format!("{:.1}×", self.backbone_speedup()));
        row("trunk throughput", format!("{:.2} GFLOP/s", self.conv_gflops_per_s()));
        row("embed, scalar reference", format!("{:.3} ms", self.embed_naive_ms));
        row("embed, im2col+GEMM", format!("{:.3} ms", self.embed_fast_ms));
        row("embed speedup", format!("{:.1}×", self.embed_speedup()));
        row(
            "affinity row (bank N)",
            format!("{:.3} ms (N={})", self.affinity_row_ms, self.n_train),
        );
        row("embed / affinity stage ratio", format!("{:.2}", self.embed_vs_affinity_ratio()));
        row("max |fast - naive| over taps", format!("{:.2e}", self.max_abs_dev));
        t
    }

    /// Hand-rolled JSON summary (the `BENCH_embed.json` artifact).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"input_size\": {},\n  \"top_z\": {},\n  \"n_train\": {},\n  \
             \"conv_gflops_per_image\": {:.5},\n  \"backbone_naive_ms\": {:.4},\n  \
             \"backbone_fast_ms\": {:.4},\n  \"backbone_speedup\": {:.2},\n  \
             \"conv_gflops_per_s\": {:.3},\n  \"embed_naive_ms\": {:.4},\n  \
             \"embed_fast_ms\": {:.4},\n  \"embed_speedup\": {:.2},\n  \
             \"affinity_row_ms\": {:.4},\n  \"embed_vs_affinity_ratio\": {:.3},\n  \
             \"max_abs_dev\": {:.3e}\n}}\n",
            self.input_size,
            self.top_z,
            self.n_train,
            self.conv_gflops_per_image,
            self.backbone_naive_ms,
            self.backbone_fast_ms,
            self.backbone_speedup(),
            self.conv_gflops_per_s(),
            self.embed_naive_ms,
            self.embed_fast_ms,
            self.embed_speedup(),
            self.affinity_row_ms,
            self.embed_vs_affinity_ratio(),
            self.max_abs_dev,
        )
    }

    /// Write the JSON artifact.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }
}

/// Conv-trunk flops per image for a backbone config: every 3×3 layer costs
/// `2 · out_c · in_c · 9 · H · W` fused multiply-adds counted as 2 flops.
pub fn conv_gflops(config: &goggles_cnn::VggConfig) -> f64 {
    let mut flops = 0f64;
    let mut in_c = config.input_channels;
    let mut s = config.input_size;
    for (b, &out_c) in config.block_channels.iter().enumerate() {
        for _ in 0..goggles_cnn::VggConfig::CONVS_PER_BLOCK[b] {
            flops += 2.0 * (out_c * in_c * 9 * s * s) as f64;
            in_c = out_c;
        }
        s /= 2;
    }
    flops / 1e9
}

/// Median wall-clock of `reps` calls to `f`, in milliseconds (one warmup
/// call excluded).
fn median_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    black_box(f());
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

/// Run the embedding benchmark at the given scale parameters.
pub fn run(params: &RunParams) -> EmbedBenchReport {
    let seed = 23u64;
    let mut task = TaskConfig::new(
        TaskKind::Cub { class_a: 0, class_b: 1 },
        params.n_train_per_class,
        params.n_test_per_class.max(4),
        seed,
    );
    task.image_size = params.image_size;
    let ds = generate(&task);
    let config = params.goggles_config(seed);
    let goggles = Goggles::new(config.clone());
    let net: &Vgg16 = goggles.backbone();

    // Equivalence check across a handful of images before timing anything.
    let check_imgs = ds.test_images();
    let mut max_abs_dev = 0f64;
    for img in check_imgs.iter().take(4) {
        let fast = net.forward_pool_taps(img);
        let naive = net.forward_pool_taps_naive(img);
        for (f, n) in fast.iter().zip(&naive) {
            for (a, b) in f.as_slice().iter().zip(n.as_slice()) {
                max_abs_dev = max_abs_dev.max((a - b).abs() as f64);
            }
        }
    }

    let query = check_imgs[0];
    let reps = 15;
    let mut arena = ConvScratch::new();
    let backbone_fast_ms = median_ms(reps, || net.forward_pool_taps_into(&mut arena, query));
    let backbone_naive_ms = median_ms(reps.min(7), || net.forward_pool_taps_naive(query));
    let embed_fast_ms = median_ms(reps, || {
        embed_image_with(net, &mut arena, query, config.top_z, config.center_patches)
    });
    let embed_naive_ms = median_ms(reps.min(7), || {
        embed_from_taps(&net.forward_pool_taps_naive(query), config.top_z, config.center_patches)
    });

    // Per-stage split of one online request: the affinity row against a
    // bank of the training corpus (what `FittedLabeler::label_one` runs
    // right after embedding).
    let train = ds.train_images();
    let embeddings = embed_images(net, &train, config.top_z, config.threads, config.center_patches);
    let bank = PrototypeBank::from_embeddings(&embeddings);
    let one = &embeddings[..1];
    let affinity_row_ms = median_ms(reps, || bank.affinity_rows(one, 1));

    EmbedBenchReport {
        input_size: config.vgg.input_size,
        top_z: config.top_z,
        conv_gflops_per_image: conv_gflops(&config.vgg),
        backbone_naive_ms,
        backbone_fast_ms,
        embed_naive_ms,
        embed_fast_ms,
        affinity_row_ms,
        n_train: bank.n,
        max_abs_dev,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_balanced_and_complete() {
        let report = EmbedBenchReport {
            input_size: 64,
            top_z: 6,
            conv_gflops_per_image: 0.157,
            backbone_naive_ms: 4.0,
            backbone_fast_ms: 1.0,
            embed_naive_ms: 4.5,
            embed_fast_ms: 1.5,
            affinity_row_ms: 0.6,
            n_train: 48,
            max_abs_dev: 2.0e-6,
        };
        let json = report.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        for key in [
            "input_size",
            "top_z",
            "n_train",
            "conv_gflops_per_image",
            "backbone_naive_ms",
            "backbone_fast_ms",
            "backbone_speedup",
            "conv_gflops_per_s",
            "embed_naive_ms",
            "embed_fast_ms",
            "embed_speedup",
            "affinity_row_ms",
            "embed_vs_affinity_ratio",
            "max_abs_dev",
        ] {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key}");
        }
        assert!((report.backbone_speedup() - 4.0).abs() < 1e-9);
        assert!((report.embed_speedup() - 3.0).abs() < 1e-9);
        assert!((report.conv_gflops_per_s() - 157.0).abs() < 1e-9);
        assert!((report.embed_vs_affinity_ratio() - 2.5).abs() < 1e-9);
        assert!(report.to_table().render().contains("GFLOP/s"));
    }

    #[test]
    fn degenerate_timings_do_not_divide_by_zero() {
        let report = EmbedBenchReport {
            input_size: 32,
            top_z: 4,
            conv_gflops_per_image: 0.0,
            backbone_naive_ms: 0.0,
            backbone_fast_ms: 0.0,
            embed_naive_ms: 0.0,
            embed_fast_ms: 0.0,
            affinity_row_ms: 0.0,
            n_train: 0,
            max_abs_dev: 0.0,
        };
        assert_eq!(report.backbone_speedup(), 0.0);
        assert_eq!(report.embed_speedup(), 0.0);
        assert_eq!(report.conv_gflops_per_s(), 0.0);
        assert_eq!(report.embed_vs_affinity_ratio(), 0.0);
    }

    #[test]
    fn conv_gflops_counts_the_vgg_trunk() {
        // Tiny config, by hand for the first block: 3→4 and 4→4 at 32².
        let cfg = goggles_cnn::VggConfig::tiny();
        let g = conv_gflops(&cfg);
        assert!(g > 0.0);
        let first_two = 2.0 * ((4 * 3 * 9 * 32 * 32) as f64 + (4 * 4 * 9 * 32 * 32) as f64) / 1e9;
        assert!(g > first_two, "total {g} must exceed the first block {first_two}");
    }
}

//! Cluster→class mapping from the development set (§4.3).
//!
//! The hierarchical model clusters instances without knowing which cluster
//! is which class. Given dev-set labels, the paper defines the mapping
//! goodness `L_g = Σ_k Σ_{l ∈ LS_g(k)} γ_{l,k}` (Equation 12) and picks the
//! one-to-one mapping maximizing it (Equation 14) — an assignment problem
//! solved in `O(K³)` (Equation 16), with a closed form for K=2
//! (Equation 15).

use goggles_datasets::DevSet;
use goggles_models::solve_assignment;
use goggles_tensor::Matrix;

/// Compute the optimal cluster→class mapping `g` from ensemble
/// responsibilities (`N × K`, rows aligned with the dataset's global image
/// indices) and a development set.
///
/// Returns `g` as a vector with `g[cluster] = class`. With an empty dev set
/// the identity mapping is returned (the unmapped-cluster regime of the
/// Figure 8 size-0 point).
pub fn map_clusters_via_dev_set(responsibilities: &Matrix<f64>, dev: &DevSet) -> Vec<usize> {
    let k = responsibilities.cols();
    if dev.is_empty() {
        return (0..k).collect();
    }
    // w[cluster][class] = Σ_{l ∈ LS_class} γ_{l,cluster}  (Equation 16).
    let mut w = Matrix::<f64>::zeros(k, k);
    for (&idx, &class) in dev.indices.iter().zip(&dev.labels) {
        assert!(idx < responsibilities.rows(), "dev index {idx} out of range");
        assert!(class < k, "dev label {class} out of range");
        for cluster in 0..k {
            w[(cluster, class)] += responsibilities[(idx, cluster)];
        }
    }
    solve_assignment(&w)
}

/// Reorder the columns of a responsibility/label matrix so that column `c`
/// holds the probability of **class** `c` under mapping `g`
/// ("we rearrange the columns … according to the mapping g").
pub fn apply_mapping(responsibilities: &Matrix<f64>, g: &[usize]) -> Matrix<f64> {
    let (n, k) = responsibilities.shape();
    assert_eq!(g.len(), k, "mapping arity mismatch");
    let mut out = Matrix::<f64>::zeros(n, k);
    for (cluster, &class) in g.iter().enumerate() {
        for i in 0..n {
            out[(i, class)] = responsibilities[(i, cluster)];
        }
    }
    out
}

/// The paper's closed-form K=2 rule (Equation 15), used as a cross-check of
/// the assignment solver: map cluster 1 to class 1 iff the class-1 dev
/// examples carry at least as much cluster-1 mass as the class-0 ones.
///
/// Equivalent to the `L_g` maximization only for **class-balanced** dev
/// sets (the paper's standing assumption in §4.3: "we assume the size of
/// LS_k' is the same for all classes"); with unbalanced sets prefer
/// [`map_clusters_via_dev_set`].
pub fn map_two_clusters(responsibilities: &Matrix<f64>, dev: &DevSet) -> Vec<usize> {
    assert_eq!(responsibilities.cols(), 2, "closed form needs K = 2");
    if dev.is_empty() {
        return vec![0, 1];
    }
    let mut mass_c1_class1 = 0.0;
    let mut mass_c1_class0 = 0.0;
    for (&idx, &class) in dev.indices.iter().zip(&dev.labels) {
        let g1 = responsibilities[(idx, 1)];
        if class == 1 {
            mass_c1_class1 += g1;
        } else {
            mass_c1_class0 += g1;
        }
    }
    if mass_c1_class1 >= mass_c1_class0 {
        vec![0, 1] // identity
    } else {
        vec![1, 0] // swap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(indices: Vec<usize>, labels: Vec<usize>) -> DevSet {
        DevSet { indices, labels }
    }

    #[test]
    fn identity_when_clusters_already_aligned() {
        let gamma = Matrix::from_rows(&[&[0.9, 0.1], &[0.8, 0.2], &[0.1, 0.9], &[0.2, 0.8]]);
        let d = dev(vec![0, 2], vec![0, 1]);
        assert_eq!(map_clusters_via_dev_set(&gamma, &d), vec![0, 1]);
    }

    #[test]
    fn swap_when_clusters_are_flipped() {
        let gamma = Matrix::from_rows(&[&[0.9, 0.1], &[0.8, 0.2], &[0.1, 0.9], &[0.2, 0.8]]);
        // dev says rows 0,1 are class 1 and rows 2,3 class 0 → swap.
        let d = dev(vec![0, 1, 2, 3], vec![1, 1, 0, 0]);
        assert_eq!(map_clusters_via_dev_set(&gamma, &d), vec![1, 0]);
    }

    #[test]
    fn empty_dev_set_gives_identity() {
        let gamma = Matrix::from_rows(&[&[0.9, 0.1], &[0.1, 0.9]]);
        assert_eq!(map_clusters_via_dev_set(&gamma, &DevSet::empty()), vec![0, 1]);
    }

    #[test]
    fn hungarian_matches_closed_form_for_k2() {
        // randomized cross-check of Equation 15 vs Equation 14.
        use goggles_tensor::rng::std_rng;
        use rand::Rng;
        for seed in 0..30u64 {
            let mut rng = std_rng(seed);
            let n = 12;
            let gamma = Matrix::from_fn(n, 2, |_, _| rng.random::<f64>());
            // normalize rows
            let gamma = {
                let mut g = gamma;
                for i in 0..n {
                    let s: f64 = g.row(i).iter().sum();
                    for v in g.row_mut(i) {
                        *v /= s;
                    }
                }
                g
            };
            let indices: Vec<usize> = (0..6).collect();
            let labels: Vec<usize> = (0..6).map(|i| i % 2).collect();
            let d = dev(indices, labels);
            assert_eq!(
                map_clusters_via_dev_set(&gamma, &d),
                map_two_clusters(&gamma, &d),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn three_way_mapping_resolves_conflicts() {
        // Both clusters 0 and 1 "prefer" class 0 by majority; the one-to-one
        // constraint must give each cluster a distinct class maximizing L_g.
        let gamma = Matrix::from_rows(&[
            &[0.6, 0.3, 0.1], // dev class 0
            &[0.5, 0.4, 0.1], // dev class 1
            &[0.1, 0.2, 0.7], // dev class 2
        ]);
        let d = dev(vec![0, 1, 2], vec![0, 1, 2]);
        let g = map_clusters_via_dev_set(&gamma, &d);
        // cluster 0 → class 0 (0.6), cluster 1 → class 1 (0.4), cluster 2 → 2
        assert_eq!(g, vec![0, 1, 2]);
    }

    #[test]
    fn apply_mapping_permutes_columns() {
        let gamma = Matrix::from_rows(&[&[0.7, 0.2, 0.1]]);
        let mapped = apply_mapping(&gamma, &[2, 0, 1]);
        // cluster 0's mass lands in class-2 column, etc.
        assert_eq!(mapped.row(0), &[0.2, 0.1, 0.7]);
    }

    #[test]
    fn apply_identity_is_noop() {
        let gamma = Matrix::from_rows(&[&[0.3, 0.7], &[0.9, 0.1]]);
        assert_eq!(apply_mapping(&gamma, &[0, 1]), gamma);
    }

    #[test]
    fn mapping_is_a_permutation() {
        let gamma = Matrix::from_rows(&[
            &[0.4, 0.3, 0.3],
            &[0.2, 0.5, 0.3],
            &[0.1, 0.3, 0.6],
            &[0.6, 0.2, 0.2],
        ]);
        let d = dev(vec![0, 1, 2, 3], vec![1, 0, 2, 1]);
        let mut g = map_clusters_via_dev_set(&gamma, &d);
        g.sort_unstable();
        assert_eq!(g, vec![0, 1, 2]);
    }
}

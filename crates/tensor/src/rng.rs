//! Deterministic random sampling helpers.
//!
//! The offline dependency set ships `rand` but not `rand_distr`, so normal
//! variates are generated with the Box–Muller transform here. Every consumer
//! in the workspace seeds an explicit [`rand::rngs::StdRng`] so experiments
//! are reproducible bit-for-bit.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Construct the workspace-standard RNG from a seed.
pub fn std_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// One standard-normal variate via the Box–Muller transform.
pub fn normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Draw u1 from (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// `n` i.i.d. normal variates with the given mean and standard deviation.
// goggles-lint: allow(dead-pub): documented rng API, sibling of the used `normal`; exercised only by unit tests
pub fn normal_vec<R: Rng + ?Sized>(rng: &mut R, n: usize, mean: f64, std_dev: f64) -> Vec<f64> {
    (0..n).map(|_| mean + std_dev * normal(rng)).collect()
}

/// A uniformly shuffled permutation of `0..n`.
// goggles-lint: allow(dead-pub): documented rng API; exercised only by unit tests
pub fn shuffled_indices<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    idx
}

/// Sample `k` distinct indices from `0..n` uniformly at random
/// (partial Fisher–Yates; `O(n)` memory, `O(k)` swaps).
///
/// # Panics
/// Panics if `k > n`.
pub fn sample_without_replacement<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} of {n} without replacement");
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.random_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

/// Sample an index from an (unnormalized, non-negative) weight vector.
/// Falls back to uniform if all weights are zero.
///
/// # Panics
/// Panics on an empty slice.
pub fn sample_weighted<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "sample_weighted on empty weights");
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return rng.random_range(0..weights.len());
    }
    let mut t = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        t -= w;
        if t <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_rng_is_deterministic() {
        let a: Vec<f64> = {
            let mut r = std_rng(7);
            (0..8).map(|_| r.random::<f64>()).collect()
        };
        let b: Vec<f64> = {
            let mut r = std_rng(7);
            (0..8).map(|_| r.random::<f64>()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = std_rng(42);
        let xs = normal_vec(&mut rng, 20_000, 1.5, 2.0);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 1.5).abs() < 0.05, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.2, "var = {var}");
    }

    #[test]
    fn shuffled_indices_is_permutation() {
        let mut rng = std_rng(3);
        let mut p = shuffled_indices(&mut rng, 100);
        p.sort_unstable();
        assert_eq!(p, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_without_replacement_distinct_and_in_range() {
        let mut rng = std_rng(9);
        let s = sample_without_replacement(&mut rng, 50, 20);
        assert_eq!(s.len(), 20);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
        assert!(s.iter().all(|&i| i < 50));
    }

    #[test]
    fn sample_without_replacement_full_is_permutation() {
        let mut rng = std_rng(11);
        let mut s = sample_without_replacement(&mut rng, 10, 10);
        s.sort_unstable();
        assert_eq!(s, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn sample_without_replacement_rejects_oversized_k() {
        let mut rng = std_rng(0);
        let _ = sample_without_replacement(&mut rng, 3, 4);
    }

    #[test]
    fn sample_weighted_respects_mass() {
        let mut rng = std_rng(5);
        let mut counts = [0usize; 3];
        for _ in 0..6000 {
            counts[sample_weighted(&mut rng, &[0.0, 1.0, 3.0])] += 1;
        }
        assert_eq!(counts[0], 0);
        // roughly 1:3 split
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.5, "ratio = {ratio}");
    }

    #[test]
    fn sample_weighted_zero_mass_is_uniform() {
        let mut rng = std_rng(5);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[sample_weighted(&mut rng, &[0.0; 4])] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

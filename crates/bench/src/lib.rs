//! Shared plumbing for the reproduction benches: result persistence and a
//! tiny stopwatch, so each `harness = false` bench target stays minimal.
//!
//! The actual experiment logic lives in `goggles::experiments`; these
//! benches are the runnable entry points that `cargo bench --workspace`
//! executes to regenerate the paper's tables and figures.

use goggles::experiments::report::{results_dir, Table};
use std::time::Instant;

/// Print a table to stdout and persist it as CSV under the results dir.
pub fn emit(table: &Table, file_stem: &str) {
    println!("{}", table.render());
    let path = results_dir().join(format!("{file_stem}.csv"));
    match table.write_csv(&path) {
        Ok(()) => println!("[saved {}]\n", path.display()),
        Err(e) => eprintln!("[warn: could not write {}: {e}]\n", path.display()),
    }
}

/// Run a closure, reporting wall-clock time around it.
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    println!("=== {label} ===");
    let start = Instant::now();
    let out = f();
    println!("[{label} took {:.1?}]\n", start.elapsed());
    out
}

/// Mean of a slice (0 for empty) — tiny helper for aggregating sweeps.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn timed_passes_through_value() {
        let v = timed("noop", || 41 + 1);
        assert_eq!(v, 42);
    }
}

//! Fixture peer: dispatches `Label` but not `Stats`.

use crate::wire::Opcode;

pub fn dispatch() -> u8 {
    Opcode::Label as u8
}

//! [`WireServer`]: the std-only `TcpListener` front of the wire protocol.
//!
//! A fixed pool of connection threads shares one listener; each thread
//! accepts a connection and speaks the [`crate::wire`] protocol over it
//! until the peer disconnects, then goes back to accepting. Label requests
//! are fed to the existing micro-batcher through tickets
//! ([`crate::LabelService::submit_with_deadline`]): the connection's reader
//! keeps parsing frames while a per-connection writer thread awaits tickets
//! in submission order, so one pipelined client fills whole micro-batches
//! and slow labeling never stops request intake.
//!
//! The server is deliberately dependency-free (std `TcpListener`/threads
//! only — no async runtime, per the offline-build constraint); the
//! `goggles-served` binary is a thin argument-parsing wrapper around this
//! type.
//!
//! ## Resilience
//!
//! [`ServerOptions`] adds two safeguards. A **per-connection inflight
//! cap** bounds how many label tickets one connection may have pending:
//! past the cap, requests are answered immediately with the retryable
//! [`ServeError::Overloaded`] instead of queueing without bound (pair it
//! with [`crate::ServeConfig::shed_watermark`] for a global bound).
//! Shutdown over the wire is a **graceful drain**: the server flips its
//! readiness flag ([`WireServer::ready_flag`] — exported as `GET /healthz`
//! by the binary), stops accepting, keeps serving already-open connections
//! for a grace window, then closes their read halves so every in-flight
//! ticket is still answered before the pool exits.

use crate::service::LabelService;
use crate::wire::{
    self, decode_ingest_request, decode_label_request, decode_reload_request, encode_error_reply,
    encode_ingest_reply, encode_label_reply, encode_metrics_reply, encode_reload_reply,
    encode_stats_reply, Opcode, RemoteStats,
};
use crate::{ServeError, ServeResult, Ticket};
use goggles_vision::Image;
use std::collections::HashMap;
use std::io::BufWriter;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Tuning for the resilience layer of a [`WireServer`]. The default is the
/// historical behavior: no inflight cap, a 250 ms drain grace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerOptions {
    /// Maximum label tickets one connection may have in flight; past it,
    /// requests are shed with the retryable [`ServeError::Overloaded`]
    /// instead of queueing. `0` disables the cap.
    pub max_inflight_per_conn: u64,
    /// How long a graceful drain keeps already-open connections alive
    /// (still answering requests) after the readiness flag flips, before
    /// their read halves are closed.
    pub drain_grace: Duration,
}

impl Default for ServerOptions {
    fn default() -> Self {
        Self { max_inflight_per_conn: 0, drain_grace: Duration::from_millis(250) }
    }
}

/// Receiver for [`Opcode::Ingest`] images: the server decodes the frame and
/// hands the image off here without blocking the connection reader. The
/// continuous-learning trainer implements this over its bounded intake
/// queue; a full queue should return the retryable
/// [`ServeError::Overloaded`] so clients back off instead of piling up.
pub trait IngestSink: Send + Sync {
    /// Accept one image for background training. Returns the total number
    /// of images accepted so far (echoed to the client), or an error that
    /// is sent back as a wire error reply.
    fn ingest(&self, image: Image) -> ServeResult<u64>;
}

/// State shared by every connection thread of one server.
struct ServerShared {
    service: Arc<LabelService>,
    shutdown: AtomicBool,
    /// `true` while serving; flipped off at the start of a drain or
    /// shutdown. Shared out (`Arc`) so a health front can report readiness
    /// without holding the server.
    ready: Arc<AtomicBool>,
    /// Read halves of the currently open connections, so shutdown can
    /// close them and unblock readers parked in `read_frame` — without
    /// this, joining the pool would hang until every client disconnected
    /// on its own.
    open_conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
    local: SocketAddr,
    pool: usize,
    options: ServerOptions,
    /// Where [`Opcode::Ingest`] images go; `None` answers ingest requests
    /// with a wire error (the server was started without a trainer).
    ingest: Option<Arc<dyn IngestSink>>,
}

impl ServerShared {
    /// Flip the shutdown flag and unblock every parked thread: acceptors
    /// via throwaway connects, connection readers via socket shutdown.
    fn initiate_shutdown(&self) {
        // goggles-lint: allow(atomics): Release pairs with the health front's Acquire so probes see the flip promptly
        self.ready.store(false, Ordering::Release);
        // goggles-lint: allow(atomics): Release pairs with the acceptors' Acquire loads so a woken thread sees the flag
        self.shutdown.store(true, Ordering::Release);
        for stream in self.open_conns.lock().unwrap_or_else(PoisonError::into_inner).values() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        wake_acceptors(self.local, self.pool);
    }

    /// Graceful drain: flip unready, stop accepting, keep serving
    /// already-open connections for the grace window, then close only
    /// their **read** halves — readers see EOF and stop taking new work,
    /// while the per-connection writers still flush every queued reply, so
    /// no in-flight ticket is lost. Blocks for the grace window; run from
    /// the connection thread that received the shutdown request.
    fn initiate_drain(&self) {
        // goggles-lint: allow(atomics): Release pairs with the health front's Acquire so probes flip to draining before connections die
        self.ready.store(false, Ordering::Release);
        // goggles-lint: allow(atomics): Release pairs with the acceptors' Acquire loads; new connections are refused from here on
        self.shutdown.store(true, Ordering::Release);
        wake_acceptors(self.local, self.pool);
        std::thread::sleep(self.options.drain_grace);
        for stream in self.open_conns.lock().unwrap_or_else(PoisonError::into_inner).values() {
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
    }
}

/// A running TCP front over a [`LabelService`]. Bind with
/// [`WireServer::bind`], then either [`WireServer::wait`] (serve until a
/// client sends the shutdown op) or keep it alongside other work and let
/// drop (or [`WireServer::shutdown`]) stop it.
pub struct WireServer {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    threads: Vec<std::thread::JoinHandle<()>>,
    service: Option<Arc<LabelService>>,
}

impl WireServer {
    /// Bind a listener (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start `conn_threads` connection threads over `service`. At most
    /// `conn_threads` connections are served concurrently; further clients
    /// queue in the OS accept backlog.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<LabelService>,
        conn_threads: usize,
    ) -> ServeResult<Self> {
        Self::bind_with(addr, service, conn_threads, ServerOptions::default())
    }

    /// [`WireServer::bind`] with explicit [`ServerOptions`] (inflight cap,
    /// drain grace).
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        service: Arc<LabelService>,
        conn_threads: usize,
        options: ServerOptions,
    ) -> ServeResult<Self> {
        Self::bind_inner(addr, service, conn_threads, options, None)
    }

    /// [`WireServer::bind_with`] plus an [`IngestSink`]: incoming
    /// [`Opcode::Ingest`] frames are decoded and handed to `sink` (the
    /// continuous-learning trainer's intake queue). Without a sink, ingest
    /// requests are answered with a wire error.
    pub fn bind_with_ingest(
        addr: impl ToSocketAddrs,
        service: Arc<LabelService>,
        conn_threads: usize,
        options: ServerOptions,
        sink: Arc<dyn IngestSink>,
    ) -> ServeResult<Self> {
        Self::bind_inner(addr, service, conn_threads, options, Some(sink))
    }

    fn bind_inner(
        addr: impl ToSocketAddrs,
        service: Arc<LabelService>,
        conn_threads: usize,
        options: ServerOptions,
        ingest: Option<Arc<dyn IngestSink>>,
    ) -> ServeResult<Self> {
        assert!(conn_threads >= 1, "need at least one connection thread");
        let listener = TcpListener::bind(addr)
            .map_err(|e| ServeError::Io(format!("binding listener: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| ServeError::Io(format!("resolving bound address: {e}")))?;
        let listener = Arc::new(listener);
        let shared = Arc::new(ServerShared {
            service: Arc::clone(&service),
            shutdown: AtomicBool::new(false),
            ready: Arc::new(AtomicBool::new(true)),
            open_conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            local,
            pool: conn_threads,
            options,
            ingest,
        });
        let mut threads = Vec::with_capacity(conn_threads);
        for i in 0..conn_threads {
            let listener = Arc::clone(&listener);
            let shared_for_thread = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                // goggles-lint: allow(alloc-hot): startup-only pool-spawn loop, one name per thread, not steady-state
                .name(format!("goggles-served-conn-{i}"))
                .spawn(move || accept_loop(&listener, &shared_for_thread));
            match spawned {
                Ok(handle) => threads.push(handle),
                Err(e) => {
                    // Unwind the part of the pool that did start, then
                    // surface the failure instead of panicking.
                    shared.initiate_shutdown();
                    for handle in threads {
                        let _ = handle.join();
                    }
                    // goggles-lint: allow(alloc-hot): startup failure path, the loop (and server) exits here
                    return Err(ServeError::Io(format!("spawning connection thread: {e}")));
                }
            }
        }
        Ok(Self { addr: local, shared, threads, service: Some(service) })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Readiness flag: `true` while serving, `false` from the moment a
    /// drain or shutdown starts. Hand it to a health front (the
    /// `goggles-served` binary exports it as `GET /healthz`) — probes keep
    /// answering through the drain window, reporting not-ready.
    pub fn ready_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shared.ready)
    }

    /// Serve until shutdown is requested (by a [`Opcode::ShutdownRequest`]
    /// over the wire, or a concurrent [`WireServer::shutdown`]), then drain
    /// the label service and return. Consumes the server; used by the
    /// `goggles-served` binary as its main loop.
    pub fn wait(mut self) {
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
        // Dropping our service handle drains the queue and joins the
        // workers (unless another owner still holds a clone).
        self.service.take();
    }

    /// Stop accepting, close every open connection (unblocking readers
    /// mid-`read_frame`), and join the connection threads. Idempotent; also
    /// invoked on drop.
    pub fn shutdown(&mut self) {
        self.shared.initiate_shutdown();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
        self.service.take();
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Unblock acceptor threads parked in `accept()` by connecting (and
/// immediately dropping) throwaway sockets. A wildcard bind address
/// (`0.0.0.0` / `::`) is not connectable on every platform, so the wake
/// targets the matching loopback instead.
fn wake_acceptors(addr: SocketAddr, n: usize) {
    let mut target = addr;
    if target.ip().is_unspecified() {
        target.set_ip(match target {
            SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
            SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
        });
    }
    for _ in 0..n {
        let _ = TcpStream::connect_timeout(&target, Duration::from_millis(200));
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    // goggles-lint: allow(atomics): Acquire pairs with initiate_shutdown's Release store before sockets close
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // goggles-lint: allow(atomics): Acquire pairs with initiate_shutdown's Release store
                if shared.shutdown.load(Ordering::Acquire) {
                    return; // woken for shutdown, not a real client
                }
                // Register the connection (a cheap fd clone) so shutdown
                // can close it out from under a parked reader; always
                // deregister afterwards.
                let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
                if let Ok(clone) = stream.try_clone() {
                    shared
                        .open_conns
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .insert(conn_id, clone);
                }
                handle_connection(stream, shared);
                shared.open_conns.lock().unwrap_or_else(PoisonError::into_inner).remove(&conn_id);
            }
            Err(_) => {
                // goggles-lint: allow(atomics): Acquire pairs with initiate_shutdown's Release store
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                // Persistent accept failures (EMFILE…) must not busy-spin
                // the pool; transient ones barely notice the pause.
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// Per-connection reply jobs, written strictly in submission order.
enum Reply {
    /// Already-encoded frame (stats, reload, errors, shutdown ack).
    Raw { id: u64, opcode: Opcode, payload: Vec<u8> },
    /// A labeling ticket to await; resolves to a label reply or an error
    /// reply.
    Label { id: u64, ticket: Ticket },
}

fn handle_connection(stream: TcpStream, shared: &Arc<ServerShared>) {
    let service = &shared.service;
    let metrics = Arc::clone(service.serve_metrics());
    let writer_metrics = Arc::clone(&metrics);
    let _ = stream.set_nodelay(true);
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (jobs, job_rx) = mpsc::channel::<Reply>();
    // Label tickets this connection has pending, for the inflight cap:
    // the reader increments on submission, the writer decrements once the
    // ticket resolved.
    let inflight = Arc::new(AtomicU64::new(0));
    let writer_inflight = Arc::clone(&inflight);
    // Writer: awaits tickets in submission order and streams replies while
    // the reader keeps accepting frames — this is what makes one
    // connection's pipeline fill micro-batches.
    let writer =
        std::thread::Builder::new().name("goggles-served-writer".into()).spawn(move || {
            let mut out = BufWriter::new(write_half);
            while let Ok(job) = job_rx.recv() {
                let (id, opcode, payload) = match job {
                    Reply::Raw { id, opcode, payload } => (id, opcode, payload),
                    Reply::Label { id, ticket } => {
                        let outcome = ticket.wait();
                        writer_inflight.fetch_sub(1, Ordering::Relaxed);
                        match outcome {
                            Ok(resp) => {
                                let _span =
                                    goggles_obs::Span::enter(&writer_metrics.stage_wire_encode);
                                (id, Opcode::LabelReply, encode_label_reply(&resp))
                            }
                            Err(e) => (id, Opcode::ErrorReply, encode_error_reply(&e)),
                        }
                    }
                };
                if wire::write_frame(&mut out, opcode, id, &payload).is_err() {
                    return; // peer gone; replies have nowhere to go
                }
            }
        });
    let writer = match writer {
        Ok(handle) => handle,
        // No writer means no way to answer; drop the connection (the
        // client sees a close, the server keeps serving others).
        Err(_) => return,
    };

    let mut read_half = stream;
    // Reading stops on clean disconnect, stream desync or I/O failure —
    // after a framing error the byte stream is unrecoverable; replies
    // already queued still flush below.
    while let Ok(Some(frame)) = wire::read_frame(&mut read_half) {
        let id = frame.request_id;
        match frame.opcode {
            Opcode::LabelRequest => {
                let decoded = {
                    let _span = goggles_obs::Span::enter(&metrics.stage_wire_decode);
                    decode_label_request(&frame.payload)
                };
                let cap = shared.options.max_inflight_per_conn;
                let job = match decoded {
                    // Per-connection backpressure: past the cap, shed with
                    // the typed, retryable overload error before touching
                    // the service queue at all.
                    Ok(_) if cap > 0 && inflight.load(Ordering::Relaxed) >= cap => {
                        service.record_shed();
                        error_reply(id, &ServeError::Overloaded)
                    }
                    Ok(req) => {
                        let deadline = (req.deadline_us > 0)
                            .then(|| Instant::now() + Duration::from_micros(req.deadline_us));
                        // Decoded straight into one allocation; the queue
                        // shares it — no pixel copy anywhere on the path.
                        match service.submit_with_deadline(Arc::new(req.image), deadline) {
                            Ok(ticket) => {
                                inflight.fetch_add(1, Ordering::Relaxed);
                                Reply::Label { id, ticket }
                            }
                            Err(e) => error_reply(id, &e),
                        }
                    }
                    Err(e) => error_reply(id, &e),
                };
                if jobs.send(job).is_err() {
                    break;
                }
            }
            Opcode::StatsRequest => {
                let remote = RemoteStats {
                    stats: service.stats(),
                    version: service.registry().current_version(),
                };
                let raw = Reply::Raw {
                    id,
                    opcode: Opcode::StatsReply,
                    payload: encode_stats_reply(&remote),
                };
                if jobs.send(raw).is_err() {
                    break;
                }
            }
            Opcode::MetricsRequest => {
                let raw = Reply::Raw {
                    id,
                    opcode: Opcode::MetricsReply,
                    payload: encode_metrics_reply(&service.render_metrics()),
                };
                if jobs.send(raw).is_err() {
                    break;
                }
            }
            Opcode::ReloadRequest => {
                let job = match decode_reload_request(&frame.payload) {
                    Ok(path) => match service.reload_from(std::path::Path::new(&path)) {
                        Ok(version) => Reply::Raw {
                            id,
                            opcode: Opcode::ReloadReply,
                            payload: encode_reload_reply(version),
                        },
                        Err(e) => error_reply(id, &e),
                    },
                    Err(e) => error_reply(id, &e),
                };
                if jobs.send(job).is_err() {
                    break;
                }
            }
            Opcode::Ingest => {
                let job = match decode_ingest_request(&frame.payload) {
                    Ok(image) => match &shared.ingest {
                        Some(sink) => match sink.ingest(image) {
                            Ok(accepted) => Reply::Raw {
                                id,
                                opcode: Opcode::IngestReply,
                                payload: encode_ingest_reply(accepted),
                            },
                            Err(e) => error_reply(id, &e),
                        },
                        None => {
                            let msg = "ingest is not enabled on this server (no trainer attached)";
                            // goggles-lint: allow(alloc-hot): misconfigured-client error path, not steady-state
                            let e = ServeError::Wire(msg.to_string());
                            error_reply(id, &e)
                        }
                    },
                    Err(e) => error_reply(id, &e),
                };
                if jobs.send(job).is_err() {
                    break;
                }
            }
            Opcode::ShutdownRequest => {
                let _ = jobs.send(Reply::Raw {
                    id,
                    opcode: Opcode::ShutdownReply,
                    // goggles-lint: allow(alloc-hot): empty Vec::new never allocates, and this arm shuts the server down
                    payload: Vec::new(),
                });
                // Flush the ack, then drain gracefully: readiness flips
                // immediately, other connections keep serving through the
                // grace window, and every queued ticket is still answered.
                drop(jobs);
                let _ = writer.join();
                shared.initiate_drain();
                return;
            }
            // A client must never send reply opcodes; answer with a
            // protocol error and drop the connection (state is suspect).
            op => {
                // goggles-lint: allow(alloc-hot): protocol-error path; the connection is dropped right after
                let e = ServeError::Wire(format!("unexpected client opcode {op:?}"));
                let _ = jobs.send(error_reply(id, &e));
                break;
            }
        }
    }
    // Let the writer drain every queued reply, then close.
    drop(jobs);
    let _ = writer.join();
}

fn error_reply(id: u64, e: &ServeError) -> Reply {
    Reply::Raw { id, opcode: Opcode::ErrorReply, payload: encode_error_reply(e) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Labeler;
    use crate::client::RemoteLabeler;
    use crate::service::ServeConfig;
    use crate::snapshot::FittedLabeler;
    use goggles_core::GogglesConfig;
    use goggles_datasets::{generate, Dataset, TaskConfig, TaskKind};

    fn fitted(seed: u64) -> (FittedLabeler, Dataset) {
        let mut cfg = TaskConfig::new(TaskKind::Cub { class_a: 0, class_b: 1 }, 8, 4, seed);
        cfg.image_size = 32;
        let ds = generate(&cfg);
        let dev = ds.sample_dev_set(3, seed);
        let gcfg = GogglesConfig { seed, ..GogglesConfig::fast() };
        let (labeler, _) = FittedLabeler::fit(&gcfg, &ds, &dev).unwrap();
        (labeler, ds)
    }

    #[test]
    fn bind_resolves_ephemeral_port_and_shuts_down_cleanly() {
        let (labeler, ds) = fitted(61);
        let service = Arc::new(LabelService::spawn(labeler, ServeConfig::default()));
        let server = WireServer::bind("127.0.0.1:0", Arc::clone(&service), 2).unwrap();
        let addr = server.local_addr();
        assert_ne!(addr.port(), 0, "port 0 must resolve to a real port");
        // a quick round trip proves the pool is accepting
        let client = RemoteLabeler::connect(addr).unwrap();
        let resp = client.label(ds.test_images()[0]).unwrap();
        assert_eq!(resp.version, 1);
        drop(client);
        drop(server); // shutdown via drop must not hang
                      // the service is still usable by its other owner
        assert!(service.label(ds.test_images()[0]).is_ok());
    }

    #[test]
    fn wire_level_garbage_gets_the_connection_dropped_not_the_server() {
        use std::io::{Read as _, Write as _};
        let (labeler, ds) = fitted(62);
        let service = Arc::new(LabelService::spawn(labeler, ServeConfig::default()));
        let server = WireServer::bind("127.0.0.1:0", Arc::clone(&service), 2).unwrap();
        let addr = server.local_addr();
        // raw garbage: the server must close this connection…
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(b"this is definitely not a GWP1 frame").unwrap();
        let mut sink = Vec::new();
        let _ = raw.read_to_end(&mut sink); // unblocks when the server closes
        drop(raw);
        // …and keep serving well-formed clients.
        let client = RemoteLabeler::connect(addr).unwrap();
        assert!(client.label(ds.test_images()[0]).is_ok());
    }
}

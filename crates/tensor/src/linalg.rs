//! Linear algebra needed by the GOGGLES inference stack:
//!
//! * cyclic Jacobi symmetric eigendecomposition (exact, for moderate sizes),
//! * Cholesky factorization + triangular solves + log-determinant
//!   (full-covariance GMM baseline),
//! * PCA (Snuba's primitive extraction projects VGG logits onto the top-10
//!   principal components, §5.1.2),
//! * orthogonal-iteration truncated eigenbasis (spectral co-clustering
//!   baseline needs leading singular vectors of a large rectangular matrix).

use crate::matrix::Matrix;
use crate::rng;
use crate::{Result, TensorError};

/// Result of a symmetric eigendecomposition: `a = V diag(λ) Vᵀ` with
/// eigenvalues sorted in **descending** order and eigenvectors as columns of
/// `vectors` (i.e. `vectors.col(k)` pairs with `values[k]`).
#[derive(Debug, Clone)]
pub struct EighResult {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Eigenvectors as columns, aligned with `values`.
    pub vectors: Matrix<f64>,
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix.
///
/// Runs sweeps of Givens rotations until the off-diagonal Frobenius mass
/// drops below `1e-12` times the matrix norm (or 100 sweeps). For the sizes
/// this workspace uses (≤ a few hundred) this is fast and extremely robust.
pub fn jacobi_eigh(a: &Matrix<f64>) -> Result<EighResult> {
    let n = a.rows();
    if a.cols() != n {
        return Err(TensorError::NotSquare { rows: a.rows(), cols: a.cols() });
    }
    if n == 0 {
        return Err(TensorError::Empty("jacobi_eigh on 0x0 matrix".into()));
    }
    let mut m = a.clone();
    let mut v = Matrix::<f64>::identity(n);
    let norm = m.frobenius_norm().max(1e-300);
    let tol = 1e-12 * norm;

    for _sweep in 0..100 {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                off += m[(p, q)] * m[(p, q)];
            }
        }
        if off.sqrt() <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= f64::MIN_POSITIVE {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Rotate rows/cols p and q of m.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                // Accumulate rotations into v.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[(j, j)].partial_cmp(&m[(i, i)]).expect("NaN eigenvalue"));
    let values: Vec<f64> = order.iter().map(|&i| m[(i, i)]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_col)] = v[(r, old_col)];
        }
    }
    Ok(EighResult { values, vectors })
}

/// Lower-triangular Cholesky factor `L` with `L Lᵀ = a`.
///
/// Fails with [`TensorError::Numerical`] if `a` is not positive definite
/// (within a small tolerance); callers that fit covariance matrices should
/// add ridge regularization before calling.
pub fn cholesky(a: &Matrix<f64>) -> Result<Matrix<f64>> {
    let n = a.rows();
    if a.cols() != n {
        return Err(TensorError::NotSquare { rows: a.rows(), cols: a.cols() });
    }
    let mut l = Matrix::<f64>::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(TensorError::Numerical(format!(
                        "cholesky: non-positive pivot {sum:.3e} at {i}"
                    )));
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Ok(l)
}

/// Solve `L x = b` for lower-triangular `L` (forward substitution).
pub fn solve_lower_triangular(l: &Matrix<f64>, b: &[f64]) -> Vec<f64> {
    let n = l.rows();
    debug_assert_eq!(b.len(), n);
    let mut x = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[(i, k)] * x[k];
        }
        x[i] = sum / l[(i, i)];
    }
    x
}

/// `log det(a)` of a positive-definite matrix via its Cholesky factor.
pub fn log_det_psd(a: &Matrix<f64>) -> Result<f64> {
    let l = cholesky(a)?;
    Ok(2.0 * (0..a.rows()).map(|i| l[(i, i)].ln()).sum::<f64>())
}

/// Principal component analysis fit on the rows of a data matrix.
///
/// This mirrors what the Snuba comparison in the paper does with the VGG-16
/// logits: project 1000-dimensional features onto the top-k principal
/// components to obtain dense "primitives" (§5.1.2).
#[derive(Debug, Clone)]
pub struct Pca {
    /// Feature means subtracted before projection (length = input dim).
    pub mean: Vec<f64>,
    /// Projection matrix, `input_dim × k` (columns are components).
    pub components: Matrix<f64>,
    /// Eigenvalues (explained variance) of the retained components.
    pub explained_variance: Vec<f64>,
}

impl Pca {
    /// Fit a `k`-component PCA on the rows of `data` (`n × d`).
    ///
    /// `k` is clamped to `min(n, d)`. Uses the exact Jacobi decomposition of
    /// the `d × d` covariance, so it is intended for `d` up to ~1000.
    pub fn fit(data: &Matrix<f64>, k: usize) -> Result<Self> {
        let n = data.rows();
        let d = data.cols();
        if n == 0 || d == 0 {
            return Err(TensorError::Empty("Pca::fit on empty data".into()));
        }
        let k = k.min(d).min(n).max(1);
        let mean = data.col_means();
        // covariance = centeredᵀ centered / n
        let mut cov = Matrix::<f64>::zeros(d, d);
        for row in data.rows_iter() {
            for i in 0..d {
                let di = row[i] - mean[i];
                if di == 0.0 {
                    continue;
                }
                for j in i..d {
                    cov[(i, j)] += di * (row[j] - mean[j]);
                }
            }
        }
        let inv_n = 1.0 / n as f64;
        for i in 0..d {
            for j in i..d {
                let v = cov[(i, j)] * inv_n;
                cov[(i, j)] = v;
                cov[(j, i)] = v;
            }
        }
        let eig = jacobi_eigh(&cov)?;
        let components = eig.vectors.col_block(0, k);
        let explained_variance = eig.values[..k].to_vec();
        Ok(Self { mean, components, explained_variance })
    }

    /// Project the rows of `data` into the component space (`n × k`).
    pub fn transform(&self, data: &Matrix<f64>) -> Matrix<f64> {
        assert_eq!(data.cols(), self.mean.len(), "Pca::transform: dim mismatch");
        let k = self.components.cols();
        let mut out = Matrix::zeros(data.rows(), k);
        for (i, row) in data.rows_iter().enumerate() {
            for c in 0..k {
                let mut acc = 0.0;
                for (j, &x) in row.iter().enumerate() {
                    acc += (x - self.mean[j]) * self.components[(j, c)];
                }
                out[(i, c)] = acc;
            }
        }
        out
    }
}

/// Top-`k` eigenpairs of a symmetric PSD matrix by orthogonal (subspace)
/// iteration with QR re-orthogonalization. Suitable when the matrix is big
/// enough that full Jacobi would be wasteful but only a few leading
/// directions are needed (spectral co-clustering).
pub fn orthogonal_iteration(
    a: &Matrix<f64>,
    k: usize,
    iters: usize,
    seed: u64,
) -> Result<EighResult> {
    let n = a.rows();
    if a.cols() != n {
        return Err(TensorError::NotSquare { rows: a.rows(), cols: a.cols() });
    }
    if n == 0 || k == 0 {
        return Err(TensorError::Empty("orthogonal_iteration needs n > 0 and k > 0".into()));
    }
    let k = k.min(n);
    let mut rng = rng::std_rng(seed);
    // n × k random start, orthonormalized.
    let mut q = Matrix::from_fn(n, k, |_, _| rng::normal(&mut rng));
    gram_schmidt_columns(&mut q);
    for _ in 0..iters.max(1) {
        let mut z = a.matmul(&q);
        gram_schmidt_columns(&mut z);
        q = z;
    }
    // Rayleigh quotients as eigenvalue estimates.
    let aq = a.matmul(&q);
    let mut values = Vec::with_capacity(k);
    for c in 0..k {
        let mut lambda = 0.0;
        for r in 0..n {
            lambda += q[(r, c)] * aq[(r, c)];
        }
        values.push(lambda);
    }
    // Sort descending by |value| pairing columns.
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&i, &j| values[j].partial_cmp(&values[i]).expect("NaN eigenvalue"));
    let sorted_values: Vec<f64> = order.iter().map(|&i| values[i]).collect();
    let mut vectors = Matrix::zeros(n, k);
    for (new_c, &old_c) in order.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_c)] = q[(r, old_c)];
        }
    }
    Ok(EighResult { values: sorted_values, vectors })
}

/// In-place modified Gram–Schmidt on the columns of `q`. Columns that
/// collapse to (numerical) zero are re-randomized deterministically from
/// their index so the basis stays full-rank.
fn gram_schmidt_columns(q: &mut Matrix<f64>) {
    let (n, k) = q.shape();
    for c in 0..k {
        for prev in 0..c {
            let mut dot = 0.0;
            for r in 0..n {
                dot += q[(r, c)] * q[(r, prev)];
            }
            for r in 0..n {
                let sub = dot * q[(r, prev)];
                q[(r, c)] -= sub;
            }
        }
        let mut norm = 0.0;
        for r in 0..n {
            norm += q[(r, c)] * q[(r, c)];
        }
        norm = norm.sqrt();
        if norm <= 1e-12 {
            // Deterministic re-seed keyed by the column index.
            let mut rng = rng::std_rng(0x9E37_79B9 ^ (c as u64));
            for r in 0..n {
                q[(r, c)] = rng::normal(&mut rng);
            }
            let mut n2 = 0.0;
            for r in 0..n {
                n2 += q[(r, c)] * q[(r, c)];
            }
            norm = n2.sqrt();
        }
        let inv = 1.0 / norm;
        for r in 0..n {
            q[(r, c)] *= inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix<f64> {
        // A known symmetric positive definite matrix.
        Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.2], &[0.5, 0.2, 2.0]])
    }

    #[test]
    fn jacobi_reconstructs_matrix() {
        let a = spd3();
        let eig = jacobi_eigh(&a).unwrap();
        // V diag(λ) Vᵀ == a
        let n = 3;
        let mut recon = Matrix::<f64>::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += eig.vectors[(i, k)] * eig.values[k] * eig.vectors[(j, k)];
                }
                recon[(i, j)] = s;
            }
        }
        assert!(a.max_abs_diff(&recon) < 1e-9);
    }

    #[test]
    fn jacobi_eigenvalues_sorted_descending() {
        let eig = jacobi_eigh(&spd3()).unwrap();
        assert!(eig.values.windows(2).all(|w| w[0] >= w[1]));
        // trace preserved
        let trace: f64 = eig.values.iter().sum();
        assert!((trace - 9.0).abs() < 1e-9);
    }

    #[test]
    fn jacobi_diagonal_matrix_is_fixed_point() {
        let a = Matrix::from_rows(&[&[5.0, 0.0], &[0.0, 2.0]]);
        let eig = jacobi_eigh(&a).unwrap();
        assert!((eig.values[0] - 5.0).abs() < 1e-12);
        assert!((eig.values[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn jacobi_rejects_rectangular() {
        let a = Matrix::<f64>::zeros(2, 3);
        assert!(matches!(jacobi_eigh(&a), Err(TensorError::NotSquare { .. })));
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd3();
        let l = cholesky(&a).unwrap();
        let recon = l.matmul(&l.transpose());
        assert!(a.max_abs_diff(&recon) < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(cholesky(&a).is_err());
    }

    #[test]
    fn solve_lower_triangular_roundtrip() {
        let a = spd3();
        let l = cholesky(&a).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let x = solve_lower_triangular(&l, &b);
        let back = l.matvec(&x);
        for (bb, xb) in b.iter().zip(back.iter()) {
            assert!((bb - xb).abs() < 1e-12);
        }
    }

    #[test]
    fn log_det_matches_eigenvalue_product() {
        let a = spd3();
        let eig = jacobi_eigh(&a).unwrap();
        let expect: f64 = eig.values.iter().map(|v| v.ln()).sum();
        assert!((log_det_psd(&a).unwrap() - expect).abs() < 1e-9);
    }

    #[test]
    fn pca_recovers_dominant_direction() {
        // Points spread along (1, 1)/√2 with tiny orthogonal noise.
        let mut rows = Vec::new();
        let mut rng = crate::rng::std_rng(1);
        for _ in 0..200 {
            let t = crate::rng::normal(&mut rng) * 5.0;
            let e = crate::rng::normal(&mut rng) * 0.05;
            rows.push(vec![t + e, t - e]);
        }
        let data = Matrix::from_fn(200, 2, |i, j| rows[i][j]);
        let pca = Pca::fit(&data, 1).unwrap();
        let c = pca.components.col(0);
        let dir = (c[0].abs() - c[1].abs()).abs();
        assert!(dir < 0.05, "component not along diagonal: {c:?}");
        assert!(pca.explained_variance[0] > 10.0);
        let z = pca.transform(&data);
        assert_eq!(z.shape(), (200, 1));
    }

    #[test]
    fn pca_transform_centers_data() {
        let data = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let pca = Pca::fit(&data, 2).unwrap();
        let z = pca.transform(&data);
        // projected data must be centered
        let means = z.col_means();
        for m in means {
            assert!(m.abs() < 1e-9);
        }
    }

    #[test]
    fn orthogonal_iteration_matches_jacobi_leading_pair() {
        let a = spd3();
        let full = jacobi_eigh(&a).unwrap();
        let top = orthogonal_iteration(&a, 2, 200, 7).unwrap();
        assert!((top.values[0] - full.values[0]).abs() < 1e-6);
        assert!((top.values[1] - full.values[1]).abs() < 1e-6);
        // eigenvector alignment up to sign
        for k in 0..2 {
            let mut dot = 0.0;
            for r in 0..3 {
                dot += top.vectors[(r, k)] * full.vectors[(r, k)];
            }
            assert!(dot.abs() > 0.999, "k={k} dot={dot}");
        }
    }

    #[test]
    fn orthogonal_iteration_columns_are_orthonormal() {
        let a = spd3();
        let top = orthogonal_iteration(&a, 3, 100, 3).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let mut dot = 0.0;
                for r in 0..3 {
                    dot += top.vectors[(r, i)] * top.vectors[(r, j)];
                }
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-8);
            }
        }
    }
}

//! Serving benchmark: single-image p50 latency and micro-batched throughput
//! of the `goggles-serve` [`goggles::serve::LabelService`] versus a full
//! `label_dataset` refit over the same held-out images.
//!
//! ```text
//! GOGGLES_SCALE=quick|standard|paper cargo bench -p goggles-bench --bench serving
//! ```
//!
//! Also drops `BENCH_serving.json` in the results dir (see
//! `goggles::experiments::report::results_dir`).

use goggles::experiments::report::results_dir;
use goggles::experiments::{serving, Scale};
use goggles_bench::timed;

fn main() {
    let scale = Scale::from_env();
    let params = scale.params();
    println!("scale: {scale:?} → {params:?}\n");
    let report = timed("Serving", || serving::run(&params));
    println!("{}", report.to_table().render());
    let path = results_dir().join("BENCH_serving.json");
    match report.write_json(&path) {
        Ok(()) => println!("[saved {}]\n", path.display()),
        Err(e) => eprintln!("[warn: could not write {}: {e}]\n", path.display()),
    }
    // The acceptance guardrail of the serving subsystem: fold-in inference
    // must not trail a full refit by more than 2 accuracy points.
    assert!(
        report.served_accuracy + 0.02 + 1e-9 >= report.batch_accuracy,
        "served {:.3} trails batch refit {:.3} by more than 2 points",
        report.served_accuracy,
        report.batch_accuracy
    );
}

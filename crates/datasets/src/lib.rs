//! # goggles-datasets
//!
//! Synthetic image task generators standing in for the five corpora of the
//! paper's evaluation (§5.1.1). The originals cannot be shipped (licensing,
//! size, PHI), so each generator reproduces the *task structure* that the
//! GOGGLES pipeline actually interacts with — localized class-discriminative
//! visual evidence over nuisance backgrounds — with difficulty knobs
//! calibrated so the relative ordering of the paper's Table 1 holds
//! (CUB easiest … GTSRB hardest). DESIGN.md §2 documents the substitution.
//!
//! | Generator | Mirrors | Class evidence | Nuisances |
//! |---|---|---|---|
//! | [`cub`] | CUB-200-2011 class pairs | body/head plumage colors, wing-bar patterns, beak shape | pose, position, scale, background, lighting |
//! | [`gtsrb`] | GTSRB class pairs | small glyph inside a shared sign shape | blur, exposure, clutter, occlusion |
//! | [`surface`] | surface-finish inspection | grain amplitude, pits, deep scratches | polish direction, illumination |
//! | [`xray`] (TB) | Shenzhen TB set | focal cavities/opacities in lung fields | anatomy jitter, exposure |
//! | [`xray`] (PN) | pediatric pneumonia set | diffuse lung haze | anatomy jitter, exposure |
//!
//! Every generator is deterministic given a [`TaskConfig::seed`], and CUB
//! additionally emits per-image binary attribute annotations so the Snorkel
//! comparison can build labeling functions exactly as §5.1.2 describes.

pub mod cub;
pub mod gtsrb;
pub mod surface;
pub mod types;
pub mod xray;

pub use cub::CubAttributes;
pub use types::{Dataset, DevSet, TaskConfig, TaskKind};

/// Generate the dataset described by `config`.
pub fn generate(config: &TaskConfig) -> Dataset {
    match config.kind {
        TaskKind::Cub { class_a, class_b } => cub::generate(config, class_a, class_b),
        TaskKind::Gtsrb { class_a, class_b } => gtsrb::generate(config, class_a, class_b),
        TaskKind::Surface => surface::generate(config),
        TaskKind::SurfaceGrades => surface::generate_grades(config),
        TaskKind::TbXray => xray::generate_tb(config),
        TaskKind::PnXray => xray::generate_pn(config),
    }
}

/// The five standard benchmark tasks in the paper's Table 1 order, using
/// the canonical class pair for the pair-sampled datasets.
// goggles-lint: allow(dead-pub): the paper's Table 1 task catalog; exercised only by this crate's unit tests
pub fn standard_suite(
    n_train_per_class: usize,
    n_test_per_class: usize,
    seed: u64,
) -> Vec<TaskConfig> {
    vec![
        TaskConfig::new(
            TaskKind::Cub { class_a: 0, class_b: 1 },
            n_train_per_class,
            n_test_per_class,
            seed,
        ),
        TaskConfig::new(
            TaskKind::Gtsrb { class_a: 0, class_b: 1 },
            n_train_per_class,
            n_test_per_class,
            seed,
        ),
        TaskConfig::new(TaskKind::Surface, n_train_per_class, n_test_per_class, seed),
        TaskConfig::new(TaskKind::TbXray, n_train_per_class, n_test_per_class, seed),
        TaskConfig::new(TaskKind::PnXray, n_train_per_class, n_test_per_class, seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_suite_covers_all_five() {
        let suite = standard_suite(10, 5, 0);
        assert_eq!(suite.len(), 5);
        let names: Vec<&str> = suite.iter().map(|c| c.kind.dataset_name()).collect();
        assert_eq!(names, vec!["CUB", "GTSRB", "Surface", "TB-Xray", "PN-Xray"]);
    }

    #[test]
    fn generate_dispatches_every_kind() {
        for cfg in standard_suite(4, 2, 1) {
            let ds = generate(&cfg);
            assert_eq!(ds.images.len(), 12, "{}", ds.name);
            assert_eq!(ds.num_classes, 2);
        }
    }
}

//! Surface-finish inspection task (the `Surface` row of Table 1).
//!
//! The original corpus [Louhichi 2019] photographs industrial metallic parts
//! labeled *good* (smooth finish) or *bad* (rough finish); the paper notes
//! the parts "look very similar to the untrained eye". The class evidence is
//! purely textural: grain amplitude, pitting and deep scratch marks. This
//! generator reproduces that: both classes share the same metallic substrate,
//! illumination gradient and polish direction; the bad class adds coarse
//! grain, pits and cross-direction scratches.

use crate::types::{Dataset, TaskConfig, TaskKind};
use goggles_tensor::rng::{normal, std_rng};
use goggles_vision::{draw, filter, noise, Image};
use rand::rngs::StdRng;
use rand::Rng;

/// Render one metallic part photo. `rough == false` is the "good" class.
pub(crate) fn render_part(rng: &mut StdRng, size: usize, rough: bool) -> Image {
    let s = size as f32;
    let mut img = Image::new(3, size, size);

    // Metallic base tone with a diagonal illumination gradient.
    let base = 0.55 + 0.1 * rng.random::<f32>();
    let grad_angle = rng.random::<f32>() * std::f32::consts::TAU;
    let (gy, gx) = (grad_angle.sin(), grad_angle.cos());
    let grad_amp = 0.1 + 0.08 * rng.random::<f32>();
    for y in 0..size {
        for x in 0..size {
            let t = (y as f32 / s - 0.5) * gy + (x as f32 / s - 0.5) * gx;
            let v = base + grad_amp * t;
            img.set_pixel(y, x, &[v, v, v * 1.03]); // faint cool metallic tint
        }
    }

    // Shared polish direction for the machining marks on this part.
    let polish_angle = rng.random::<f32>() * std::f32::consts::PI;

    if rough {
        // Bad finish: coarse grain, pits and deep cross-direction scratches.
        noise::add_value_noise_texture(&mut img, rng, 10.0, 4, 0.16);
        let n_pits = 6 + rng.random_range(0..8usize);
        for _ in 0..n_pits {
            let cy = rng.random::<f32>() * s;
            let cx = rng.random::<f32>() * s;
            let r = 0.8 + 1.8 * rng.random::<f32>();
            draw::fill_disc(&mut img, cy, cx, r, &[0.18, 0.18, 0.2]);
        }
        noise::add_scratches(
            &mut img,
            rng,
            5,
            polish_angle + std::f32::consts::FRAC_PI_2,
            0.5,
            0.3,
        );
        noise::add_gaussian_noise(&mut img, rng, 0.04);
    } else {
        // Good finish: fine low-amplitude grain + faint aligned polish lines.
        noise::add_value_noise_texture(&mut img, rng, 16.0, 2, 0.04);
        noise::add_scratches(&mut img, rng, 3, polish_angle, 0.05, 0.05);
        noise::add_gaussian_noise(&mut img, rng, 0.02);
    }

    // Slight defocus jitter shared by both classes.
    let mut out = filter::gaussian_blur(&img, 0.3 + 0.2 * rng.random::<f32>());
    // Small global exposure wobble.
    let exposure = 1.0 + 0.08 * normal(rng) as f32;
    for v in out.tensor_mut().as_mut_slice() {
        *v *= exposure;
    }
    out.clamp01();
    out
}

/// Generate the surface-finish dataset (class 0 = good, class 1 = bad).
pub fn generate(config: &TaskConfig) -> Dataset {
    let mut rng = std_rng(config.seed ^ 0x50FA_CE01);
    let mut train = Vec::new();
    let mut test = Vec::new();
    for cls in 0..2usize {
        let rough = cls == 1;
        for _ in 0..config.n_train_per_class {
            train.push((render_part(&mut rng, config.image_size, rough), cls));
        }
        for _ in 0..config.n_test_per_class {
            test.push((render_part(&mut rng, config.image_size, rough), cls));
        }
    }
    Dataset::from_parts("Surface".into(), TaskKind::Surface, 2, train, test)
}

/// Defect grade of a part in the three-class task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Grade {
    /// Grade 0: smooth polished finish.
    Smooth,
    /// Grade 1: deep cross-direction scratches, otherwise fine grain.
    Scratched,
    /// Grade 2: pitting + coarse grain.
    Pitted,
}

/// Render one part of the given grade (three-class task).
pub(crate) fn render_part_graded(rng: &mut StdRng, size: usize, grade: Grade) -> Image {
    let s = size as f32;
    let mut img = Image::new(3, size, size);
    let base = 0.55 + 0.1 * rng.random::<f32>();
    let grad_angle = rng.random::<f32>() * std::f32::consts::TAU;
    let (gy, gx) = (grad_angle.sin(), grad_angle.cos());
    let grad_amp = 0.1 + 0.08 * rng.random::<f32>();
    for y in 0..size {
        for x in 0..size {
            let t = (y as f32 / s - 0.5) * gy + (x as f32 / s - 0.5) * gx;
            let v = base + grad_amp * t;
            img.set_pixel(y, x, &[v, v, v * 1.03]);
        }
    }
    let polish_angle = rng.random::<f32>() * std::f32::consts::PI;
    match grade {
        Grade::Smooth => {
            noise::add_value_noise_texture(&mut img, rng, 16.0, 2, 0.04);
            noise::add_scratches(&mut img, rng, 3, polish_angle, 0.05, 0.05);
        }
        Grade::Scratched => {
            noise::add_value_noise_texture(&mut img, rng, 16.0, 2, 0.05);
            noise::add_scratches(
                &mut img,
                rng,
                9,
                polish_angle + std::f32::consts::FRAC_PI_2,
                0.4,
                0.35,
            );
        }
        Grade::Pitted => {
            noise::add_value_noise_texture(&mut img, rng, 10.0, 4, 0.14);
            let n_pits = 10 + rng.random_range(0..8usize);
            for _ in 0..n_pits {
                let cy = rng.random::<f32>() * s;
                let cx = rng.random::<f32>() * s;
                let r = 1.0 + 2.0 * rng.random::<f32>();
                draw::fill_disc(&mut img, cy, cx, r, &[0.15, 0.15, 0.18]);
            }
        }
    }
    noise::add_gaussian_noise(&mut img, rng, 0.02);
    let mut out = filter::gaussian_blur(&img, 0.3 + 0.2 * rng.random::<f32>());
    let exposure = 1.0 + 0.08 * normal(rng) as f32;
    for v in out.tensor_mut().as_mut_slice() {
        *v *= exposure;
    }
    out.clamp01();
    out
}

/// Generate the three-grade dataset (0 = smooth, 1 = scratched, 2 = pitted).
pub(crate) fn generate_grades(config: &TaskConfig) -> Dataset {
    let mut rng = std_rng(config.seed ^ 0x50FA_CE03);
    let grades = [Grade::Smooth, Grade::Scratched, Grade::Pitted];
    let mut train = Vec::new();
    let mut test = Vec::new();
    for (cls, &grade) in grades.iter().enumerate() {
        for _ in 0..config.n_train_per_class {
            train.push((render_part_graded(&mut rng, config.image_size, grade), cls));
        }
        for _ in 0..config.n_test_per_class {
            test.push((render_part_graded(&mut rng, config.image_size, grade), cls));
        }
    }
    Dataset::from_parts("Surface-3".into(), TaskKind::SurfaceGrades, 3, train, test)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texture_energy(img: &Image) -> f32 {
        // high-frequency energy: mean |pixel - blur(pixel)|
        let blurred = filter::gaussian_blur(img, 1.5);
        img.tensor()
            .as_slice()
            .iter()
            .zip(blurred.tensor().as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum::<f32>()
            / img.tensor().as_slice().len() as f32
    }

    #[test]
    fn rough_parts_have_more_texture_energy() {
        let mut rng = std_rng(1);
        let mut good = 0.0;
        let mut bad = 0.0;
        for _ in 0..8 {
            good += texture_energy(&render_part(&mut rng, 64, false));
            bad += texture_energy(&render_part(&mut rng, 64, true));
        }
        assert!(bad > 1.5 * good, "texture gap too small: good {good:.4} vs bad {bad:.4}");
    }

    #[test]
    fn images_are_valid() {
        let mut rng = std_rng(2);
        for rough in [false, true] {
            let img = render_part(&mut rng, 64, rough);
            assert_eq!(img.shape(), (3, 64, 64));
            assert!(img.tensor().as_slice().iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn generate_layout_and_determinism() {
        let cfg = TaskConfig::new(TaskKind::Surface, 5, 2, 3);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.train_indices.len(), 10);
        assert_eq!(a.test_indices.len(), 4);
        assert_eq!(a.images[3], b.images[3]);
        assert_eq!(a.train_labels(), vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn parts_vary_within_class() {
        let mut rng = std_rng(4);
        let a = render_part(&mut rng, 32, true);
        let b = render_part(&mut rng, 32, true);
        assert_ne!(a, b);
    }

    #[test]
    fn graded_dataset_has_three_balanced_classes() {
        let cfg = TaskConfig::new(TaskKind::SurfaceGrades, 6, 2, 9);
        let ds = generate_grades(&cfg);
        assert_eq!(ds.num_classes, 3);
        assert_eq!(ds.train_indices.len(), 18);
        for cls in 0..3 {
            assert_eq!(ds.train_labels().iter().filter(|&&l| l == cls).count(), 6);
        }
        assert_eq!(ds.name, "Surface-3");
    }

    #[test]
    fn defective_grades_have_more_texture_than_smooth() {
        // Both defect grades carry clearly more high-frequency energy than
        // the smooth grade (their *kind* of energy differs — directional
        // strokes vs isotropic pits — which is what the classifier uses).
        let mut rng = std_rng(10);
        let mut energy = [0.0f32; 3];
        for _ in 0..6 {
            for (g, grade) in [Grade::Smooth, Grade::Scratched, Grade::Pitted].iter().enumerate() {
                energy[g] += texture_energy(&render_part_graded(&mut rng, 64, *grade));
            }
        }
        assert!(energy[1] > 1.3 * energy[0], "scratched {} vs smooth {}", energy[1], energy[0]);
        assert!(energy[2] > 1.3 * energy[0], "pitted {} vs smooth {}", energy[2], energy[0]);
    }

    #[test]
    fn graded_generator_is_deterministic() {
        let cfg = TaskConfig::new(TaskKind::SurfaceGrades, 2, 1, 5);
        assert_eq!(generate_grades(&cfg).images[4], generate_grades(&cfg).images[4]);
    }
}

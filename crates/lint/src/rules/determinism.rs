//! `hash-iter` + `nan-cmp`: determinism of fit and kernel paths.
//!
//! GOGGLES' value proposition is *reproducible* hands-off labeling: the
//! same seed must yield the same affinity matrix, the same EM trajectory,
//! the same snapshot bytes. Two things silently break that while passing
//! every happy-path test: iterating a `HashMap`/`HashSet` (iteration order
//! is randomized per process) into any order- or accumulation-sensitive
//! computation, and `partial_cmp().unwrap()`-style comparators that panic
//! the moment a degenerate input produces a NaN. Lookups and inserts into
//! hash containers are fine — only *iteration* is flagged.

use crate::engine::{Diagnostic, SourceFile};
use crate::lexer::Token;
use std::collections::BTreeSet;

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Iteration methods whose visit order is the container's (nondeterministic
/// for hash containers). `get`/`insert`/`contains*`/`remove`/`entry` are
/// order-free and deliberately not listed.
const ITER_METHODS: &[&str] =
    &["iter", "iter_mut", "keys", "values", "values_mut", "into_iter", "drain", "retain"];

/// Flag iteration over identifiers bound to `HashMap`/`HashSet` in
/// fit/kernel crates. Binding detection is lexical (`name: HashMap<…>`,
/// `name = HashMap::new()` and friends) — an over-approximation that errs
/// toward reporting, with the `allow` hatch for intentional order-free
/// iteration (e.g. feeding a commutative reduction into a sort).
pub(crate) fn check_hash_iteration(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let tokens = &file.tokens;
    let bound = hash_bound_idents(tokens);
    if bound.is_empty() {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        // `name.iter()` / `name.keys()` …
        if bound.contains(name)
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('.'))
            && tokens.get(i + 2).and_then(Token::ident).is_some_and(|m| ITER_METHODS.contains(&m))
            && tokens.get(i + 3).is_some_and(|n| n.is_punct('('))
        {
            report_iter(file, out, t.line, name);
        }
        // `for … in name` / `for … in &name` (direct IntoIterator use)
        if name == "in" {
            let mut j = i + 1;
            while tokens.get(j).is_some_and(|n| n.is_punct('&') || n.ident() == Some("mut")) {
                j += 1;
            }
            if let Some(target) = tokens.get(j).and_then(Token::ident) {
                // A following `.` means a method chain decides the order —
                // covered by the method pattern above if it's an iter call.
                let chained = tokens.get(j + 1).is_some_and(|n| n.is_punct('.'));
                if bound.contains(target) && !chained {
                    report_iter(file, out, t.line, target);
                }
            }
        }
    }
}

fn report_iter(file: &SourceFile, out: &mut Vec<Diagnostic>, line: usize, name: &str) {
    file.report(
        out,
        "hash-iter",
        line,
        format!(
            "iterating hash container `{name}` in a fit/kernel path: iteration order is \
             nondeterministic and can change numeric results across runs; collect+sort, \
             use a BTree container, or annotate why order cannot matter"
        ),
    );
}

/// Identifiers bound to a hash container anywhere in the file: covers
/// `name: [std::collections::]HashMap<…>` (lets, params, struct fields) and
/// `name = [path::]HashMap::new/with_capacity/from(…)`.
fn hash_bound_idents(tokens: &[Token]) -> BTreeSet<String> {
    let mut bound = BTreeSet::new();
    for (i, t) in tokens.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        if !HASH_TYPES.contains(&name) {
            continue;
        }
        // Walk back over a `std :: collections ::` path prefix.
        let mut j = i;
        while j >= 2 && tokens[j - 1].is_punct(':') && tokens[j - 2].is_punct(':') {
            if j >= 3 && tokens[j - 3].ident().is_some() {
                j -= 3;
            } else {
                break;
            }
        }
        if j == 0 {
            continue;
        }
        match (tokens.get(j.wrapping_sub(2)), &tokens[j - 1]) {
            // `name : HashMap`
            (Some(prev), colon)
                if colon.is_punct(':')
                    && !matches!(tokens.get(j.wrapping_sub(2)), Some(t2) if t2.is_punct(':')) =>
            {
                if let Some(n) = prev.ident() {
                    bound.insert(n.to_string());
                }
            }
            // `name = HashMap`
            (Some(prev), eq) if eq.is_punct('=') => {
                if let Some(n) = prev.ident() {
                    bound.insert(n.to_string());
                }
            }
            _ => {}
        }
    }
    bound
}

/// Flag `partial_cmp(…).unwrap()` / `.expect(…)` — a comparator that panics
/// on NaN. `f32::total_cmp`/`f64::total_cmp` is the drop-in fix: total
/// order, no panic, deterministic on every input. Workspace-wide.
pub(crate) fn check_nan_comparators(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let tokens = &file.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if t.ident() != Some("partial_cmp") {
            continue;
        }
        let Some(open) = tokens.get(i + 1) else { continue };
        if !open.is_punct('(') {
            continue;
        }
        // Find the matching close paren, then look for `.unwrap` / `.expect`.
        let mut depth = 0usize;
        let mut j = i + 1;
        while j < tokens.len() {
            if tokens[j].is_punct('(') {
                depth += 1;
            } else if tokens[j].is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        if tokens.get(j + 1).is_some_and(|n| n.is_punct('.'))
            && tokens
                .get(j + 2)
                .and_then(Token::ident)
                .is_some_and(|m| m == "unwrap" || m == "expect")
        {
            file.report(
                out,
                "nan-cmp",
                t.line,
                "partial_cmp().unwrap() panics on NaN; use f32::total_cmp / f64::total_cmp \
                 for a panic-free total order"
                    .to_string(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str, check: fn(&SourceFile, &mut Vec<Diagnostic>)) -> Vec<Diagnostic> {
        let f = SourceFile::new(rel.into(), src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn flags_hash_iteration_not_lookup() {
        let src = "\
fn f() {
    let mut m: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
    m.insert(1, 2.0);
    let x = m.get(&1);
    let s: f64 = m.values().sum();
    for (k, v) in &m { acc += v; }
}
";
        let out = run("crates/core/src/x.rs", src, check_hash_iteration);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|d| d.rule == "hash-iter"));
    }

    #[test]
    fn flags_assignment_bound_sets() {
        let src = "fn f() { let seen = HashSet::with_capacity(4); for x in seen.drain() {} }";
        assert_eq!(run("crates/core/src/x.rs", src, check_hash_iteration).len(), 1);
    }

    #[test]
    fn nan_cmp_flagged_workspace_wide() {
        let src = "fn f() { xs.sort_by(|a, b| a.partial_cmp(b).expect(\"NaN\")); }";
        assert_eq!(run("crates/vision/src/x.rs", src, check_nan_comparators).len(), 1);
        let fixed = "fn f() { xs.sort_by(|a, b| a.total_cmp(b)); }";
        assert!(run("crates/vision/src/x.rs", fixed, check_nan_comparators).is_empty());
        let handled = "fn f() { let o = a.partial_cmp(b).unwrap_or(Ordering::Equal); }";
        assert!(run("crates/vision/src/x.rs", handled, check_nan_comparators).is_empty());
    }
}

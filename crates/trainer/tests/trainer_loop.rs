//! End-to-end exercise of the continuous-learning loop against a live
//! `LabelService`: ingest → incremental refit → gated publish, with the
//! serving plane answering throughout. Four scenarios:
//!
//! 1. happy path — a batch publishes under live label load with zero
//!    dropped requests;
//! 2. offline gate failure (`trainer.gate` failpoint) — the candidate is
//!    rejected and serving stays bit-identical on the old version;
//! 3. canary regression (`trainer.canary` failpoint) — the candidate
//!    publishes, regresses, and is rolled back; serving returns to the
//!    previous version bit-identically;
//! 4. torn snapshot write (`snapshot.write` failpoint) — the cycle fails
//!    before the registry is touched, then succeeds once the fault clears.
//!
//! The fault injector is process-global, so every test serializes on one
//! lock (same discipline as the root `serve_chaos` suite).

#[cfg(test)]
mod loop_tests {
    use goggles_core::GogglesConfig;
    use goggles_datasets::{generate, TaskConfig, TaskKind};
    use goggles_serve::{
        fault, FaultPlan, FittedLabeler, LabelService, ServeConfig, TrainingBootstrap,
    };
    use goggles_trainer::{RefitOutcome, Trainer, TrainerConfig};
    use goggles_vision::Image;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
    use std::time::Duration;

    /// One lock for the whole suite: the injector is process-global.
    fn serial() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Clears the installed plan even when an assertion unwinds.
    struct PlanGuard;
    impl Drop for PlanGuard {
        fn drop(&mut self) {
            fault::clear();
        }
    }

    fn install(spec: &str) -> PlanGuard {
        fault::install(&FaultPlan::parse(spec).unwrap());
        PlanGuard
    }

    fn tiny_task(seed: u64, per_class: usize) -> TaskConfig {
        let mut task =
            TaskConfig::new(TaskKind::Cub { class_a: 0, class_b: 1 }, per_class, 1, seed);
        task.image_size = 32;
        task
    }

    /// Bootstrap fit plus a pool of fresh images to feed the intake.
    fn fixture(seed: u64) -> (GogglesConfig, TrainingBootstrap, Vec<Image>) {
        let config = GogglesConfig { seed, ..GogglesConfig::fast() };
        let ds = generate(&tiny_task(seed, 3));
        let dev = ds.sample_dev_set(1, seed);
        let bootstrap = FittedLabeler::fit_for_training(&config, &ds, &dev).unwrap();
        let pool = generate(&tiny_task(seed.wrapping_add(909), 4));
        let fresh: Vec<Image> = pool.train_images().into_iter().cloned().collect();
        (config, bootstrap, fresh)
    }

    /// TrainerConfig with the offline gate held wide open (`epsilon: 1.0`
    /// can never reject a score in [0, 1]) so each scenario deterministically
    /// reaches the stage under test; the gate's own arithmetic is covered
    /// by the failpoint scenarios and unit tests.
    fn open_gate() -> TrainerConfig {
        TrainerConfig { min_batch: 2, epsilon: 1.0, ..TrainerConfig::default() }
    }

    fn stack(
        bootstrap: TrainingBootstrap,
        config: &GogglesConfig,
        options: TrainerConfig,
    ) -> (Arc<LabelService>, Trainer) {
        let registry =
            Arc::new(goggles_serve::SnapshotRegistry::new(bootstrap.labeler.clone()).unwrap());
        let service = Arc::new(LabelService::spawn_with_registry(
            Arc::clone(&registry),
            ServeConfig::with_workers(2),
        ));
        let trainer = Trainer::spawn(bootstrap, config, registry, options);
        (service, trainer)
    }

    const REFIT_TIMEOUT: Duration = Duration::from_secs(60);

    #[test]
    fn publishes_under_live_load_with_zero_drops() {
        let _guard = serial();
        let (config, bootstrap, fresh) = fixture(11);
        let (service, trainer) = stack(bootstrap, &config, open_gate());

        // Live label load on a second thread for the whole cycle.
        let stop = Arc::new(AtomicBool::new(false));
        let probe = fresh[0].clone();
        let load = {
            let (service, stop, probe) = (Arc::clone(&service), Arc::clone(&stop), probe);
            std::thread::spawn(move || {
                let mut answered = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    service.label(&probe).expect("label request dropped during publish");
                    answered += 1;
                }
                answered
            })
        };

        for img in fresh.iter().take(3).cloned() {
            trainer.ingest(img).unwrap();
        }
        assert!(trainer.wait_for_refits(1, REFIT_TIMEOUT), "refit cycle never completed");
        stop.store(true, Ordering::Relaxed);
        let answered = load.join().unwrap();
        assert!(answered > 0, "load thread never got a response");

        let status = trainer.status();
        assert_eq!(status.ingested, 3);
        assert_eq!(status.published, 1, "status: {status:?}");
        assert_eq!(status.last_outcome, Some(RefitOutcome::Published));
        assert_eq!(status.last_published_version, Some(2));
        assert_eq!(service.registry().current_version(), 2);
        assert_eq!(status.rows, 6 + 3, "frozen N plus the appended batch");
        // The published model now answers requests.
        assert_eq!(service.label(&fresh[0]).unwrap().version, 2);
    }

    #[test]
    fn gate_rejection_keeps_serving_bit_identical() {
        let _guard = serial();
        let _plan = install("trainer.gate:io@#1");
        let (config, bootstrap, fresh) = fixture(23);
        let (service, trainer) = stack(bootstrap, &config, open_gate());

        let before = service.label(&fresh[3]).unwrap();
        assert_eq!(before.version, 1);

        for img in fresh.iter().take(2).cloned() {
            trainer.ingest(img).unwrap();
        }
        assert!(trainer.wait_for_refits(1, REFIT_TIMEOUT));
        let status = trainer.status();
        assert_eq!(status.last_outcome, Some(RefitOutcome::Rejected), "status: {status:?}");
        assert_eq!(status.published, 0);
        assert_eq!(service.registry().current_version(), 1, "rejected candidate must not publish");

        let after = service.label(&fresh[3]).unwrap();
        assert_eq!(after.version, 1);
        assert_eq!(after.label, before.label);
        let before_bits: Vec<u64> = before.probs.iter().map(|p| p.to_bits()).collect();
        let after_bits: Vec<u64> = after.probs.iter().map(|p| p.to_bits()).collect();
        assert_eq!(before_bits, after_bits, "serving drifted across a rejected refit");
    }

    #[test]
    fn canary_regression_rolls_back_to_previous_version() {
        let _guard = serial();
        let _plan = install("trainer.canary:io@#1");
        let (config, bootstrap, fresh) = fixture(37);
        let (service, trainer) = stack(bootstrap, &config, open_gate());

        let before = service.label(&fresh[3]).unwrap();
        assert_eq!(before.version, 1);

        for img in fresh.iter().take(2).cloned() {
            trainer.ingest(img).unwrap();
        }
        assert!(trainer.wait_for_refits(1, REFIT_TIMEOUT));
        let status = trainer.status();
        assert_eq!(status.last_outcome, Some(RefitOutcome::RolledBack), "status: {status:?}");
        assert_eq!(status.rolled_back, 1);
        assert_eq!(
            service.registry().current_version(),
            1,
            "canary regression must restore the previous version"
        );

        let after = service.label(&fresh[3]).unwrap();
        assert_eq!(after.version, 1);
        let before_bits: Vec<u64> = before.probs.iter().map(|p| p.to_bits()).collect();
        let after_bits: Vec<u64> = after.probs.iter().map(|p| p.to_bits()).collect();
        assert_eq!(before_bits, after_bits, "serving drifted across a rollback");
    }

    #[test]
    fn torn_snapshot_write_fails_cycle_before_registry() {
        let _guard = serial();
        let _plan = install("snapshot.write:torn@#1");
        let dir = std::env::temp_dir().join(format!("goggles-trainer-loop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("candidate.snap");
        let (config, bootstrap, fresh) = fixture(53);
        let options = TrainerConfig { snapshot_path: Some(path.clone()), ..open_gate() };
        let (service, trainer) = stack(bootstrap, &config, options);

        for img in fresh.iter().take(2).cloned() {
            trainer.ingest(img).unwrap();
        }
        assert!(trainer.wait_for_refits(1, REFIT_TIMEOUT));
        let status = trainer.status();
        assert_eq!(status.last_outcome, Some(RefitOutcome::Failed), "status: {status:?}");
        assert_eq!(
            service.registry().current_version(),
            1,
            "a torn snapshot write must fail the cycle before the registry is touched"
        );
        assert!(!path.exists(), "torn write must not leave the final snapshot name");

        // Fault exhausted (`#1` fires once): the next cycle persists and
        // publishes — the loop self-heals without a restart.
        for img in fresh.iter().skip(2).take(2).cloned() {
            trainer.ingest(img).unwrap();
        }
        assert!(trainer.wait_for_refits(2, REFIT_TIMEOUT));
        let status = trainer.status();
        assert_eq!(status.last_outcome, Some(RefitOutcome::Published), "status: {status:?}");
        assert_eq!(service.registry().current_version(), 2);
        assert!(path.exists(), "published candidate must be persisted");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

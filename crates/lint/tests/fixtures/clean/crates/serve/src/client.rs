//! Fixture: client speaks every opcode.

use crate::wire::Opcode;

pub fn encode_all() -> (u8, u8) {
    (Opcode::Label as u8, Opcode::Stats as u8)
}

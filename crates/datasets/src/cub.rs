//! CUB-200-like synthetic bird tasks.
//!
//! The real CUB-200-2011 contains 11,788 photos of 200 bird species with 312
//! binary image-level attribute annotations. This generator defines 200
//! procedural "species" (deterministic body/head plumage colors, wing-bar
//! pattern, beak geometry) and renders photographs of them with pose,
//! position, scale, lighting and background variation. Binary tasks pick a
//! species pair, mirroring the paper's 10 sampled class pairs.
//!
//! Per-image attribute annotations (a compact analogue of CUB's 312) are
//! emitted so the Snorkel comparison can turn them into labeling functions
//! exactly as §5.1.2 describes: *"each attribute annotation in the union of
//! the class-specific attributes acts as a labeling function which outputs a
//! binary label corresponding to the class that the attribute belongs to"*.

use crate::types::{Dataset, TaskConfig, TaskKind};
use goggles_tensor::rng::{sample_without_replacement, std_rng};
use goggles_vision::{draw, filter, noise, Image};
use rand::rngs::StdRng;
use rand::Rng;

/// Number of procedural species.
pub(crate) const NUM_SPECIES: usize = 200;

/// Number of binary attributes in the vocabulary (8 body-color bins, 8
/// head-color bins, 4 pattern flags, 4 beak flags).
pub const NUM_ATTRIBUTES: usize = 24;

/// Flip probability applied to ideal attributes to simulate imperfect
/// crowd-sourced image-level annotations.
const ATTRIBUTE_NOISE: f64 = 0.05;

/// Procedural description of one species.
#[derive(Debug, Clone)]
// goggles-lint: allow(dead-pub): dataset taxonomy surface with self-describing fields; exercised only by unit tests
pub struct Species {
    /// Species index in `0..NUM_SPECIES`.
    pub id: usize,
    body_rgb: [f32; 3],
    head_rgb: [f32; 3],
    belly_rgb: [f32; 3],
    /// Wing-bar stripe period in pixels; `None` = plain wing.
    wing_bar_period: Option<f32>,
    wing_bar_angle: f32,
    beak_len_frac: f32,
    body_hue_bin: usize,
    head_hue_bin: usize,
}

impl Species {
    /// Deterministically derive species `id`'s appearance.
    pub fn new(id: usize) -> Self {
        assert!(id < NUM_SPECIES, "species id {id} out of range");
        let mut rng = std_rng(0xC0B_0000 + id as u64);
        let body_hue_bin = rng.random_range(0..8usize);
        // Head hue biased away from the body hue so species look coherent.
        let head_hue_bin = (body_hue_bin + rng.random_range(2..7usize)) % 8;
        // Saturated plumage with per-species brightness level: distinctive
        // enough that a contrast-driven (surrogate) backbone can pick it up,
        // the role ImageNet pretraining plays for the real VGG-16.
        let body_rgb = hue_bin_to_rgb(body_hue_bin, 0.6 + 0.4 * rng.random::<f32>());
        let head_rgb = hue_bin_to_rgb(head_hue_bin, 0.65 + 0.35 * rng.random::<f32>());
        let belly_rgb = hue_bin_to_rgb(rng.random_range(0..8usize), 0.85);
        let wing_bar_period =
            if rng.random::<f32>() < 0.5 { Some(2.5 + 3.0 * rng.random::<f32>()) } else { None };
        let wing_bar_angle = rng.random::<f32>() * std::f32::consts::PI;
        let beak_len_frac = 0.15 + 0.25 * rng.random::<f32>();
        Self {
            id,
            body_rgb,
            head_rgb,
            belly_rgb,
            wing_bar_period,
            wing_bar_angle,
            beak_len_frac,
            body_hue_bin,
            head_hue_bin,
        }
    }

    /// Ideal (noise-free, class-level) attribute vector; the analogue of
    /// CUB's class-level attribute table.
    pub fn class_attributes(&self) -> Vec<bool> {
        let mut attrs = vec![false; NUM_ATTRIBUTES];
        attrs[self.body_hue_bin] = true; // 0..8: body color bins
        attrs[8 + self.head_hue_bin] = true; // 8..16: head color bins
                                             // 16..20: pattern flags
        attrs[16] = self.wing_bar_period.is_some(); // has wing bars
        attrs[17] = matches!(self.wing_bar_period, Some(p) if p < 4.0); // fine bars
        attrs[18] = self.body_hue_bin == self.head_hue_bin; // uniform plumage
        attrs[19] = self.belly_rgb[0] > 0.6; // warm belly
                                             // 20..24: beak flags
        attrs[20] = self.beak_len_frac > 0.3; // long beak
        attrs[21] = self.beak_len_frac <= 0.2; // stubby beak
        attrs[22] = self.head_rgb[2] > 0.5; // bluish head
        attrs[23] = self.body_rgb[0] > 0.5; // reddish body
        attrs
    }

    /// Render one photograph of this species.
    pub fn render(&self, rng: &mut StdRng, size: usize) -> Image {
        let s = size as f32;
        let mut img = Image::new(3, size, size);

        // Background: muted desaturated noise (foliage / sky). Kept dull so
        // the plumage is the salient content, as in framed bird photos.
        let bg = 0.3 + 0.15 * rng.random::<f32>();
        let bg_tint = [bg, bg * (0.9 + 0.2 * rng.random::<f32>()), bg];
        for c in 0..3 {
            img.tensor_mut().channel_mut(c).fill(bg_tint[c]);
        }
        noise::add_value_noise_texture(&mut img, rng, 3.0, 2, 0.06);

        // Pose / placement jitter.
        let cx = s * (0.4 + 0.2 * rng.random::<f32>());
        let cy = s * (0.42 + 0.16 * rng.random::<f32>());
        let scale = 0.85 + 0.3 * rng.random::<f32>();
        let body_ry = 0.20 * s * scale;
        let body_rx = 0.30 * s * scale;
        let facing: f32 = if rng.random::<f32>() < 0.5 { 1.0 } else { -1.0 };
        let light = 0.9 + 0.2 * rng.random::<f32>();

        let lit = |rgb: [f32; 3]| [rgb[0] * light, rgb[1] * light, rgb[2] * light];

        // Body.
        draw::fill_ellipse(&mut img, cy, cx, body_ry, body_rx, &lit(self.body_rgb));
        // Belly patch.
        draw::fill_ellipse(
            &mut img,
            cy + 0.5 * body_ry,
            cx,
            0.5 * body_ry,
            0.7 * body_rx,
            &lit(self.belly_rgb),
        );
        // Wing bars.
        if let Some(period) = self.wing_bar_period {
            draw::fill_stripes_in_disc(
                &mut img,
                cy,
                cx - facing * 0.2 * body_rx,
                0.75 * body_ry.min(body_rx),
                self.wing_bar_angle,
                period * scale,
                &lit([0.95, 0.95, 0.95]),
                0.8,
            );
        }
        // Head.
        let head_r = 0.55 * body_ry;
        let hx = cx + facing * (body_rx + 0.2 * head_r);
        let hy = cy - 0.9 * body_ry;
        draw::fill_disc(&mut img, hy, hx, head_r, &lit(self.head_rgb));
        // Eye.
        draw::fill_disc(
            &mut img,
            hy - 0.2 * head_r,
            hx + facing * 0.3 * head_r,
            1.2,
            &[0.05, 0.05, 0.05],
        );
        // Beak: small triangle pointing forward.
        let beak_len = self.beak_len_frac * s * 0.3 * scale;
        draw::fill_polygon(
            &mut img,
            &[
                (hy - 0.3 * head_r, hx + facing * head_r * 0.8),
                (hy + 0.3 * head_r, hx + facing * head_r * 0.8),
                (hy, hx + facing * (head_r * 0.8 + beak_len)),
            ],
            &[0.9, 0.7, 0.1],
        );

        // Photographic nuisances.
        noise::add_gaussian_noise(&mut img, rng, 0.03);
        let mut out = filter::gaussian_blur(&img, 0.4 + 0.3 * rng.random::<f32>());
        out.clamp01();
        out
    }
}

/// Per-image attribute annotations plus the class-level table — everything
/// the Snorkel labeling functions of §5.1.2 need.
#[derive(Debug, Clone)]
pub struct CubAttributes {
    /// `train_len × NUM_ATTRIBUTES` binary image-level annotations, aligned
    /// with the dataset's training block.
    pub image_attributes: Vec<Vec<bool>>,
    /// `num_classes × NUM_ATTRIBUTES` class-level attribute table.
    pub class_attributes: Vec<Vec<bool>>,
}

/// Seed-mixing constant for pair sampling.
const PAIR_SEED_MIX: u64 = 0xC0B_9A12;

/// Sample `n_pairs` distinct species pairs, mirroring "we randomly sample 10
/// class-pairs from the 200 classes" (§5.1.1).
pub fn class_pairs(n_pairs: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut rng = std_rng(seed ^ PAIR_SEED_MIX);
    (0..n_pairs)
        .map(|_| {
            let picks = sample_without_replacement(&mut rng, NUM_SPECIES, 2);
            (picks[0], picks[1])
        })
        .collect()
}

/// Generate a CUB binary task between `class_a` and `class_b`.
pub fn generate(config: &TaskConfig, class_a: usize, class_b: usize) -> Dataset {
    assert_ne!(class_a, class_b, "CUB task needs two distinct species");
    let species = [Species::new(class_a), Species::new(class_b)];
    let mut rng = std_rng(config.seed ^ 0xC0B_0001);
    let mut train = Vec::new();
    let mut test = Vec::new();
    for (cls, sp) in species.iter().enumerate() {
        for _ in 0..config.n_train_per_class {
            train.push((sp.render(&mut rng, config.image_size), cls));
        }
        for _ in 0..config.n_test_per_class {
            test.push((sp.render(&mut rng, config.image_size), cls));
        }
    }
    Dataset::from_parts(
        format!("CUB({class_a} vs {class_b})"),
        TaskKind::Cub { class_a, class_b },
        2,
        train,
        test,
    )
}

/// Generate the attribute annotations for a CUB dataset's training block.
///
/// Image-level attributes are the species' class attributes with
/// `ATTRIBUTE_NOISE` (5%) independent flips — simulating imperfect human
/// annotators, the regime Snorkel is designed for.
pub fn attributes_for(dataset: &Dataset, seed: u64) -> CubAttributes {
    let TaskKind::Cub { class_a, class_b } = dataset.kind else {
        panic!("attributes_for requires a CUB dataset, got {:?}", dataset.kind);
    };
    let class_attributes: Vec<Vec<bool>> =
        vec![Species::new(class_a).class_attributes(), Species::new(class_b).class_attributes()];
    let mut rng = std_rng(seed ^ 0xA77_0001);
    let image_attributes = dataset
        .train_indices
        .iter()
        .map(|&i| {
            let ideal = &class_attributes[dataset.labels[i]];
            ideal
                .iter()
                .map(|&a| if rng.random::<f64>() < ATTRIBUTE_NOISE { !a } else { a })
                .collect()
        })
        .collect();
    CubAttributes { image_attributes, class_attributes }
}

/// Map one of 8 hue bins to an RGB triple at the given value (brightness).
fn hue_bin_to_rgb(bin: usize, value: f32) -> [f32; 3] {
    let hue = bin as f32 / 8.0; // [0, 1)
    hsv_to_rgb(hue, 0.85, value)
}

/// Standard HSV→RGB conversion (h, s, v ∈ [0, 1]).
fn hsv_to_rgb(h: f32, s: f32, v: f32) -> [f32; 3] {
    let h6 = (h.fract() + 1.0).fract() * 6.0;
    let i = h6.floor() as i32 % 6;
    let f = h6 - h6.floor();
    let p = v * (1.0 - s);
    let q = v * (1.0 - f * s);
    let t = v * (1.0 - (1.0 - f) * s);
    match i {
        0 => [v, t, p],
        1 => [q, v, p],
        2 => [p, v, t],
        3 => [p, q, v],
        4 => [t, p, v],
        _ => [v, p, q],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn species_is_deterministic() {
        let a = Species::new(42);
        let b = Species::new(42);
        assert_eq!(a.body_rgb, b.body_rgb);
        assert_eq!(a.class_attributes(), b.class_attributes());
    }

    #[test]
    fn species_differ_in_attributes() {
        // Most random species pairs should differ somewhere.
        let mut distinct = 0;
        for i in 0..20 {
            let a = Species::new(i).class_attributes();
            let b = Species::new(i + 100).class_attributes();
            if a != b {
                distinct += 1;
            }
        }
        assert!(distinct >= 18, "only {distinct}/20 pairs distinct");
    }

    #[test]
    fn render_produces_valid_image() {
        let sp = Species::new(7);
        let mut rng = std_rng(1);
        let img = sp.render(&mut rng, 64);
        assert_eq!(img.shape(), (3, 64, 64));
        assert!(img.tensor().as_slice().iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn renders_vary_between_calls() {
        let sp = Species::new(3);
        let mut rng = std_rng(2);
        let a = sp.render(&mut rng, 32);
        let b = sp.render(&mut rng, 32);
        assert_ne!(a, b, "pose/lighting jitter should vary");
    }

    #[test]
    fn generate_shapes_and_balance() {
        let cfg = TaskConfig::new(TaskKind::Cub { class_a: 1, class_b: 5 }, 8, 4, 0);
        let ds = generate(&cfg, 1, 5);
        assert_eq!(ds.train_indices.len(), 16);
        assert_eq!(ds.test_indices.len(), 8);
        let ones = ds.train_labels().iter().filter(|&&l| l == 1).count();
        assert_eq!(ones, 8);
        assert_eq!(ds.name, "CUB(1 vs 5)");
    }

    #[test]
    fn generate_is_deterministic() {
        let cfg = TaskConfig::new(TaskKind::Cub { class_a: 0, class_b: 9 }, 3, 1, 42);
        let a = generate(&cfg, 0, 9);
        let b = generate(&cfg, 0, 9);
        assert_eq!(a.images[0], b.images[0]);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn class_pairs_distinct_and_deterministic() {
        let p1 = class_pairs(10, 3);
        let p2 = class_pairs(10, 3);
        assert_eq!(p1, p2);
        assert_eq!(p1.len(), 10);
        for &(a, b) in &p1 {
            assert_ne!(a, b);
            assert!(a < NUM_SPECIES && b < NUM_SPECIES);
        }
    }

    #[test]
    fn attributes_align_with_classes() {
        let cfg = TaskConfig::new(TaskKind::Cub { class_a: 2, class_b: 8 }, 30, 2, 1);
        let ds = generate(&cfg, 2, 8);
        let attrs = attributes_for(&ds, 0);
        assert_eq!(attrs.image_attributes.len(), 60);
        assert_eq!(attrs.class_attributes.len(), 2);
        // Image attrs should match their class attrs up to flip noise.
        let mut agreement = 0usize;
        let mut total = 0usize;
        for (row, &idx) in attrs.image_attributes.iter().zip(&ds.train_indices) {
            let ideal = &attrs.class_attributes[ds.labels[idx]];
            agreement += row.iter().zip(ideal).filter(|(a, b)| a == b).count();
            total += NUM_ATTRIBUTES;
        }
        let rate = agreement as f64 / total as f64;
        assert!(rate > 0.9, "agreement {rate}");
        assert!(rate < 1.0, "attribute noise should flip something");
    }

    #[test]
    fn hsv_primaries() {
        assert_eq!(hsv_to_rgb(0.0, 1.0, 1.0), [1.0, 0.0, 0.0]);
        let g = hsv_to_rgb(1.0 / 3.0, 1.0, 1.0);
        assert!(g[1] > 0.99 && g[0] < 0.01);
    }

    #[test]
    #[should_panic]
    fn species_id_out_of_range_panics() {
        let _ = Species::new(NUM_SPECIES);
    }
}

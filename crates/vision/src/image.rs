//! The [`Image`] type: a thin, semantically named wrapper over
//! [`goggles_tensor::Tensor3<f32>`] in `C×H×W` layout with values nominally
//! in `[0, 1]`.

use goggles_tensor::Tensor3;

/// A dense float image, `channels × height × width`.
///
/// Grayscale images use `channels == 1`; color images use 3 (RGB order by
/// convention). Values are nominally in `[0, 1]` but are not clamped on
/// every write — call [`Image::clamp01`] after compositing.
#[derive(Clone, PartialEq)]
pub struct Image {
    tensor: Tensor3<f32>,
}

impl Image {
    /// A black image of the given shape.
    pub fn new(channels: usize, height: usize, width: usize) -> Self {
        assert!(channels > 0 && height > 0 && width > 0, "Image dims must be positive");
        Self { tensor: Tensor3::zeros(channels, height, width) }
    }

    /// A constant-valued image.
    pub fn filled(channels: usize, height: usize, width: usize, value: f32) -> Self {
        let mut img = Self::new(channels, height, width);
        img.tensor.as_mut_slice().fill(value);
        img
    }

    /// Wrap an existing tensor.
    pub fn from_tensor(tensor: Tensor3<f32>) -> Self {
        Self { tensor }
    }

    /// Number of channels.
    #[inline(always)]
    pub fn channels(&self) -> usize {
        self.tensor.channels()
    }

    /// Height in pixels.
    #[inline(always)]
    pub fn height(&self) -> usize {
        self.tensor.height()
    }

    /// Width in pixels.
    #[inline(always)]
    pub fn width(&self) -> usize {
        self.tensor.width()
    }

    /// `(C, H, W)`.
    #[inline(always)]
    pub fn shape(&self) -> (usize, usize, usize) {
        self.tensor.shape()
    }

    /// Borrow the underlying tensor.
    #[inline(always)]
    pub fn tensor(&self) -> &Tensor3<f32> {
        &self.tensor
    }

    /// Mutably borrow the underlying tensor.
    #[inline(always)]
    pub fn tensor_mut(&mut self) -> &mut Tensor3<f32> {
        &mut self.tensor
    }

    /// Pixel accessor.
    #[inline(always)]
    pub fn get(&self, c: usize, y: usize, x: usize) -> f32 {
        self.tensor.get(c, y, x)
    }

    /// Pixel setter.
    #[inline(always)]
    pub fn set(&mut self, c: usize, y: usize, x: usize, v: f32) {
        self.tensor.set(c, y, x, v);
    }

    /// Set all channels at `(y, x)` from a color slice of length `C`.
    pub fn set_pixel(&mut self, y: usize, x: usize, color: &[f32]) {
        assert_eq!(color.len(), self.channels(), "set_pixel: color arity");
        for (c, &v) in color.iter().enumerate() {
            self.tensor.set(c, y, x, v);
        }
    }

    /// Alpha-blend `color` over the pixel at `(y, x)`:
    /// `out = alpha * color + (1 - alpha) * current`.
    pub(crate) fn blend_pixel(&mut self, y: usize, x: usize, color: &[f32], alpha: f32) {
        assert_eq!(color.len(), self.channels(), "blend_pixel: color arity");
        let a = alpha.clamp(0.0, 1.0);
        for (c, &v) in color.iter().enumerate() {
            let cur = self.tensor.get(c, y, x);
            self.tensor.set(c, y, x, a * v + (1.0 - a) * cur);
        }
    }

    /// Clamp every value to `[0, 1]`.
    pub fn clamp01(&mut self) {
        self.tensor.map_in_place(|v| v.clamp(0.0, 1.0));
    }

    /// Mean intensity over all channels and pixels.
    pub fn mean(&self) -> f32 {
        let data = self.tensor.as_slice();
        if data.is_empty() {
            return 0.0;
        }
        data.iter().sum::<f32>() / data.len() as f32
    }

    /// Convert to grayscale: for 3-channel images uses Rec.601 luma weights,
    /// otherwise a plain channel average. Single-channel images are cloned.
    pub(crate) fn to_grayscale(&self) -> Image {
        if self.channels() == 1 {
            return self.clone();
        }
        let (c, h, w) = self.shape();
        let weights: Vec<f32> =
            if c == 3 { vec![0.299, 0.587, 0.114] } else { vec![1.0 / c as f32; c] };
        let mut out = Image::new(1, h, w);
        for y in 0..h {
            for x in 0..w {
                let mut acc = 0.0;
                for (ch, &wgt) in weights.iter().enumerate() {
                    acc += wgt * self.get(ch, y, x);
                }
                out.set(0, y, x, acc);
            }
        }
        out
    }

    /// Replicate a single-channel image to `n` identical channels (used to
    /// feed grayscale X-ray images into the 3-channel CNN stem).
    // goggles-lint: allow(dead-pub): documented image API; exercised only by this crate's unit tests
    pub fn broadcast_channels(&self, n: usize) -> Image {
        assert_eq!(self.channels(), 1, "broadcast_channels expects 1-channel input");
        let (_, h, w) = self.shape();
        let mut out = Image::new(n, h, w);
        for c in 0..n {
            out.tensor.channel_mut(c).copy_from_slice(self.tensor.channel(0));
        }
        out
    }

    /// Per-channel standardization to zero mean and unit variance (variance
    /// floored at `1e-6`), the usual CNN input normalization.
    // goggles-lint: allow(dead-pub): documented image API; exercised only by this crate's unit tests
    pub fn standardized(&self) -> Image {
        let (c, h, w) = self.shape();
        let mut out = self.clone();
        let plane = h * w;
        for ch in 0..c {
            let data = out.tensor.channel_mut(ch);
            let mean = data.iter().sum::<f32>() / plane as f32;
            let var = data.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / plane as f32;
            let inv_std = 1.0 / var.max(1e-6).sqrt();
            for v in data {
                *v = (*v - mean) * inv_std;
            }
        }
        out
    }
}

impl std::fmt::Debug for Image {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (c, h, w) = self.shape();
        write!(f, "Image({c}x{h}x{w}, mean={:.3})", self.mean())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_pixels() {
        let mut img = Image::new(3, 4, 5);
        assert_eq!(img.shape(), (3, 4, 5));
        img.set_pixel(2, 3, &[0.1, 0.2, 0.3]);
        assert_eq!(img.get(1, 2, 3), 0.2);
    }

    #[test]
    fn blend_pixel_interpolates() {
        let mut img = Image::filled(1, 2, 2, 1.0);
        img.blend_pixel(0, 0, &[0.0], 0.25);
        assert!((img.get(0, 0, 0) - 0.75).abs() < 1e-6);
        // alpha is clamped
        img.blend_pixel(0, 1, &[0.0], 2.0);
        assert_eq!(img.get(0, 0, 1), 0.0);
    }

    #[test]
    fn clamp01_bounds_values() {
        let mut img = Image::filled(1, 1, 2, 2.0);
        img.set(0, 0, 1, -1.0);
        img.clamp01();
        assert_eq!(img.get(0, 0, 0), 1.0);
        assert_eq!(img.get(0, 0, 1), 0.0);
    }

    #[test]
    fn grayscale_luma_weights() {
        let mut img = Image::new(3, 1, 1);
        img.set_pixel(0, 0, &[1.0, 0.0, 0.0]);
        let g = img.to_grayscale();
        assert!((g.get(0, 0, 0) - 0.299).abs() < 1e-6);
    }

    #[test]
    fn grayscale_identity_for_single_channel() {
        let img = Image::filled(1, 2, 2, 0.5);
        assert_eq!(img.to_grayscale(), img);
    }

    #[test]
    fn broadcast_channels_copies_plane() {
        let mut img = Image::new(1, 2, 2);
        img.set(0, 1, 1, 0.7);
        let b = img.broadcast_channels(3);
        assert_eq!(b.channels(), 3);
        for c in 0..3 {
            assert_eq!(b.get(c, 1, 1), 0.7);
        }
    }

    #[test]
    fn standardized_zero_mean_unit_var() {
        let mut img = Image::new(1, 4, 4);
        for y in 0..4 {
            for x in 0..4 {
                img.set(0, y, x, (y * 4 + x) as f32 / 15.0);
            }
        }
        let s = img.standardized();
        let data = s.tensor().channel(0);
        let mean = data.iter().sum::<f32>() / 16.0;
        let var = data.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 16.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-4);
    }

    #[test]
    fn mean_of_filled() {
        assert!((Image::filled(2, 3, 3, 0.25).mean() - 0.25).abs() < 1e-7);
    }
}

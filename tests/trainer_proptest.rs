//! Property tests for the continuous-learning loop's two core guarantees:
//!
//! 1. **Incremental append ≡ rebuild.** Affinity rows for new images
//!    computed against the *frozen* prototype bank (the trainer's
//!    `affinity_rows_for` path) are bit-identical to what a from-scratch
//!    rectangular rebuild over old+new images would produce — growing the
//!    matrix one batch at a time loses nothing.
//! 2. **Warm-start EM is thread-count invariant.** `refit_warm` (and the
//!    full gated `refit_from_affinity` selection) produces bit-identical
//!    parameters whether the per-function fan-out runs on 1 thread or
//!    several — the trainer may be deployed on any core count without
//!    perturbing what gets published.

use goggles::core::{
    AffinityMatrix, Goggles, GogglesConfig, HierarchicalModel, HierarchicalOptions, RefitSelection,
};
use goggles::datasets::{generate, Dataset, TaskConfig, TaskKind};
use goggles::serve::{FittedLabeler, TrainingBootstrap};
use goggles::tensor::Matrix;
use goggles::vision::Image;
use proptest::prelude::*;

/// Smallest task that still exercises both hierarchy levels: 2 classes,
/// 3 train images each, 32×32 pixels, tiny backbone.
fn tiny_task(seed: u64, per_class: usize) -> TaskConfig {
    let mut task = TaskConfig::new(TaskKind::Cub { class_a: 0, class_b: 1 }, per_class, 1, seed);
    task.image_size = 32;
    task
}

fn tiny_fit(seed: u64) -> (GogglesConfig, Dataset, TrainingBootstrap) {
    let config = GogglesConfig { seed, ..GogglesConfig::fast() };
    let ds = generate(&tiny_task(seed, 3));
    let dev = ds.sample_dev_set(1, seed);
    let bootstrap = FittedLabeler::fit_for_training(&config, &ds, &dev)
        .expect("bootstrap fit on the tiny task");
    (config, ds, bootstrap)
}

fn bits(m: &Matrix<f64>) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Stack the bootstrap's training rows with freshly appended rows — the
/// exact buffer-growth step the trainer performs each cycle.
fn stack(rows: &Matrix<f64>, appended: &Matrix<f64>) -> Matrix<f64> {
    assert_eq!(rows.cols(), appended.cols());
    let mut data = Vec::with_capacity((rows.rows() + appended.rows()) * rows.cols());
    data.extend_from_slice(rows.as_slice());
    data.extend_from_slice(appended.as_slice());
    Matrix::from_vec(rows.rows() + appended.rows(), rows.cols(), data).expect("stacked matrix")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Appending rows batch-by-batch against the frozen bank is
    /// bit-identical to computing the full rectangular matrix in one shot,
    /// at any thread count.
    #[test]
    fn incremental_append_is_bit_identical_to_rebuild(
        seed in 0u64..1_000,
        extra_per_class in 1usize..3,
        threads in 1usize..4,
    ) {
        let (_config, ds, bootstrap) = tiny_fit(seed);
        let new_ds = generate(&tiny_task(seed.wrapping_add(101), extra_per_class));
        let new_images: Vec<&Image> = new_ds.train_images();

        // Incremental path: frozen training rows + one appended batch.
        let appended = bootstrap.labeler.affinity_rows_for(&new_images, threads);
        let incremental = stack(&bootstrap.rows, &appended);

        // Rebuild path: every image (old and new) through one batch call
        // against the same frozen bank.
        let old_images = ds.train_images();
        let all: Vec<&Image> = old_images.iter().chain(new_images.iter()).copied().collect();
        let rebuilt = bootstrap.labeler.affinity_rows_for(&all, 1);

        prop_assert_eq!(rebuilt.rows(), incremental.rows());
        prop_assert_eq!(rebuilt.cols(), incremental.cols());
        prop_assert_eq!(bits(&rebuilt), bits(&incremental));

        // And the appended batch itself is thread-count invariant.
        let appended_serial = bootstrap.labeler.affinity_rows_for(&new_images, 1);
        prop_assert_eq!(bits(&appended), bits(&appended_serial));
    }

    /// `refit_warm` run on the grown matrix yields bit-identical model
    /// parameters regardless of the per-function thread fan-out, and the
    /// full gated selection (`refit_from_affinity`) picks the same
    /// candidate with the same dev score and labels.
    #[test]
    fn warm_refit_is_deterministic_across_thread_counts(seed in 0u64..1_000) {
        let (config, _ds, bootstrap) = tiny_fit(seed);
        let labeler = &bootstrap.labeler;
        let new_ds = generate(&tiny_task(seed.wrapping_add(202), 1));
        let appended = labeler.affinity_rows_for(&new_ds.train_images(), 1);
        let grown = AffinityMatrix {
            data: stack(&bootstrap.rows, &appended),
            n: labeler.n_train(),
            alpha: labeler.alpha(),
            z_per_layer: labeler.bank().z_per_layer,
        };
        let prev = &bootstrap.result.model;

        let opts = |threads: usize| HierarchicalOptions {
            num_classes: config.num_classes,
            em: config.em,
            one_hot: config.one_hot,
            threads,
            seed: config.seed,
        };
        let serial = HierarchicalModel::refit_warm(&grown, prev, &opts(1))
            .expect("warm refit, 1 thread");
        let fanned = HierarchicalModel::refit_warm(&grown, prev, &opts(3))
            .expect("warm refit, 3 threads");
        prop_assert_eq!(serial.log_likelihood.to_bits(), fanned.log_likelihood.to_bits());
        prop_assert_eq!(bits(&serial.responsibilities), bits(&fanned.responsibilities));
        prop_assert_eq!(serial.base_models.len(), fanned.base_models.len());
        for (a, b) in serial.base_models.iter().zip(&fanned.base_models) {
            prop_assert_eq!(bits(&a.means), bits(&b.means));
            prop_assert_eq!(bits(&a.variances), bits(&b.variances));
        }
        prop_assert_eq!(bits(&serial.ensemble.probs), bits(&fanned.ensemble.probs));

        // The full gated selection agrees too: same winner, same score,
        // same published labels.
        let pick = |threads: usize| -> RefitSelection {
            let goggles = Goggles::new(GogglesConfig { threads, ..config.clone() });
            goggles
                .refit_from_affinity(&grown, &bootstrap.dev_rows, prev)
                .expect("gated refit selection")
        };
        let sel_serial = pick(1);
        let sel_fanned = pick(3);
        prop_assert_eq!(sel_serial.candidate, sel_fanned.candidate);
        prop_assert_eq!(sel_serial.dev_score.to_bits(), sel_fanned.dev_score.to_bits());
        prop_assert_eq!(&sel_serial.mapping, &sel_fanned.mapping);
        prop_assert_eq!(bits(&sel_serial.labels.probs), bits(&sel_fanned.labels.probs));
    }
}

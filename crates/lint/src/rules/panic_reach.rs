//! `panic-reach`: transitive panic reachability for the hot paths.
//!
//! The `panic` rule bans panics *textually inside* hot-path modules; this
//! rule closes the loophole of calling into a function elsewhere in the
//! workspace that unwraps. Every call site in a hot-path file whose callee
//! can (transitively) reach an unannotated `unwrap`/`expect`/`panic!` is
//! flagged, with the full chain down to the panic site.
//!
//! What does **not** count as a reachable panic:
//! - sites annotated `allow(panic)` (the leaf already argued infallibility)
//!   and sites inside `#[cfg(test)]` code;
//! - `assert!`-family macros (checked preconditions, same policy as the
//!   `panic` rule);
//! - anything called inside a `catch_unwind(...)` span — the caller opted
//!   into containment (that is PR 3's batch-salvage pattern).

use crate::engine::{Diagnostic, Workspace};
use crate::model::SemanticModel;
use crate::rules::is_hot_path;
use std::collections::VecDeque;

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

pub(crate) fn check(ws: &Workspace, model: &SemanticModel, out: &mut Vec<Diagnostic>) {
    let fns = &model.fns;
    let n = fns.len();
    let rel = |i: usize| ws.files[fns[i].file].rel.as_str();

    // Chains from each fn down to a concrete panic site, seeded at fns that
    // panic directly and grown breadth-first over reverse call edges (so
    // every witness chain is a shortest one).
    let mut reach: Vec<Option<Vec<String>>> = vec![None; n];
    let mut queue = VecDeque::new();
    for (i, f) in fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        if let Some(desc) = direct_panic(ws, model, i) {
            reach[i] = Some(vec![format!("{} [{}]", f.display, desc)]);
            queue.push_back(i);
        }
    }
    // Reverse adjacency: callee → (caller, call line).
    let mut callers: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    for (i, sites) in model.graph.sites.iter().enumerate() {
        if fns[i].is_test {
            continue;
        }
        for site in sites {
            for &t in &site.targets {
                callers[t].push((i, site.line));
            }
        }
    }
    while let Some(g) = queue.pop_front() {
        let tail = reach[g].clone().unwrap_or_default();
        for &(f, line) in &callers[g] {
            if reach[f].is_some() {
                continue;
            }
            let mut chain = vec![format!("{} [calls @ {}:{}]", fns[f].display, rel(f), line)];
            chain.extend(tail.iter().cloned());
            reach[f] = Some(chain);
            queue.push_back(f);
        }
    }

    // Report: hot-file call sites whose callee can panic, skipping spans
    // the caller wrapped in catch_unwind.
    for (i, f) in fns.iter().enumerate() {
        let file = &ws.files[f.file];
        if f.is_test || !is_hot_path(file) {
            continue;
        }
        let contained = catch_unwind_spans(file);
        let mut last_reported_line = 0;
        for site in &model.graph.sites[i] {
            if site.line == last_reported_line
                || contained.iter().any(|&(lo, hi)| (lo..=hi).contains(&site.tok))
            {
                continue;
            }
            let Some(&t) = site.targets.iter().find(|&&t| reach[t].is_some()) else { continue };
            let chain = reach[t].clone().unwrap_or_default();
            last_reported_line = site.line;
            file.report_chain(
                out,
                "panic-reach",
                site.line,
                format!(
                    "`{}` can transitively panic: {} — hot-path callees must be infallible \
                     (fix or annotate the panic site)",
                    site.name,
                    chain.join(" → ")
                ),
                chain,
            );
        }
    }
}

/// A description of the first unannotated panic site directly inside fn
/// `i`'s body, if any.
fn direct_panic(ws: &Workspace, model: &SemanticModel, i: usize) -> Option<String> {
    let f = &model.fns[i];
    let file = &ws.files[f.file];
    let toks = &file.tokens;
    for j in f.body.0 + 1..f.body.1 {
        let Some(name) = toks[j].ident() else { continue };
        let line = toks[j].line;
        if file.in_test_code(line)
            || file.is_allowed("panic", line)
            || file.is_allowed("panic-reach", line)
        {
            continue;
        }
        if PANIC_METHODS.contains(&name)
            && toks[j - 1].is_punct('.')
            && toks.get(j + 1).is_some_and(|t| t.is_punct('('))
        {
            return Some(format!(".{name}() @ {}:{}", file.rel, line));
        }
        if PANIC_MACROS.contains(&name)
            && toks.get(j + 1).is_some_and(|t| t.is_punct('!'))
            && !toks[j - 1].is_punct('.')
        {
            return Some(format!("{name}! @ {}:{}", file.rel, line));
        }
    }
    None
}

/// Token index spans of `catch_unwind(...)` argument lists in a file.
fn catch_unwind_spans(file: &crate::engine::SourceFile) -> Vec<(usize, usize)> {
    let toks = &file.tokens;
    let mut spans = Vec::new();
    for j in 0..toks.len() {
        if toks[j].ident() == Some("catch_unwind")
            && toks.get(j + 1).is_some_and(|t| t.is_punct('('))
        {
            if let Some(close) = match_paren(toks, j + 1) {
                spans.push((j + 1, close));
            }
        }
    }
    spans
}

fn match_paren(toks: &[crate::lexer::Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

//! End-to-end GOGGLES pipeline (the paper's Figure 3): images → affinity
//! matrix → hierarchical class inference → dev-set mapping → probabilistic
//! labels.

use crate::affinity::AffinityMatrix;
use crate::hierarchical::{HierarchicalModel, HierarchicalOptions};
use crate::mapping::{apply_mapping, map_clusters_via_dev_set};
use crate::prototypes::embed_images;
use crate::{GogglesError, Result};
use goggles_cnn::{Vgg16, VggConfig};
use goggles_datasets::{Dataset, DevSet};
use goggles_models::EmOptions;
use goggles_tensor::Matrix;
use goggles_vision::Image;

/// Configuration of the full GOGGLES system.
#[derive(Debug, Clone)]
pub struct GogglesConfig {
    /// Backbone architecture (§3 uses VGG-16; see DESIGN.md for the
    /// surrogate-weights substitution).
    pub vgg: VggConfig,
    /// Seed of the frozen backbone weights — shared across all datasets,
    /// like the single pretrained VGG-16 in the paper.
    pub backbone_seed: u64,
    /// Prototypes per max-pool layer (`Z`; the paper uses 10, for
    /// `α = 50` affinity functions).
    pub top_z: usize,
    /// Number of classes `K`.
    pub num_classes: usize,
    /// EM options for base and ensemble models.
    pub em: EmOptions,
    /// One-hot encode base predictions before the ensemble (paper default).
    pub one_hot: bool,
    /// Center patch vectors per image/layer before cosine similarity.
    /// Required by the surrogate random-weight backbone (see
    /// `prototypes::embed_image`); irrelevant-to-harmful with a genuinely
    /// pretrained backbone, hence configurable.
    pub center_patches: bool,
    /// Thread fan-out for embedding, affinity and base-model fitting.
    pub threads: usize,
    /// Seed for all inference-side randomness.
    pub seed: u64,
}

impl Default for GogglesConfig {
    fn default() -> Self {
        Self {
            vgg: VggConfig::default(),
            backbone_seed: 0xB0DE,
            top_z: 10,
            num_classes: 2,
            em: EmOptions::default(),
            one_hot: true,
            center_patches: true,
            threads: default_threads(),
            seed: 0,
        }
    }
}

impl GogglesConfig {
    /// A reduced configuration (tiny backbone, Z = 4 → α = 20) for tests
    /// and fast examples. Same code paths, ~10× cheaper.
    pub fn fast() -> Self {
        Self {
            vgg: VggConfig::tiny(),
            top_z: 4,
            em: EmOptions { restarts: 2, ..EmOptions::default() },
            ..Self::default()
        }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

/// Probabilistic labels `ỹ_i^k = Pr(y*_i = k)` for a block of instances,
/// columns aligned with **classes** (mapping already applied).
#[derive(Debug, Clone)]
pub struct ProbabilisticLabels {
    /// `n × K` row-stochastic matrix.
    pub probs: Matrix<f64>,
}

impl ProbabilisticLabels {
    /// Discrete labels by per-row argmax.
    pub fn hard_labels(&self) -> Vec<usize> {
        goggles_models::hard_labels(&self.probs)
    }

    /// Fraction of rows whose argmax matches `truth`.
    pub fn accuracy(&self, truth: &[usize]) -> f64 {
        assert_eq!(truth.len(), self.probs.rows());
        if truth.is_empty() {
            return 0.0;
        }
        let hard = self.hard_labels();
        hard.iter().zip(truth).filter(|(a, b)| a == b).count() as f64 / truth.len() as f64
    }

    /// Mean max-probability — a calibration-free confidence summary.
    pub fn mean_confidence(&self) -> f64 {
        let n = self.probs.rows();
        if n == 0 {
            return 0.0;
        }
        (0..n)
            .map(|i| self.probs.row(i).iter().cloned().fold(f64::NEG_INFINITY, f64::max))
            .sum::<f64>()
            / n as f64
    }
}

/// Everything the pipeline produced for one dataset.
#[derive(Debug, Clone)]
pub struct LabelingResult {
    /// Class-aligned probabilistic labels; row `r` describes the instance
    /// whose global dataset index is `row_indices[r]`.
    pub labels: ProbabilisticLabels,
    /// The cluster→class mapping `g` chosen by the dev set.
    pub mapping: Vec<usize>,
    /// The fitted hierarchical model (kept for ablation/diagnostics).
    pub model: HierarchicalModel,
    /// Global dataset index of each row.
    pub row_indices: Vec<usize>,
}

impl LabelingResult {
    /// Labeling accuracy over all inferred rows.
    pub fn accuracy(&self, dataset: &Dataset) -> f64 {
        let truth: Vec<usize> = self.row_indices.iter().map(|&i| dataset.labels[i]).collect();
        self.labels.accuracy(&truth)
    }

    /// Labeling accuracy excluding the development set — the number the
    /// paper reports ("we report the performance of GOGGLES on the
    /// remaining images", §5.1.1).
    pub fn accuracy_excluding_dev(&self, dataset: &Dataset, dev: &DevSet) -> f64 {
        let hard = self.labels.hard_labels();
        let mut correct = 0usize;
        let mut total = 0usize;
        for (r, &idx) in self.row_indices.iter().enumerate() {
            if dev.indices.contains(&idx) {
                continue;
            }
            total += 1;
            if hard[r] == dataset.labels[idx] {
                correct += 1;
            }
        }
        if total == 0 {
            return 0.0;
        }
        correct as f64 / total as f64
    }
}

/// Outcome of [`Goggles::refit_from_affinity`]: the winning candidate of a
/// warm restart plus cold restarts, ranked by held-out dev accuracy.
#[derive(Debug, Clone)]
pub struct RefitSelection {
    /// Class-aligned probabilistic labels over every row of the input
    /// matrix (appended rows included).
    pub labels: ProbabilisticLabels,
    /// The cluster→class mapping chosen by the dev set.
    pub mapping: Vec<usize>,
    /// The winning refitted model.
    pub model: HierarchicalModel,
    /// Dev-set accuracy of the winner (0.0 when the dev set is empty).
    pub dev_score: f64,
    /// Which candidate won: 0 = warm restart, `i > 0` = cold restart `i`.
    pub candidate: usize,
}

/// Fraction of dev rows whose argmax label matches the dev label.
fn dev_accuracy(labels: &ProbabilisticLabels, dev_rows: &DevSet) -> f64 {
    if dev_rows.is_empty() {
        return 0.0;
    }
    let hard = labels.hard_labels();
    let correct = dev_rows
        .indices
        .iter()
        .zip(&dev_rows.labels)
        .filter(|(&idx, &lbl)| hard[idx] == lbl)
        .count();
    correct as f64 / dev_rows.len() as f64
}

/// The GOGGLES system: a frozen backbone plus the affinity-coding pipeline.
#[derive(Debug, Clone)]
pub struct Goggles {
    net: Vgg16,
    config: GogglesConfig,
}

impl Goggles {
    /// Instantiate the system (builds the frozen backbone deterministically).
    pub fn new(config: GogglesConfig) -> Self {
        let net = Vgg16::new(&config.vgg, config.backbone_seed);
        Self { net, config }
    }

    /// The frozen backbone (shared with the end-model baselines so every
    /// method sees the same representation, as in §5.1.3).
    pub fn backbone(&self) -> &Vgg16 {
        &self.net
    }

    /// The active configuration.
    pub fn config(&self) -> &GogglesConfig {
        &self.config
    }

    /// Step 1: construct the `N × αN` affinity matrix for a set of images.
    pub fn build_affinity_matrix(&self, images: &[&Image]) -> AffinityMatrix {
        let embeddings = embed_images(
            &self.net,
            images,
            self.config.top_z,
            self.config.threads,
            self.config.center_patches,
        );
        AffinityMatrix::build(&embeddings, self.config.threads)
    }

    /// Step 2: class inference on a prebuilt affinity matrix. `dev_rows`
    /// must be expressed in **row space** of the matrix.
    ///
    /// This entry point is also what the representation ablations use: feed
    /// an [`AffinityMatrix::from_feature_vectors`] built from HOG or logits
    /// features to run "GOGGLES' inference module on them" (§5.3).
    pub fn infer_from_affinity(
        &self,
        affinity: &AffinityMatrix,
        dev_rows: &DevSet,
    ) -> Result<(ProbabilisticLabels, Vec<usize>, HierarchicalModel)> {
        let opts = HierarchicalOptions {
            num_classes: self.config.num_classes,
            em: self.config.em,
            one_hot: self.config.one_hot,
            threads: self.config.threads,
            seed: self.config.seed,
        };
        let model = HierarchicalModel::fit(affinity, &opts)?;
        let mapping = map_clusters_via_dev_set(&model.responsibilities, dev_rows);
        let probs = apply_mapping(&model.responsibilities, &mapping);
        Ok((ProbabilisticLabels { probs }, mapping, model))
    }

    /// Incremental refit for the continuous-learning loop: given an
    /// affinity matrix (possibly rectangular, `(N + m) × αN` with appended
    /// rows) and the previously published model, produce the best candidate
    /// among a **warm** restart (EM from `prev`'s parameters, candidate 0)
    /// and `config.em.restarts - 1` **cold** restarts with perturbed seeds.
    /// Candidates are ranked by held-out dev-set accuracy after the
    /// cluster→class mapping — the cheap fix for EM instability at K ≥ 3:
    /// rather than trusting in-sample likelihood, the restart that actually
    /// labels the dev set best wins (ties: higher log-likelihood, then the
    /// warm candidate / lowest index).
    ///
    /// `dev_rows` must be in **row space** of `affinity`. With an empty dev
    /// set only the warm candidate is produced (nothing could rank a cold
    /// one above it).
    pub fn refit_from_affinity(
        &self,
        affinity: &AffinityMatrix,
        dev_rows: &DevSet,
        prev: &HierarchicalModel,
    ) -> Result<RefitSelection> {
        let opts = HierarchicalOptions {
            num_classes: self.config.num_classes,
            em: self.config.em,
            one_hot: self.config.one_hot,
            threads: self.config.threads,
            seed: self.config.seed,
        };
        let mut candidates = vec![HierarchicalModel::refit_warm(affinity, prev, &opts)?];
        if !dev_rows.is_empty() {
            for r in 1..self.config.em.restarts.max(1) {
                let cold_opts = HierarchicalOptions {
                    seed: self
                        .config
                        .seed
                        .wrapping_add((r as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    ..opts
                };
                candidates.push(HierarchicalModel::fit(affinity, &cold_opts)?);
            }
        }
        let mut best: Option<RefitSelection> = None;
        for (i, model) in candidates.into_iter().enumerate() {
            let mapping = map_clusters_via_dev_set(&model.responsibilities, dev_rows);
            let probs = apply_mapping(&model.responsibilities, &mapping);
            let labels = ProbabilisticLabels { probs };
            let dev_score = dev_accuracy(&labels, dev_rows);
            let replace = match &best {
                None => true,
                Some(b) => {
                    dev_score > b.dev_score
                        || (dev_score == b.dev_score
                            && model.log_likelihood > b.model.log_likelihood)
                }
            };
            if replace {
                best = Some(RefitSelection { labels, mapping, model, dev_score, candidate: i });
            }
        }
        Ok(best.expect("at least the warm candidate"))
    }

    /// Full pipeline on a dataset's training block with a development set
    /// sampled from it. Dev indices are global dataset indices; rows of the
    /// result cover every training instance (dev rows included, since the
    /// paper folds the dev set into the affinity matrix: `N = n + m`).
    pub fn label_dataset(&self, dataset: &Dataset, dev: &DevSet) -> Result<LabelingResult> {
        let images = dataset.train_images();
        if images.is_empty() {
            return Err(GogglesError::InvalidInput("dataset has no training images".into()));
        }
        let affinity = self.build_affinity_matrix(&images);
        let dev_rows = translate_dev_to_rows(&dataset.train_indices, dev)?;
        let (labels, mapping, model) = self.infer_from_affinity(&affinity, &dev_rows)?;
        Ok(LabelingResult { labels, mapping, model, row_indices: dataset.train_indices.clone() })
    }

    /// Pipeline variant that reuses a prebuilt affinity matrix over the
    /// training block (the sweep harnesses build `A` once and re-infer).
    pub fn label_dataset_with_affinity(
        &self,
        dataset: &Dataset,
        affinity: &AffinityMatrix,
        dev: &DevSet,
    ) -> Result<LabelingResult> {
        let dev_rows = translate_dev_to_rows(&dataset.train_indices, dev)?;
        let (labels, mapping, model) = self.infer_from_affinity(affinity, &dev_rows)?;
        Ok(LabelingResult { labels, mapping, model, row_indices: dataset.train_indices.clone() })
    }
}

/// Translate a dev set in global dataset indices into affinity-matrix row
/// space (rows follow `train_indices` order).
///
/// One `HashMap` over `train_indices` replaces the per-dev-index linear
/// `position` scan (`O(n + m)` instead of `O(n·m)`); should a global index
/// somehow appear twice in `train_indices`, the **first** row keeps it,
/// matching the old scan's behavior.
fn translate_dev_to_rows(train_indices: &[usize], dev: &DevSet) -> Result<DevSet> {
    let mut row_of: std::collections::HashMap<usize, usize> =
        std::collections::HashMap::with_capacity(train_indices.len());
    for (row, &t) in train_indices.iter().enumerate() {
        row_of.entry(t).or_insert(row);
    }
    let mut rows = Vec::with_capacity(dev.len());
    for &idx in &dev.indices {
        let row = *row_of.get(&idx).ok_or_else(|| {
            GogglesError::InvalidInput(format!("dev index {idx} not in the training block"))
        })?;
        rows.push(row);
    }
    Ok(DevSet { indices: rows, labels: dev.labels.clone() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use goggles_datasets::{generate, TaskConfig, TaskKind};

    fn small_dataset(seed: u64) -> Dataset {
        let mut cfg = TaskConfig::new(TaskKind::Cub { class_a: 0, class_b: 1 }, 12, 2, seed);
        cfg.image_size = 32;
        generate(&cfg)
    }

    fn fast_goggles(seed: u64) -> Goggles {
        Goggles::new(GogglesConfig { seed, ..GogglesConfig::fast() })
    }

    #[test]
    fn end_to_end_labels_an_easy_task_well() {
        let ds = small_dataset(1);
        let dev = ds.sample_dev_set(3, 1);
        let result = fast_goggles(0).label_dataset(&ds, &dev).unwrap();
        assert_eq!(result.labels.probs.rows(), 24);
        let acc = result.accuracy(&ds);
        assert!(acc > 0.7, "accuracy = {acc}");
        // rows are stochastic
        for i in 0..result.labels.probs.rows() {
            let s: f64 = result.labels.probs.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn accuracy_excluding_dev_drops_dev_rows() {
        let ds = small_dataset(2);
        let dev = ds.sample_dev_set(3, 2);
        let result = fast_goggles(1).label_dataset(&ds, &dev).unwrap();
        // 24 rows, 6 dev rows excluded → 18 counted.
        let excl = result.accuracy_excluding_dev(&ds, &dev);
        assert!((0.0..=1.0).contains(&excl));
        // with an empty dev set, both accuracies coincide
        let all = result.accuracy(&ds);
        let same = result.accuracy_excluding_dev(&ds, &DevSet::empty());
        assert!((all - same).abs() < 1e-12);
    }

    #[test]
    fn affinity_matrix_shape_is_n_by_alpha_n() {
        let ds = small_dataset(3);
        let g = fast_goggles(2);
        let am = g.build_affinity_matrix(&ds.train_images());
        let n = ds.train_indices.len();
        let alpha = 5 * g.config().top_z;
        assert_eq!(am.data.shape(), (n, alpha * n));
        assert_eq!(am.alpha, alpha);
    }

    #[test]
    fn dev_set_fixes_cluster_orientation() {
        // With a dev set, the mapped labels should agree with ground truth
        // better than chance on the dev rows themselves.
        let ds = small_dataset(4);
        let dev = ds.sample_dev_set(4, 4);
        let result = fast_goggles(3).label_dataset(&ds, &dev).unwrap();
        let hard = result.labels.hard_labels();
        let mut correct = 0;
        for (&idx, &lbl) in dev.indices.iter().zip(&dev.labels) {
            let row = ds.train_indices.iter().position(|&t| t == idx).unwrap();
            if hard[row] == lbl {
                correct += 1;
            }
        }
        assert!(correct * 2 >= dev.len(), "dev agreement {correct}/{}", dev.len());
    }

    #[test]
    fn translate_dev_handles_duplicates_first_wins() {
        // Duplicate dev indices all resolve; a (pathological) duplicated
        // train index maps to its first row, like the old linear scan did.
        let train = vec![5, 9, 7, 9, 3];
        let dev = DevSet { indices: vec![9, 3, 9], labels: vec![1, 0, 1] };
        let rows = translate_dev_to_rows(&train, &dev).unwrap();
        assert_eq!(rows.indices, vec![1, 4, 1]);
        assert_eq!(rows.labels, vec![1, 0, 1]);
        // unknown index still rejected
        let bad = DevSet { indices: vec![11], labels: vec![0] };
        assert!(translate_dev_to_rows(&train, &bad).is_err());
    }

    #[test]
    fn invalid_dev_index_is_rejected() {
        let ds = small_dataset(5);
        let dev = DevSet { indices: vec![999], labels: vec![0] };
        assert!(fast_goggles(0).label_dataset(&ds, &dev).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = small_dataset(6);
        let dev = ds.sample_dev_set(3, 6);
        let a = fast_goggles(9).label_dataset(&ds, &dev).unwrap();
        let b = fast_goggles(9).label_dataset(&ds, &dev).unwrap();
        assert_eq!(a.labels.hard_labels(), b.labels.hard_labels());
        assert_eq!(a.mapping, b.mapping);
    }

    #[test]
    fn feature_affinity_pipeline_works() {
        // Logits-style ablation: cosine affinity over backbone features.
        let ds = small_dataset(7);
        let g = fast_goggles(4);
        let feats32 = g
            .backbone()
            .logits_batch(&ds.train_images().iter().map(|&i| i.clone()).collect::<Vec<_>>());
        let feats = Matrix::from_fn(feats32.rows(), feats32.cols(), |i, j| feats32[(i, j)] as f64);
        let am = AffinityMatrix::from_feature_vectors(&feats);
        let dev = ds.sample_dev_set(3, 7);
        let dev_rows = DevSet {
            indices: dev
                .indices
                .iter()
                .map(|&i| ds.train_indices.iter().position(|&t| t == i).unwrap())
                .collect(),
            labels: dev.labels.clone(),
        };
        let (labels, mapping, model) = g.infer_from_affinity(&am, &dev_rows).unwrap();
        assert_eq!(labels.probs.rows(), ds.train_indices.len());
        assert_eq!(mapping.len(), 2);
        assert_eq!(model.alpha(), 1);
    }

    #[test]
    fn refit_from_affinity_never_loses_to_previous_model() {
        let ds = small_dataset(9);
        let g = fast_goggles(6);
        let am = g.build_affinity_matrix(&ds.train_images());
        let dev = ds.sample_dev_set(4, 9);
        let first = g.label_dataset_with_affinity(&ds, &am, &dev).unwrap();
        let dev_rows = DevSet {
            indices: dev
                .indices
                .iter()
                .map(|&i| ds.train_indices.iter().position(|&t| t == i).unwrap())
                .collect(),
            labels: dev.labels.clone(),
        };
        let refit = g.refit_from_affinity(&am, &dev_rows, &first.model).unwrap();
        // The warm candidate starts from `first.model`'s optimum, so the
        // winner's dev score can only match or beat it.
        let prev_score = {
            let hard = first.labels.hard_labels();
            dev_rows
                .indices
                .iter()
                .zip(&dev_rows.labels)
                .filter(|(&idx, &lbl)| hard[idx] == lbl)
                .count() as f64
                / dev_rows.len() as f64
        };
        assert!(refit.dev_score >= prev_score - 1e-12, "{} < {prev_score}", refit.dev_score);
        assert_eq!(refit.labels.probs.rows(), am.data.rows());
        assert_eq!(refit.mapping.len(), 2);
        // Deterministic: same inputs, same winner.
        let again = g.refit_from_affinity(&am, &dev_rows, &first.model).unwrap();
        assert_eq!(again.candidate, refit.candidate);
        assert_eq!(again.dev_score, refit.dev_score);
        assert_eq!(again.labels.probs.as_slice(), refit.labels.probs.as_slice());
    }

    #[test]
    fn refit_with_empty_dev_set_uses_warm_candidate_only() {
        let ds = small_dataset(10);
        let g = fast_goggles(7);
        let am = g.build_affinity_matrix(&ds.train_images());
        let dev = ds.sample_dev_set(3, 10);
        let first = g.label_dataset_with_affinity(&ds, &am, &dev).unwrap();
        let refit = g.refit_from_affinity(&am, &DevSet::empty(), &first.model).unwrap();
        assert_eq!(refit.candidate, 0);
        assert_eq!(refit.dev_score, 0.0);
    }

    #[test]
    fn mean_confidence_in_unit_range() {
        let ds = small_dataset(8);
        let dev = ds.sample_dev_set(2, 8);
        let result = fast_goggles(5).label_dataset(&ds, &dev).unwrap();
        let c = result.labels.mean_confidence();
        assert!((0.5..=1.0).contains(&c), "confidence = {c}");
    }
}

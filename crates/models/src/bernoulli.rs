//! Multivariate-Bernoulli mixture — the paper's **ensemble model**.
//!
//! §4.1: after converting the concatenated label-prediction matrix LP to
//! one-hot form, "Multivariate Bernoulli distribution is a natural fit for
//! modeling P(s′_i | θ′_k)" (Equation 7). The M-step is Equation 11. The
//! Bernoulli parameters `b_{k,l}` effectively learn the *accuracy of each
//! affinity function*, which is how the ensemble distinguishes good affinity
//! functions from bad ones.

use crate::em::{
    e_step_from_log_joint, hard_labels, relative_improvement, update_weights, EmOptions, FitStats,
};
use crate::kmeans::KMeans;
use crate::{ModelError, Result};
use goggles_tensor::Matrix;

/// Clamp for Bernoulli parameters: keeps every `log b` / `log (1-b)` finite.
const B_EPS: f64 = 1e-4;

/// Fitted multivariate-Bernoulli mixture.
#[derive(Debug, Clone)]
pub struct BernoulliMixture {
    /// Mixture weights π_k.
    pub weights: Vec<f64>,
    /// Bernoulli parameters `b_{k,l} = P(s′[l] = 1 | y = k)`, `k × d`.
    pub probs: Matrix<f64>,
    /// Posterior responsibilities on the training data, `n × k`.
    pub responsibilities: Matrix<f64>,
    /// Fit diagnostics.
    pub stats: FitStats,
}

impl BernoulliMixture {
    /// Fit a `k`-component Bernoulli mixture on binary rows (values are
    /// treated as probabilities of a 1; hard 0/1 inputs are the intended
    /// use, matching the paper's one-hot LP).
    pub fn fit(data: &Matrix<f64>, k: usize, opts: &EmOptions, seed: u64) -> Result<Self> {
        if data.rows() == 0 || data.cols() == 0 {
            return Err(ModelError::EmptyInput);
        }
        if k == 0 {
            return Err(ModelError::InvalidParameter("k must be ≥ 1".into()));
        }
        if data.rows() < k {
            return Err(ModelError::TooFewSamples { samples: data.rows(), components: k });
        }
        if data.as_slice().iter().any(|&v| !(0.0..=1.0).contains(&v)) {
            return Err(ModelError::InvalidParameter(
                "BernoulliMixture expects values in [0, 1]".into(),
            ));
        }
        let mut best: Option<BernoulliMixture> = None;
        for r in 0..opts.restarts.max(1) {
            let rs = seed.wrapping_add((r as u64).wrapping_mul(0xA076_1D64_78BD_642F));
            let fit = Self::fit_once(data, k, opts, rs)?;
            if best.as_ref().is_none_or(|b| fit.stats.log_likelihood > b.stats.log_likelihood) {
                best = Some(fit);
            }
        }
        Ok(best.expect("at least one restart"))
    }

    fn fit_once(data: &Matrix<f64>, k: usize, opts: &EmOptions, seed: u64) -> Result<Self> {
        let n = data.rows();
        // init: k-means on the binary rows gives a sane hard partition
        let km = KMeans::fit(data, k, 1, seed)?;
        let mut resp = Matrix::<f64>::zeros(n, k);
        for (i, &lbl) in km.labels.iter().enumerate() {
            resp[(i, lbl)] = 1.0;
        }
        let mut weights = vec![1.0 / k as f64; k];
        let mut probs = Matrix::<f64>::zeros(k, data.cols());
        m_step(data, &resp, &mut weights, &mut probs);
        em_loop(data, opts, weights, probs, resp)
    }

    /// Warm-start EM from the given parameters: no k-means init, no
    /// restarts, no RNG. The E-step runs first, so the fit can only match
    /// or improve the starting likelihood, and the result depends on the
    /// starting parameters alone.
    pub fn fit_from(
        data: &Matrix<f64>,
        weights: &[f64],
        probs: &Matrix<f64>,
        opts: &EmOptions,
    ) -> Result<Self> {
        let k = weights.len();
        if data.rows() == 0 || data.cols() == 0 {
            return Err(ModelError::EmptyInput);
        }
        if k == 0 {
            return Err(ModelError::InvalidParameter("k must be ≥ 1".into()));
        }
        if data.rows() < k {
            return Err(ModelError::TooFewSamples { samples: data.rows(), components: k });
        }
        if probs.shape() != (k, data.cols()) {
            return Err(ModelError::InvalidParameter(format!(
                "warm-start probs shape {:?} incompatible with k={k}, d={}",
                probs.shape(),
                data.cols()
            )));
        }
        let resp = Matrix::<f64>::zeros(data.rows(), k);
        em_loop(data, opts, weights.to_vec(), probs.clone(), resp)
    }

    /// Posterior `P(y = k | s′)` for new binary rows.
    pub fn predict_proba(&self, data: &Matrix<f64>) -> Matrix<f64> {
        let n = data.rows();
        let k = self.weights.len();
        let mut log_joint = Matrix::<f64>::zeros(n, k);
        fill_log_joint(data, &self.weights, &self.probs, &mut log_joint);
        let mut resp = Matrix::<f64>::zeros(n, k);
        let _ = e_step_from_log_joint(&log_joint, &mut resp);
        resp
    }

    /// Hard labels on the training data.
    pub fn train_labels(&self) -> Vec<usize> {
        hard_labels(&self.responsibilities)
    }

    /// Number of free parameters: `K(d + 1) - 1`. Together with the base
    /// models this realizes the paper's `2αKN + αK` count (§4.1).
    // goggles-lint: allow(dead-pub): BIC/model-selection statistic the paper reports; exercised only by unit tests
    pub fn n_parameters(&self) -> usize {
        let k = self.weights.len();
        k * (self.probs.cols() + 1) - 1
    }
}

/// Shared EM loop: alternate E-step (Equation 8) and M-step (Equation 11)
/// from the given starting parameters until convergence.
fn em_loop(
    data: &Matrix<f64>,
    opts: &EmOptions,
    mut weights: Vec<f64>,
    mut probs: Matrix<f64>,
    mut resp: Matrix<f64>,
) -> Result<BernoulliMixture> {
    let mut log_joint = Matrix::<f64>::zeros(data.rows(), weights.len());
    let mut prev_ll = f64::NEG_INFINITY;
    let mut ll = f64::NEG_INFINITY;
    let mut iterations = 0;
    let mut converged = false;
    for it in 0..opts.max_iters {
        iterations = it + 1;
        fill_log_joint(data, &weights, &probs, &mut log_joint);
        ll = e_step_from_log_joint(&log_joint, &mut resp);
        if !ll.is_finite() {
            return Err(ModelError::Numerical(format!("log-likelihood became {ll}")));
        }
        if relative_improvement(prev_ll, ll) < opts.tol {
            converged = true;
            break;
        }
        prev_ll = ll;
        m_step(data, &resp, &mut weights, &mut probs);
    }
    Ok(BernoulliMixture {
        weights,
        probs,
        responsibilities: resp,
        stats: FitStats { log_likelihood: ll, iterations, converged },
    })
}

/// `log_joint[i,k] = log π_k + Σ_l [ s log b + (1-s) log(1-b) ]`
/// (log of Equation 7 plus the prior).
fn fill_log_joint(data: &Matrix<f64>, weights: &[f64], probs: &Matrix<f64>, out: &mut Matrix<f64>) {
    let k = weights.len();
    // Precompute log b and log (1-b).
    let log_b = probs.map(|v| v.clamp(B_EPS, 1.0 - B_EPS).ln());
    let log_1mb = probs.map(|v| (1.0 - v.clamp(B_EPS, 1.0 - B_EPS)).ln());
    for (i, row) in data.rows_iter().enumerate() {
        for c in 0..k {
            let lb = log_b.row(c);
            let l1 = log_1mb.row(c);
            let mut acc = weights[c].ln();
            for ((&s, &b1), &b0) in row.iter().zip(lb).zip(l1) {
                acc += s * b1 + (1.0 - s) * b0;
            }
            out[(i, c)] = acc;
        }
    }
}

/// Equation 11: `b_{k,l} = (Σ_i γ_{ik} s′_i[l]) / N_k`, clamped away from
/// {0, 1} so the log-densities stay finite.
fn m_step(data: &Matrix<f64>, resp: &Matrix<f64>, weights: &mut [f64], probs: &mut Matrix<f64>) {
    let k = weights.len();
    let (w, nk) = update_weights(resp);
    weights.copy_from_slice(&w);
    for c in 0..k {
        probs.row_mut(c).fill(0.0);
    }
    for (i, row) in data.rows_iter().enumerate() {
        for c in 0..k {
            let g = resp[(i, c)];
            if g == 0.0 {
                continue;
            }
            for (p, &s) in probs.row_mut(c).iter_mut().zip(row) {
                *p += g * s;
            }
        }
    }
    for c in 0..k {
        let inv = 1.0 / nk[c].max(1e-12);
        for p in probs.row_mut(c) {
            *p = (*p * inv).clamp(B_EPS, 1.0 - B_EPS);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goggles_tensor::rng::std_rng;
    use rand::Rng;

    /// Binary data from two Bernoulli profiles with per-bit flip noise.
    fn binary_blobs(n_per: usize, d: usize, flip: f64, seed: u64) -> (Matrix<f64>, Vec<usize>) {
        let mut rng = std_rng(seed);
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        for cls in 0..2usize {
            for _ in 0..n_per {
                let row: Vec<f64> = (0..d)
                    .map(|j| {
                        // class 0: first half on; class 1: second half on
                        let ideal = if (j < d / 2) == (cls == 0) { 1.0 } else { 0.0 };
                        if rng.random::<f64>() < flip {
                            1.0 - ideal
                        } else {
                            ideal
                        }
                    })
                    .collect();
                rows.push(row);
                truth.push(cls);
            }
        }
        (Matrix::from_fn(rows.len(), d, |i, j| rows[i][j]), truth)
    }

    fn binary_accuracy(labels: &[usize], truth: &[usize]) -> f64 {
        let same =
            labels.iter().zip(truth).filter(|(a, b)| a == b).count() as f64 / labels.len() as f64;
        same.max(1.0 - same)
    }

    #[test]
    fn recovers_two_binary_profiles() {
        let (data, truth) = binary_blobs(60, 10, 0.1, 1);
        let bm = BernoulliMixture::fit(&data, 2, &EmOptions::default(), 0).unwrap();
        assert!(binary_accuracy(&bm.train_labels(), &truth) > 0.97);
    }

    #[test]
    fn learned_probs_match_flip_rate() {
        let (data, _) = binary_blobs(300, 8, 0.15, 2);
        let bm = BernoulliMixture::fit(&data, 2, &EmOptions::default(), 0).unwrap();
        // Every b should be close to 0.15 or 0.85.
        for c in 0..2 {
            for &b in bm.probs.row(c) {
                let dist = (b - 0.15).abs().min((b - 0.85).abs());
                assert!(dist < 0.07, "b = {b}");
            }
        }
    }

    #[test]
    fn handles_pure_noise_gracefully() {
        let mut rng = std_rng(3);
        let data = Matrix::from_fn(80, 6, |_, _| if rng.random::<f64>() < 0.5 { 0.0 } else { 1.0 });
        let bm = BernoulliMixture::fit(&data, 2, &EmOptions::default(), 0).unwrap();
        assert!(bm.stats.log_likelihood.is_finite());
        // probs near 0.5
        let avg: f64 = bm.probs.as_slice().iter().sum::<f64>() / bm.probs.len() as f64;
        assert!((avg - 0.5).abs() < 0.15, "avg prob = {avg}");
    }

    #[test]
    fn probs_stay_clamped() {
        // Perfectly separable data would drive b to 0/1 without clamping.
        let (data, _) = binary_blobs(40, 6, 0.0, 4);
        let bm = BernoulliMixture::fit(&data, 2, &EmOptions::default(), 0).unwrap();
        for &b in bm.probs.as_slice() {
            assert!((B_EPS..=1.0 - B_EPS).contains(&b));
        }
        assert!(bm.stats.log_likelihood.is_finite());
    }

    #[test]
    fn rejects_out_of_range_values() {
        let data = Matrix::from_rows(&[&[0.0, 2.0], &[1.0, 0.0]]);
        assert!(matches!(
            BernoulliMixture::fit(&data, 2, &EmOptions::default(), 0),
            Err(ModelError::InvalidParameter(_))
        ));
    }

    #[test]
    fn predict_proba_consistent_with_training() {
        let (data, _) = binary_blobs(50, 10, 0.05, 5);
        let bm = BernoulliMixture::fit(&data, 2, &EmOptions::default(), 0).unwrap();
        let rep = bm.predict_proba(&data);
        // Posterior recomputed on training data ≈ stored responsibilities.
        let diff = rep.max_abs_diff(&bm.responsibilities);
        assert!(diff < 1e-8, "diff = {diff}");
    }

    #[test]
    fn parameter_count_formula() {
        let (data, _) = binary_blobs(30, 7, 0.1, 6);
        let bm = BernoulliMixture::fit(&data, 2, &EmOptions::default(), 0).unwrap();
        assert_eq!(bm.n_parameters(), 2 * 8 - 1);
    }

    #[test]
    fn warm_start_matches_or_improves_and_is_deterministic() {
        let (data, _) = binary_blobs(50, 8, 0.1, 8);
        let cold = BernoulliMixture::fit(&data, 2, &EmOptions::default(), 3).unwrap();
        let warm =
            BernoulliMixture::fit_from(&data, &cold.weights, &cold.probs, &EmOptions::default())
                .unwrap();
        assert!(warm.stats.log_likelihood >= cold.stats.log_likelihood - 1e-9);
        assert!(warm.stats.converged && warm.stats.iterations <= 3, "{:?}", warm.stats);
        let again =
            BernoulliMixture::fit_from(&data, &cold.weights, &cold.probs, &EmOptions::default())
                .unwrap();
        assert_eq!(warm.stats.log_likelihood, again.stats.log_likelihood);
        assert_eq!(warm.probs.as_slice(), again.probs.as_slice());
    }

    #[test]
    fn warm_start_rejects_mismatched_shapes() {
        let (data, _) = binary_blobs(30, 6, 0.1, 9);
        let fit = BernoulliMixture::fit(&data, 2, &EmOptions::default(), 0).unwrap();
        let bad = Matrix::<f64>::zeros(2, 3);
        assert!(matches!(
            BernoulliMixture::fit_from(&data, &fit.weights, &bad, &EmOptions::default()),
            Err(ModelError::InvalidParameter(_))
        ));
    }

    #[test]
    fn deterministic_per_seed() {
        let (data, _) = binary_blobs(40, 8, 0.1, 7);
        let a = BernoulliMixture::fit(&data, 2, &EmOptions::default(), 9).unwrap();
        let b = BernoulliMixture::fit(&data, 2, &EmOptions::default(), 9).unwrap();
        assert_eq!(a.train_labels(), b.train_labels());
    }
}

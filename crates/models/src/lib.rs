//! # goggles-models
//!
//! Probabilistic-model and clustering substrate for the GOGGLES
//! reproduction. The paper's class-inference module (§4) is built from
//! mixture models fit with expectation–maximization; its evaluation (§5.3)
//! additionally compares against generic clustering baselines. Rust has no
//! batteries-included EM ecosystem, so this crate implements everything from
//! scratch:
//!
//! * [`KMeans`] — Lloyd's algorithm with k-means++ seeding (baseline, and
//!   the initializer for the mixture models),
//! * [`DiagonalGmm`] — Gaussian mixture with **diagonal** covariance, the
//!   paper's base model (§4.1: "we use the diagonal covariance matrix, which
//!   reduces the number of parameters significantly"),
//! * [`FullGmm`] — full-covariance Gaussian mixture, the naive baseline the
//!   paper argues against (and the `GMM` column of Table 1),
//! * [`BernoulliMixture`] — multivariate-Bernoulli mixture, the paper's
//!   ensemble model (Equation 7),
//! * [`SpectralCoclustering`] — Dhillon (2001) bipartite spectral graph
//!   partitioning, the `Spectral` column of Table 1,
//! * [`assignment::solve_assignment`] — O(K³) Hungarian solver for the
//!   cluster→class mapping (§4.3 reduces the mapping to an assignment
//!   problem, citing Jonker–Volgenant).
//!
//! All models take explicit seeds, run multiple restarts, operate in the
//! log domain and floor variances, so they are deterministic and robust on
//! the badly conditioned inputs (near-discrete label-prediction matrices)
//! that the paper highlights.

pub mod assignment;
pub mod bernoulli;
pub mod em;
pub mod gmm_diag;
pub mod gmm_full;
pub mod kmeans;
pub mod spectral;

pub use assignment::solve_assignment;
pub use bernoulli::BernoulliMixture;
pub use em::{hard_labels, EmOptions, FitStats};
pub use gmm_diag::DiagonalGmm;
pub use gmm_full::FullGmm;
pub use kmeans::KMeans;
pub use spectral::SpectralCoclustering;

/// Errors from model fitting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// Input matrix had no rows or columns.
    EmptyInput,
    /// Fewer samples than mixture components.
    TooFewSamples { samples: usize, components: usize },
    /// Invalid hyperparameter (description inside).
    InvalidParameter(String),
    /// Numerical failure that survived regularization and restarts.
    Numerical(String),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::EmptyInput => write!(f, "empty input"),
            ModelError::TooFewSamples { samples, components } => {
                write!(f, "{samples} samples cannot support {components} components")
            }
            ModelError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            ModelError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ModelError>;

//! Prototype extraction (§3.1, Algorithm 1 lines 1–4).
//!
//! For every image and every max-pool layer of the backbone we keep
//!
//! * the full patch table — every spatial column `v^{(h,w)} ∈ R^C` of the
//!   filter map, one row per receptive field, L2-normalized so cosine
//!   similarity reduces to a dot product, and
//! * the **top-Z prototypes** — the spatial columns at the argmax locations
//!   of the Z most-activated channels (2D global max pooling), de-duplicated
//!   by location as the paper prescribes and re-padded to exactly Z rows so
//!   the affinity-function count is a stable `α = 5Z`.

use goggles_cnn::{ConvScratch, Vgg16};
use goggles_tensor::{Matrix, Tensor3};
use goggles_vision::Image;

/// Per-worker scratch arenas for [`embed_images_with`]: one backbone
/// [`ConvScratch`] per embedding thread, grown lazily to the thread budget
/// and reused across calls. A long-lived worker (e.g. a `goggles-serve`
/// labeling thread) holds one of these so embedding a request performs no
/// backbone allocations beyond the five returned tap tensors per image.
#[derive(Debug, Default)]
pub struct EmbedScratch {
    per_thread: Vec<ConvScratch>,
}

impl EmbedScratch {
    /// An empty scratch; arenas are created on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensure at least `threads` arenas exist and borrow them.
    fn arenas(&mut self, threads: usize) -> &mut [ConvScratch] {
        if self.per_thread.len() < threads {
            self.per_thread.resize_with(threads, ConvScratch::new);
        }
        &mut self.per_thread[..threads]
    }
}

/// Per-layer embedding of one image.
#[derive(Debug, Clone)]
// goggles-lint: allow(dead-pub): field type of the pub ImageEmbedding; reached through inference
pub struct LayerEmbedding {
    /// `H·W × C` patch table, rows L2-normalized (zero rows left as-is).
    pub patches: Matrix<f32>,
    /// `Z × C` prototype table, rows L2-normalized.
    pub prototypes: Matrix<f32>,
    /// Spatial location `(h, w)` each prototype was read from (post-dedup
    /// padding repeats the strongest location).
    pub locations: Vec<(usize, usize)>,
}

/// All five layer embeddings of one image.
#[derive(Debug, Clone)]
// goggles-lint: allow(dead-pub): element type of the pub embed_images_with API; external callers use it through inference
pub struct ImageEmbedding {
    /// One entry per max-pool layer, shallow → deep.
    pub layers: Vec<LayerEmbedding>,
}

/// Extract the top-`z` prototypes of a filter map (Algorithm 1 lines 2–3 and
/// the Example 4 procedure):
///
/// 1. rank channels by their global max activation,
/// 2. for each of the top-`z` channels take the argmax location,
/// 3. read the channel-axis vector at that location,
/// 4. drop duplicate locations, then pad by cycling the kept locations so
///    exactly `z` prototypes come back.
// goggles-lint: allow(dead-pub): the paper's §3.1 prototype-extraction primitive, kept as the documented entry point; exercised only by unit tests
pub fn extract_top_z_prototypes(
    map: &Tensor3<f32>,
    z: usize,
) -> (Matrix<f32>, Vec<(usize, usize)>) {
    let (mut protos, locations) = extract_top_z_prototypes_raw(map, z);
    protos.l2_normalize_rows();
    (protos, locations)
}

/// As [`extract_top_z_prototypes`] but without the final L2 normalization
/// (the embedding path centers first, then normalizes).
fn extract_top_z_prototypes_raw(
    map: &Tensor3<f32>,
    z: usize,
) -> (Matrix<f32>, Vec<(usize, usize)>) {
    assert!(z > 0, "need z ≥ 1 prototypes");
    // One pass per channel computing (max, argmax) together — the map is
    // scanned exactly once, instead of a global-max sweep followed by a
    // re-scan of every selected channel. First occurrence wins on ties,
    // matching `Tensor3::channel_argmax`.
    let (_, _, width) = map.shape();
    let per_channel: Vec<(f32, usize)> = (0..map.channels())
        .map(|c| {
            let plane = map.channel(c);
            let mut best = 0usize;
            let mut best_v = plane[0];
            for (idx, &v) in plane.iter().enumerate().skip(1) {
                if v > best_v {
                    best = idx;
                    best_v = v;
                }
            }
            (best_v, best)
        })
        .collect();
    let mut order: Vec<usize> = (0..map.channels()).collect();
    order.sort_by(|&a, &b| per_channel[b].0.total_cmp(&per_channel[a].0));
    let z_eff = z.min(map.channels());
    let mut locations: Vec<(usize, usize)> = Vec::with_capacity(z);
    let mut seen: std::collections::HashSet<usize> = std::collections::HashSet::with_capacity(z);
    for &c in order.iter().take(z_eff) {
        let flat = per_channel[c].1;
        if seen.insert(flat) {
            locations.push((flat / width, flat % width));
        }
    }
    // Pad to exactly z by cycling (keeps α fixed across images).
    let unique = locations.len();
    while locations.len() < z {
        let repeat = locations[locations.len() % unique];
        locations.push(repeat);
    }
    let mut protos = Matrix::<f32>::zeros(z, map.channels());
    for (row, &(h, w)) in locations.iter().enumerate() {
        let v = map.spatial_vector(h, w);
        protos.row_mut(row).copy_from_slice(&v);
    }
    (protos, locations)
}

/// Embed one image: all patch tables + top-`z` prototypes per layer.
///
/// `center_patches` subtracts each layer's spatial-mean patch vector from
/// every patch (and prototype) before L2 normalization. With the paper's
/// ImageNet-pretrained backbone this is unnecessary — training makes
/// channels selective, so cosine between raw ReLU vectors is informative.
/// With this reproduction's *surrogate* (random-weight) backbone, raw ReLU
/// patch vectors share a large positive component and `max cos` saturates
/// near 1 for every image pair; removing the per-image mean restores the
/// discriminative geometry the paper's affinity functions rely on
/// (substitution recorded in DESIGN.md §5).
pub fn embed_image(net: &Vgg16, img: &Image, z: usize, center_patches: bool) -> ImageEmbedding {
    embed_image_with(net, &mut ConvScratch::new(), img, z, center_patches)
}

/// [`embed_image`] against a caller-owned backbone scratch arena, so a
/// long-lived worker embeds every image through the same buffers (see
/// [`goggles_cnn::ConvScratch`] for the arena contract).
pub fn embed_image_with(
    net: &Vgg16,
    scratch: &mut ConvScratch,
    img: &Image,
    z: usize,
    center_patches: bool,
) -> ImageEmbedding {
    let taps = net.forward_pool_taps_into(scratch, img);
    embed_from_taps(&taps, z, center_patches)
}

/// Algorithm 1 lines 2–4 without the backbone pass: build the per-layer
/// patch tables and top-`z` prototypes from already-computed pool taps.
/// Exposed so alternative backbone paths (e.g. the retained naive
/// reference the `repro -- embed` baseline drives) share the exact same
/// extraction code.
pub fn embed_from_taps(taps: &[Tensor3<f32>], z: usize, center_patches: bool) -> ImageEmbedding {
    let layers = taps
        .iter()
        .map(|map| {
            let mut patches = map.spatial_vectors_matrix();
            let (mut prototypes, locations) = extract_top_z_prototypes_raw(map, z);
            if center_patches {
                let means = patches.col_means();
                for r in 0..patches.rows() {
                    for (v, &m) in patches.row_mut(r).iter_mut().zip(&means) {
                        *v -= m;
                    }
                }
                for r in 0..prototypes.rows() {
                    for (v, &m) in prototypes.row_mut(r).iter_mut().zip(&means) {
                        *v -= m;
                    }
                }
            }
            patches.l2_normalize_rows();
            prototypes.l2_normalize_rows();
            LayerEmbedding { patches, prototypes, locations }
        })
        .collect();
    ImageEmbedding { layers }
}

/// Embed a batch of images, fanning out across `threads` OS threads.
///
/// CNN inference dominates the pipeline cost; the images are independent so
/// this is an embarrassingly parallel map (the paper makes the same
/// observation about its base models in §5.3).
pub fn embed_images(
    net: &Vgg16,
    images: &[&Image],
    z: usize,
    threads: usize,
    center_patches: bool,
) -> Vec<ImageEmbedding> {
    embed_images_with(net, &mut EmbedScratch::new(), images, z, threads, center_patches)
}

/// [`embed_images`] against a caller-owned [`EmbedScratch`]: each worker
/// thread embeds its image chunk through its own arena, so across a batch
/// (and across calls, when the scratch outlives them) the backbone performs
/// no per-image allocations beyond the returned embeddings. Results are
/// identical for every thread count.
pub fn embed_images_with(
    net: &Vgg16,
    scratch: &mut EmbedScratch,
    images: &[&Image],
    z: usize,
    threads: usize,
    center_patches: bool,
) -> Vec<ImageEmbedding> {
    let threads = threads.max(1).min(images.len().max(1));
    if threads <= 1 || images.len() < 4 {
        let arena = &mut scratch.arenas(1)[0];
        return images
            .iter()
            .map(|img| embed_image_with(net, arena, img, z, center_patches))
            .collect();
    }
    let chunk = images.len().div_ceil(threads);
    let arenas = scratch.arenas(threads);
    let mut results: Vec<ImageEmbedding> = Vec::with_capacity(images.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = images
            .chunks(chunk)
            .zip(arenas.iter_mut())
            .map(|(imgs, arena)| {
                scope.spawn(move || {
                    imgs.iter()
                        .map(|img| embed_image_with(net, arena, img, z, center_patches))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            // A worker can only fail by panicking; re-raise its payload
            // (exactly what the implicit end-of-scope join would do).
            match handle.join() {
                Ok(embedded) => results.extend(embedded),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use goggles_cnn::VggConfig;
    use goggles_tensor::Tensor3;
    use goggles_vision::draw;

    fn sample_image(shift: f32) -> Image {
        let mut img = Image::filled(3, 32, 32, 0.3);
        draw::fill_disc(&mut img, 12.0 + shift, 16.0, 6.0, &[0.9, 0.1, 0.2]);
        img
    }

    #[test]
    fn paper_example4_top2() {
        // The worked Example 4 from §3.1.
        let map = Tensor3::from_vec(
            3,
            2,
            2,
            vec![1.0, 0.5, 0.3, 0.6, 0.1, 0.7, 0.4, 0.3, 0.2, 0.9, 0.5, 0.1],
        )
        .unwrap();
        let (protos, locs) = extract_top_z_prototypes(&map, 2);
        assert_eq!(locs, vec![(0, 0), (0, 1)]);
        // v1 = {1, 0.1, 0.2}, v2 = {0.5, 0.7, 0.9} — normalized here.
        let norm1 = (1.0f32 + 0.01 + 0.04).sqrt();
        assert!((protos[(0, 0)] - 1.0 / norm1).abs() < 1e-6);
        let norm2 = (0.25f32 + 0.49 + 0.81).sqrt();
        assert!((protos[(1, 2)] - 0.9 / norm2).abs() < 1e-6);
    }

    #[test]
    fn duplicate_locations_are_deduped_then_padded() {
        // Two channels peaking at the same location -> dedup to 1, pad to 3.
        let map = Tensor3::from_vec(2, 2, 2, vec![5.0, 0.0, 0.0, 0.0, 4.0, 0.0, 0.0, 0.0]).unwrap();
        let (protos, locs) = extract_top_z_prototypes(&map, 3);
        assert_eq!(locs, vec![(0, 0), (0, 0), (0, 0)]);
        assert_eq!(protos.rows(), 3);
        assert_eq!(protos.row(0), protos.row(1));
    }

    #[test]
    fn prototypes_are_unit_norm() {
        let net = Vgg16::new(&VggConfig::tiny(), 1);
        let emb = embed_image(&net, &sample_image(0.0), 4, true);
        assert_eq!(emb.layers.len(), 5);
        for layer in &emb.layers {
            assert_eq!(layer.prototypes.rows(), 4);
            for r in 0..layer.prototypes.rows() {
                let n: f32 = layer.prototypes.row(r).iter().map(|v| v * v).sum();
                assert!((n - 1.0).abs() < 1e-4 || n == 0.0, "norm² = {n}");
            }
        }
    }

    #[test]
    fn patch_table_shapes_follow_pool_geometry() {
        let cfg = VggConfig::tiny();
        let net = Vgg16::new(&cfg, 1);
        let emb = embed_image(&net, &sample_image(0.0), 3, true);
        for (b, layer) in emb.layers.iter().enumerate() {
            let s = cfg.pool_size(b);
            assert_eq!(layer.patches.shape(), (s * s, cfg.block_channels[b]));
        }
    }

    #[test]
    fn z_larger_than_channels_is_padded() {
        let map = Tensor3::from_vec(2, 1, 2, vec![3.0, 1.0, 0.5, 2.0]).unwrap();
        let (protos, locs) = extract_top_z_prototypes(&map, 5);
        assert_eq!(protos.rows(), 5);
        assert_eq!(locs.len(), 5);
    }

    #[test]
    fn scratch_reuse_matches_fresh_embedding() {
        let net = Vgg16::new(&VggConfig::tiny(), 5);
        let images: Vec<Image> = (0..5).map(|i| sample_image(i as f32)).collect();
        let refs: Vec<&Image> = images.iter().collect();
        let fresh = embed_images(&net, &refs, 3, 2, true);
        let mut scratch = EmbedScratch::new();
        // Same scratch across two passes and across thread budgets.
        for threads in [1usize, 2, 4] {
            let reused = embed_images_with(&net, &mut scratch, &refs, 3, threads, true);
            for (a, b) in fresh.iter().zip(&reused) {
                for (la, lb) in a.layers.iter().zip(&b.layers) {
                    assert_eq!(la.patches, lb.patches, "threads = {threads}");
                    assert_eq!(la.prototypes, lb.prototypes, "threads = {threads}");
                    assert_eq!(la.locations, lb.locations, "threads = {threads}");
                }
            }
        }
    }

    #[test]
    fn parallel_embedding_matches_serial() {
        let net = Vgg16::new(&VggConfig::tiny(), 2);
        let images: Vec<Image> = (0..6).map(|i| sample_image(i as f32)).collect();
        let refs: Vec<&Image> = images.iter().collect();
        let serial = embed_images(&net, &refs, 3, 1, true);
        let parallel = embed_images(&net, &refs, 3, 4, true);
        for (a, b) in serial.iter().zip(&parallel) {
            for (la, lb) in a.layers.iter().zip(&b.layers) {
                assert_eq!(la.prototypes, lb.prototypes);
                assert_eq!(la.locations, lb.locations);
            }
        }
    }
}

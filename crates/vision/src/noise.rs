//! Procedural noise: per-pixel Gaussian noise, salt-and-pepper speckle, and
//! smooth multi-octave value noise for natural-looking textures
//! (metal grain for the Surface dataset, tissue texture for the X-ray sets).

use crate::image::Image;
use goggles_tensor::rng::normal;
use rand::Rng;

/// Add i.i.d. Gaussian noise with standard deviation `sigma` to every value.
pub fn add_gaussian_noise<R: Rng + ?Sized>(img: &mut Image, rng: &mut R, sigma: f32) {
    for v in img.tensor_mut().as_mut_slice() {
        *v += sigma * normal(rng) as f32;
    }
}

/// Salt-and-pepper speckle: each pixel independently becomes `lo` or `hi`
/// with probability `p / 2` each (applied across all channels jointly).
// goggles-lint: allow(dead-pub): documented noise primitive, sibling of the used add_gaussian; exercised only by unit tests
pub fn add_speckle<R: Rng + ?Sized>(img: &mut Image, rng: &mut R, p: f32, lo: f32, hi: f32) {
    let (c, h, w) = img.shape();
    for y in 0..h {
        for x in 0..w {
            let u: f32 = rng.random();
            if u < p {
                let v = if u < p / 2.0 { lo } else { hi };
                for ch in 0..c {
                    img.set(ch, y, x, v);
                }
            }
        }
    }
}

/// Smooth value noise sampled on a coarse lattice and bilinearly
/// interpolated; `octaves` doublings of frequency are summed with halving
/// amplitude (fractal Brownian-ish texture). Output is in roughly `[-1, 1]`.
#[derive(Debug, Clone)]
pub struct ValueNoise {
    lattice: Vec<f32>,
    size: usize,
}

impl ValueNoise {
    /// Build a lattice of `size × size` random values in `[-1, 1]`.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, size: usize) -> Self {
        let size = size.max(2);
        let lattice = (0..size * size).map(|_| rng.random::<f32>() * 2.0 - 1.0).collect();
        Self { lattice, size }
    }

    /// Sample the (periodic) lattice at continuous coordinates.
    fn sample(&self, y: f32, x: f32) -> f32 {
        let n = self.size;
        let yi = y.floor();
        let xi = x.floor();
        let fy = y - yi;
        let fx = x - xi;
        // smoothstep for C1 continuity
        let sy = fy * fy * (3.0 - 2.0 * fy);
        let sx = fx * fx * (3.0 - 2.0 * fx);
        let wrap = |v: f32| ((v as isize).rem_euclid(n as isize)) as usize;
        let y0 = wrap(yi);
        let y1 = wrap(yi + 1.0);
        let x0 = wrap(xi);
        let x1 = wrap(xi + 1.0);
        let v00 = self.lattice[y0 * n + x0];
        let v01 = self.lattice[y0 * n + x1];
        let v10 = self.lattice[y1 * n + x0];
        let v11 = self.lattice[y1 * n + x1];
        let top = v00 + sx * (v01 - v00);
        let bot = v10 + sx * (v11 - v10);
        top + sy * (bot - top)
    }

    /// Multi-octave fractal sample at pixel coordinates, `frequency` lattice
    /// cells across `scale` pixels.
    pub fn fbm(&self, y: f32, x: f32, base_freq: f32, octaves: usize) -> f32 {
        let mut amp = 1.0f32;
        let mut freq = base_freq;
        let mut total = 0.0f32;
        let mut norm = 0.0f32;
        for _ in 0..octaves.max(1) {
            total += amp * self.sample(y * freq, x * freq);
            norm += amp;
            amp *= 0.5;
            freq *= 2.0;
        }
        total / norm
    }
}

/// Overlay fractal value-noise texture on the image:
/// `pixel += amplitude * fbm(y, x)`, identical across channels.
pub fn add_value_noise_texture<R: Rng + ?Sized>(
    img: &mut Image,
    rng: &mut R,
    base_freq: f32,
    octaves: usize,
    amplitude: f32,
) {
    let vn = ValueNoise::new(rng, 32);
    let (c, h, w) = img.shape();
    for y in 0..h {
        for x in 0..w {
            let t =
                amplitude * vn.fbm(y as f32 / h as f32, x as f32 / w as f32, base_freq, octaves);
            for ch in 0..c {
                let cur = img.get(ch, y, x);
                img.set(ch, y, x, cur + t);
            }
        }
    }
}

/// Directional scratch noise: `count` thin random bright/dark line segments,
/// biased around angle `theta` (radians) with `spread` jitter. Models the
/// machining marks on the Surface dataset's metallic parts.
pub fn add_scratches<R: Rng + ?Sized>(
    img: &mut Image,
    rng: &mut R,
    count: usize,
    theta: f32,
    spread: f32,
    intensity: f32,
) {
    let h = img.height() as f32;
    let w = img.width() as f32;
    let channels = img.channels();
    for _ in 0..count {
        let cy = rng.random::<f32>() * h;
        let cx = rng.random::<f32>() * w;
        let a = theta + (rng.random::<f32>() - 0.5) * 2.0 * spread;
        let len = (0.2 + 0.5 * rng.random::<f32>()) * w;
        let (dy, dx) = (a.sin(), a.cos());
        let sign = if rng.random::<f32>() < 0.5 { -1.0 } else { 1.0 };
        let color = vec![(0.5 + sign * intensity).clamp(0.0, 1.0); channels];
        crate::draw::draw_line(
            img,
            cy - dy * len / 2.0,
            cx - dx * len / 2.0,
            cy + dy * len / 2.0,
            cx + dx * len / 2.0,
            1.0,
            &color,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goggles_tensor::rng::std_rng;

    #[test]
    fn gaussian_noise_changes_values_with_zero_mean() {
        let mut img = Image::filled(1, 32, 32, 0.5);
        let mut rng = std_rng(1);
        add_gaussian_noise(&mut img, &mut rng, 0.1);
        let m = img.mean();
        assert!((m - 0.5).abs() < 0.01, "mean drifted: {m}");
        let var: f32 =
            img.tensor().channel(0).iter().map(|v| (v - m) * (v - m)).sum::<f32>() / 1024.0;
        assert!((var - 0.01).abs() < 0.004, "variance = {var}");
    }

    #[test]
    fn speckle_probability_scales_with_p() {
        let mut img = Image::filled(1, 64, 64, 0.5);
        let mut rng = std_rng(2);
        add_speckle(&mut img, &mut rng, 0.1, 0.0, 1.0);
        let changed = img.tensor().channel(0).iter().filter(|&&v| v != 0.5).count();
        let frac = changed as f32 / 4096.0;
        assert!((frac - 0.1).abs() < 0.03, "speckle fraction = {frac}");
    }

    #[test]
    fn value_noise_is_smooth_and_bounded() {
        let mut rng = std_rng(3);
        let vn = ValueNoise::new(&mut rng, 16);
        let mut max_step = 0.0f32;
        let mut prev = vn.fbm(0.0, 0.0, 4.0, 3);
        for i in 1..200 {
            let v = vn.fbm(0.0, i as f32 / 200.0, 4.0, 3);
            assert!((-1.5..=1.5).contains(&v), "out of range: {v}");
            max_step = max_step.max((v - prev).abs());
            prev = v;
        }
        assert!(max_step < 0.3, "noise not smooth: step {max_step}");
    }

    #[test]
    fn value_noise_deterministic_per_seed() {
        let a = {
            let mut rng = std_rng(7);
            ValueNoise::new(&mut rng, 8).fbm(0.3, 0.7, 2.0, 2)
        };
        let b = {
            let mut rng = std_rng(7);
            ValueNoise::new(&mut rng, 8).fbm(0.3, 0.7, 2.0, 2)
        };
        assert_eq!(a, b);
    }

    #[test]
    fn texture_overlay_perturbs_image() {
        let mut img = Image::filled(1, 16, 16, 0.5);
        let mut rng = std_rng(4);
        add_value_noise_texture(&mut img, &mut rng, 4.0, 3, 0.2);
        let distinct = img.tensor().channel(0).iter().filter(|&&v| (v - 0.5).abs() > 1e-4).count();
        assert!(distinct > 128, "texture had little effect: {distinct}");
    }

    #[test]
    fn scratches_paint_lines() {
        let mut img = Image::filled(1, 32, 32, 0.5);
        let mut rng = std_rng(5);
        add_scratches(&mut img, &mut rng, 8, 0.0, 0.2, 0.4);
        let extremes = img.tensor().channel(0).iter().filter(|&&v| (v - 0.5).abs() > 0.2).count();
        assert!(extremes > 20, "no scratch pixels: {extremes}");
    }
}

//! Fixture: SeqCst outside a hot path (flagged workspace-wide).

use std::sync::atomic::{AtomicBool, Ordering};

pub(crate) fn shutdown(flag: &AtomicBool) {
    flag.store(true, Ordering::SeqCst);
}

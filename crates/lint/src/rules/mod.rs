//! The rule set. Each rule is a function over the loaded [`Workspace`]
//! appending [`Diagnostic`]s; scoping (which files a rule applies to) lives
//! here so the whole policy is readable in one place.
//!
//! | rule        | scope                        | protects                      |
//! |-------------|------------------------------|-------------------------------|
//! | `panic`     | hot-path modules             | panic-freedom of serving      |
//! | `index`     | hot-path modules             | panic-freedom (slice indexing)|
//! | `hash-iter` | fit/kernel crates            | bit-deterministic fits        |
//! | `nan-cmp`   | whole workspace              | NaN-safe comparators          |
//! | `atomics`   | whole workspace              | audited memory orderings      |
//! | `unsafe`    | whole workspace              | the unsafe-free invariant     |
//! | `wire`      | serve wire/server/client     | opcode codec exhaustiveness   |
//! | `deps`      | every `Cargo.toml`           | the offline no-registry rule  |

mod atomics;
mod deps;
mod determinism;
mod panic_free;
mod unsafety;
mod wire;

use crate::engine::{Diagnostic, SourceFile, Workspace};

/// Every rule name `allow(<rule>)` accepts.
pub const RULE_NAMES: &[&str] =
    &["panic", "index", "hash-iter", "nan-cmp", "atomics", "unsafe", "wire", "deps"];

/// The serving/observability hot paths: modules on the per-request path
/// where a panic poisons co-batched requests (see the PR 3 salvage logic)
/// and where PR 6 claims "relaxed atomics only". Paths are
/// workspace-relative.
pub const HOT_PATHS: &[&str] = &[
    "crates/serve/src/service.rs",
    "crates/serve/src/server.rs",
    "crates/serve/src/client.rs",
    "crates/serve/src/wire.rs",
    "crates/serve/src/codec.rs",
    "crates/tensor/src/linalg.rs",
    "crates/obs/src/metrics.rs",
    "crates/obs/src/span.rs",
];

/// Crates whose outputs must be bit-deterministic given a seed (fits,
/// kernels, dataset synthesis): HashMap/HashSet *iteration* here can feed
/// numeric accumulation in arbitrary order.
pub const DETERMINISM_PREFIXES: &[&str] = &[
    "crates/core/src/",
    "crates/models/src/",
    "crates/tensor/src/",
    "crates/cnn/src/",
    "crates/endmodel/src/",
    "crates/labelmodels/src/",
    "crates/datasets/src/",
];

pub fn is_hot_path(file: &SourceFile) -> bool {
    HOT_PATHS.contains(&file.rel.as_str())
}

pub fn is_determinism_scoped(file: &SourceFile) -> bool {
    DETERMINISM_PREFIXES.iter().any(|p| file.rel.starts_with(p))
}

/// Run every rule over the workspace.
pub fn run_all(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for file in &ws.files {
        if is_hot_path(file) {
            panic_free::check_panics(file, out);
            panic_free::check_indexing(file, out);
        }
        if is_determinism_scoped(file) {
            determinism::check_hash_iteration(file, out);
        }
        determinism::check_nan_comparators(file, out);
        atomics::check_orderings(file, is_hot_path(file), out);
        unsafety::check_unsafe(file, out);
    }
    wire::check_opcode_exhaustiveness(ws, out);
    deps::check_manifests(ws, out);
}

//! Fixture: total_cmp comparator — no NaN panic possible.

pub fn sort_scores(xs: &mut [f32]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}

/// `dead-pub`: nothing references this yet; the annotation records why the
/// surface stays public anyway.
// goggles-lint: allow(dead-pub): fixture — staged API; the consumer lands with the next PR
pub fn normalize(xs: &mut [f32]) {
    for x in xs.iter_mut() {
        *x = x.clamp(0.0, 1.0);
    }
}

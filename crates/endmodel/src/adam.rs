//! Adam optimizer (Kingma & Ba, 2015) over a flat parameter vector.
//!
//! §5.1.3: "The FSL models as well as all end models are trained with the
//! Adam optimizer with a learning rate of 10⁻³".

/// Adam state for one parameter vector.
#[derive(Debug, Clone)]
// goggles-lint: allow(dead-pub): the optimizer behind the exported TrainConfig path; constructed intra-crate, kept as documented API
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Standard hyperparameters (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    pub fn new(n_params: usize, lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: vec![0.0; n_params],
            v: vec![0.0; n_params],
            t: 0,
        }
    }

    /// Apply one update: `params -= lr * m̂ / (√v̂ + ε)`.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), self.m.len(), "param arity changed");
        assert_eq!(grads.len(), self.m.len(), "grad arity mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, &g), (m, v)) in
            params.iter_mut().zip(grads).zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            *m = self.beta1 * *m + (1.0 - self.beta1) * g;
            *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
            let m_hat = *m / b1t;
            let v_hat = *v / b2t;
            *p -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x - 3)² — gradient 2(x-3).
    #[test]
    fn converges_on_quadratic() {
        let mut params = vec![0.0f64];
        let mut opt = Adam::new(1, 0.1);
        for _ in 0..500 {
            let g = 2.0 * (params[0] - 3.0);
            opt.step(&mut params, &[g]);
        }
        assert!((params[0] - 3.0).abs() < 1e-3, "x = {}", params[0]);
        assert_eq!(opt.steps(), 500);
    }

    /// Rosenbrock-ish coupled quadratic in 2D.
    #[test]
    fn converges_on_coupled_quadratic() {
        let mut p = vec![5.0f64, -4.0];
        let mut opt = Adam::new(2, 0.05);
        for _ in 0..3000 {
            // f = (p0-1)^2 + 10(p1-p0)^2
            let g0 = 2.0 * (p[0] - 1.0) - 20.0 * (p[1] - p[0]);
            let g1 = 20.0 * (p[1] - p[0]);
            opt.step(&mut p, &[g0, g1]);
        }
        assert!((p[0] - 1.0).abs() < 1e-2 && (p[1] - 1.0).abs() < 1e-2, "{p:?}");
    }

    #[test]
    fn first_step_magnitude_is_lr() {
        // Adam's bias correction makes the first step ≈ lr · sign(g).
        let mut p = vec![0.0f64];
        let mut opt = Adam::new(1, 0.001);
        opt.step(&mut p, &[42.0]);
        assert!((p[0] + 0.001).abs() < 1e-6, "step = {}", p[0]);
    }

    #[test]
    #[should_panic]
    fn grad_arity_mismatch_panics() {
        let mut p = vec![0.0f64; 2];
        let mut opt = Adam::new(2, 0.1);
        opt.step(&mut p, &[1.0]);
    }
}

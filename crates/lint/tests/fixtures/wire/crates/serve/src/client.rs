//! Fixture peer: the client can speak both opcodes.

use crate::wire::Opcode;

pub fn encode() -> (u8, u8) {
    (Opcode::Label as u8, Opcode::Stats as u8)
}

//! Statistics helpers used by the EM models and by the figure harnesses:
//! log-sum-exp, softmax, argmax, histograms and ROC-AUC.

use crate::scalar::Scalar;

/// Numerically stable `log(Σ exp(x_i))`.
///
/// Returns `-inf` for an empty slice (the sum of zero terms).
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !m.is_finite() {
        // All entries are -inf (or the slice is empty): the sum is 0.
        return f64::NEG_INFINITY;
    }
    let s: f64 = xs.iter().map(|&x| (x - m).exp()).sum();
    m + s.ln()
}

/// In-place softmax over a slice of **log**-weights; after the call the slice
/// holds a probability vector. No-op on an empty slice.
// goggles-lint: allow(dead-pub): documented stats API; exercised only by unit tests
pub fn softmax_in_place(xs: &mut [f64]) {
    if xs.is_empty() {
        return;
    }
    let lse = log_sum_exp(xs);
    if !lse.is_finite() {
        // Degenerate all -inf input: fall back to uniform.
        let u = 1.0 / xs.len() as f64;
        xs.fill(u);
        return;
    }
    for x in xs.iter_mut() {
        *x = (*x - lse).exp();
    }
}

/// Index of the maximum element (first occurrence on ties).
///
/// # Panics
/// Panics on an empty slice.
pub fn argmax<T: Scalar>(xs: &[T]) -> usize {
    assert!(!xs.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate().skip(1) {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean<T: Scalar>(xs: &[T]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().map(|v| v.to_f64()).sum::<f64>() / xs.len() as f64
}

/// Population variance; 0 for slices with fewer than 2 elements.
// goggles-lint: allow(dead-pub): documented stats API; exercised only by unit tests
pub fn variance<T: Scalar>(xs: &[T]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|v| (v.to_f64() - m).powi(2)).sum::<f64>() / xs.len() as f64
}

/// Fixed-width histogram over `[lo, hi]` with `bins` buckets.
///
/// Values outside the range are clamped into the edge buckets, which is the
/// behaviour the Figure 2 affinity-distribution plots need (cosine scores can
/// brush against ±1 exactly).
pub fn histogram<T: Scalar>(xs: &[T], lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    assert!(bins > 0 && hi > lo, "histogram needs bins > 0 and hi > lo");
    let mut counts = vec![0usize; bins];
    let w = (hi - lo) / bins as f64;
    for v in xs {
        let mut b = ((v.to_f64() - lo) / w).floor() as isize;
        b = b.clamp(0, bins as isize - 1);
        counts[b as usize] += 1;
    }
    counts
}

/// Area under the ROC curve of `pos` (scores of positive pairs) against
/// `neg`: the probability that a random positive scores above a random
/// negative, with ties counting one half. Used to rank affinity functions by
/// separation quality (Example 2 / Figure 2 of the paper).
///
/// Returns 0.5 when either side is empty.
pub fn auc<T: Scalar>(pos: &[T], neg: &[T]) -> f64 {
    if pos.is_empty() || neg.is_empty() {
        return 0.5;
    }
    // Rank-based computation (Mann–Whitney U) in O((p+n) log (p+n)).
    let mut all: Vec<(f64, bool)> = pos
        .iter()
        .map(|v| (v.to_f64(), true))
        .chain(neg.iter().map(|v| (v.to_f64(), false)))
        .collect();
    all.sort_by(|a, b| a.0.total_cmp(&b.0));
    // Assign average ranks to tie groups.
    let n = all.len();
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && all[j + 1].0 == all[i].0 {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0; // 1-based
        for item in &all[i..=j] {
            if item.1 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    let p = pos.len() as f64;
    let q = neg.len() as f64;
    (rank_sum_pos - p * (p + 1.0) / 2.0) / (p * q)
}

/// Pearson correlation of two equally-long slices; 0 when degenerate.
// goggles-lint: allow(dead-pub): documented stats API; exercised only by unit tests
pub fn pearson<T: Scalar>(xs: &[T], ys: &[T]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x.to_f64() - mx;
        let dy = y.to_f64() - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Cosine similarity of two equally-long vectors (Equation 3 of the paper).
/// Returns 0 when either vector is all-zero.
#[inline]
pub fn cosine_similarity<T: Scalar>(a: &[T], b: &[T]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut dot = T::ZERO;
    let mut na = T::ZERO;
    let mut nb = T::ZERO;
    for (&x, &y) in a.iter().zip(b.iter()) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    let denom = na.to_f64().sqrt() * nb.to_f64().sqrt();
    if denom == 0.0 {
        0.0
    } else {
        dot.to_f64() / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_sum_exp_matches_naive_on_small_values() {
        let xs = [0.1, -0.5, 1.2];
        let naive: f64 = xs.iter().map(|x| x.exp()).sum::<f64>().ln();
        assert!((log_sum_exp(&xs) - naive).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_is_stable_for_large_magnitudes() {
        let xs = [-1000.0, -1000.0];
        let got = log_sum_exp(&xs);
        assert!((got - (-1000.0 + 2f64.ln())).abs() < 1e-9);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn softmax_normalizes_and_orders() {
        let mut xs = [1.0, 2.0, 3.0];
        softmax_in_place(&mut xs);
        assert!((xs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(xs[2] > xs[1] && xs[1] > xs[0]);
    }

    #[test]
    fn softmax_handles_all_neg_inf() {
        let mut xs = [f64::NEG_INFINITY, f64::NEG_INFINITY];
        softmax_in_place(&mut xs);
        assert_eq!(xs, [0.5, 0.5]);
    }

    #[test]
    fn argmax_first_tie_wins() {
        assert_eq!(argmax(&[1.0f64, 3.0, 3.0, 2.0]), 1);
    }

    #[test]
    fn mean_variance_basics() {
        let xs = [2.0f64, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert_eq!(variance(&[1.0f64]), 0.0);
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let h = histogram(&[-5.0f64, 0.05, 0.95, 5.0], 0.0, 1.0, 2);
        assert_eq!(h, vec![2, 2]);
    }

    #[test]
    fn auc_perfect_and_random() {
        assert!((auc(&[2.0f64, 3.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((auc(&[0.0f64, 1.0], &[0.0, 1.0]) - 0.5).abs() < 1e-12);
        assert_eq!(auc::<f64>(&[], &[1.0]), 0.5);
    }

    #[test]
    fn auc_handles_ties_as_half() {
        // single positive ties the single negative -> 0.5
        assert!((auc(&[1.0f64], &[1.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_linear_is_one() {
        let xs = [1.0f64, 2.0, 3.0];
        let ys = [2.0f64, 4.0, 6.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let yneg = [-2.0f64, -4.0, -6.0];
        assert!((pearson(&xs, &yneg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_similarity_basics() {
        assert!((cosine_similarity(&[1.0f64, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((cosine_similarity(&[1.0f64, 0.0], &[0.0, 1.0])).abs() < 1e-12);
        assert!((cosine_similarity(&[1.0f64, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-12);
        assert_eq!(cosine_similarity(&[0.0f64, 0.0], &[1.0, 1.0]), 0.0);
    }
}

//! The service front: a bounded-queue micro-batching scheduler over a
//! [`SnapshotRegistry`] of [`FittedLabeler`] versions.
//!
//! Requests from any number of client threads land in one bounded queue.
//! Worker threads pop a request, then linger up to
//! [`ServeConfig::batch_timeout`] for more to arrive (capped at
//! [`ServeConfig::max_batch`]) so concurrent traffic is labeled in one
//! embedding/fold-in pass — the classic latency/throughput trade of
//! inference serving. Throughput and latency counters (including a
//! fixed-bucket [`LatencyHistogram`] for p50/p99) are kept on the side and
//! can be snapshotted at any time with [`LabelService::stats`].
//!
//! Submission is **ticket-based** ([`LabelService::submit`] →
//! [`Ticket`]): the caller gets a handle it can `poll`, `wait`, or
//! `wait_timeout`; dropping the ticket cancels a still-queued request, and
//! a per-request deadline ([`LabelService::submit_with_deadline`]) is
//! enforced by the batcher — expired requests are answered with
//! [`ServeError::Deadline`] instead of occupying a batch slot. The
//! blocking [`LabelService::label`]/[`LabelService::label_all`] calls are
//! thin wrappers over tickets, and the service implements the
//! transport-agnostic [`Labeler`] trait.
//!
//! Workers resolve the current labeler **per batch** through the registry:
//! no lock is held across labeling, an in-flight batch finishes on the
//! version it started with, and a [`LabelService::reload_from`] /
//! [`SnapshotRegistry::publish`] swap is picked up by the very next batch —
//! hot-reload without dropping or blocking a single request.

use crate::api::{Labeler, Ticket};
use crate::registry::{PublishedSnapshot, SnapshotRegistry};
use crate::snapshot::FittedLabeler;
use crate::{ServeError, ServeResult};
use goggles_core::{EmbedScratch, ProbabilisticLabels};
use goggles_vision::Image;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Retired versions [`LabelService::reload_from`] keeps around after a
/// successful publish (beyond the current one): one, so a bad reload can
/// still be [`SnapshotRegistry::rollback`]ed. Older unleased retired
/// versions are pruned ([`SnapshotRegistry::prune_retired`]) so a
/// long-running service that reloads periodically holds O(1) snapshots
/// instead of growing without bound.
const RELOAD_KEEP_RETIRED: usize = 1;

/// Tuning knobs of the micro-batching scheduler.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads pulling batches off the queue.
    pub workers: usize,
    /// Largest batch a worker will assemble.
    pub max_batch: usize,
    /// How long a worker waits for a batch to fill before running it
    /// anyway. `Duration::ZERO` disables lingering (pure latency mode).
    pub batch_timeout: Duration,
    /// Bound on queued (not yet running) requests; producers block when the
    /// queue is full (backpressure, not unbounded memory).
    pub queue_capacity: usize,
    /// Thread fan-out *inside* one batch's embedding/affinity computation —
    /// the per-request parallelism budget. For batches smaller than this
    /// (the online case: one worker holding one image), the affinity row is
    /// sharded across the budget along the prototype-bank `n·z` axis, so a
    /// single request still saturates its share of the machine. Results are
    /// bit-identical for every value. The default is the cores left per
    /// worker (`⌈available_parallelism / workers⌉`, at least 1) **for the
    /// default two-worker pool** — when overriding `workers`, use
    /// [`ServeConfig::with_workers`] (or set this field too) so the budget
    /// is recomputed instead of inherited from the 2-worker default.
    pub embed_threads: usize,
    /// Capacity of the per-service ring buffer of recent stage trace
    /// events ([`LabelService::recent_traces`]). `0` disables trace
    /// recording entirely; stage histograms are always kept either way.
    /// Tracing only reads clocks — labels are bit-identical at any value.
    pub trace_capacity: usize,
    /// Queue-depth watermark at which new submissions are **shed** with
    /// [`ServeError::Overloaded`] instead of blocking the producer. `0`
    /// (the default) keeps the legacy behavior: producers block at
    /// `queue_capacity`. A non-zero watermark should be ≤ `queue_capacity`;
    /// with one set, the queue never reaches capacity and producers never
    /// block — overload becomes a typed, retryable error the caller (or a
    /// remote client's [`crate::RetryPolicy`]) handles, instead of
    /// unbounded latency.
    pub shed_watermark: usize,
    /// Fault plan installed (process-wide) at [`LabelService::spawn`] time.
    /// `None` (the default) leaves the failpoint framework untouched —
    /// every site stays a no-op. See [`crate::fault`].
    pub fault_plan: Option<crate::fault::FaultPlan>,
}

impl ServeConfig {
    /// A config for a `workers`-sized pool with the per-request embed
    /// budget recomputed to match (`⌈cores / workers⌉`). Prefer this over
    /// struct-update syntax when changing `workers`: `ServeConfig { workers:
    /// 8, ..Default::default() }` would keep the budget computed for 2
    /// workers and oversubscribe the machine.
    pub fn with_workers(workers: usize) -> Self {
        Self { workers, embed_threads: default_embed_threads(workers), ..Self::default() }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = 2;
        Self {
            workers,
            max_batch: 8,
            batch_timeout: Duration::from_millis(2),
            queue_capacity: 1024,
            embed_threads: default_embed_threads(workers),
            trace_capacity: 256,
            shed_watermark: 0,
            fault_plan: None,
        }
    }
}

/// Cores left for one in-flight batch after the worker fan-out: with `w`
/// workers on `p` cores each batch gets `⌈p / w⌉` threads (at least 1).
fn default_embed_threads(workers: usize) -> usize {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
    cores.div_ceil(workers.max(1)).max(1)
}

/// One labeled answer.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelResponse {
    /// Argmax class.
    pub label: usize,
    /// Full class-probability row (mapping applied).
    pub probs: Vec<f64>,
    /// Size of the micro-batch this request was served in.
    pub batch_size: usize,
    /// Registry version of the snapshot that answered (see
    /// [`SnapshotRegistry::versions`]).
    pub version: u64,
}

/// Number of power-of-two latency buckets in [`LatencyHistogram`]. Bucket
/// `i` counts requests whose latency fell in `[2^i, 2^(i+1))` microseconds
/// (bucket 0 also absorbs 0), so 32 buckets cover 1 µs to ~71 minutes.
pub(crate) const LATENCY_BUCKETS: usize = 32;

/// Fixed-bucket (power-of-two) latency histogram, microsecond domain.
///
/// Mean and max alone hide tail latency — the metric that matters for a
/// network front — so the service counts every request into one of
/// `LATENCY_BUCKETS` log-scale buckets and derives percentiles from the
/// counts. Percentiles are conservative: a bucket's *upper* bound is
/// reported, so the true pXX is never understated by more than the 2×
/// bucket resolution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Request count per bucket.
    pub counts: [u64; LATENCY_BUCKETS],
}

impl LatencyHistogram {
    /// Bucket index for a latency in microseconds: `floor(log2(us))`,
    /// clamped to the top bucket (0 µs lands in bucket 0).
    pub fn bucket_index(us: u64) -> usize {
        (63 - us.max(1).leading_zeros() as usize).min(LATENCY_BUCKETS - 1)
    }

    /// Upper bound (exclusive) of bucket `i` in microseconds; the top
    /// bucket is unbounded.
    pub(crate) fn bucket_upper_us(i: usize) -> u64 {
        if i >= LATENCY_BUCKETS - 1 {
            u64::MAX
        } else {
            1u64 << (i + 1)
        }
    }

    /// Count one observation (test/bench-side helper; the service records
    /// through its atomic counters).
    pub fn record(&mut self, us: u64) {
        if let Some(count) = self.counts.get_mut(Self::bucket_index(us)) {
            *count += 1;
        }
    }

    /// Add `other`'s counts into `self`, bucket by bucket — how
    /// [`LabelService::stats`] folds the per-worker histogram shards into
    /// one service-wide distribution.
    pub(crate) fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The latency (µs, bucket upper bound) below which fraction `q` of
    /// requests completed; 0 when empty. `q` is clamped to `(0, 1]`.
    pub fn percentile_us(&self, q: f64) -> u64 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Self::bucket_upper_us(i);
            }
        }
        Self::bucket_upper_us(LATENCY_BUCKETS - 1)
    }
}

/// Monotonic counters captured by [`LabelService::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
// goggles-lint: allow(dead-pub): return type of pub LabelService::stats; external callers reach it through inference
pub struct ServiceStats {
    /// Requests answered.
    pub requests: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Total images labeled (== requests; kept separate for clarity).
    pub images: u64,
    /// Sum of per-request queue+service latency, microseconds.
    pub total_latency_us: u64,
    /// Worst single-request latency, microseconds.
    pub max_latency_us: u64,
    /// Batches on which the labeler panicked. The batch's requests are then
    /// retried individually (salvage), so a failed batch no longer implies
    /// failed requests — see [`ServiceStats::failed_requests`].
    pub failed_batches: u64,
    /// Requests dropped because the labeler panicked on them *individually*
    /// (the true poison of a failed batch, or a poisoned singleton). Their
    /// clients received [`crate::ServeError::Closed`]. Disjoint from
    /// `requests`: a request is counted in exactly one of the two.
    pub failed_requests: u64,
    /// Requests answered with [`crate::ServeError::Deadline`] because their
    /// deadline expired before (or at) submission, or while queued. Never
    /// labeled, never counted in `requests`.
    pub deadline_expired: u64,
    /// Requests skipped because their [`Ticket`] was dropped while they
    /// were still queued (drop-to-cancel). Never labeled, never counted in
    /// `requests`.
    pub cancelled: u64,
    /// Requests shed with [`crate::ServeError::Overloaded`] because the
    /// queue was at [`ServeConfig::shed_watermark`] (or the connection hit
    /// its inflight cap, for wire traffic). Never queued, never labeled.
    pub shed: u64,
    /// Service workers respawned by the watchdog after a panic escaped a
    /// batch (see `goggles_worker_restarts_total`). The panicked batch's
    /// clients are answered [`crate::ServeError::Closed`]; the respawned
    /// worker continues with fresh scratch.
    pub worker_restarts: u64,
    /// Requests sitting in the queue at snapshot time (a live gauge, not a
    /// monotonic counter: the one non-cumulative field here).
    pub queue_depth: u64,
    /// Per-request latency distribution of answered requests.
    pub latency: LatencyHistogram,
    /// Distribution of executed micro-batch sizes (same power-of-two
    /// buckets as `latency`; sizes are small, so the low buckets carry it).
    pub batch_size: LatencyHistogram,
}

impl ServiceStats {
    /// Mean images per executed batch.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.images as f64 / self.batches as f64
        }
    }

    /// Mean request latency in microseconds.
    pub fn mean_latency_us(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_latency_us as f64 / self.requests as f64
        }
    }

    /// Median request latency in microseconds (bucket upper bound).
    pub fn p50_latency_us(&self) -> u64 {
        self.latency.percentile_us(0.50)
    }

    /// 99th-percentile request latency in microseconds (bucket upper bound).
    pub fn p99_latency_us(&self) -> u64 {
        self.latency.percentile_us(0.99)
    }
}

/// Per-stage latency distributions of the serving path, captured from the
/// observability registry by [`LabelService::stage_stats`]. Embed,
/// affinity and endmodel are **whole-batch** durations (one observation per
/// batch); queue wait is per-request; batch assembly is per-drain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
// goggles-lint: allow(dead-pub): field type of the pub ServiceStats; reached through inference
pub struct StageStats {
    /// Time requests sat queued before being drained into a batch.
    pub queue_wait: LatencyHistogram,
    /// Linger + drain time spent assembling each batch.
    pub batch_assembly: LatencyHistogram,
    /// Backbone forward (im2col/GEMM trunk), per batch.
    pub embed: LatencyHistogram,
    /// Affinity rows against the prototype bank (colmax), per batch.
    pub affinity: LatencyHistogram,
    /// Base-GMM posteriors + ensemble fold-in + mapping, per batch.
    pub endmodel: LatencyHistogram,
}

/// Copy an obs histogram snapshot into the serving crate's histogram type —
/// both use the same 32 power-of-two buckets, so this is bucket-for-bucket.
fn latency_from_obs(snap: &goggles_obs::HistogramSnapshot) -> LatencyHistogram {
    LatencyHistogram { counts: snap.counts }
}

struct Request {
    /// Shared, not cloned: `submit` takes `Arc<Image>`, so queueing an
    /// image never copies pixel data (the wire server decodes straight
    /// into the `Arc`).
    image: Arc<Image>,
    enqueued: Instant,
    /// Absolute deadline; an expired request is answered with
    /// [`ServeError::Deadline`] instead of occupying a batch slot.
    deadline: Option<Instant>,
    /// Set when the request's [`Ticket`] is dropped (drop-to-cancel).
    cancel: Arc<AtomicBool>,
    respond: mpsc::Sender<ServeResult<LabelResponse>>,
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    batches: AtomicU64,
    images: AtomicU64,
    total_latency_us: AtomicU64,
    max_latency_us: AtomicU64,
    failed_batches: AtomicU64,
    failed_requests: AtomicU64,
    deadline_expired: AtomicU64,
    cancelled: AtomicU64,
    shed: AtomicU64,
    worker_restarts: AtomicU64,
    queue_depth: AtomicU64,
}

/// Histogram buckets owned by one worker thread. Each worker bumps only its
/// own shard (no cross-worker cache-line ping-pong on the latency path);
/// [`LabelService::stats`] merges the shards with
/// [`LatencyHistogram::merge`].
#[derive(Default)]
struct WorkerShard {
    latency_buckets: [AtomicU64; LATENCY_BUCKETS],
    batch_size_buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl WorkerShard {
    fn latency(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::default();
        for (count, b) in h.counts.iter_mut().zip(self.latency_buckets.iter()) {
            *count = b.load(Ordering::Relaxed);
        }
        h
    }

    fn batch_size(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::default();
        for (count, b) in h.counts.iter_mut().zip(self.batch_size_buckets.iter()) {
            *count = b.load(Ordering::Relaxed);
        }
        h
    }
}

/// Cached handles into this service's observability registry, resolved once
/// at spawn so every hot-path recording is a relaxed atomic add — no lock,
/// no lookup, no allocation.
pub(crate) struct ServeMetrics {
    registry: Arc<goggles_obs::Registry>,
    stage_queue_wait: goggles_obs::Histogram,
    stage_batch_assembly: goggles_obs::Histogram,
    stage_embed: goggles_obs::Histogram,
    stage_affinity: goggles_obs::Histogram,
    stage_endmodel: goggles_obs::Histogram,
    pub(crate) stage_wire_decode: goggles_obs::Histogram,
    pub(crate) stage_wire_encode: goggles_obs::Histogram,
    requests_ok: goggles_obs::Counter,
    requests_failed: goggles_obs::Counter,
    requests_deadline: goggles_obs::Counter,
    requests_cancelled: goggles_obs::Counter,
    requests_shed: goggles_obs::Counter,
    worker_restarts: goggles_obs::Counter,
    batches_total: goggles_obs::Counter,
    batches_failed: goggles_obs::Counter,
    queue_depth: goggles_obs::Gauge,
    batch_size: goggles_obs::Histogram,
    trace: goggles_obs::TraceRing,
}

impl ServeMetrics {
    fn new(snapshots: &Arc<SnapshotRegistry>, trace_capacity: usize) -> Self {
        let registry = Arc::new(goggles_obs::Registry::new());
        let stage_help = "Wall time of serving-path stages in microseconds \
                          (batch-level for embed/affinity/endmodel, per-request for queue_wait)";
        let stage = |name: &str| {
            registry.histogram("goggles_stage_latency_us", stage_help, &[("stage", name)])
        };
        let requests_help = "Requests by terminal outcome";
        let result = |name: &str| {
            registry.counter("goggles_requests_total", requests_help, &[("result", name)])
        };
        let metrics = ServeMetrics {
            stage_queue_wait: stage("queue_wait"),
            stage_batch_assembly: stage("batch_assembly"),
            stage_embed: stage("embed"),
            stage_affinity: stage("affinity"),
            stage_endmodel: stage("endmodel"),
            stage_wire_decode: stage("wire_decode"),
            stage_wire_encode: stage("wire_encode"),
            requests_ok: result("ok"),
            requests_failed: result("failed"),
            requests_deadline: result("deadline"),
            requests_cancelled: result("cancelled"),
            requests_shed: result("shed"),
            worker_restarts: registry.counter(
                "goggles_worker_restarts_total",
                "Service workers respawned by the watchdog after a panic",
                &[],
            ),
            batches_total: registry.counter("goggles_batches_total", "Micro-batches executed", &[]),
            batches_failed: registry.counter(
                "goggles_batches_failed_total",
                "Micro-batches on which the labeler panicked (then salvaged)",
                &[],
            ),
            queue_depth: registry.gauge(
                "goggles_queue_depth",
                "Requests currently queued (not yet drained into a batch)",
                &[],
            ),
            batch_size: registry.histogram("goggles_batch_size", "Executed micro-batch sizes", &[]),
            trace: goggles_obs::TraceRing::new(trace_capacity),
            registry: Arc::clone(&registry),
        };
        // Per-version snapshot gauges are sampled from the live registry at
        // scrape time rather than double-booked on the serving path.
        let snaps = Arc::clone(snapshots);
        registry.register_collector(move |out| {
            out.push_str(
                "# HELP goggles_snapshot_version Registry version new batches resolve\n\
                 # TYPE goggles_snapshot_version gauge\n",
            );
            use std::fmt::Write as _;
            let versions = snaps.versions();
            let current = versions.iter().find(|v| v.current).map_or(0, |v| v.version);
            let _ = writeln!(out, "goggles_snapshot_version {current}");
            out.push_str(
                "# HELP goggles_snapshot_served_total Images served per snapshot version\n\
                 # TYPE goggles_snapshot_served_total counter\n",
            );
            for v in &versions {
                let _ = writeln!(
                    out,
                    "goggles_snapshot_served_total{{version=\"{}\"}} {}",
                    v.version, v.served
                );
            }
            out.push_str(
                "# HELP goggles_snapshot_leases Outstanding leases per snapshot version \
                 (in-flight batches pinning it)\n\
                 # TYPE goggles_snapshot_leases gauge\n",
            );
            for v in &versions {
                let _ = writeln!(
                    out,
                    "goggles_snapshot_leases{{version=\"{}\"}} {}",
                    v.version, v.leases
                );
            }
        });
        // GEMM kernel counters are process-global (the tensor crate has no
        // registry dependency); surface them here as a sampled collector.
        registry.register_collector(|out| {
            out.push_str(
                "# HELP goggles_gemm_calls_total GEMM kernel invocations (process-wide)\n\
                 # TYPE goggles_gemm_calls_total counter\n",
            );
            out.push_str(&format!(
                "goggles_gemm_calls_total {}\n",
                goggles_tensor::gemm_call_count()
            ));
            out.push_str(
                "# HELP goggles_gemm_flops_total Flops through the GEMM kernel (process-wide)\n\
                 # TYPE goggles_gemm_flops_total counter\n",
            );
            out.push_str(&format!(
                "goggles_gemm_flops_total {}\n",
                goggles_tensor::gemm_flop_count()
            ));
        });
        registry
            .gauge(
                "goggles_backbone_flops_per_image",
                "Estimated backbone flops per labeled image (current snapshot)",
                &[],
            )
            .set(snapshots.get().labeler().backbone_flops_per_image() as i64);
        metrics
    }
}

struct QueueState {
    queue: VecDeque<Request>,
    shutting_down: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Signaled when the queue gains an item or shutdown begins.
    not_empty: Condvar,
    /// Signaled when the queue loses an item.
    not_full: Condvar,
    /// Versioned labelers; workers resolve the current one per batch.
    registry: Arc<SnapshotRegistry>,
    config: ServeConfig,
    counters: Counters,
    /// Per-worker histogram shards, indexed by worker id.
    shards: Vec<WorkerShard>,
    /// Cached observability handles (shared with the wire server's
    /// encode/decode spans).
    metrics: Arc<ServeMetrics>,
}

/// A running labeling service: spawn with [`LabelService::spawn`], submit
/// with [`LabelService::label`] from any thread, stop with
/// [`LabelService::shutdown`] (or drop).
pub struct LabelService {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl LabelService {
    /// Start the worker pool over a fitted labeler (published as version 1
    /// of a fresh [`SnapshotRegistry`]).
    ///
    /// # Panics
    /// Panics if `labeler` fails [`FittedLabeler::validate`] — labelers
    /// from [`FittedLabeler::fit`]/[`FittedLabeler::load`] always pass; use
    /// `LabelService::spawn_with_registry` to handle validation errors.
    pub fn spawn(labeler: FittedLabeler, config: ServeConfig) -> Self {
        // goggles-lint: allow(panic): documented panic (see `# Panics`); spawn_with_registry is the fallible path
        let registry = SnapshotRegistry::new(labeler).expect("initial labeler failed validation");
        Self::spawn_with_registry(Arc::new(registry), config)
    }

    /// Start the worker pool over an existing registry (e.g. one shared
    /// with a control plane that publishes retrained snapshots, such as
    /// the continuous-learning trainer).
    pub fn spawn_with_registry(registry: Arc<SnapshotRegistry>, config: ServeConfig) -> Self {
        assert!(config.workers >= 1, "need at least one worker");
        assert!(config.max_batch >= 1, "max_batch must be ≥ 1");
        assert!(config.queue_capacity >= 1, "queue_capacity must be ≥ 1");
        if let Some(plan) = &config.fault_plan {
            crate::fault::install(plan);
        }
        let metrics = Arc::new(ServeMetrics::new(&registry, config.trace_capacity));
        let shards = (0..config.workers).map(|_| WorkerShard::default()).collect();
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState { queue: VecDeque::new(), shutting_down: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            registry,
            config: config.clone(),
            counters: Counters::default(),
            shards,
            metrics,
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("goggles-serve-{i}"))
                    .spawn(move || worker_main(&shared, i))
                    // goggles-lint: allow(panic): spawn only fails on OS thread exhaustion at startup; this constructor is infallible by API
                    .expect("spawn worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Enqueue one image (no deadline) and return its [`Ticket`]. The
    /// image travels as `Arc<Image>` — pass an `Arc` (or an owned `Image`,
    /// converted without copying pixels) and the hot path is copy-free.
    /// Applies backpressure: blocks while the queue is at capacity, or —
    /// with [`ServeConfig::shed_watermark`] set — sheds immediately with
    /// [`ServeError::Overloaded`] once the queue reaches the watermark.
    pub fn submit(&self, image: impl Into<Arc<Image>>) -> ServeResult<Ticket> {
        self.submit_with_deadline(image, None)
    }

    /// [`LabelService::submit`] with an optional absolute deadline. A
    /// deadline that is already expired resolves to
    /// [`ServeError::Deadline`] immediately — the request never takes a
    /// queue slot; one that expires while queued is answered with the same
    /// error by the micro-batcher instead of occupying a batch slot.
    pub fn submit_with_deadline(
        &self,
        image: impl Into<Arc<Image>>,
        deadline: Option<Instant>,
    ) -> ServeResult<Ticket> {
        let image = image.into();
        if deadline.is_some_and(|d| Instant::now() >= d) {
            self.shared.counters.deadline_expired.fetch_add(1, Ordering::Relaxed);
            self.shared.metrics.requests_deadline.inc();
            return Ok(Ticket::ready(Err(ServeError::Deadline)));
        }
        let (tx, rx) = mpsc::channel();
        let cancel = Arc::new(AtomicBool::new(false));
        let mut state = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        // Watermark shedding: with a watermark configured, overload is a
        // typed, immediately-returned error rather than producer blocking —
        // the caller (or a remote RetryPolicy) decides whether to back off
        // and retry, and queue latency stays bounded.
        let watermark = self.shared.config.shed_watermark;
        if watermark > 0 && state.queue.len() >= watermark {
            drop(state);
            self.shared.counters.shed.fetch_add(1, Ordering::Relaxed);
            self.shared.metrics.requests_shed.inc();
            return Err(ServeError::Overloaded);
        }
        while state.queue.len() >= self.shared.config.queue_capacity {
            if state.shutting_down {
                return Err(ServeError::Closed);
            }
            state = self.shared.not_full.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
        if state.shutting_down {
            return Err(ServeError::Closed);
        }
        state.queue.push_back(Request {
            image,
            enqueued: Instant::now(),
            deadline,
            cancel: Arc::clone(&cancel),
            respond: tx,
        });
        self.shared.counters.queue_depth.fetch_add(1, Ordering::Relaxed);
        self.shared.metrics.queue_depth.add(1);
        self.shared.not_empty.notify_one();
        Ok(Ticket::pending(rx, Some(cancel)))
    }

    /// Label one image, blocking until a worker answers — a thin wrapper
    /// over [`LabelService::submit`] + [`Ticket::wait`].
    pub fn label(&self, image: &Image) -> ServeResult<LabelResponse> {
        self.submit(image.clone())?.wait()
    }

    /// Label several images; answers come back in input order. All images
    /// are enqueued **before** the first answer is awaited, so a single
    /// caller still feeds the micro-batcher full batches instead of paying
    /// one linger timeout per image.
    pub fn label_all(&self, images: &[&Image]) -> ServeResult<Vec<LabelResponse>> {
        let tickets: Vec<Ticket> =
            images.iter().map(|img| self.submit((*img).clone())).collect::<ServeResult<_>>()?;
        tickets.into_iter().map(Ticket::wait).collect()
    }

    /// Snapshot of the service counters. Histograms are merged from the
    /// per-worker shards bucket-by-bucket (`LatencyHistogram::merge`).
    pub fn stats(&self) -> ServiceStats {
        let c = &self.shared.counters;
        let mut latency = LatencyHistogram::default();
        let mut batch_size = LatencyHistogram::default();
        for shard in &self.shared.shards {
            latency.merge(&shard.latency());
            batch_size.merge(&shard.batch_size());
        }
        ServiceStats {
            requests: c.requests.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            images: c.images.load(Ordering::Relaxed),
            total_latency_us: c.total_latency_us.load(Ordering::Relaxed),
            max_latency_us: c.max_latency_us.load(Ordering::Relaxed),
            failed_batches: c.failed_batches.load(Ordering::Relaxed),
            failed_requests: c.failed_requests.load(Ordering::Relaxed),
            deadline_expired: c.deadline_expired.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            worker_restarts: c.worker_restarts.load(Ordering::Relaxed),
            queue_depth: c.queue_depth.load(Ordering::Relaxed),
            latency,
            batch_size,
        }
    }

    /// Per-stage latency distributions of the serving path (whole-batch
    /// durations for embed/affinity/endmodel, per-request for queue wait,
    /// per-drain for batch assembly). Converted from the observability
    /// registry's histograms — the bucket schemes are identical.
    pub fn stage_stats(&self) -> StageStats {
        let m = &self.shared.metrics;
        StageStats {
            queue_wait: latency_from_obs(&m.stage_queue_wait.snapshot()),
            batch_assembly: latency_from_obs(&m.stage_batch_assembly.snapshot()),
            embed: latency_from_obs(&m.stage_embed.snapshot()),
            affinity: latency_from_obs(&m.stage_affinity.snapshot()),
            endmodel: latency_from_obs(&m.stage_endmodel.snapshot()),
        }
    }

    /// Render this service's metrics — plus the process-global registry —
    /// as one Prometheus text page. This is the payload of both export
    /// fronts (`Opcode::Metrics` on the wire, `GET /metrics` over HTTP).
    pub fn render_metrics(&self) -> String {
        let mut out = self.shared.metrics.registry.render();
        goggles_obs::global().render_into(&mut out);
        out
    }

    /// The most recent per-stage trace events (oldest first; empty when
    /// [`ServeConfig::trace_capacity`] is 0). Event tags carry the batch
    /// size the stage ran over.
    // goggles-lint: allow(dead-pub): trace-ring drain pairing with the exported render_metrics; exercised only by unit tests
    pub fn recent_traces(&self) -> Vec<goggles_obs::TraceEvent> {
        self.shared.metrics.trace.recent()
    }

    pub(crate) fn serve_metrics(&self) -> &Arc<ServeMetrics> {
        &self.shared.metrics
    }

    /// Record one shed request that never reached `submit` (the wire
    /// server's per-connection inflight cap), so [`ServiceStats::shed`] and
    /// the `result="shed"` metric count every shed regardless of which
    /// layer refused it.
    pub(crate) fn record_shed(&self) {
        self.shared.counters.shed.fetch_add(1, Ordering::Relaxed);
        self.shared.metrics.requests_shed.inc();
    }

    /// The registry behind the service: publish/rollback/inspect versions
    /// while traffic keeps flowing.
    pub fn registry(&self) -> &Arc<SnapshotRegistry> {
        &self.shared.registry
    }

    /// Lease the snapshot version new batches currently resolve.
    pub fn current(&self) -> PublishedSnapshot {
        self.shared.registry.get()
    }

    /// Hot-reload: load a snapshot file (any [`crate::SnapshotFormat`]) —
    /// or, given a directory, sweep it and load the newest valid snapshot
    /// ([`SnapshotRegistry::reload_from`]) — validate it, and publish it
    /// behind the running service. In-flight batches finish on their old
    /// version; the next batch serves the new one. Returns the published
    /// version number; on any error the previously current version keeps
    /// serving.
    ///
    /// After a successful publish, retired versions older than the most
    /// recent one are pruned (if unleased) so a service that reloads
    /// periodically holds O(1) snapshots — rollback to the immediately
    /// previous version always stays possible.
    pub fn reload_from(&self, path: &std::path::Path) -> ServeResult<u64> {
        let version = self.shared.registry.reload_from(path)?;
        self.shared.registry.prune_retired(RELOAD_KEEP_RETIRED);
        Ok(version)
    }

    /// Stop accepting new requests, drain the queue, and join the workers.
    /// Idempotent; also invoked on drop.
    pub fn shutdown(&mut self) {
        {
            let mut state = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            state.shutting_down = true;
            self.shared.not_empty.notify_all();
            self.shared.not_full.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for LabelService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Labeler for LabelService {
    fn submit_with_deadline(
        &self,
        image: Arc<Image>,
        deadline: Option<Instant>,
    ) -> ServeResult<Ticket> {
        LabelService::submit_with_deadline(self, image, deadline)
    }

    fn label(&self, image: &Image) -> ServeResult<LabelResponse> {
        LabelService::label(self, image)
    }

    fn label_all(&self, images: &[&Image]) -> ServeResult<Vec<LabelResponse>> {
        LabelService::label_all(self, images)
    }
}

/// Worker thread entry: runs [`worker_loop`] under a **watchdog**. A panic
/// that escapes the loop (the labeler's own panics are already caught and
/// salvaged inside [`run_batch`]; this catches everything else — scheduler
/// bugs, injected `worker.batch` faults) does not silently shrink the pool:
/// the worker is respawned in place with fresh scratch, the restart is
/// counted (`goggles_worker_restarts_total`), and any batch held at panic
/// time resolves its tickets with [`ServeError::Closed`] when the request
/// senders unwind — typed errors, never hangs.
fn worker_main(shared: &Shared, worker: usize) {
    loop {
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| worker_loop(shared, worker)));
        match outcome {
            // Clean return: shutdown drained the queue; the pool winds down.
            Ok(()) => return,
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    // goggles-lint: allow(alloc-hot): respawn path, reached once per worker panic — never per request
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                shared.counters.worker_restarts.fetch_add(1, Ordering::Relaxed);
                shared.metrics.worker_restarts.inc();
                goggles_obs::log::warn(
                    "serve",
                    "worker panicked; watchdog respawning it",
                    &[
                        ("worker", goggles_obs::Value::from(worker)),
                        ("panic", goggles_obs::Value::from(msg)),
                    ],
                );
            }
        }
    }
}

fn worker_loop(shared: &Shared, worker: usize) {
    // One embedding scratch arena per worker, held across requests: the
    // backbone's im2col/GEMM/activation buffers grow once and every
    // subsequent batch embeds allocation-free (outputs aside).
    let mut scratch = EmbedScratch::new();
    let Some(shard) = shared.shards.get(worker) else {
        // One shard is allocated per worker index at spawn; a missing shard
        // would be a construction bug, and a dead worker is the loudest
        // recoverable signal.
        return;
    };
    loop {
        let batch = match next_batch(shared) {
            Some(batch) => batch,
            None => return,
        };
        // Failpoint *outside* run_batch's own catch_unwind: an injected
        // panic here escapes to the watchdog, exercising the respawn path
        // (the held batch unwinds → its tickets resolve Closed).
        crate::fault::maybe_panic("worker.batch");
        run_batch(shared, shard, &mut scratch, batch);
    }
}

/// Pop the next micro-batch: wait for a first request, then linger up to
/// `batch_timeout` for the batch to fill. Cancelled requests (dropped
/// tickets) are skipped and expired ones answered with
/// [`ServeError::Deadline`] at drain time — neither occupies a batch slot.
/// Returns `None` when the service is shutting down *and* the queue is
/// fully drained.
fn next_batch(shared: &Shared) -> Option<Vec<Request>> {
    let mut state = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
    loop {
        while state.queue.is_empty() {
            if state.shutting_down {
                return None;
            }
            state = shared.not_empty.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
        let max_batch = shared.config.max_batch;
        let assembly_start = Instant::now();
        let deadline = assembly_start + shared.config.batch_timeout;
        // Linger: give concurrent producers a short window to fill the batch.
        while state.queue.len() < max_batch && !state.shutting_down {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (next, timeout) = shared
                .not_empty
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            state = next;
            if timeout.timed_out() {
                break;
            }
        }
        let take = state.queue.len().min(max_batch);
        // Another worker may have drained the queue while this one lingered
        // without the lock — go back to waiting rather than reporting an
        // empty batch (which would skew the batch counters).
        if take == 0 {
            continue;
        }
        // Drain, then triage: doomed requests (cancelled / past deadline)
        // must not occupy batch slots that live requests could use.
        let now = Instant::now();
        // goggles-lint: allow(alloc-hot): one allocation per *batch* (amortized over up to max_batch requests); the Vec is moved into run_batch, so it cannot be reused across iterations
        let mut batch = Vec::with_capacity(take);
        // goggles-lint: allow(alloc-hot): empty Vec::new never allocates; it only grows on the rare expired-request path
        let mut expired = Vec::new();
        let mut cancelled = 0u64;
        for request in state.queue.drain(..take) {
            if request.cancel.load(Ordering::Relaxed) {
                cancelled += 1;
            } else if request.deadline.is_some_and(|d| now >= d) {
                expired.push(request);
            } else {
                batch.push(request);
            }
        }
        shared.not_full.notify_all();
        // Other workers may still have work to do.
        if !state.queue.is_empty() {
            shared.not_empty.notify_one();
        }
        drop(state);
        let m = &shared.metrics;
        shared.counters.queue_depth.fetch_sub(take as u64, Ordering::Relaxed);
        m.queue_depth.sub(take as i64);
        // Queue wait of every request that made it into the batch, plus the
        // assembly (linger + drain) cost of the batch itself.
        for request in &batch {
            m.stage_queue_wait.observe(now.duration_since(request.enqueued).as_micros() as u64);
        }
        if !batch.is_empty() {
            let assembly_us = now.duration_since(assembly_start).as_micros() as u64;
            m.stage_batch_assembly.observe(assembly_us);
            m.trace.push("batch_assembly", assembly_us, batch.len() as u64);
        }
        if cancelled > 0 {
            shared.counters.cancelled.fetch_add(cancelled, Ordering::Relaxed);
            m.requests_cancelled.add(cancelled);
        }
        if !expired.is_empty() {
            shared.counters.deadline_expired.fetch_add(expired.len() as u64, Ordering::Relaxed);
            m.requests_deadline.add(expired.len() as u64);
            for request in expired {
                let _ = request.respond.send(Err(ServeError::Deadline));
            }
        }
        if batch.is_empty() {
            // Everything drained was doomed; go back to waiting.
            state = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            continue;
        }
        return Some(batch);
    }
}

fn run_batch(
    shared: &Shared,
    shard: &WorkerShard,
    scratch: &mut EmbedScratch,
    batch: Vec<Request>,
) {
    // Resolve the current snapshot once per batch: the lease pins the
    // version for this batch's whole lifetime (labeling + responses), while
    // a concurrent publish/rollback is picked up by the next batch. No
    // registry lock is held across the labeling call.
    let lease = shared.registry.get();
    let images: Vec<&Image> = batch.iter().map(|r| r.image.as_ref()).collect();
    // Isolate panics (e.g. a malformed image tripping a backbone assert):
    // the worker must stay alive for everyone else, and the innocent
    // requests sharing the batch deserve answers — so a failed batch is
    // salvaged by retrying its requests individually.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        lease.labeler().label_batch_traced(scratch, &images, shared.config.embed_threads)
    }));
    let (labels, timing) = match outcome {
        Ok(traced) => traced,
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            goggles_obs::log::warn(
                "serve",
                "batch hit a labeler panic; salvaging individually",
                &[
                    ("batch", goggles_obs::Value::from(batch.len())),
                    ("version", goggles_obs::Value::from(lease.version())),
                    ("panic", goggles_obs::Value::from(msg)),
                ],
            );
            shared.counters.failed_batches.fetch_add(1, Ordering::Relaxed);
            shared.metrics.batches_failed.inc();
            // A panicked embed may have left the arena buffers at any size;
            // they stay valid (growth-only), but retry with a fresh scratch
            // out of caution.
            *scratch = EmbedScratch::new();
            salvage_batch(shared, shard, &lease, batch);
            return;
        }
    };
    let m = &shared.metrics;
    let n = batch.len() as u64;
    m.stage_embed.observe(timing.embed_us);
    m.stage_affinity.observe(timing.affinity_us);
    m.stage_endmodel.observe(timing.endmodel_us);
    if m.trace.is_enabled() {
        m.trace.push("embed", timing.embed_us, n);
        m.trace.push("affinity", timing.affinity_us, n);
        m.trace.push("endmodel", timing.endmodel_us, n);
    }
    respond(shared, shard, &lease, &batch, &labels);
}

/// A poisoned batch panicked the labeler. Retry each member individually on
/// the same version lease, so the innocent majority still gets answers and
/// only the true poison(s) are dropped (their clients are answered with
/// [`ServeError::Closed`]) and counted in
/// [`ServiceStats::failed_requests`]. A singleton batch *is* its own
/// poison — no retry, it would only panic again.
fn salvage_batch(
    shared: &Shared,
    shard: &WorkerShard,
    lease: &PublishedSnapshot,
    batch: Vec<Request>,
) {
    if batch.len() <= 1 {
        shared.counters.failed_requests.fetch_add(batch.len() as u64, Ordering::Relaxed);
        shared.metrics.requests_failed.add(batch.len() as u64);
        for request in batch {
            let _ = request.respond.send(Err(ServeError::Closed));
        }
        return;
    }
    for request in batch {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            lease.labeler().label_batch(&[request.image.as_ref()], shared.config.embed_threads)
        }));
        match outcome {
            Ok(labels) => respond(shared, shard, lease, std::slice::from_ref(&request), &labels),
            Err(_) => {
                shared.counters.failed_requests.fetch_add(1, Ordering::Relaxed);
                shared.metrics.requests_failed.inc();
                let _ = request.respond.send(Err(ServeError::Closed));
            }
        }
    }
}

/// Bump the counters and send the answers for a successfully labeled set of
/// requests (`labels` row `i` answers `batch[i]`).
fn respond(
    shared: &Shared,
    shard: &WorkerShard,
    lease: &PublishedSnapshot,
    batch: &[Request],
    labels: &ProbabilisticLabels,
) {
    let done = Instant::now();
    let mut total_us = 0u64;
    let mut max_us = 0u64;
    let c = &shared.counters;
    let m = &shared.metrics;
    for request in batch {
        let us = done.duration_since(request.enqueued).as_micros() as u64;
        total_us += us;
        max_us = max_us.max(us);
        if let Some(bucket) = shard.latency_buckets.get(LatencyHistogram::bucket_index(us)) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
    }
    if let Some(bucket) =
        shard.batch_size_buckets.get(LatencyHistogram::bucket_index(batch.len() as u64))
    {
        bucket.fetch_add(1, Ordering::Relaxed);
    }
    m.batch_size.observe(batch.len() as u64);
    m.requests_ok.add(batch.len() as u64);
    m.batches_total.inc();
    // Counters are bumped *before* the responses go out, so a client that
    // observed its answer also observes its request in `stats()`.
    c.requests.fetch_add(batch.len() as u64, Ordering::Relaxed);
    c.images.fetch_add(batch.len() as u64, Ordering::Relaxed);
    c.batches.fetch_add(1, Ordering::Relaxed);
    c.total_latency_us.fetch_add(total_us, Ordering::Relaxed);
    c.max_latency_us.fetch_max(max_us, Ordering::Relaxed);
    lease.record_served(batch.len() as u64);
    for (i, request) in batch.iter().enumerate() {
        // goggles-lint: allow(alloc-hot): each response owns its probability row — the copy *is* the handoff to the waiting client
        let probs = labels.probs.row(i).to_vec();
        let label = goggles_tensor::argmax(&probs);
        // The receiver may have given up; ignore send failures.
        let _ = request.respond.send(Ok(LabelResponse {
            label,
            probs,
            batch_size: batch.len(),
            version: lease.version(),
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::FittedLabeler;
    use goggles_core::GogglesConfig;
    use goggles_datasets::{generate, Dataset, TaskConfig, TaskKind};

    fn fitted(seed: u64) -> (FittedLabeler, Dataset) {
        let mut cfg = TaskConfig::new(TaskKind::Cub { class_a: 0, class_b: 1 }, 8, 6, seed);
        cfg.image_size = 32;
        let ds = generate(&cfg);
        let dev = ds.sample_dev_set(3, seed);
        let gcfg = GogglesConfig { seed, ..GogglesConfig::fast() };
        let (labeler, _) = FittedLabeler::fit(&gcfg, &ds, &dev).unwrap();
        (labeler, ds)
    }

    #[test]
    fn default_embed_threads_is_positive_share_of_cores() {
        assert!(default_embed_threads(1) >= 1);
        assert!(default_embed_threads(2) >= 1);
        assert!(default_embed_threads(usize::MAX) == 1);
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
        assert_eq!(ServeConfig::default().embed_threads, cores.div_ceil(2).max(1));
        // with_workers recomputes the budget for the actual pool size: one
        // worker per core leaves a budget of exactly 1 thread each.
        let wide = ServeConfig::with_workers(cores);
        assert_eq!(wide.workers, cores);
        assert_eq!(wide.embed_threads, 1);
    }

    #[test]
    fn sharded_single_request_matches_serial_labeler() {
        // label_one (1 thread) and label_one_sharded (many threads) must be
        // bit-identical — the service's embed budget can never change answers.
        let (labeler, ds) = fitted(16);
        let img = ds.test_images()[0];
        let serial = labeler.label_one(img);
        for threads in [2, 4, 8] {
            assert_eq!(serial, labeler.label_one_sharded(img, threads), "threads = {threads}");
        }
    }

    #[test]
    fn serves_single_requests() {
        let (labeler, ds) = fitted(11);
        let expected = labeler.label_batch(&ds.test_images(), 1);
        let service = LabelService::spawn(labeler, ServeConfig::default());
        for (i, img) in ds.test_images().iter().enumerate() {
            let resp = service.label(img).unwrap();
            assert_eq!(resp.probs, expected.probs.row(i));
            assert!(resp.batch_size >= 1);
        }
        let stats = service.stats();
        assert_eq!(stats.requests, ds.test_indices.len() as u64);
        assert!(stats.batches >= 1);
        assert!(stats.max_latency_us > 0);
    }

    #[test]
    fn concurrent_clients_get_batched_answers_matching_direct_path() {
        let (labeler, ds) = fitted(12);
        let expected = labeler.label_batch(&ds.test_images(), 1);
        let service = Arc::new(LabelService::spawn(
            labeler,
            ServeConfig {
                workers: 2,
                max_batch: 4,
                batch_timeout: Duration::from_millis(20),
                ..ServeConfig::default()
            },
        ));
        let images = ds.test_images();
        let handles: Vec<_> = images
            .iter()
            .enumerate()
            .map(|(i, img)| {
                let service = Arc::clone(&service);
                let img = (*img).clone();
                std::thread::spawn(move || (i, service.label(&img).unwrap()))
            })
            .collect();
        let mut max_batch_seen = 0;
        for h in handles {
            let (i, resp) = h.join().unwrap();
            assert_eq!(resp.probs, expected.probs.row(i), "request {i}");
            max_batch_seen = max_batch_seen.max(resp.batch_size);
        }
        // Concurrency should have produced at least one multi-request batch
        // (12 simultaneous clients, 20 ms linger, 2 workers).
        assert!(max_batch_seen >= 2, "no batching happened");
        let stats = service.stats();
        assert_eq!(stats.requests, images.len() as u64);
        assert!(stats.batches <= stats.requests);
    }

    #[test]
    fn shutdown_rejects_new_work_and_is_idempotent() {
        let (labeler, ds) = fitted(13);
        let mut service = LabelService::spawn(labeler, ServeConfig::default());
        let img = ds.test_images()[0].clone();
        assert!(service.label(&img).is_ok());
        service.shutdown();
        service.shutdown(); // idempotent
        assert!(matches!(service.label(&img), Err(ServeError::Closed)));
    }

    #[test]
    fn label_all_preserves_order_and_batches_from_one_caller() {
        let (labeler, ds) = fitted(14);
        let expected = labeler.label_batch(&ds.test_images(), 1);
        let service = LabelService::spawn(
            labeler,
            ServeConfig {
                workers: 1,
                max_batch: 4,
                batch_timeout: Duration::from_millis(2),
                ..ServeConfig::default()
            },
        );
        let responses = service.label_all(&ds.test_images()).unwrap();
        assert_eq!(responses.len(), ds.test_indices.len());
        for (i, resp) in responses.iter().enumerate() {
            assert_eq!(resp.probs, expected.probs.row(i));
        }
        // All requests were enqueued before the first await, so a single
        // caller must produce at least one multi-image batch (12 requests,
        // max_batch 4, one worker).
        let stats = service.stats();
        assert!(
            stats.batches < stats.requests,
            "label_all produced only singleton batches ({} batches for {} requests)",
            stats.batches,
            stats.requests
        );
    }

    #[test]
    fn labeler_panic_fails_the_request_but_not_the_service() {
        // The labeler was fit on 3-channel images; a 4-channel image panics
        // the backbone's channel assert inside the worker. The client must
        // get `Closed`, not a hang, and the service must keep serving.
        let (labeler, ds) = fitted(15);
        let good = ds.test_images()[0].clone();
        let expected = labeler.label_batch(&[&good], 1);
        let service = LabelService::spawn(
            labeler,
            ServeConfig { workers: 1, batch_timeout: Duration::ZERO, ..ServeConfig::default() },
        );
        let bad = goggles_vision::Image::filled(4, 32, 32, 0.5);
        match service.label(&bad) {
            Err(ServeError::Closed) => {}
            other => panic!("expected Closed for the poisoned request, got {other:?}"),
        }
        // Same worker, next request: still alive and correct.
        let resp = service.label(&good).expect("service must survive a poisoned request");
        assert_eq!(resp.probs, expected.probs.row(0));
        let stats = service.stats();
        assert_eq!(stats.failed_batches, 1);
        assert_eq!(stats.failed_requests, 1, "the poison is accounted for");
        assert_eq!(stats.requests, 1, "poisoned request is not counted as served");
    }

    #[test]
    fn good_request_co_batched_with_poison_still_gets_its_answer() {
        // A poisoned image shares a micro-batch with an innocent one. The
        // batch panics, the salvage pass retries individually: the innocent
        // client gets its exact answer, only the poison is dropped.
        let (labeler, ds) = fitted(17);
        let good = ds.test_images()[0].clone();
        let expected = labeler.label_batch(&[&good], 1);
        let service = Arc::new(LabelService::spawn(
            labeler,
            ServeConfig {
                workers: 1,
                max_batch: 2,
                // long linger so the two submissions below co-batch
                batch_timeout: Duration::from_millis(500),
                ..ServeConfig::default()
            },
        ));
        let bad = goggles_vision::Image::filled(4, 32, 32, 0.5);
        let bad_client = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || service.label(&bad))
        };
        let good_client = {
            let service = Arc::clone(&service);
            let good = good.clone();
            std::thread::spawn(move || service.label(&good))
        };
        match bad_client.join().unwrap() {
            Err(ServeError::Closed) => {}
            other => panic!("poisoned request should be Closed, got {other:?}"),
        }
        let resp = good_client.join().unwrap().expect("innocent co-batched request must succeed");
        assert_eq!(resp.probs, expected.probs.row(0));
        assert_eq!(resp.batch_size, 1, "salvaged answers come from singleton retries");
        let stats = service.stats();
        assert_eq!(stats.failed_batches, 1, "exactly one poisoned batch");
        assert_eq!(stats.failed_requests, 1, "exactly the poison failed");
        assert_eq!(stats.requests, 1, "exactly the innocent request served");
    }

    #[test]
    fn publish_swaps_version_for_the_next_batch() {
        // Serve with v1, hot-publish a v2-compressed reload: answers carry
        // the version they were computed on, and post-swap answers match
        // the new labeler's direct output exactly.
        let (labeler, ds) = fitted(18);
        let imgs = ds.test_images();
        let swapped = FittedLabeler::load(&labeler.save_v2(true)).unwrap();
        let expected_v1 = labeler.label_batch(&imgs, 1);
        let expected_v2 = swapped.label_batch(&imgs, 1);
        let service = LabelService::spawn(
            labeler,
            ServeConfig { workers: 1, batch_timeout: Duration::ZERO, ..ServeConfig::default() },
        );
        let before = service.label(imgs[0]).unwrap();
        assert_eq!(before.version, 1);
        assert_eq!(before.probs, expected_v1.probs.row(0));
        let v = service.registry().publish(swapped).unwrap();
        assert_eq!(v, 2);
        assert_eq!(service.current().version(), 2);
        for (i, img) in imgs.iter().enumerate() {
            let resp = service.label(img).unwrap();
            assert_eq!(resp.version, 2, "post-swap batches must resolve the new version");
            assert_eq!(resp.probs, expected_v2.probs.row(i), "request {i}");
        }
        // per-version serve counters add up
        let versions = service.registry().versions();
        assert_eq!(versions[0].served, 1);
        assert_eq!(versions[1].served, imgs.len() as u64);
        // rollback: the next batch serves v1 again
        service.registry().rollback().unwrap();
        let back = service.label(imgs[0]).unwrap();
        assert_eq!(back.version, 1);
        assert_eq!(back.probs, expected_v1.probs.row(0));
    }

    #[test]
    fn reload_from_validates_and_publishes_behind_running_service() {
        let (labeler, ds) = fitted(19);
        let img = ds.test_images()[0].clone();
        let dir = std::env::temp_dir().join("goggles_serve_reload_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot_v2.ggl");
        std::fs::write(&path, labeler.save_v2(false)).unwrap();
        let service = LabelService::spawn(labeler, ServeConfig::default());
        assert!(service.label(&img).is_ok());
        let v = service.reload_from(&path).unwrap();
        assert_eq!(v, 2);
        assert_eq!(service.label(&img).unwrap().version, 2);
        // a garbage file must be rejected and must not disturb serving
        let bad_path = dir.join("garbage.ggl");
        std::fs::write(&bad_path, b"not a snapshot at all").unwrap();
        assert!(service.reload_from(&bad_path).is_err());
        assert_eq!(service.current().version(), 2, "failed reload keeps current");
        assert!(service.label(&img).is_ok());
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&bad_path).ok();
    }

    #[test]
    fn shed_watermark_returns_overloaded_instead_of_blocking() {
        // One worker, long linger, watermark 2: the first two submissions
        // queue, the third is shed immediately with a typed, retryable
        // error — the producer never blocks.
        let (labeler, ds) = fitted(31);
        let service = LabelService::spawn(
            labeler,
            ServeConfig {
                workers: 1,
                max_batch: 8,
                batch_timeout: Duration::from_millis(300),
                shed_watermark: 2,
                ..ServeConfig::default()
            },
        );
        let img = ds.test_images()[0].clone();
        let t1 = service.submit(img.clone()).unwrap();
        let t2 = service.submit(img.clone()).unwrap();
        let shed = service.submit(img.clone());
        match shed {
            Err(ServeError::Overloaded) => {}
            other => panic!("expected Overloaded at the watermark, got {other:?}"),
        }
        assert!(ServeError::Overloaded.retryable());
        t1.wait().unwrap();
        t2.wait().unwrap();
        let stats = service.stats();
        assert_eq!(stats.shed, 1, "exactly the third submission was shed");
        assert_eq!(stats.requests, 2, "shed request was never labeled");
        // below the watermark again: traffic flows
        assert!(service.label(&img).is_ok());
        assert!(
            service.render_metrics().contains("goggles_requests_total{result=\"shed\"} 1"),
            "shed outcome must be exported"
        );
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 0);
        assert_eq!(LatencyHistogram::bucket_index(2), 1);
        assert_eq!(LatencyHistogram::bucket_index(3), 1);
        assert_eq!(LatencyHistogram::bucket_index(1024), 10);
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), LATENCY_BUCKETS - 1);
        assert_eq!(LatencyHistogram::bucket_upper_us(0), 2);
        assert_eq!(LatencyHistogram::bucket_upper_us(10), 2048);
        assert_eq!(LatencyHistogram::bucket_upper_us(LATENCY_BUCKETS - 1), u64::MAX);

        let mut h = LatencyHistogram::default();
        assert_eq!(h.percentile_us(0.5), 0, "empty histogram");
        // 98 fast requests (~100 µs), 2 slow ones (~100 ms): p50 must stay
        // in the fast bucket, p99 must reach the slow one.
        for _ in 0..98 {
            h.record(100);
        }
        h.record(100_000);
        h.record(100_000);
        assert_eq!(h.total(), 100);
        assert_eq!(h.percentile_us(0.50), 128);
        assert_eq!(h.percentile_us(0.98), 128);
        assert_eq!(h.percentile_us(0.99), 131_072);
        assert_eq!(h.percentile_us(1.0), 131_072);
    }

    #[test]
    fn expired_deadline_is_answered_without_labeling() {
        // Already-expired at submission: resolved immediately, no queue
        // slot, no labeling — `requests` stays 0, `deadline_expired` counts.
        let (labeler, ds) = fitted(22);
        let service = LabelService::spawn(labeler, ServeConfig::default());
        let img = ds.test_images()[0].clone();
        let past = Instant::now() - Duration::from_millis(5);
        let outcome = service.submit_with_deadline(img.clone(), Some(past)).unwrap().wait();
        assert!(matches!(outcome, Err(ServeError::Deadline)), "got {outcome:?}");
        let stats = service.stats();
        assert_eq!(stats.requests, 0, "expired request must never be labeled");
        assert_eq!(stats.deadline_expired, 1);
        // sanity: the same service still serves normal traffic
        assert!(service.label(&img).is_ok());
    }

    #[test]
    fn queued_requests_expire_and_cancel_without_occupying_batch_slots() {
        // One worker, a long linger and a large max_batch: everything
        // submitted below sits in the queue until the linger deadline, so
        // the cancellations/expiries land deterministically before drain.
        let (labeler, ds) = fitted(23);
        let service = LabelService::spawn(
            labeler,
            ServeConfig {
                workers: 1,
                max_batch: 32,
                batch_timeout: Duration::from_millis(400),
                ..ServeConfig::default()
            },
        );
        let img = ds.test_images()[0].clone();
        // the request that will actually be labeled
        let keep = service.submit(img.clone()).unwrap();
        // three tickets dropped while queued → cancelled, never labeled
        for _ in 0..3 {
            drop(service.submit(img.clone()).unwrap());
        }
        // two requests whose deadline expires inside the linger window
        let d = Instant::now() + Duration::from_millis(20);
        let t1 = service.submit_with_deadline(img.clone(), Some(d)).unwrap();
        let t2 = service.submit_with_deadline(img.clone(), Some(d)).unwrap();
        assert!(matches!(t1.wait(), Err(ServeError::Deadline)));
        assert!(matches!(t2.wait(), Err(ServeError::Deadline)));
        let resp = keep.wait().expect("the live request must be answered");
        assert_eq!(resp.batch_size, 1, "doomed requests must not occupy batch slots");
        let stats = service.stats();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.cancelled, 3);
        assert_eq!(stats.deadline_expired, 2);
        assert_eq!(stats.latency.total(), 1, "histogram counts answered requests only");
    }

    #[test]
    fn ticket_poll_and_wait_timeout_lifecycle() {
        let (labeler, ds) = fitted(24);
        let expected = labeler.label_batch(&[ds.test_images()[0]], 1);
        let service = LabelService::spawn(
            labeler,
            ServeConfig { workers: 1, batch_timeout: Duration::ZERO, ..ServeConfig::default() },
        );
        let mut ticket = service.submit(ds.test_images()[0].clone()).unwrap();
        // poll until resolved (bounded spin; the answer takes ~ms)
        let deadline = Instant::now() + Duration::from_secs(30);
        let outcome = loop {
            if let Some(outcome) = ticket.poll() {
                break outcome;
            }
            assert!(Instant::now() < deadline, "ticket never resolved");
            std::thread::yield_now();
        };
        assert_eq!(outcome.unwrap().probs, expected.probs.row(0));
        // a second ticket resolved through wait_timeout
        let mut t = service.submit(ds.test_images()[0].clone()).unwrap();
        let r = loop {
            if let Some(r) = t.wait_timeout(Duration::from_millis(100)) {
                break r;
            }
            assert!(Instant::now() < deadline, "wait_timeout never resolved");
        };
        assert_eq!(r.unwrap().probs, expected.probs.row(0));
    }

    #[test]
    fn labeler_trait_objects_serve_fitted_and_service_identically() {
        // The transport-agnostic promise: code written against `dyn
        // Labeler` gets identical answers from the bare labeler and the
        // micro-batching service (modulo version/batch metadata).
        let (labeler, ds) = fitted(25);
        let service = LabelService::spawn(labeler.clone(), ServeConfig::default());
        let front: Vec<(&str, &dyn Labeler)> = vec![("fitted", &labeler), ("service", &service)];
        let imgs = ds.test_images();
        let expected = labeler.label_batch(&imgs, 1);
        for (name, l) in front {
            let responses = l.label_all(&imgs).unwrap();
            for (i, resp) in responses.iter().enumerate() {
                assert_eq!(resp.probs, expected.probs.row(i), "{name} request {i}");
                assert_eq!(resp.label, goggles_tensor::argmax(expected.probs.row(i)));
            }
        }
    }

    #[test]
    fn latency_histogram_merge_is_bucket_exact() {
        // stats() folds the per-worker shards with merge(); every bucket of
        // the merged histogram must be the exact sum of the inputs.
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        for us in [0, 1, 2, 3, 100, 100, 1024, 1_000_000] {
            a.record(us);
        }
        for us in [1, 2, 100, 65_536, u64::MAX] {
            b.record(us);
        }
        let mut merged = a;
        merged.merge(&b);
        for i in 0..LATENCY_BUCKETS {
            assert_eq!(merged.counts[i], a.counts[i] + b.counts[i], "bucket {i}");
        }
        assert_eq!(merged.total(), a.total() + b.total());
        // merging an empty histogram is the identity
        let mut unchanged = merged;
        unchanged.merge(&LatencyHistogram::default());
        assert_eq!(unchanged, merged);
    }

    #[test]
    fn stats_expose_queue_depth_and_batch_size_distribution() {
        // One worker and a long linger: submissions sit in the queue, so
        // the live depth gauge is observable before the drain.
        let (labeler, ds) = fitted(26);
        let service = LabelService::spawn(
            labeler,
            ServeConfig {
                workers: 1,
                max_batch: 8,
                batch_timeout: Duration::from_millis(300),
                ..ServeConfig::default()
            },
        );
        let img = ds.test_images()[0].clone();
        let t1 = service.submit(img.clone()).unwrap();
        let t2 = service.submit(img).unwrap();
        assert_eq!(service.stats().queue_depth, 2, "both requests still queued");
        t1.wait().unwrap();
        t2.wait().unwrap();
        let stats = service.stats();
        assert_eq!(stats.queue_depth, 0, "queue drained");
        assert_eq!(stats.requests, 2);
        assert_eq!(
            stats.batch_size.total(),
            stats.batches,
            "one batch-size sample per executed batch"
        );
        // both requests shared one batch of 2 → bucket_index(2) = 1
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.batch_size.counts[LatencyHistogram::bucket_index(2)], 1);
    }

    #[test]
    fn metrics_render_exposes_families_and_stage_stats() {
        let (labeler, ds) = fitted(27);
        let service = LabelService::spawn(
            labeler,
            ServeConfig { workers: 1, batch_timeout: Duration::ZERO, ..ServeConfig::default() },
        );
        for img in ds.test_images().iter().take(3) {
            service.label(img).unwrap();
        }
        let text = service.render_metrics();
        for family in [
            "goggles_requests_total",
            "goggles_stage_latency_us",
            "goggles_snapshot_version",
            "goggles_snapshot_served_total",
            "goggles_snapshot_leases",
            "goggles_queue_depth",
            "goggles_batch_size",
            "goggles_batches_total",
            "goggles_gemm_calls_total",
            "goggles_backbone_flops_per_image",
        ] {
            assert!(text.contains(family), "missing family {family} in:\n{text}");
        }
        assert!(
            text.contains("goggles_requests_total{result=\"ok\"} 3"),
            "ok-request counter wrong in:\n{text}"
        );
        assert!(text.contains("goggles_snapshot_version 1"));
        // the per-stage histograms saw every batch
        let stages = service.stage_stats();
        assert_eq!(stages.queue_wait.total(), 3, "one queue_wait sample per request");
        assert_eq!(stages.embed.total(), stages.affinity.total());
        assert_eq!(stages.embed.total(), stages.endmodel.total());
        assert!(stages.embed.total() >= 1);
        assert!(stages.embed.percentile_us(0.5) > 0);
    }

    #[test]
    fn trace_ring_records_stage_events_and_zero_capacity_disables() {
        let (labeler, ds) = fitted(28);
        let img = ds.test_images()[0].clone();
        let service = LabelService::spawn(
            labeler.clone(),
            ServeConfig { workers: 1, batch_timeout: Duration::ZERO, ..ServeConfig::default() },
        );
        service.label(&img).unwrap();
        let traces = service.recent_traces();
        for stage in ["batch_assembly", "embed", "affinity", "endmodel"] {
            assert!(traces.iter().any(|e| e.stage == stage), "no {stage} trace in {traces:?}");
        }
        // tracing disabled: same serving behavior, no events retained
        let quiet = LabelService::spawn(
            labeler,
            ServeConfig {
                workers: 1,
                batch_timeout: Duration::ZERO,
                trace_capacity: 0,
                ..ServeConfig::default()
            },
        );
        quiet.label(&img).unwrap();
        assert!(quiet.recent_traces().is_empty());
    }

    #[test]
    fn instrumentation_keeps_labels_bit_identical() {
        // The traced path must return exactly what the untraced labeler
        // computes — instrumentation reads clocks, never touches numerics.
        let (labeler, ds) = fitted(29);
        let imgs = ds.test_images();
        let direct = labeler.label_batch(&imgs, 1);
        let mut scratch = EmbedScratch::new();
        let (traced, timing) = labeler.label_batch_traced(&mut scratch, &imgs, 1);
        assert_eq!(direct.probs, traced.probs);
        // embed dominates; all three stages must have been timed
        let _ = timing.embed_us + timing.affinity_us + timing.endmodel_us;
    }
}

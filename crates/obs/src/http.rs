//! Minimal HTTP/1.0 `GET /metrics` listener so standard Prometheus
//! scrapers (or plain `curl`) can read a registry without any HTTP
//! dependency. One accept thread handles connections serially — scrapes
//! are rare, tiny, and read-only, so there is nothing to parallelize.
//!
//! With [`MetricsServer::bind_with_health`] the same listener also answers
//! `GET /healthz`: `200 ready` while the supplied readiness flag is set,
//! `503 draining` once it clears — the probe surface a load balancer (or a
//! test) watches while a server drains.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Largest request head we will buffer before giving up (no request we
/// serve has meaningful headers, so this is purely a flood guard).
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Per-connection socket timeout: a stalled scraper cannot wedge the
/// accept thread for longer than this.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// A running metrics endpoint. Shuts down (and joins its thread) on drop.
pub struct MetricsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:0`) and serve `render()` as
    /// `text/plain` on `GET /metrics`. Every other path is a 404 and every
    /// other method a 405; connections close after one response.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        render: Arc<dyn Fn() -> String + Send + Sync>,
    ) -> std::io::Result<MetricsServer> {
        Self::bind_with_health(addr, render, None)
    }

    /// [`MetricsServer::bind`] plus a readiness probe: `GET /healthz`
    /// answers `200 ready` while `ready` holds `true` and `503 draining`
    /// once it holds `false`. Without a flag (`None`), `/healthz` is
    /// unroutable (404) — exactly the old surface.
    pub fn bind_with_health<A: ToSocketAddrs>(
        addr: A,
        render: Arc<dyn Fn() -> String + Send + Sync>,
        ready: Option<Arc<AtomicBool>>,
    ) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let thread = std::thread::Builder::new()
            .name("obs-metrics-http".to_string())
            .spawn(move || accept_loop(listener, &flag, &render, ready.as_ref()))?;
        Ok(MetricsServer { addr, shutdown, thread: Some(thread) })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    shutdown: &AtomicBool,
    render: &Arc<dyn Fn() -> String + Send + Sync>,
    ready: Option<&Arc<AtomicBool>>,
) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::Relaxed) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let _ = handle_connection(stream, render, ready);
    }
}

fn handle_connection(
    mut stream: TcpStream,
    render: &Arc<dyn Fn() -> String + Send + Sync>,
    ready: Option<&Arc<AtomicBool>>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;

    // Read until the end of the request head (or our size cap).
    let mut head = Vec::with_capacity(256);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        // goggles-lint: allow(index): n is the byte count read() just returned, bounded by chunk.len()
        head.extend_from_slice(&chunk[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() >= MAX_REQUEST_BYTES {
            break;
        }
    }

    let request_line =
        std::str::from_utf8(&head).ok().and_then(|text| text.lines().next()).unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");

    let (status, body) = if method != "GET" {
        ("405 Method Not Allowed", "method not allowed\n".to_string())
    } else if path == "/metrics" || path.starts_with("/metrics?") {
        ("200 OK", render())
    } else if let ("/healthz", Some(ready)) = (path, ready) {
        // goggles-lint: allow(atomics): Acquire pairs with the server's Release flip of the readiness flag at drain start
        if ready.load(Ordering::Acquire) {
            ("200 OK", "ready\n".to_string())
        } else {
            ("503 Service Unavailable", "draining\n".to_string())
        }
    } else {
        ("404 Not Found", "not found; try /metrics\n".to_string())
    };

    let response = format!(
        "HTTP/1.0 {status}\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())?;
    let _ = stream.shutdown(Shutdown::Both);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};

    fn scrape(addr: SocketAddr, request: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut reader = BufReader::new(stream);
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        let mut body = String::new();
        // Skip headers, then read the body to EOF.
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            if line == "\r\n" || line.is_empty() {
                break;
            }
        }
        std::io::Read::read_to_string(&mut reader, &mut body).unwrap();
        (status.trim_end().to_string(), body)
    }

    #[test]
    fn serves_metrics_and_rejects_other_paths() {
        let server =
            MetricsServer::bind("127.0.0.1:0", Arc::new(|| "g_up 1\n".to_string())).unwrap();
        let addr = server.local_addr();

        let (status, body) = scrape(addr, "GET /metrics HTTP/1.0\r\n\r\n");
        assert_eq!(status, "HTTP/1.0 200 OK");
        assert_eq!(body, "g_up 1\n");

        let (status, _) = scrape(addr, "GET /other HTTP/1.0\r\n\r\n");
        assert_eq!(status, "HTTP/1.0 404 Not Found");

        let (status, _) = scrape(addr, "POST /metrics HTTP/1.0\r\n\r\n");
        assert_eq!(status, "HTTP/1.0 405 Method Not Allowed");
    }

    #[test]
    fn healthz_follows_the_readiness_flag() {
        let ready = Arc::new(AtomicBool::new(true));
        let server = MetricsServer::bind_with_health(
            "127.0.0.1:0",
            Arc::new(|| "g_up 1\n".to_string()),
            Some(Arc::clone(&ready)),
        )
        .unwrap();
        let addr = server.local_addr();

        let (status, body) = scrape(addr, "GET /healthz HTTP/1.0\r\n\r\n");
        assert_eq!(status, "HTTP/1.0 200 OK");
        assert_eq!(body, "ready\n");

        ready.store(false, Ordering::Release);
        let (status, body) = scrape(addr, "GET /healthz HTTP/1.0\r\n\r\n");
        assert_eq!(status, "HTTP/1.0 503 Service Unavailable");
        assert_eq!(body, "draining\n");

        // /metrics keeps serving through a drain (scrapes stay possible).
        let (status, _) = scrape(addr, "GET /metrics HTTP/1.0\r\n\r\n");
        assert_eq!(status, "HTTP/1.0 200 OK");

        // Without a flag the path stays a 404, as before.
        let plain =
            MetricsServer::bind("127.0.0.1:0", Arc::new(|| "g_up 1\n".to_string())).unwrap();
        let (status, _) = scrape(plain.local_addr(), "GET /healthz HTTP/1.0\r\n\r\n");
        assert_eq!(status, "HTTP/1.0 404 Not Found");
    }

    #[test]
    fn drop_shuts_the_listener_down() {
        let server = MetricsServer::bind("127.0.0.1:0", Arc::new(String::new)).unwrap();
        let addr = server.local_addr();
        drop(server);
        // After drop the port should refuse or reset rather than serve.
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(mut stream) => {
                let _ = stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n");
                let mut buf = Vec::new();
                // Either an error or an empty response is acceptable; a
                // full 200 would mean the server is still alive.
                if stream.read_to_end(&mut buf).is_ok() {
                    assert!(buf.is_empty(), "listener survived drop");
                }
            }
        }
    }
}

//! `deps`: the offline no-registry gate.
//!
//! This workspace builds with no network: every dependency is a path dep
//! into `crates/` or `shims/` (which vendor the API subsets of `rand`,
//! `proptest`, `criterion`). A version/`git`/`registry` dependency anywhere
//! would turn the first `cargo build` on a clean machine into a network
//! fetch — and fail. The rule scans every `Cargo.toml` dependency section
//! and requires each entry to be `path = …` or `workspace = true`.
//!
//! TOML escape hatch: `# goggles-lint: allow(deps): <reason>` on the entry's
//! line or the line above.

use crate::engine::{Diagnostic, Workspace};

/// Section headers whose body lines are `name = <spec>` dependency entries.
fn is_inline_dep_section(header: &str) -> bool {
    matches!(header, "dependencies" | "dev-dependencies" | "build-dependencies")
        || header == "workspace.dependencies"
        || (header.starts_with("target.") && header.ends_with(".dependencies"))
}

/// Section headers that are a single dependency as a subtable, e.g.
/// `[dependencies.goggles-core]`.
fn is_subtable_dep_section(header: &str) -> bool {
    for prefix in ["dependencies.", "dev-dependencies.", "build-dependencies."] {
        if let Some(rest) = header.strip_prefix(prefix) {
            return !rest.contains('.');
        }
    }
    false
}

/// Scan every manifest for non-path, non-workspace dependency specs.
pub(crate) fn check_manifests(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for (rel, text) in &ws.manifests {
        check_manifest(rel, text, out);
    }
}

fn check_manifest(rel: &str, text: &str, out: &mut Vec<Diagnostic>) {
    let lines: Vec<&str> = text.lines().collect();
    let mut section = String::new();
    let mut section_line = 0usize;
    // Subtable sections are judged as a whole once fully read.
    let mut subtable: Option<String> = None;
    let flush = |sub: &mut Option<String>, header_line: usize, out: &mut Vec<Diagnostic>| {
        if let Some(body) = sub.take() {
            judge_spec(rel, header_line, &lines, &body, out);
        }
    };
    for (idx, raw) in text.lines().enumerate() {
        let line = strip_toml_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let header = header.trim_end_matches(']').trim_matches('"');
            flush(&mut subtable, section_line, out);
            section = header.to_string();
            section_line = idx + 1;
            if is_subtable_dep_section(&section) {
                subtable = Some(String::new());
            }
            continue;
        }
        if let Some(body) = subtable.as_mut() {
            body.push_str(line);
            body.push('\n');
        } else if is_inline_dep_section(&section) {
            judge_spec(rel, idx + 1, &lines, line, out);
        }
    }
    flush(&mut subtable, section_line, out);
}

/// Judge one dependency spec (an inline entry line, or a whole subtable
/// body) at `line_no`.
fn judge_spec(rel: &str, line_no: usize, lines: &[&str], spec: &str, out: &mut Vec<Diagnostic>) {
    let reason = if spec.contains("git =") || spec.contains("git=") {
        Some("git dependencies require network access")
    } else if spec.contains("registry =") || spec.contains("registry=") {
        Some("registry dependencies require network access")
    } else if spec.contains("path") || spec.contains("workspace") {
        None
    } else {
        Some("version-only specs resolve against crates.io, which this workspace cannot reach")
    };
    let Some(reason) = reason else { return };
    if allowed_in_toml(lines, line_no) {
        return;
    }
    out.push(Diagnostic {
        file: rel.to_string(),
        line: line_no,
        rule: "deps",
        message: format!(
            "dependency must be a path or workspace dep ({reason}); vendor it under \
             shims/ or use `path = …`"
        ),
        chain: Vec::new(),
    });
}

/// `# goggles-lint: allow(deps): <reason>` on this line or the one above.
fn allowed_in_toml(lines: &[&str], line_no: usize) -> bool {
    [line_no, line_no.saturating_sub(1)].iter().any(|&n| {
        n >= 1
            && lines.get(n - 1).is_some_and(|l| {
                l.split_once("goggles-lint: allow(deps):")
                    .is_some_and(|(_, reason)| !reason.trim().is_empty())
            })
    })
}

/// Drop a trailing `# comment` (naive: `#` inside quoted strings is rare in
/// dependency specs and a false strip only hides spec text, never adds it).
fn strip_toml_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) if !line[..i].contains('"') => &line[..i],
        _ => line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(toml: &str) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        check_manifest("crates/x/Cargo.toml", toml, &mut out);
        out
    }

    #[test]
    fn path_and_workspace_deps_pass() {
        let toml = "\
[package]
name = \"x\"

[dependencies]
goggles-core = { path = \"../core\" }
goggles-obs.workspace = true
rand = { workspace = true }

[dev-dependencies]
proptest.workspace = true
";
        assert!(diags(toml).is_empty());
    }

    #[test]
    fn version_git_and_registry_specs_fail() {
        let toml = "\
[dependencies]
serde = \"1.0\"
syn = { version = \"2\", features = [\"full\"] }
left-pad = { git = \"https://example.com/left-pad\" }
";
        let out = diags(toml);
        assert_eq!(out.len(), 3, "{out:?}");
        assert!(out.iter().all(|d| d.rule == "deps"));
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn subtable_deps_are_judged_whole() {
        let ok = "[dependencies.goggles-core]\npath = \"../core\"\nfeatures = []\n";
        assert!(diags(ok).is_empty());
        let bad = "[dependencies.serde]\nversion = \"1\"\nfeatures = [\"derive\"]\n";
        let out = diags(bad);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn toml_allow_hatch_works() {
        let toml = "\
[dependencies]
# goggles-lint: allow(deps): exercising the violating-fixture path in tests
serde = \"1.0\"
";
        assert!(diags(toml).is_empty());
    }

    #[test]
    fn non_dep_sections_are_ignored() {
        let toml = "[package]\nversion = \"0.1.0\"\n\n[features]\ndefault = []\n";
        assert!(diags(toml).is_empty());
    }
}

//! Continuous-learning fit benchmark: what the trainer's incremental path
//! buys over a from-scratch refit when `m` new images arrive.
//!
//! Two comparisons, same geometry:
//!
//! - **Wall time** — appending `m × αN` rows against the *frozen*
//!   prototype bank and warm-refitting (`refit_from_affinity`, the
//!   trainer's cycle) versus re-embedding all `N+m` images, rebuilding the
//!   bank and the full `(N+m) × α(N+m)` matrix, and cold-fitting the
//!   hierarchy (the offline path a trainer-less deployment would rerun).
//! - **EM iterations** — `refit_warm` seeded from the previous snapshot's
//!   parameters versus a cold `fit` with restarts, summed over the base
//!   layer and the ensemble.
//!
//! The `BENCH_fit.json` artifact is the PR's acceptance number: the
//! incremental cycle must beat the full refit at standard scale.

use super::report::Table;
use super::RunParams;
use goggles_core::prototypes::embed_images;
use goggles_core::{
    AffinityMatrix, Goggles, HierarchicalModel, HierarchicalOptions, PrototypeBank,
};
use goggles_datasets::{generate, TaskConfig, TaskKind};
use goggles_serve::FittedLabeler;
use goggles_tensor::Matrix;
use goggles_vision::Image;
use std::hint::black_box;
use std::time::Instant;

/// Everything one fit-benchmark run measured.
#[derive(Debug, Clone)]
pub struct FitBenchReport {
    /// Frozen training corpus size `N`.
    pub n_train: usize,
    /// Appended batch size `m`.
    pub appended: usize,
    /// Affinity functions `α`.
    pub alpha: usize,
    /// Thread budget of both paths.
    pub threads: usize,
    /// Median wall time of appending `m` rows against the frozen bank, ms.
    pub append_rows_ms: f64,
    /// Median wall time of one full incremental trainer cycle (append +
    /// warm gated refit), seconds.
    pub incremental_refit_s: f64,
    /// Median wall time of the from-scratch path (re-embed, rebuild bank
    /// and matrix, cold fit), seconds.
    pub full_refit_s: f64,
    /// EM iterations of a warm refit (base layer + ensemble).
    pub warm_em_iterations: usize,
    /// EM iterations of the cold fit's winning restarts (base + ensemble).
    pub cold_em_iterations: usize,
}

impl FitBenchReport {
    /// The acceptance number: full-refit wall time over incremental-cycle
    /// wall time (must exceed 1).
    pub fn incremental_speedup(&self) -> f64 {
        if self.incremental_refit_s <= 0.0 {
            return 0.0;
        }
        self.full_refit_s / self.incremental_refit_s
    }

    /// Cold EM iterations per warm EM iteration.
    pub fn iteration_ratio(&self) -> f64 {
        if self.warm_em_iterations == 0 {
            return 0.0;
        }
        self.cold_em_iterations as f64 / self.warm_em_iterations as f64
    }

    /// Text table for the bench harness.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Continuous learning: incremental append + warm refit vs full refit",
            &["metric", "value"],
        );
        let mut row = |k: &str, v: String| t.push_row(vec![k.to_string(), v]);
        row("frozen corpus (N)", format!("{}", self.n_train));
        row("appended batch (m)", format!("{}", self.appended));
        row("affinity functions (alpha)", format!("{}", self.alpha));
        row("thread budget", format!("{}", self.threads));
        row("append m rows vs frozen bank", format!("{:.3} ms", self.append_rows_ms));
        row(
            "incremental cycle (append + warm refit)",
            format!("{:.3} s", self.incremental_refit_s),
        );
        row("full refit (re-embed + rebuild + cold fit)", format!("{:.3} s", self.full_refit_s));
        row("incremental speedup", format!("{:.1}×", self.incremental_speedup()));
        row("EM iterations, warm", format!("{}", self.warm_em_iterations));
        row("EM iterations, cold", format!("{}", self.cold_em_iterations));
        row("cold/warm iteration ratio", format!("{:.1}×", self.iteration_ratio()));
        t
    }

    /// Hand-rolled JSON summary (the `BENCH_fit.json` artifact).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"n_train\": {},\n  \"appended\": {},\n  \"alpha\": {},\n  \
             \"threads\": {},\n  \"append_rows_ms\": {:.4},\n  \
             \"incremental_refit_s\": {:.6},\n  \"full_refit_s\": {:.6},\n  \
             \"incremental_speedup\": {:.2},\n  \"warm_em_iterations\": {},\n  \
             \"cold_em_iterations\": {},\n  \"iteration_ratio\": {:.2}\n}}\n",
            self.n_train,
            self.appended,
            self.alpha,
            self.threads,
            self.append_rows_ms,
            self.incremental_refit_s,
            self.full_refit_s,
            self.incremental_speedup(),
            self.warm_em_iterations,
            self.cold_em_iterations,
            self.iteration_ratio(),
        )
    }

    /// Write the JSON artifact.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }
}

/// Median wall-clock of `reps` calls to `f`, in milliseconds (one warmup
/// call excluded).
fn median_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    black_box(f());
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

/// EM iterations of the winning restarts, base layer + ensemble.
fn em_iterations(model: &HierarchicalModel) -> usize {
    model.base_models.iter().map(|g| g.stats.iterations).sum::<usize>()
        + model.ensemble.stats.iterations
}

/// Run the fit benchmark at the given scale parameters.
pub fn run(params: &RunParams) -> FitBenchReport {
    let seed = 29u64;
    let mut task = TaskConfig::new(
        TaskKind::Cub { class_a: 0, class_b: 1 },
        params.n_train_per_class,
        params.n_test_per_class.max(2),
        seed,
    );
    task.image_size = params.image_size;
    let ds = generate(&task);
    let dev = ds.sample_dev_set(params.dev_per_class.min(params.n_train_per_class), seed);
    let config = params.goggles_config(seed);
    let bootstrap = FittedLabeler::fit_for_training(&config, &ds, &dev)
        // goggles-lint: allow(panic): bench harness, not the serving path
        .expect("fit bench: bootstrap fit failed");
    let labeler = &bootstrap.labeler;
    let threads = config.threads;

    // The appended batch: a quarter of the corpus (at least one per class).
    let extra_per_class = (params.n_train_per_class / 4).max(1);
    let mut extra_task = task;
    extra_task.n_train_per_class = extra_per_class;
    extra_task.seed = seed.wrapping_add(5_001);
    let extra_ds = generate(&extra_task);
    let new_images: Vec<&Image> = extra_ds.train_images();
    let appended = new_images.len();

    let goggles = Goggles::new(config.clone());
    let prev = &bootstrap.result.model;
    let grown = |appended_rows: &Matrix<f64>| {
        let cols = bootstrap.rows.cols();
        let mut data =
            Vec::with_capacity(bootstrap.rows.as_slice().len() + appended_rows.as_slice().len());
        data.extend_from_slice(bootstrap.rows.as_slice());
        data.extend_from_slice(appended_rows.as_slice());
        AffinityMatrix {
            data: Matrix::from_vec(bootstrap.rows.rows() + appended_rows.rows(), cols, data)
                // goggles-lint: allow(panic): bench harness, widths fixed by construction
                .expect("fit bench: stacked matrix"),
            n: labeler.n_train(),
            alpha: labeler.alpha(),
            z_per_layer: labeler.bank().z_per_layer,
        }
    };

    // Incremental path: append rows against the frozen bank, then the
    // trainer's warm gated refit.
    let append_rows_ms = median_ms(5, || labeler.affinity_rows_for(&new_images, threads));
    let incremental_refit_s = median_ms(3, || {
        let rows = labeler.affinity_rows_for(&new_images, threads);
        let affinity = grown(&rows);
        goggles
            .refit_from_affinity(&affinity, &bootstrap.dev_rows, prev)
            // goggles-lint: allow(panic): bench harness, not the serving path
            .expect("fit bench: incremental refit failed")
    }) / 1e3;

    // Full-refit path: every image re-embedded, bank and matrix rebuilt at
    // N+m, hierarchy cold-fitted with the configured restarts.
    let all_images: Vec<&Image> =
        ds.train_images().into_iter().chain(new_images.iter().copied()).collect();
    let opts = HierarchicalOptions {
        num_classes: config.num_classes,
        em: config.em,
        one_hot: config.one_hot,
        threads,
        seed,
    };
    let full_refit_s = median_ms(3, || {
        let embeddings = embed_images(
            goggles.backbone(),
            &all_images,
            config.top_z,
            threads,
            config.center_patches,
        );
        let bank = PrototypeBank::from_embeddings(&embeddings);
        let affinity = AffinityMatrix {
            data: bank.affinity_rows(&embeddings, threads),
            n: bank.n,
            alpha: bank.alpha(),
            z_per_layer: bank.z_per_layer,
        };
        HierarchicalModel::fit(&affinity, &opts)
            // goggles-lint: allow(panic): bench harness, not the serving path
            .expect("fit bench: cold fit failed")
    }) / 1e3;

    // Iteration comparison on identical data: one warm refit vs one cold
    // fit of the same grown matrix.
    let rows = labeler.affinity_rows_for(&new_images, threads);
    let affinity = grown(&rows);
    let warm = HierarchicalModel::refit_warm(&affinity, prev, &opts)
        // goggles-lint: allow(panic): bench harness, not the serving path
        .expect("fit bench: warm refit failed");
    let cold = HierarchicalModel::fit(&affinity, &opts)
        // goggles-lint: allow(panic): bench harness, not the serving path
        .expect("fit bench: cold fit failed");

    FitBenchReport {
        n_train: labeler.n_train(),
        appended,
        alpha: labeler.alpha(),
        threads,
        append_rows_ms,
        incremental_refit_s,
        full_refit_s,
        warm_em_iterations: em_iterations(&warm),
        cold_em_iterations: em_iterations(&cold),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_balanced_and_complete() {
        let report = FitBenchReport {
            n_train: 48,
            appended: 12,
            alpha: 30,
            threads: 4,
            append_rows_ms: 18.0,
            incremental_refit_s: 0.25,
            full_refit_s: 1.5,
            warm_em_iterations: 40,
            cold_em_iterations: 200,
        };
        let json = report.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        for key in [
            "n_train",
            "appended",
            "alpha",
            "threads",
            "append_rows_ms",
            "incremental_refit_s",
            "full_refit_s",
            "incremental_speedup",
            "warm_em_iterations",
            "cold_em_iterations",
            "iteration_ratio",
        ] {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key}");
        }
        assert!((report.incremental_speedup() - 6.0).abs() < 1e-9);
        assert!((report.iteration_ratio() - 5.0).abs() < 1e-9);
        assert!(report.to_table().render().contains("incremental speedup"));
    }

    #[test]
    fn degenerate_timings_do_not_divide_by_zero() {
        let report = FitBenchReport {
            n_train: 1,
            appended: 1,
            alpha: 1,
            threads: 1,
            append_rows_ms: 0.0,
            incremental_refit_s: 0.0,
            full_refit_s: 0.0,
            warm_em_iterations: 0,
            cold_em_iterations: 0,
        };
        assert_eq!(report.incremental_speedup(), 0.0);
        assert_eq!(report.iteration_ratio(), 0.0);
    }
}

//! The semantic workspace model the flow-aware rules run on: a symbol table
//! of fns/impls/`pub` items ([`items`]), a name-based approximate call graph
//! ([`callgraph`]), and a guard-liveness pass ([`guards`]).
//!
//! The model is built **once** per lint run and shared by every rule —
//! `lock-order`, `panic-reach`, `alloc-hot`, and `dead-pub` all read the
//! same parse, the same graph, and the same guard summaries (each file is
//! also lexed exactly once, at workspace load).

pub mod callgraph;
pub mod guards;
pub mod items;

use crate::engine::Workspace;
use crate::lexer::TokenKind;
use callgraph::CallGraph;
use guards::GuardSummary;
use items::{FileItems, FnItem, PubItem};

/// Everything the flow rules need, index-aligned: `fns[i]` has call sites
/// `graph.sites[i]` and guard facts `guards[i]`.
pub struct SemanticModel {
    pub fns: Vec<FnItem>,
    pub pubs: Vec<PubItem>,
    pub per_file: Vec<FileItems>,
    pub graph: CallGraph,
    pub guards: Vec<GuardSummary>,
}

impl SemanticModel {
    pub fn build(ws: &Workspace) -> SemanticModel {
        let mut per_file = items::parse_workspace(ws);
        let mut fns = Vec::new();
        let mut pubs = Vec::new();
        for items in &mut per_file {
            fns.append(&mut items.fns);
            pubs.append(&mut items.pubs);
        }
        let graph = callgraph::build(ws, &per_file, &fns);
        let rwlock_fields = rwlock_fields(ws);
        let guards = fns
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let site_toks: Vec<usize> = graph.sites[i].iter().map(|s| s.tok).collect();
                guards::analyze(&ws.files[f.file], f.body, &site_toks, &rwlock_fields)
            })
            .collect();
        SemanticModel { fns, pubs, per_file, graph, guards }
    }

    /// Index of the fn whose diagnostics label is `display` (tests).
    pub fn fn_by_display(&self, display: &str) -> Option<usize> {
        self.fns.iter().position(|f| f.display == display)
    }
}

/// Field names declared as `name: RwLock<…>` anywhere in the workspace —
/// the only receivers whose `.read()`/`.write()` count as lock
/// acquisitions.
fn rwlock_fields(ws: &Workspace) -> Vec<String> {
    let mut out = Vec::new();
    for file in &ws.files {
        let toks = &file.tokens;
        for j in 2..toks.len() {
            if toks[j].ident() == Some("RwLock")
                && toks[j - 1].is_punct(':')
                && !toks[j - 2].is_punct(':')
            {
                if let Some(TokenKind::Ident(field)) = toks.get(j - 2).map(|t| &t.kind) {
                    if !out.contains(field) {
                        out.push(field.clone());
                    }
                }
            }
        }
    }
    out
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of the rand 0.9 API the reproduction uses:
//! [`rngs::StdRng`] (here xoshiro256++ seeded via SplitMix64 rather than
//! ChaCha12 — deterministic per seed, different stream from upstream),
//! the [`Rng`]/[`SeedableRng`] traits with `random`, `random_range`, and
//! [`seq::SliceRandom::shuffle`]. Statistical quality is more than adequate
//! for the seeded experiments and tests in this repository.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from an RNG via [`Rng::random`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 63) == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges samplable via [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo draw; bias is < 2^-64 per unit span, irrelevant for
                // the seeded simulations here.
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty inclusive range in random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + (self.end - self.start) * f32::sample(rng)
    }
}

/// User-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform sample of type `T` (floats in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// A biased coin flip: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of RNGs from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// The workspace-standard seeded generator: xoshiro256++ with SplitMix64
    /// seed expansion (Blackman & Vigna). Deterministic per seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related extensions (subset of `rand::seq`).

    use super::Rng;

    /// In-place uniform shuffling of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn floats_in_unit_interval_with_plausible_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut acc = 0.0f64;
        for _ in 0..n {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            acc += v;
        }
        let mean = acc / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn ranges_cover_and_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = rng.random_range(0..8usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = rng.random_range(-5..5i32);
            assert!((-5..5).contains(&v));
        }
        for _ in 0..100 {
            let v = rng.random_range(2.5..3.5f64);
            assert!((2.5..3.5).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs: Vec<usize> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn works_through_mut_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let _ = draw(&mut rng);
        let r = &mut rng;
        let _ = draw(r);
    }
}

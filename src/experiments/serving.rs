//! Serving benchmark: single-image latency and micro-batched throughput of
//! the `goggles-serve` path versus a full batch (`label_dataset`) refit,
//! plus the model-lifecycle measurements: v2 snapshot compression
//! (size ratio, probability deviation, argmax agreement), a hot-swap
//! segment that publishes a new version under concurrent load, and a
//! **network segment** that round-trips the held-out set through the wire
//! protocol (`WireServer` + `RemoteLabeler` over loopback TCP): round-trip
//! p50/p99, pipelined throughput, and a bit-identity check against the
//! in-process path.
//!
//! Not a paper artifact — the paper's system is batch-only — but the
//! direct quantification of what the snapshot/fold-in subsystem buys: a
//! per-request cost that is O(image) instead of O(dataset), and a
//! retrain-and-republish path that never drops a request.

use super::report::Table;
use super::RunParams;
use goggles_core::Goggles;
use goggles_datasets::{generate, Dataset, DevSet, TaskKind};
use goggles_serve::{FittedLabeler, LabelService, Labeler, ServeConfig};
use goggles_vision::Image;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything one serving-benchmark run measured.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Training images the labeler was fit on.
    pub n_train: usize,
    /// Held-out images served.
    pub n_held_out: usize,
    /// Wall-clock seconds of the one-time fit.
    pub fit_seconds: f64,
    /// Size of the serialized snapshot in bytes.
    pub snapshot_bytes: usize,
    /// p50 of single-image `label_one` latency, milliseconds.
    pub single_p50_ms: f64,
    /// Mean single-image `label_one` latency, milliseconds.
    pub single_mean_ms: f64,
    /// Images/second through the micro-batching service under concurrent
    /// clients.
    pub service_throughput_ips: f64,
    /// Mean micro-batch size the service assembled.
    pub service_mean_batch: f64,
    /// Mean request latency through the service, milliseconds.
    pub service_mean_latency_ms: f64,
    /// p50 request latency through the service, milliseconds (histogram
    /// bucket upper bound).
    pub service_p50_latency_ms: f64,
    /// p99 request latency through the service, milliseconds (histogram
    /// bucket upper bound) — the tail the mean hides.
    pub service_p99_latency_ms: f64,
    /// p50 of per-request queue wait inside the micro-batcher, ms.
    pub stage_queue_p50_ms: f64,
    /// p99 of per-request queue wait inside the micro-batcher, ms.
    pub stage_queue_p99_ms: f64,
    /// p50 of per-batch embed (im2col/GEMM trunk) time, ms.
    pub stage_embed_p50_ms: f64,
    /// p99 of per-batch embed time, ms.
    pub stage_embed_p99_ms: f64,
    /// p50 of per-batch affinity (prototype colmax) time, ms.
    pub stage_affinity_p50_ms: f64,
    /// p99 of per-batch affinity time, ms.
    pub stage_affinity_p99_ms: f64,
    /// p50 of per-batch end-model (fold-in + mapping) time, ms.
    pub stage_endmodel_p50_ms: f64,
    /// p99 of per-batch end-model time, ms.
    pub stage_endmodel_p99_ms: f64,
    /// Wall-clock seconds of a full transductive `label_dataset` refit over
    /// train + held-out (the only way the batch system can label new
    /// images).
    pub refit_seconds: f64,
    /// Served accuracy on the held-out images.
    pub served_accuracy: f64,
    /// Transductive batch-refit accuracy on the same images.
    pub batch_accuracy: f64,
    /// Size of the quantized v2 snapshot in bytes.
    pub snapshot_v2_bytes: usize,
    /// `snapshot_v2_bytes / snapshot_bytes` (acceptance: ≤ 0.5).
    pub v2_size_ratio: f64,
    /// Max per-class probability deviation of the v2-reloaded labeler vs
    /// the exact one, over the held-out split (acceptance: < 1e-3).
    pub v2_max_prob_dev: f64,
    /// Fraction of held-out images whose argmax label is unchanged under
    /// the v2 reload (acceptance: 1.0).
    pub v2_argmax_agreement: f64,
    /// Requests answered during the hot-swap segment (concurrent clients
    /// running while `publish` lands).
    pub swap_requests: u64,
    /// Responses during the swap that errored or matched neither published
    /// version bit-exactly (acceptance: 0).
    pub swap_errors: u64,
    /// Wall-clock milliseconds the `publish` call took under load.
    pub swap_publish_ms: f64,
    /// Requests served on the old version during the swap segment.
    pub swap_served_v1: u64,
    /// Requests served on the newly published version during the swap
    /// segment.
    pub swap_served_v2: u64,
    /// Held-out images round-tripped through `goggles-served`'s wire
    /// protocol (loopback TCP) one at a time.
    pub net_requests: u64,
    /// p50 of the sequential network round trip (client-measured),
    /// milliseconds.
    pub net_roundtrip_p50_ms: f64,
    /// p99 of the sequential network round trip (client-measured),
    /// milliseconds.
    pub net_roundtrip_p99_ms: f64,
    /// Images/second through one pipelined `RemoteLabeler` connection
    /// (every request on the wire before the first reply is awaited).
    pub net_throughput_ips: f64,
    /// Remote responses that were not bit-identical (label, probs, version)
    /// to in-process `label_one` (acceptance: 0).
    pub net_mismatches: u64,
}

impl ServingReport {
    /// Amortized per-image serving time vs one refit labeling the same
    /// held-out set (> 1 means serving is cheaper per image).
    pub fn speedup_vs_refit(&self) -> f64 {
        if self.service_throughput_ips <= 0.0 {
            return 0.0;
        }
        let serve_per_image = 1.0 / self.service_throughput_ips;
        let refit_per_image = self.refit_seconds / self.n_held_out.max(1) as f64;
        refit_per_image / serve_per_image
    }

    /// Text table for the bench harness.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new("Serving: snapshot inference vs batch refit", &["metric", "value"]);
        let mut row = |k: &str, v: String| t.push_row(vec![k.to_string(), v]);
        row("train images (N)", format!("{}", self.n_train));
        row("held-out images served", format!("{}", self.n_held_out));
        row("one-time fit", format!("{:.3} s", self.fit_seconds));
        row("snapshot size", format!("{:.1} KiB", self.snapshot_bytes as f64 / 1024.0));
        row("single-image p50 latency", format!("{:.2} ms", self.single_p50_ms));
        row("single-image mean latency", format!("{:.2} ms", self.single_mean_ms));
        row("service throughput", format!("{:.0} img/s", self.service_throughput_ips));
        row("service mean batch size", format!("{:.2}", self.service_mean_batch));
        row("service mean latency", format!("{:.2} ms", self.service_mean_latency_ms));
        row("service p50 latency", format!("{:.2} ms", self.service_p50_latency_ms));
        row("service p99 latency", format!("{:.2} ms", self.service_p99_latency_ms));
        row(
            "stage queue wait p50 / p99",
            format!("{:.2} / {:.2} ms", self.stage_queue_p50_ms, self.stage_queue_p99_ms),
        );
        row(
            "stage embed p50 / p99",
            format!("{:.2} / {:.2} ms", self.stage_embed_p50_ms, self.stage_embed_p99_ms),
        );
        row(
            "stage affinity p50 / p99",
            format!("{:.2} / {:.2} ms", self.stage_affinity_p50_ms, self.stage_affinity_p99_ms),
        );
        row(
            "stage end-model p50 / p99",
            format!("{:.2} / {:.2} ms", self.stage_endmodel_p50_ms, self.stage_endmodel_p99_ms),
        );
        row("batch refit (train+held-out)", format!("{:.3} s", self.refit_seconds));
        row("per-image speedup vs refit", format!("{:.1}×", self.speedup_vs_refit()));
        row("served accuracy", format!("{:.1}%", 100.0 * self.served_accuracy));
        row("batch-refit accuracy", format!("{:.1}%", 100.0 * self.batch_accuracy));
        row("v2 snapshot size", format!("{:.1} KiB", self.snapshot_v2_bytes as f64 / 1024.0));
        row("v2 / v1 size ratio", format!("{:.1}%", 100.0 * self.v2_size_ratio));
        row("v2 max probability deviation", format!("{:.2e}", self.v2_max_prob_dev));
        row("v2 argmax agreement", format!("{:.1}%", 100.0 * self.v2_argmax_agreement));
        row("swap segment requests", format!("{}", self.swap_requests));
        row("swap segment errors", format!("{}", self.swap_errors));
        row("publish latency under load", format!("{:.2} ms", self.swap_publish_ms));
        row("swap served on v1 / v2", format!("{} / {}", self.swap_served_v1, self.swap_served_v2));
        row("network round trips", format!("{}", self.net_requests));
        row("network round-trip p50", format!("{:.2} ms", self.net_roundtrip_p50_ms));
        row("network round-trip p99", format!("{:.2} ms", self.net_roundtrip_p99_ms));
        row("network throughput (pipelined)", format!("{:.0} img/s", self.net_throughput_ips));
        row("network answer mismatches", format!("{}", self.net_mismatches));
        t
    }

    /// Hand-rolled JSON summary (the `BENCH_serving.json` artifact).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"n_train\": {},\n  \"n_held_out\": {},\n  \"fit_seconds\": {:.6},\n  \
             \"snapshot_bytes\": {},\n  \"single_p50_ms\": {:.4},\n  \"single_mean_ms\": {:.4},\n  \
             \"service_throughput_ips\": {:.2},\n  \"service_mean_batch\": {:.3},\n  \
             \"service_mean_latency_ms\": {:.4},\n  \"service_p50_latency_ms\": {:.4},\n  \
             \"service_p99_latency_ms\": {:.4},\n  \
             \"stage_queue_p50_ms\": {:.4},\n  \"stage_queue_p99_ms\": {:.4},\n  \
             \"stage_embed_p50_ms\": {:.4},\n  \"stage_embed_p99_ms\": {:.4},\n  \
             \"stage_affinity_p50_ms\": {:.4},\n  \"stage_affinity_p99_ms\": {:.4},\n  \
             \"stage_endmodel_p50_ms\": {:.4},\n  \"stage_endmodel_p99_ms\": {:.4},\n  \
             \"refit_seconds\": {:.6},\n  \
             \"speedup_vs_refit\": {:.2},\n  \"served_accuracy\": {:.4},\n  \
             \"batch_accuracy\": {:.4},\n  \"snapshot_v2_bytes\": {},\n  \
             \"v2_size_ratio\": {:.4},\n  \"v2_max_prob_dev\": {:.3e},\n  \
             \"v2_argmax_agreement\": {:.4},\n  \"swap_requests\": {},\n  \
             \"swap_errors\": {},\n  \"swap_publish_ms\": {:.4},\n  \
             \"swap_served_v1\": {},\n  \"swap_served_v2\": {},\n  \
             \"net_requests\": {},\n  \"net_roundtrip_p50_ms\": {:.4},\n  \
             \"net_roundtrip_p99_ms\": {:.4},\n  \"net_throughput_ips\": {:.2},\n  \
             \"net_mismatches\": {}\n}}\n",
            self.n_train,
            self.n_held_out,
            self.fit_seconds,
            self.snapshot_bytes,
            self.single_p50_ms,
            self.single_mean_ms,
            self.service_throughput_ips,
            self.service_mean_batch,
            self.service_mean_latency_ms,
            self.service_p50_latency_ms,
            self.service_p99_latency_ms,
            self.stage_queue_p50_ms,
            self.stage_queue_p99_ms,
            self.stage_embed_p50_ms,
            self.stage_embed_p99_ms,
            self.stage_affinity_p50_ms,
            self.stage_affinity_p99_ms,
            self.stage_endmodel_p50_ms,
            self.stage_endmodel_p99_ms,
            self.refit_seconds,
            self.speedup_vs_refit(),
            self.served_accuracy,
            self.batch_accuracy,
            self.snapshot_v2_bytes,
            self.v2_size_ratio,
            self.v2_max_prob_dev,
            self.v2_argmax_agreement,
            self.swap_requests,
            self.swap_errors,
            self.swap_publish_ms,
            self.swap_served_v1,
            self.swap_served_v2,
            self.net_requests,
            self.net_roundtrip_p50_ms,
            self.net_roundtrip_p99_ms,
            self.net_throughput_ips,
            self.net_mismatches,
        )
    }

    /// Write the JSON artifact.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }
}

/// Run the serving benchmark at the given scale parameters.
pub fn run(params: &RunParams) -> ServingReport {
    let seed = 7u64;
    let mut task = goggles_datasets::TaskConfig::new(
        TaskKind::Cub { class_a: 0, class_b: 1 },
        params.n_train_per_class,
        params.n_test_per_class.max(8),
        seed,
    );
    task.image_size = params.image_size;
    let ds = generate(&task);
    let dev = ds.sample_dev_set(params.dev_per_class, seed);
    let config = params.goggles_config(seed);

    // one-time fit + freeze
    let t0 = Instant::now();
    let (labeler, _) = FittedLabeler::fit(&config, &ds, &dev).expect("fit failed");
    let fit_seconds = t0.elapsed().as_secs_f64();
    let snapshot_bytes = labeler.save().len();

    let held_out = ds.test_images();
    let truth = ds.test_labels();

    // single-image latency distribution (direct, no queueing) with the
    // per-request thread budget a default 2-worker service would grant —
    // the affinity row is sharded across it (intra-request parallelism).
    let embed_threads = ServeConfig::default().embed_threads;
    let mut singles: Vec<f64> = Vec::with_capacity(held_out.len());
    for img in &held_out {
        let t = Instant::now();
        let _ = labeler.label_one_sharded(img, embed_threads);
        singles.push(t.elapsed().as_secs_f64() * 1e3);
    }
    singles.sort_by(|a, b| a.total_cmp(b));
    let single_p50_ms = singles[singles.len() / 2];
    let single_mean_ms = singles.iter().sum::<f64>() / singles.len() as f64;

    // v2 compression: quantized snapshot size + bounded accuracy delta
    let v2_bytes = labeler.save_v2(true);
    let snapshot_v2_bytes = v2_bytes.len();
    let v2_size_ratio = snapshot_v2_bytes as f64 / snapshot_bytes.max(1) as f64;
    let swapped = FittedLabeler::load(&v2_bytes).expect("v2 snapshot reload failed");
    let served = labeler.label_batch(&held_out, 2);
    let served_accuracy = served.accuracy(&truth);
    let served_v2 = swapped.label_batch(&held_out, 2);
    let v2_max_prob_dev = served_v2.probs.max_abs_diff(&served.probs);
    let v2_argmax_agreement =
        served.hard_labels().iter().zip(served_v2.hard_labels()).filter(|(a, b)| **a == *b).count()
            as f64
            / held_out.len().max(1) as f64;

    // micro-batched throughput with concurrent clients
    let service = Arc::new(LabelService::spawn(
        labeler.clone(),
        ServeConfig {
            workers: 2,
            max_batch: 8,
            batch_timeout: Duration::from_millis(4),
            ..ServeConfig::default()
        },
    ));
    let t1 = Instant::now();
    let handles: Vec<_> = held_out
        .iter()
        .map(|img| {
            let service = Arc::clone(&service);
            let img = (*img).clone();
            std::thread::spawn(move || service.label(&img).expect("service closed"))
        })
        .collect();
    for h in handles {
        let _ = h.join().expect("client thread");
    }
    let service_seconds = t1.elapsed().as_secs_f64();
    let stats = service.stats();
    let service_throughput_ips = stats.requests as f64 / service_seconds;
    let service_mean_batch = stats.mean_batch_size();
    let service_mean_latency_ms = stats.mean_latency_us() / 1e3;
    let service_p50_latency_ms = stats.p50_latency_us() as f64 / 1e3;
    let service_p99_latency_ms = stats.p99_latency_us() as f64 / 1e3;
    // Per-stage breakdown from the service's observability registry: where
    // a request's latency actually went (queue wait vs the three labeling
    // stages). Percentiles are histogram bucket upper bounds, like the
    // end-to-end latency above.
    let stages = service.stage_stats();
    let p = |h: &goggles_serve::LatencyHistogram, q: f64| h.percentile_us(q) as f64 / 1e3;
    let stage_queue_p50_ms = p(&stages.queue_wait, 0.50);
    let stage_queue_p99_ms = p(&stages.queue_wait, 0.99);
    let stage_embed_p50_ms = p(&stages.embed, 0.50);
    let stage_embed_p99_ms = p(&stages.embed, 0.99);
    let stage_affinity_p50_ms = p(&stages.affinity, 0.50);
    let stage_affinity_p99_ms = p(&stages.affinity, 0.99);
    let stage_endmodel_p50_ms = p(&stages.endmodel, 0.50);
    let stage_endmodel_p99_ms = p(&stages.endmodel, 0.99);
    drop(service);

    // network front: the same labeler behind goggles-served's wire
    // protocol on a loopback TCP connection. Sequential round trips give
    // the latency distribution; a pipelined label_all gives throughput.
    // Every remote answer must be bit-identical (label, probs, version) to
    // the in-process label_one path.
    // Zero linger: sequential round trips would otherwise pay the full
    // batch timeout per request (there is no concurrent traffic to share a
    // batch with); pipelined throughput still batches from queue backlog.
    let net_service = Arc::new(LabelService::spawn(
        labeler.clone(),
        ServeConfig {
            workers: 2,
            max_batch: 8,
            batch_timeout: Duration::ZERO,
            ..ServeConfig::default()
        },
    ));
    let net_server = goggles_serve::WireServer::bind("127.0.0.1:0", Arc::clone(&net_service), 2)
        .expect("bind wire server");
    let client =
        goggles_serve::RemoteLabeler::connect(net_server.local_addr()).expect("connect client");
    let _ = client.label(held_out[0]); // connection + scratch warm-up
    let mut net_mismatches = 0u64;
    let mut round_trips: Vec<f64> = Vec::with_capacity(held_out.len());
    for img in &held_out {
        let (expected_label, expected_probs) = labeler.label_one(img);
        let t = Instant::now();
        let resp = client.label(img).expect("network label");
        round_trips.push(t.elapsed().as_secs_f64() * 1e3);
        if resp.label != expected_label || resp.probs != expected_probs || resp.version != 1 {
            net_mismatches += 1;
        }
    }
    round_trips.sort_by(|a, b| a.total_cmp(b));
    let net_roundtrip_p50_ms = round_trips[round_trips.len() / 2];
    let net_roundtrip_p99_ms = round_trips[(round_trips.len() * 99) / 100];
    let net_requests = round_trips.len() as u64;
    let t_net = Instant::now();
    let piped = client.label_all(&held_out).expect("pipelined network labeling");
    let net_throughput_ips = piped.len() as f64 / t_net.elapsed().as_secs_f64();
    drop(client);
    drop(net_server);
    drop(net_service);

    // hot-swap under load: concurrent clients hammer a fresh service while
    // the quantized v2 snapshot is published behind it. Every response must
    // match one of the two published versions bit-exactly; anything else
    // (including an error) counts as a swap error.
    let swap_service = Arc::new(LabelService::spawn(
        labeler,
        ServeConfig {
            workers: 2,
            max_batch: 8,
            batch_timeout: Duration::from_millis(2),
            ..ServeConfig::default()
        },
    ));
    let swap_errors = Arc::new(AtomicU64::new(0));
    let clients: Vec<_> = (0..3)
        .map(|_| {
            let service = Arc::clone(&swap_service);
            let errors = Arc::clone(&swap_errors);
            let images: Vec<Image> = held_out.iter().map(|img| (*img).clone()).collect();
            let expected_v1 = served.probs.clone();
            let expected_v2 = served_v2.probs.clone();
            std::thread::spawn(move || {
                for _round in 0..3 {
                    for (i, img) in images.iter().enumerate() {
                        match service.label(img) {
                            Ok(resp)
                                if resp.probs.as_slice() == expected_v1.row(i)
                                    || resp.probs.as_slice() == expected_v2.row(i) => {}
                            _ => {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(25));
    let t_pub = Instant::now();
    swap_service.registry().publish(swapped).expect("publish under load failed");
    let swap_publish_ms = t_pub.elapsed().as_secs_f64() * 1e3;
    for c in clients {
        c.join().expect("swap client");
    }
    // post-swap verification round: every answer must now be the new
    // version's direct label_batch output
    for (i, img) in held_out.iter().enumerate() {
        match swap_service.label(img) {
            Ok(resp) if resp.probs.as_slice() == served_v2.probs.row(i) && resp.version == 2 => {}
            _ => {
                swap_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    let swap_stats = swap_service.stats();
    let versions = swap_service.registry().versions();
    let swap_served_v1 = versions.first().map_or(0, |v| v.served);
    let swap_served_v2 = versions.get(1).map_or(0, |v| v.served);
    let swap_requests = swap_stats.requests;
    let swap_errors = swap_errors.load(Ordering::Relaxed);
    drop(swap_service);

    // the batch system's only path to new labels: transductive refit
    let all: Vec<(Image, usize)> = ds
        .train_indices
        .iter()
        .chain(&ds.test_indices)
        .map(|&i| (ds.images[i].clone(), ds.labels[i]))
        .collect();
    let transductive = Dataset::from_parts(ds.name.clone(), ds.kind, ds.num_classes, all, vec![]);
    let dev_rows = DevSet {
        indices: dev
            .indices
            .iter()
            .map(|&g| {
                ds.train_indices.iter().position(|&t| t == g).expect("dev index in training block")
            })
            .collect(),
        labels: dev.labels.clone(),
    };
    let t2 = Instant::now();
    let batch_result =
        Goggles::new(config).label_dataset(&transductive, &dev_rows).expect("batch refit failed");
    let refit_seconds = t2.elapsed().as_secs_f64();
    let hard = batch_result.labels.hard_labels();
    let n_train = ds.train_indices.len();
    let batch_accuracy = (0..truth.len()).filter(|&i| hard[n_train + i] == truth[i]).count() as f64
        / truth.len().max(1) as f64;

    ServingReport {
        n_train,
        n_held_out: held_out.len(),
        fit_seconds,
        snapshot_bytes,
        single_p50_ms,
        single_mean_ms,
        service_throughput_ips,
        service_mean_batch,
        service_mean_latency_ms,
        service_p50_latency_ms,
        service_p99_latency_ms,
        stage_queue_p50_ms,
        stage_queue_p99_ms,
        stage_embed_p50_ms,
        stage_embed_p99_ms,
        stage_affinity_p50_ms,
        stage_affinity_p99_ms,
        stage_endmodel_p50_ms,
        stage_endmodel_p99_ms,
        refit_seconds,
        served_accuracy,
        batch_accuracy,
        snapshot_v2_bytes,
        v2_size_ratio,
        v2_max_prob_dev,
        v2_argmax_agreement,
        swap_requests,
        swap_errors,
        swap_publish_ms,
        swap_served_v1,
        swap_served_v2,
        net_requests,
        net_roundtrip_p50_ms,
        net_roundtrip_p99_ms,
        net_throughput_ips,
        net_mismatches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_parseable_by_eye_and_balanced() {
        let report = ServingReport {
            n_train: 10,
            n_held_out: 5,
            fit_seconds: 0.5,
            snapshot_bytes: 1024,
            single_p50_ms: 1.5,
            single_mean_ms: 2.0,
            service_throughput_ips: 100.0,
            service_mean_batch: 3.5,
            service_mean_latency_ms: 4.0,
            service_p50_latency_ms: 3.0,
            service_p99_latency_ms: 9.0,
            stage_queue_p50_ms: 0.5,
            stage_queue_p99_ms: 2.0,
            stage_embed_p50_ms: 2.0,
            stage_embed_p99_ms: 4.0,
            stage_affinity_p50_ms: 0.1,
            stage_affinity_p99_ms: 0.3,
            stage_endmodel_p50_ms: 0.05,
            stage_endmodel_p99_ms: 0.1,
            refit_seconds: 1.0,
            served_accuracy: 0.96,
            batch_accuracy: 0.95,
            snapshot_v2_bytes: 500,
            v2_size_ratio: 0.488,
            v2_max_prob_dev: 3.2e-5,
            v2_argmax_agreement: 1.0,
            swap_requests: 180,
            swap_errors: 0,
            swap_publish_ms: 0.4,
            swap_served_v1: 100,
            swap_served_v2: 80,
            net_requests: 5,
            net_roundtrip_p50_ms: 0.8,
            net_roundtrip_p99_ms: 2.5,
            net_throughput_ips: 900.0,
            net_mismatches: 0,
        };
        let json = report.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        for key in [
            "n_train",
            "single_p50_ms",
            "service_throughput_ips",
            "service_p50_latency_ms",
            "service_p99_latency_ms",
            "stage_queue_p50_ms",
            "stage_queue_p99_ms",
            "stage_embed_p50_ms",
            "stage_embed_p99_ms",
            "stage_affinity_p50_ms",
            "stage_affinity_p99_ms",
            "stage_endmodel_p50_ms",
            "stage_endmodel_p99_ms",
            "speedup_vs_refit",
            "served_accuracy",
            "snapshot_v2_bytes",
            "v2_size_ratio",
            "v2_max_prob_dev",
            "swap_requests",
            "swap_errors",
            "swap_publish_ms",
            "net_requests",
            "net_roundtrip_p50_ms",
            "net_roundtrip_p99_ms",
            "net_throughput_ips",
            "net_mismatches",
        ] {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key}");
        }
        // refit labels 5 images in 1 s → 0.2 s/img; serving at 100 img/s →
        // 0.01 s/img → 20× speedup.
        assert!((report.speedup_vs_refit() - 20.0).abs() < 1e-9);
        let table = report.to_table();
        assert!(table.render().contains("img/s"));
    }
}

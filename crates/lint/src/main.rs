//! CLI front end: `goggles-lint --workspace` (discover the workspace root
//! from the current directory) or `goggles-lint --root <path>`. Exits 0
//! when clean, 1 on violations, 2 on usage or I/O errors — so CI can gate
//! on it directly. `--format json` emits a machine-readable report (used by
//! CI to archive findings as an artifact).

use goggles_lint::{Diagnostic, Workspace};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
goggles-lint: machine-check the workspace's panic-freedom, determinism,
atomic-ordering, unsafe, wire-exhaustiveness, dependency, lock-order,
panic-reachability, hot-loop-allocation, and dead-pub invariants.

usage:
  goggles-lint --workspace      lint the enclosing cargo workspace (default)
  goggles-lint --root <path>    lint the tree rooted at <path>
  goggles-lint --format <fmt>   output format: text (default) or json
  goggles-lint --help           this text

exit status: 0 clean, 1 violations found, 2 usage or I/O error
";

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (root, format) = match parse_args(&args) {
        Ok(Some(parsed)) => parsed,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("goggles-lint: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let root = match root {
        Some(path) => path,
        None => match workspace_root() {
            Ok(path) => path,
            Err(msg) => {
                eprintln!("goggles-lint: {msg}");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
        },
    };

    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("goggles-lint: failed to load {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let diagnostics = ws.lint();
    let files = ws.files.len();
    match format {
        Format::Text => {
            for d in &diagnostics {
                println!("{d}");
            }
        }
        Format::Json => print!("{}", render_json(files, &diagnostics)),
    }
    if diagnostics.is_empty() {
        eprintln!("goggles-lint: {files} files clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("goggles-lint: {} violation(s) across {files} files", diagnostics.len());
        ExitCode::from(1)
    }
}

/// The stable JSON report shape:
///
/// ```json
/// {"files": N, "violations": M, "findings": [
///   {"rule": "...", "path": "...", "line": L, "message": "...", "chain": ["...", ...]},
/// ]}
/// ```
///
/// `findings` preserves the sorted text-output order; `chain` is empty for
/// single-site rules.
fn render_json(files: usize, diagnostics: &[Diagnostic]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n  \"files\": {files},\n  \"violations\": {},\n  \"findings\": [",
        diagnostics.len()
    ));
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}, \"chain\": [",
            json_str(d.rule),
            json_str(&d.file),
            d.line,
            json_str(&d.message)
        ));
        for (j, hop) in d.chain.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(hop));
        }
        out.push_str("]}");
    }
    if diagnostics.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

/// Minimal JSON string encoder — the escapes the spec requires, nothing
/// else (no registry deps, so no serde).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `Ok(Some((root, format)))` to lint (`root` of `None` means "discover the
/// enclosing workspace"), `Ok(None)` for `--help`, `Err` on bad usage.
#[allow(clippy::type_complexity)]
fn parse_args(args: &[String]) -> Result<Option<(Option<PathBuf>, Format)>, String> {
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => {}
            "--help" | "-h" => return Ok(None),
            "--root" => {
                let path = it.next().ok_or("--root requires a path")?;
                root = Some(PathBuf::from(path));
            }
            "--format" => {
                format = match it.next().map(String::as_str) {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    Some(other) => return Err(format!("unknown format `{other}`")),
                    None => return Err("--format requires `text` or `json`".to_string()),
                };
            }
            other => return Err(format!("unrecognized argument: {other}")),
        }
    }
    Ok(Some((root, format)))
}

/// Walk ancestors of the current directory for the `Cargo.toml` that
/// declares `[workspace]`.
fn workspace_root() -> Result<PathBuf, String> {
    let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    for dir in cwd.ancestors() {
        if is_workspace_manifest(&dir.join("Cargo.toml")) {
            return Ok(dir.to_path_buf());
        }
    }
    Err(format!("no workspace Cargo.toml found above {}", cwd.display()))
}

fn is_workspace_manifest(manifest: &Path) -> bool {
    std::fs::read_to_string(manifest)
        .is_ok_and(|text| text.lines().any(|l| l.trim() == "[workspace]"))
}

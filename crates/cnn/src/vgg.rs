//! The VGG-16 backbone (Simonyan & Zisserman, 2014) at configurable width,
//! with taps at the five max-pooling layers — the exact surface the paper's
//! affinity functions consume — plus the "logits" feature head the
//! Snuba/Logits baselines use (§5.1.2, §5.1.5).

use crate::layers::{relu_in_place, Conv2d, Linear, MaxPool2d};
use goggles_tensor::rng::std_rng;
use goggles_tensor::Tensor3;
use goggles_vision::Image;

/// Configuration of the surrogate VGG-16.
#[derive(Debug, Clone, PartialEq)]
pub struct VggConfig {
    /// Input channel count (3 for RGB; grayscale images are broadcast).
    pub input_channels: usize,
    /// Channel widths of the five convolutional blocks. The canonical VGG-16
    /// is `[64, 128, 256, 512, 512]`; the default here is 1/8 of that, which
    /// keeps full-dataset evaluation CPU-friendly while preserving topology.
    pub block_channels: [usize; 5],
    /// Spatial input size (square). VGG-16 uses 224; the reproduction
    /// defaults to 64 so that the pool-5 map is 2×2 (DESIGN.md §5).
    pub input_size: usize,
    /// Widths of the two hidden fully-connected layers (VGG: 4096, 4096).
    pub fc_dims: [usize; 2],
    /// Output ("logits") dimension (VGG: 1000 ImageNet classes).
    pub logits_dim: usize,
}

impl Default for VggConfig {
    fn default() -> Self {
        Self {
            input_channels: 3,
            block_channels: [8, 16, 32, 64, 64],
            input_size: 64,
            fc_dims: [128, 128],
            logits_dim: 100,
        }
    }
}

impl VggConfig {
    /// A very small configuration for fast unit tests (32×32 input).
    pub fn tiny() -> Self {
        Self {
            input_channels: 3,
            block_channels: [4, 8, 8, 16, 16],
            input_size: 32,
            fc_dims: [32, 32],
            logits_dim: 16,
        }
    }

    /// Number of convolution layers per block — fixed by the VGG-16 paper.
    pub const CONVS_PER_BLOCK: [usize; 5] = [2, 2, 3, 3, 3];

    /// Spatial size of the pool-`i` output (0-based block index).
    pub fn pool_size(&self, block: usize) -> usize {
        assert!(block < 5);
        self.input_size >> (block + 1)
    }

    /// Flattened feature length after pool-5 (input to the first FC layer).
    pub fn flattened_len(&self) -> usize {
        let s = self.pool_size(4);
        self.block_channels[4] * s * s
    }
}

/// The VGG-16 network: 13 convolutions in 5 max-pooled blocks + 3 dense
/// layers, with deterministic seeded weights.
#[derive(Debug, Clone)]
pub struct Vgg16 {
    config: VggConfig,
    blocks: Vec<Vec<Conv2d>>,
    fc: [Linear; 3],
}

impl Vgg16 {
    /// Build the network with He-initialized weights drawn from `seed`.
    ///
    /// The same `(config, seed)` pair always produces the same network, so
    /// every pipeline in the workspace shares one frozen backbone exactly as
    /// the paper shares one pretrained VGG-16 across all datasets.
    pub fn new(config: &VggConfig, seed: u64) -> Self {
        assert!(config.input_size >= 32, "input_size must be ≥ 32 for five 2x pools");
        assert!(
            config.input_size.is_power_of_two(),
            "input_size must be a power of two so pool maps stay aligned"
        );
        let mut rng = std_rng(seed);
        let mut blocks = Vec::with_capacity(5);
        let mut in_c = config.input_channels;
        for (b, &out_c) in config.block_channels.iter().enumerate() {
            let mut layers = Vec::with_capacity(VggConfig::CONVS_PER_BLOCK[b]);
            for _ in 0..VggConfig::CONVS_PER_BLOCK[b] {
                layers.push(Conv2d::new_he_init(&mut rng, in_c, out_c, 3));
                in_c = out_c;
            }
            blocks.push(layers);
        }
        let fc = [
            Linear::new_he_init(&mut rng, config.flattened_len(), config.fc_dims[0]),
            Linear::new_he_init(&mut rng, config.fc_dims[0], config.fc_dims[1]),
            Linear::new_he_init(&mut rng, config.fc_dims[1], config.logits_dim),
        ];
        Self { config: config.clone(), blocks, fc }
    }

    /// The configuration this network was built with.
    pub fn config(&self) -> &VggConfig {
        &self.config
    }

    /// Normalize an arbitrary image into the network's input tensor:
    /// grayscale is broadcast to the input channel count, spatial size is
    /// bilinearly resized to `input_size`, and values are shifted/scaled by
    /// **fixed** constants — the analogue of VGG's dataset-mean subtraction.
    /// (Per-image standardization would erase cross-image color statistics,
    /// which are a primary class signal on color datasets.)
    pub fn prepare_input(&self, img: &Image) -> Tensor3<f32> {
        let img = if img.channels() == 1 && self.config.input_channels > 1 {
            img.broadcast_channels(self.config.input_channels)
        } else {
            img.clone()
        };
        assert_eq!(
            img.channels(),
            self.config.input_channels,
            "prepare_input: channel count mismatch"
        );
        let s = self.config.input_size;
        let mut resized = if img.height() != s || img.width() != s {
            goggles_vision::filter::resize_bilinear(&img, s, s)
        } else {
            img
        };
        // Fixed affine normalization: mean 0.45, std 0.25 (≈ ImageNet
        // statistics in [0,1] units).
        resized.tensor_mut().map_in_place(|v| (v - 0.45) * 4.0);
        resized.into_tensor()
    }

    /// Run the convolutional trunk and return the filter map after **each**
    /// of the five max-pool layers (the paper's Algorithm 1, line 1).
    pub fn forward_pool_taps(&self, img: &Image) -> Vec<Tensor3<f32>> {
        let mut x = self.prepare_input(img);
        let mut taps = Vec::with_capacity(5);
        for block in &self.blocks {
            for conv in block {
                x = conv.forward(&x);
                relu_in_place(&mut x);
            }
            x = MaxPool2d.forward(&x);
            taps.push(x.clone());
        }
        taps
    }

    /// Full forward pass to the logits feature vector (the representation
    /// the Snuba-primitives and "Logits" baselines consume).
    pub fn logits(&self, img: &Image) -> Vec<f32> {
        let taps = self.forward_pool_taps(img);
        let last = taps.last().expect("five taps");
        let mut x: Vec<f32> = last.as_slice().to_vec();
        for (i, layer) in self.fc.iter().enumerate() {
            x = layer.forward(&x);
            // ReLU between dense layers but not after the logits output.
            if i < 2 {
                for v in &mut x {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
        }
        x
    }

    /// Convenience: logits for a batch of images as an `n × logits_dim`
    /// row-major matrix.
    pub fn logits_batch(&self, imgs: &[Image]) -> goggles_tensor::Matrix<f32> {
        let mut out = goggles_tensor::Matrix::zeros(imgs.len(), self.config.logits_dim);
        for (i, img) in imgs.iter().enumerate() {
            let l = self.logits(img);
            out.row_mut(i).copy_from_slice(&l);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goggles_vision::draw;

    fn test_net() -> Vgg16 {
        Vgg16::new(&VggConfig::tiny(), 7)
    }

    fn textured_image(seed_shift: f32) -> Image {
        let mut img = Image::filled(3, 32, 32, 0.4);
        draw::fill_disc(&mut img, 10.0 + seed_shift, 12.0, 6.0, &[0.9, 0.2, 0.1]);
        draw::fill_rect(&mut img, 20, 4, 28, 30, &[0.1, 0.6, 0.9]);
        img
    }

    #[test]
    fn pool_taps_have_expected_shapes() {
        let net = test_net();
        let taps = net.forward_pool_taps(&textured_image(0.0));
        let cfg = VggConfig::tiny();
        assert_eq!(taps.len(), 5);
        for (b, tap) in taps.iter().enumerate() {
            let s = cfg.pool_size(b);
            assert_eq!(tap.shape(), (cfg.block_channels[b], s, s), "block {b}");
        }
    }

    #[test]
    fn logits_have_configured_dim_and_are_finite() {
        let net = test_net();
        let l = net.logits(&textured_image(0.0));
        assert_eq!(l.len(), VggConfig::tiny().logits_dim);
        assert!(l.iter().all(|v| v.is_finite()));
        // not all dead
        assert!(l.iter().any(|&v| v.abs() > 1e-6));
    }

    #[test]
    fn network_is_deterministic() {
        let a = test_net().logits(&textured_image(0.0));
        let b = test_net().logits(&textured_image(0.0));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_networks() {
        let a = Vgg16::new(&VggConfig::tiny(), 1).logits(&textured_image(0.0));
        let b = Vgg16::new(&VggConfig::tiny(), 2).logits(&textured_image(0.0));
        assert_ne!(a, b);
    }

    #[test]
    fn similar_images_have_closer_logits_than_dissimilar() {
        let net = test_net();
        let a = net.logits(&textured_image(0.0));
        let a2 = net.logits(&textured_image(1.0)); // slightly shifted disc
        let mut other = Image::filled(3, 32, 32, 0.4);
        draw::fill_stripes(&mut other, 0.8, 5.0, 0.5, &[0.2, 0.9, 0.3], 1.0);
        let b = net.logits(&other);
        let sim = |x: &[f32], y: &[f32]| goggles_tensor::cosine_similarity(x, y);
        assert!(
            sim(&a, &a2) > sim(&a, &b),
            "near pair {} should beat far pair {}",
            sim(&a, &a2),
            sim(&a, &b)
        );
    }

    #[test]
    fn grayscale_input_is_broadcast() {
        let net = test_net();
        let gray = Image::filled(1, 40, 40, 0.5); // also exercises resize
        let taps = net.forward_pool_taps(&gray);
        assert_eq!(taps[0].channels(), VggConfig::tiny().block_channels[0]);
    }

    #[test]
    fn activations_do_not_explode_or_vanish() {
        let net = test_net();
        let taps = net.forward_pool_taps(&textured_image(0.0));
        for (b, tap) in taps.iter().enumerate() {
            let mx = tap.as_slice().iter().copied().fold(0.0f32, f32::max);
            assert!(mx.is_finite() && mx < 1e4, "block {b} max {mx}");
            assert!(mx > 1e-6, "block {b} is dead (max {mx})");
        }
    }

    #[test]
    fn flattened_len_matches_tap5() {
        let cfg = VggConfig::tiny();
        let net = Vgg16::new(&cfg, 3);
        let taps = net.forward_pool_taps(&textured_image(0.0));
        assert_eq!(taps[4].as_slice().len(), cfg.flattened_len());
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_input_rejected() {
        let cfg = VggConfig { input_size: 48, ..VggConfig::tiny() };
        let _ = Vgg16::new(&cfg, 0);
    }

    #[test]
    fn logits_batch_stacks_rows() {
        let net = test_net();
        let imgs = vec![textured_image(0.0), textured_image(2.0)];
        let m = net.logits_batch(&imgs);
        assert_eq!(m.shape(), (2, VggConfig::tiny().logits_dim));
        assert_eq!(m.row(0), net.logits(&imgs[0]).as_slice());
    }
}

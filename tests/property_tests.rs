//! Property-based tests (proptest) over the core invariants of the
//! reproduction: theory DP vs exhaustive enumeration, assignment optimality,
//! EM posterior validity, affinity-matrix geometry and mapping laws.

use goggles::core::mapping::{apply_mapping, map_clusters_via_dev_set, map_two_clusters};
use goggles::core::theory;
use goggles::datasets::DevSet;
use goggles::models::{
    assignment, solve_assignment, BernoulliMixture, DiagonalGmm, EmOptions, KMeans,
};
use goggles::tensor::rng::std_rng;
use goggles::tensor::{log_sum_exp, Matrix};
use proptest::prelude::*;
use rand::Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 1's DP must agree with exhaustive multinomial enumeration.
    #[test]
    fn theory_dp_matches_brute_force(
        eta in 0.05f64..0.95,
        k in 2usize..5,
        d in 1usize..7,
    ) {
        let dp = theory::p_class_correct(eta, k, d);
        let brute = theory::p_class_correct_brute_force(eta, k, d);
        prop_assert!((dp - brute).abs() < 1e-9, "dp {dp} vs brute {brute}");
        prop_assert!((0.0..=1.0).contains(&dp));
    }

    /// The Hungarian solver must achieve the exhaustive optimum.
    #[test]
    fn assignment_is_optimal(seed in 0u64..500, n in 2usize..6) {
        let mut rng = std_rng(seed);
        let score = Matrix::from_fn(n, n, |_, _| rng.random::<f64>() * 10.0 - 5.0);
        let fast = solve_assignment(&score);
        let brute = assignment::solve_assignment_brute_force(&score);
        let fs = assignment::assignment_score(&score, &fast);
        let bs = assignment::assignment_score(&score, &brute);
        prop_assert!((fs - bs).abs() < 1e-9, "fast {fs} vs brute {bs}");
        // result is a permutation
        let mut sorted = fast.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    /// log-sum-exp must match the naive computation where it is stable, and
    /// dominate the max everywhere.
    #[test]
    fn log_sum_exp_properties(xs in proptest::collection::vec(-30.0f64..30.0, 1..12)) {
        let lse = log_sum_exp(&xs);
        let naive = xs.iter().map(|x| x.exp()).sum::<f64>().ln();
        prop_assert!((lse - naive).abs() < 1e-9);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(lse >= max - 1e-12);
        prop_assert!(lse <= max + (xs.len() as f64).ln() + 1e-12);
    }

    /// GMM posteriors are row-stochastic for arbitrary (non-degenerate) data.
    #[test]
    fn gmm_posteriors_are_distributions(seed in 0u64..200) {
        let mut rng = std_rng(seed);
        let data = Matrix::from_fn(24, 3, |_, _| rng.random::<f64>() * 4.0 - 2.0);
        let opts = EmOptions { restarts: 1, max_iters: 25, ..EmOptions::default() };
        let gmm = DiagonalGmm::fit(&data, 2, &opts, seed).unwrap();
        for i in 0..24 {
            let s: f64 = gmm.responsibilities.row(i).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-8);
        }
        prop_assert!(gmm.stats.log_likelihood.is_finite());
    }

    /// Bernoulli-mixture parameters stay clamped inside (0, 1).
    #[test]
    fn bernoulli_params_clamped(seed in 0u64..200) {
        let mut rng = std_rng(seed);
        let data = Matrix::from_fn(20, 6, |_, _| f64::from(rng.random::<bool>()));
        let opts = EmOptions { restarts: 1, max_iters: 25, ..EmOptions::default() };
        let bm = BernoulliMixture::fit(&data, 2, &opts, seed).unwrap();
        prop_assert!(bm.probs.as_slice().iter().all(|&b| b > 0.0 && b < 1.0));
        prop_assert!((bm.weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    /// K-means inertia never increases when k grows (same seed pool).
    #[test]
    fn kmeans_inertia_monotone_in_k(seed in 0u64..100) {
        let mut rng = std_rng(seed);
        let data = Matrix::from_fn(30, 2, |_, _| rng.random::<f64>());
        let k1 = KMeans::fit(&data, 1, 2, seed).unwrap();
        let k2 = KMeans::fit(&data, 2, 2, seed).unwrap();
        let k3 = KMeans::fit(&data, 3, 2, seed).unwrap();
        prop_assert!(k2.inertia <= k1.inertia + 1e-9);
        prop_assert!(k3.inertia <= k2.inertia + 1e-9);
    }

    /// Applying a mapping permutes columns losslessly: accuracy against any
    /// truth is invariant under (mapping, inverse-mapping) round trips.
    #[test]
    fn mapping_roundtrip_is_identity(seed in 0u64..200, n in 2usize..20) {
        let mut rng = std_rng(seed);
        let mut gamma = Matrix::from_fn(n, 2, |_, _| rng.random::<f64>());
        for i in 0..n {
            let s: f64 = gamma.row(i).iter().sum();
            for v in gamma.row_mut(i) {
                *v /= s;
            }
        }
        let g = vec![1usize, 0];
        let double = apply_mapping(&apply_mapping(&gamma, &g), &g);
        prop_assert!(gamma.max_abs_diff(&double) < 1e-12);
    }

    /// The K = 2 closed form (Equation 15) agrees with the Hungarian
    /// maximization of L_g (Equation 14) on random responsibilities.
    #[test]
    fn k2_mapping_closed_form_agrees(seed in 0u64..300, n in 4usize..24) {
        let mut rng = std_rng(seed);
        let mut gamma = Matrix::from_fn(n, 2, |_, _| rng.random::<f64>());
        for i in 0..n {
            let s: f64 = gamma.row(i).iter().sum();
            for v in gamma.row_mut(i) {
                *v /= s;
            }
        }
        // Equation 15 assumes a class-balanced dev set ("we assume the
        // size of LS_k' is the same for all classes", §4.3) — with
        // unbalanced sets the general L_g maximization legitimately
        // differs, so keep the draw balanced (even-sized, alternating).
        let dev_n = 2 * (n / 4).max(1);
        let dev = DevSet {
            indices: (0..dev_n).collect(),
            labels: (0..dev_n).map(|i| i % 2).collect(),
        };
        prop_assert_eq!(
            map_clusters_via_dev_set(&gamma, &dev),
            map_two_clusters(&gamma, &dev)
        );
    }

    /// Theorem 1 bound is monotone in η for fixed (k, d).
    #[test]
    fn theory_monotone_in_eta(k in 2usize..4, d in 1usize..8) {
        let mut prev = 0.0;
        for step in 1..9 {
            let eta = step as f64 / 10.0;
            let p = theory::p_mapping_correct(eta, k, d);
            prop_assert!(p >= prev - 1e-9, "eta {eta}: {p} < {prev}");
            prev = p;
        }
    }
}

/// Deterministic (non-proptest) property: cosine-gram affinity matrices are
/// symmetric with unit diagonal for nonzero rows.
#[test]
fn feature_affinity_is_symmetric_unit_diagonal() {
    use goggles::core::AffinityMatrix;
    let mut rng = std_rng(5);
    let feats = Matrix::from_fn(10, 6, |_, _| rng.random::<f64>() + 0.1);
    let am = AffinityMatrix::from_feature_vectors(&feats);
    for i in 0..10 {
        assert!((am.data[(i, i)] - 1.0).abs() < 1e-9);
        for j in 0..10 {
            assert!((am.data[(i, j)] - am.data[(j, i)]).abs() < 1e-9);
        }
    }
}

//! Guard liveness: which `Mutex`/`RwLock` guards are live at each point of
//! a fn body, tracked over the token stream.
//!
//! A lock's identity is `file::field` — the receiver field (or variable)
//! the guard came from, scoped by file so same-named fields of different
//! structs do not alias. Liveness follows Rust's drop rules approximately:
//!
//! - `let g = x.lock()…;` (or `g = x.lock()…;`) lives to the end of the
//!   enclosing block, or to an explicit `drop(g)`;
//! - an unbound acquisition (`x.lock().f(…)`, a `for`/`match` header
//!   temporary) lives to the end of its statement — the first `;` at its
//!   depth, or the close of the first block the statement opens;
//! - `cvar.wait(g)` / `wait_timeout(g, …)` consume and re-acquire `g`: the
//!   wait is *not* "blocking while holding `g`" (that is the condvar
//!   protocol), but any *other* live guard across the wait is flagged.
//!
//! Stdio locks (`stdout().lock()` et al.) are exempt: locking to write is
//! their whole point and they nest freely.

use crate::engine::SourceFile;
use crate::lexer::{Token, TokenKind};

/// A guard live at some point, with where it was acquired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Held {
    pub lock: String,
    pub line: usize,
}

/// One lock acquisition, with the guards already live when it happened.
#[derive(Debug)]
pub struct Acquire {
    pub lock: String,
    pub line: usize,
    pub live: Vec<Held>,
}

/// One potentially-blocking operation (`wait`, `recv`, `join`, blocking
/// I/O), with the guards live across it. An empty `live` still matters:
/// it makes the enclosing fn "blocking" for callers that do hold locks.
#[derive(Debug)]
pub struct BlockOp {
    pub op: String,
    pub line: usize,
    pub live: Vec<Held>,
}

/// Guard facts for one fn, aligned with its call sites.
#[derive(Debug, Default)]
pub struct GuardSummary {
    pub acquires: Vec<Acquire>,
    pub blocking: Vec<BlockOp>,
    /// Guards live at each call site, index-aligned with
    /// `CallGraph::sites[fn]`.
    pub live_at_site: Vec<Vec<Held>>,
}

/// Methods that block the calling thread.
const BLOCKING_METHODS: &[&str] = &[
    "wait",
    "wait_timeout",
    "wait_while",
    "wait_timeout_while",
    "recv",
    "recv_timeout",
    "join",
    "read_exact",
    "write_all",
    "read_to_end",
    "read_to_string",
    "read_line",
    "flush",
    "accept",
    "connect",
];

/// Receivers whose `.lock()` is the stdio protocol, not a mutex.
const STDIO: &[&str] = &["stdout", "stderr", "stdin"];

struct LiveGuard {
    /// Binding name, when the guard is `let`-bound (condvar consumption and
    /// `drop(g)` match on this).
    var: Option<String>,
    lock: String,
    line: usize,
    expiry: Expiry,
}

#[derive(PartialEq)]
enum Expiry {
    /// Dies when the block opened at this depth closes (`}` at depth d).
    Block(usize),
    /// Statement temporary: dies at the first `;` at depth ≤ d, or when the
    /// first block the statement opened closes back to depth d.
    Stmt(usize),
}

/// Analyze one fn body. `site_toks` are the token indices of the fn's call
/// sites (from the call graph), in ascending order.
pub fn analyze(
    file: &SourceFile,
    body: (usize, usize),
    site_toks: &[usize],
    rwlock_fields: &[String],
) -> GuardSummary {
    let toks = &file.tokens;
    let mut sum =
        GuardSummary { live_at_site: vec![Vec::new(); site_toks.len()], ..Default::default() };
    let mut live: Vec<LiveGuard> = Vec::new();
    let mut depth = 0usize;
    let mut stmt_start = body.0 + 1;
    let mut next_site = 0usize;

    for j in body.0..=body.1.min(toks.len().saturating_sub(1)) {
        // Record liveness at call sites before interpreting the token: the
        // callee runs while everything currently live is still held.
        while next_site < site_toks.len() && site_toks[next_site] == j {
            sum.live_at_site[next_site] = held(&live);
            next_site += 1;
        }
        match &toks[j].kind {
            TokenKind::Punct('{') => {
                depth += 1;
                stmt_start = j + 1;
            }
            TokenKind::Punct('}') => {
                live.retain(|g| match g.expiry {
                    Expiry::Block(d) => d < depth,
                    Expiry::Stmt(d) => d + 1 != depth && d < depth,
                });
                depth = depth.saturating_sub(1);
                stmt_start = j + 1;
            }
            TokenKind::Punct(';') => {
                live.retain(|g| match g.expiry {
                    Expiry::Stmt(d) => depth > d,
                    Expiry::Block(_) => true,
                });
                stmt_start = j + 1;
            }
            TokenKind::Ident(word) => {
                let method_pos = j > 0 && toks[j - 1].is_punct('.');
                let called = toks.get(j + 1).is_some_and(|t| t.is_punct('('));
                if word == "drop" && !method_pos && called {
                    if let Some(v) = toks.get(j + 2).and_then(Token::ident) {
                        if toks.get(j + 3).is_some_and(|t| t.is_punct(')')) {
                            live.retain(|g| g.var.as_deref() != Some(v));
                        }
                    }
                } else if method_pos && called && is_acquisition(toks, j, word, rwlock_fields) {
                    if let Some(field) = receiver_field(toks, j - 1) {
                        if !STDIO.contains(&field) {
                            let lock = format!("{}::{}", file.rel, field);
                            sum.acquires.push(Acquire {
                                lock: lock.clone(),
                                line: toks[j].line,
                                live: held(&live),
                            });
                            live.push(LiveGuard {
                                var: binding_of(toks, stmt_start),
                                lock,
                                line: toks[j].line,
                                expiry: match binding_of(toks, stmt_start) {
                                    Some(_) => Expiry::Block(depth),
                                    None => Expiry::Stmt(depth),
                                },
                            });
                        }
                    }
                } else if method_pos && called && BLOCKING_METHODS.contains(&word.as_str()) {
                    // A condvar wait consuming a live guard re-acquires it:
                    // exclude that guard from the "held across" set.
                    let consumed = toks.get(j + 2).and_then(Token::ident);
                    let over: Vec<Held> = live
                        .iter()
                        .filter(|g| !(word.starts_with("wait") && g.var.as_deref() == consumed))
                        .map(|g| Held { lock: g.lock.clone(), line: g.line })
                        .collect();
                    sum.blocking.push(BlockOp { op: word.clone(), line: toks[j].line, live: over });
                } else if word == "sleep" && called && !method_pos {
                    sum.blocking.push(BlockOp {
                        op: "sleep".into(),
                        line: toks[j].line,
                        live: held(&live),
                    });
                }
            }
            _ => {}
        }
    }
    sum
}

fn held(live: &[LiveGuard]) -> Vec<Held> {
    live.iter().map(|g| Held { lock: g.lock.clone(), line: g.line }).collect()
}

/// `.lock()` always acquires; `.read()` / `.write()` acquire only when the
/// receiver field is a known `RwLock` (empty argument lists alone would
/// still collide with `io::Read`/`io::Write` trait objects).
fn is_acquisition(toks: &[Token], j: usize, word: &str, rwlock_fields: &[String]) -> bool {
    let empty_args = toks.get(j + 2).is_some_and(|t| t.is_punct(')'));
    match word {
        "lock" => empty_args,
        "read" | "write" => {
            empty_args
                && receiver_field(toks, j - 1).is_some_and(|f| rwlock_fields.iter().any(|r| r == f))
        }
        _ => false,
    }
}

/// The receiver field/variable name feeding a `.method(` call at `dot`:
/// the ident before the dot, looking through one `(…)`/`[…]` group
/// (`io::stdout().lock()`, `cells[i].lock()`).
fn receiver_field(toks: &[Token], dot: usize) -> Option<&str> {
    let mut k = dot.checked_sub(1)?;
    match &toks[k].kind {
        TokenKind::Ident(w) => Some(w),
        TokenKind::Punct(close @ (')' | ']')) => {
            let open = if *close == ')' { '(' } else { '[' };
            let mut depth = 0i32;
            loop {
                if toks[k].is_punct(*close) {
                    depth += 1;
                } else if toks[k].is_punct(open) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k = k.checked_sub(1)?;
            }
            toks.get(k.checked_sub(1)?).and_then(Token::ident)
        }
        _ => None,
    }
}

/// The variable a statement binds, when it has the shape `let [mut] name =`
/// or `name = …` (a plain re-binding like `state = shared.state.lock()…`).
fn binding_of(toks: &[Token], stmt_start: usize) -> Option<String> {
    let first = toks.get(stmt_start)?;
    if first.ident() == Some("let") {
        let mut k = stmt_start + 1;
        if toks.get(k).and_then(Token::ident) == Some("mut") {
            k += 1;
        }
        let name = toks.get(k).and_then(Token::ident)?;
        if toks.get(k + 1).is_some_and(|t| t.is_punct('=')) {
            return Some(name.to_string());
        }
        return None;
    }
    let name = first.ident()?;
    if toks.get(stmt_start + 1).is_some_and(|t| t.is_punct('='))
        && !toks.get(stmt_start + 2).is_some_and(|t| t.is_punct('='))
    {
        return Some(name.to_string());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SourceFile;
    use crate::model::items::match_brace;

    fn summary(body_src: &str) -> GuardSummary {
        let src = format!("fn f() {body_src}");
        let f = SourceFile::new("crates/serve/src/service.rs".into(), &src);
        let open = f.tokens.iter().position(|t| t.is_punct('{')).expect("body");
        let close = match_brace(&f.tokens, open).expect("balanced");
        analyze(&f, (open, close), &[], &[])
    }

    fn lock_names(held: &[Held]) -> Vec<&str> {
        held.iter().map(|h| h.lock.rsplit("::").next().expect("lock id")).collect()
    }

    #[test]
    fn bound_guards_live_to_block_end_and_order_pairs_nest() {
        let s = summary(
            "{ let a = self.alpha.lock().unwrap_or_else(e); \
               { let b = self.beta.lock().unwrap_or_else(e); } \
               let c = self.gamma.lock().unwrap_or_else(e); }",
        );
        assert_eq!(s.acquires.len(), 3);
        assert_eq!(lock_names(&s.acquires[0].live), Vec::<&str>::new());
        assert_eq!(lock_names(&s.acquires[1].live), vec!["alpha"]);
        // `b` died with its block: only `a` is live when `c` is taken.
        assert_eq!(lock_names(&s.acquires[2].live), vec!["alpha"]);
    }

    #[test]
    fn drop_ends_liveness() {
        let s =
            summary("{ let a = self.alpha.lock().u(); drop(a); let b = self.beta.lock().u(); }");
        assert_eq!(lock_names(&s.acquires[1].live), Vec::<&str>::new());
    }

    #[test]
    fn statement_temporaries_die_at_semicolon_but_span_loop_headers() {
        let s = summary(
            "{ self.alpha.lock().u().insert(1); \
               for x in self.conns.lock().u().values() { x.write_all(b\"x\").u(); } \
               let b = self.beta.lock().u(); }",
        );
        // The for-header temporary is held across the loop body: write_all
        // blocks while `conns` is live.
        let wa = s.blocking.iter().find(|b| b.op == "write_all").expect("write_all seen");
        assert_eq!(lock_names(&wa.live), vec!["conns"]);
        // Both temporaries are dead by the time `beta` is taken.
        assert_eq!(lock_names(&s.acquires[2].live), Vec::<&str>::new());
    }

    #[test]
    fn condvar_wait_consumes_its_own_guard_only() {
        let s = summary(
            "{ let mut state = self.state.lock().u(); \
               state = self.not_empty.wait(state).u(); \
               let held = self.other.lock().u(); \
               state = self.not_empty.wait_timeout(state, dur).u(); }",
        );
        assert_eq!(s.blocking.len(), 2);
        // First wait: only its own guard is live — clean.
        assert_eq!(lock_names(&s.blocking[0].live), Vec::<&str>::new());
        // Second wait: `other` is held across the wait — that is the bug.
        assert_eq!(lock_names(&s.blocking[1].live), vec!["other"]);
    }

    #[test]
    fn stdio_locks_are_exempt() {
        let s = summary("{ let out = std::io::stdout().lock(); out.write_all(b\"x\").u(); }");
        assert!(s.acquires.is_empty(), "{:?}", s.acquires);
    }
}

//! Fixture: peer dispatching every opcode; annotated acquire load.

use crate::wire::Opcode;
use std::sync::atomic::{AtomicBool, Ordering};

pub fn dispatch(op: Opcode) -> u8 {
    match op {
        Opcode::Label => 1,
        Opcode::Stats => 2,
    }
}

pub fn is_closed(flag: &AtomicBool) -> bool {
    // goggles-lint: allow(atomics): pairs with the closer's Release store of the drain flag
    flag.load(Ordering::Acquire)
}

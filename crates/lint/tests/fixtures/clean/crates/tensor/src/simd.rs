//! Fixture: unsafe with an adjacent SAFETY comment.

pub fn first_unchecked(xs: &[f32]) -> f32 {
    assert!(!xs.is_empty());
    // SAFETY: non-emptiness is asserted on entry, so index 0 is in bounds.
    unsafe { *xs.get_unchecked(0) }
}

//! Lock-free metric primitives and a registry that renders them in the
//! Prometheus text exposition format.
//!
//! Design: the `Registry` holds a `Mutex`, but it is only taken when a
//! metric is *registered* (get-or-create by family name + label set) or when
//! the registry is *rendered* for a scrape. Callers cache the returned
//! handles — `Counter`, `Gauge`, `Histogram` are cheap `Arc` wrappers around
//! atomics — so the instrumentation hot path is a single relaxed atomic
//! add with no lock and no allocation.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Number of power-of-two histogram buckets. Bucket `i` covers values in
/// `(2^i, 2^(i+1)]` microseconds-or-whatever-unit, with bucket 0 also
/// absorbing 0 and 1, and the top bucket absorbing everything larger.
/// Matches the serving stack's `LatencyHistogram` so snapshots convert
/// bucket-for-bucket.
pub(crate) const POW2_BUCKETS: usize = 32;

/// Index of the power-of-two bucket for `value` (same scheme as the serving
/// crate's `LatencyHistogram::bucket_index`).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (63 - value.max(1).leading_zeros() as usize).min(POW2_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the top bucket).
#[inline]
pub(crate) fn bucket_upper(i: usize) -> u64 {
    if i + 1 >= POW2_BUCKETS {
        u64::MAX
    } else {
        1u64 << (i + 1)
    }
}

/// Monotonically increasing counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Counter detached from any registry (for tests or scratch use).
    pub(crate) fn detached() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed value (queue depths, versions, sizes).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Gauge detached from any registry (for tests or scratch use).
    pub(crate) fn detached() -> Self {
        Gauge(Arc::new(AtomicI64::new(0)))
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous floating-point value (scores, ratios). Stored as the
/// `f64` bit pattern in an `AtomicU64`, so reads and writes stay a single
/// relaxed atomic op — same hot-path cost as [`Gauge`].
#[derive(Clone)]
pub struct FloatGauge(Arc<AtomicU64>);

impl FloatGauge {
    /// Gauge detached from any registry (for tests or scratch use).
    pub(crate) fn detached() -> Self {
        FloatGauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }

    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Shared storage behind a [`Histogram`] handle.
pub(crate) struct HistogramCore {
    buckets: [AtomicU64; POW2_BUCKETS],
    sum: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

/// Power-of-two bucketed histogram; `observe` is two relaxed atomic adds.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Histogram detached from any registry (for tests or scratch use).
    pub(crate) fn detached() -> Self {
        Histogram(Arc::new(HistogramCore::new()))
    }

    #[inline]
    pub fn observe(&self, value: u64) {
        if let Some(bucket) = self.0.buckets.get(bucket_index(value)) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Consistent-enough copy of the current bucket counts and sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; POW2_BUCKETS];
        for (count, b) in counts.iter_mut().zip(self.0.buckets.iter()) {
            *count = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot { counts, sum: self.0.sum.load(Ordering::Relaxed) }
    }
}

/// Point-in-time copy of a histogram, with the same percentile semantics as
/// the serving crate's `LatencyHistogram` (conservative: reports the bucket
/// upper bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub counts: [u64; POW2_BUCKETS],
    pub sum: u64,
}

impl HistogramSnapshot {
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Upper bound of the bucket holding the `q`-quantile observation
    /// (0 when the histogram is empty).
    // goggles-lint: allow(dead-pub): snapshot quantile accessor the scrape text renders inline; exercised only by unit tests
    pub fn quantile_upper(&self, q: f64) -> u64 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(POW2_BUCKETS - 1)
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    FloatGauge(FloatGauge),
    Histogram(Histogram),
}

struct Series {
    /// Rendered label block, e.g. `{stage="embed"}`, or empty.
    labels: String,
    metric: Metric,
}

struct Family {
    name: String,
    help: String,
    kind: Kind,
    series: Vec<Series>,
}

/// A scrape-time closure that appends exposition text to the page.
/// `Arc` rather than `Box` so a scrape can snapshot the collector list and
/// run it *after* releasing the registry lock (collectors sample live
/// structures with locks of their own, which must never nest under ours).
type Collector = Arc<dyn Fn(&mut String) + Send + Sync>;

#[derive(Default)]
struct Inner {
    families: Vec<Family>,
    /// name -> index into `families`.
    by_name: HashMap<String, usize>,
    /// Closures that append extra exposition text at scrape time, for
    /// families whose values are sampled from live structures (e.g. the
    /// snapshot registry's per-version lease counts).
    collectors: Vec<Collector>,
}

/// A set of metric families, rendered together as one Prometheus text page.
///
/// Each serving stack owns its own `Registry` (so concurrently running
/// services — common under `cargo test` — do not pollute each other);
/// process-wide instrumentation (fit path, GEMM counters) lives in
/// [`global()`].
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get-or-create the counter `name{labels}`.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.series(
            name,
            help,
            Kind::Counter,
            labels,
            || Metric::Counter(Counter::detached()),
        ) {
            Metric::Counter(c) => c,
            // goggles-lint: allow(panic): type confusion at registration is a programming error, caught at spawn not per-request
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Get-or-create the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.series(name, help, Kind::Gauge, labels, || Metric::Gauge(Gauge::detached())) {
            Metric::Gauge(g) => g,
            // goggles-lint: allow(panic): type confusion at registration is a programming error, caught at spawn not per-request
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Get-or-create the floating-point gauge `name{labels}` (rendered as
    /// a Prometheus `gauge`). A family is either integer- or float-valued:
    /// mixing [`Registry::gauge`] and [`Registry::float_gauge`] series on
    /// one name panics at registration.
    pub fn float_gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> FloatGauge {
        match self
            .series(name, help, Kind::Gauge, labels, || Metric::FloatGauge(FloatGauge::detached()))
        {
            Metric::FloatGauge(g) => g,
            // goggles-lint: allow(panic): type confusion at registration is a programming error, caught at spawn not per-request
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Get-or-create the histogram `name{labels}`.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.series(name, help, Kind::Histogram, labels, || {
            Metric::Histogram(Histogram::detached())
        }) {
            Metric::Histogram(h) => h,
            // goggles-lint: allow(panic): type confusion at registration is a programming error, caught at spawn not per-request
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Register a closure that appends raw exposition text on every render.
    /// The closure is responsible for its own `# HELP` / `# TYPE` lines and
    /// must not reuse a family name already registered directly.
    pub fn register_collector(&self, f: impl Fn(&mut String) + Send + Sync + 'static) {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).collectors.push(Arc::new(f));
    }

    fn series(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let label_block = render_labels(labels);
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let idx = match inner.by_name.get(name) {
            Some(&idx) => idx,
            None => {
                let idx = inner.families.len();
                inner.families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    series: Vec::new(),
                });
                inner.by_name.insert(name.to_string(), idx);
                idx
            }
        };
        let Some(family) = inner.families.get_mut(idx) else {
            // `by_name` only ever points at pushed families; if that breaks,
            // hand back a working detached metric instead of panicking.
            return make();
        };
        assert!(
            family.kind == kind,
            "metric {name} already registered as {}",
            family.kind.as_str()
        );
        if let Some(series) = family.series.iter().find(|s| s.labels == label_block) {
            return clone_metric(&series.metric);
        }
        let metric = make();
        let cloned = clone_metric(&metric);
        family.series.push(Series { labels: label_block, metric });
        cloned
    }

    /// Render every family (and collector) as Prometheus text exposition.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(4096);
        self.render_into(&mut out);
        out
    }

    /// Append the exposition text to `out` (used to concatenate registries).
    pub fn render_into(&self, out: &mut String) {
        // Render the families under the lock, but only *snapshot* the
        // collector list: collectors take other subsystems' locks (e.g. the
        // snapshot registry state) and run after ours is released, so no
        // lock ever nests under the registry's.
        let collectors = {
            let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            self.render_families(&inner, out);
            inner.collectors.clone()
        };
        for collector in &collectors {
            collector(out);
        }
    }

    fn render_families(&self, inner: &Inner, out: &mut String) {
        for family in &inner.families {
            let _ = writeln!(out, "# HELP {} {}", family.name, family.help);
            let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind.as_str());
            for series in &family.series {
                match &series.metric {
                    Metric::Counter(c) => {
                        let _ = writeln!(out, "{}{} {}", family.name, series.labels, c.get());
                    }
                    Metric::Gauge(g) => {
                        let _ = writeln!(out, "{}{} {}", family.name, series.labels, g.get());
                    }
                    Metric::FloatGauge(g) => {
                        let _ = writeln!(out, "{}{} {}", family.name, series.labels, g.get());
                    }
                    Metric::Histogram(h) => {
                        render_histogram(out, &family.name, &series.labels, &h.snapshot());
                    }
                }
            }
        }
    }
}

fn clone_metric(metric: &Metric) -> Metric {
    match metric {
        Metric::Counter(c) => Metric::Counter(c.clone()),
        Metric::Gauge(g) => Metric::Gauge(g.clone()),
        Metric::FloatGauge(g) => Metric::FloatGauge(g.clone()),
        Metric::Histogram(h) => Metric::Histogram(h.clone()),
    }
}

/// Render `[("stage", "embed")]` as `{stage="embed"}` (empty slice -> "").
fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    out.push('}');
    out
}

/// Escape a label value per the exposition format (backslash, quote, newline).
pub(crate) fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

/// Render one histogram series as cumulative `_bucket` lines + `_sum`/`_count`.
fn render_histogram(out: &mut String, name: &str, labels: &str, snap: &HistogramSnapshot) {
    // Merge the `le` label into an existing label block if present.
    let with_le = |le: &str| -> String {
        if labels.is_empty() {
            format!("{{le=\"{le}\"}}")
        } else {
            format!("{},le=\"{le}\"}}", labels.strip_suffix('}').unwrap_or(labels))
        }
    };
    let mut cumulative = 0u64;
    // Scratch for the numeric `le` value, hoisted out of the bucket loop so
    // rendering a populated histogram does not allocate per bucket.
    let mut upper = String::new();
    for (i, &c) in snap.counts.iter().enumerate() {
        cumulative += c;
        // Skip interior empty buckets to keep scrapes small, but always
        // emit buckets that carry counts plus the +Inf terminator. The top
        // bucket is unbounded and is covered by the +Inf line itself.
        if c > 0 && i + 1 < POW2_BUCKETS {
            upper.clear();
            let _ = write!(upper, "{}", bucket_upper(i));
            let _ = writeln!(out, "{name}_bucket{} {cumulative}", with_le(&upper));
        }
    }
    let _ = writeln!(out, "{name}_bucket{} {cumulative}", with_le("+Inf"));
    let _ = writeln!(out, "{name}_sum{labels} {}", snap.sum);
    let _ = writeln!(out, "{name}_count{labels} {cumulative}");
}

/// Process-wide registry for instrumentation that has no service to hang
/// off: the fit path's EM loops and the GEMM kernel counters.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_matches_latency_histogram() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(u64::MAX), POW2_BUCKETS - 1);
        assert_eq!(bucket_upper(0), 2);
        assert_eq!(bucket_upper(1), 4);
        assert_eq!(bucket_upper(POW2_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn get_or_create_returns_the_same_underlying_series() {
        let reg = Registry::new();
        let a = reg.counter("x_total", "help", &[("k", "v")]);
        let b = reg.counter("x_total", "help", &[("k", "v")]);
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(b.get(), 4);
        // Different label set -> independent series under one family.
        let c = reg.counter("x_total", "help", &[("k", "w")]);
        c.inc();
        assert_eq!(c.get(), 1);
        assert_eq!(a.get(), 4);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("x_total", "help", &[]);
        let _ = reg.gauge("x_total", "help", &[]);
    }

    #[test]
    fn render_emits_prometheus_text() {
        let reg = Registry::new();
        reg.counter("g_requests_total", "requests", &[("result", "ok")]).add(5);
        reg.gauge("g_depth", "queue depth", &[]).set(-2);
        let h = reg.histogram("g_lat_us", "latency", &[("stage", "embed")]);
        h.observe(3); // bucket 1, upper 4
        h.observe(100); // bucket 6, upper 128
        let text = reg.render();
        assert!(text.contains("# HELP g_requests_total requests"));
        assert!(text.contains("# TYPE g_requests_total counter"));
        assert!(text.contains("g_requests_total{result=\"ok\"} 5"));
        assert!(text.contains("# TYPE g_depth gauge"));
        assert!(text.contains("g_depth -2"));
        assert!(text.contains("# TYPE g_lat_us histogram"));
        assert!(text.contains("g_lat_us_bucket{stage=\"embed\",le=\"4\"} 1"));
        assert!(text.contains("g_lat_us_bucket{stage=\"embed\",le=\"128\"} 2"));
        assert!(text.contains("g_lat_us_bucket{stage=\"embed\",le=\"+Inf\"} 2"));
        assert!(text.contains("g_lat_us_sum{stage=\"embed\"} 103"));
        assert!(text.contains("g_lat_us_count{stage=\"embed\"} 2"));
    }

    #[test]
    fn float_gauges_round_trip_and_render() {
        let reg = Registry::new();
        let g = reg.float_gauge("g_score", "dev score", &[]);
        g.set(0.8125);
        assert_eq!(g.get(), 0.8125);
        let again = reg.float_gauge("g_score", "dev score", &[]);
        assert_eq!(again.get(), 0.8125);
        let text = reg.render();
        assert!(text.contains("# TYPE g_score gauge"));
        assert!(text.contains("g_score 0.8125"));
        g.set(-1.5);
        assert_eq!(again.get(), -1.5);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn float_and_integer_gauges_do_not_mix() {
        let reg = Registry::new();
        let _ = reg.gauge("g_mixed", "help", &[]);
        let _ = reg.float_gauge("g_mixed", "help", &[]);
    }

    #[test]
    fn collectors_append_on_render() {
        let reg = Registry::new();
        reg.register_collector(|out| out.push_str("g_custom 7\n"));
        assert!(reg.render().contains("g_custom 7"));
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn snapshot_quantiles_are_conservative_upper_bounds() {
        let h = Histogram::detached();
        for v in [1u64, 1, 1, 1000] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.total(), 4);
        assert_eq!(snap.quantile_upper(0.5), 2); // bucket of the 1s
        assert_eq!(snap.quantile_upper(0.99), 1024); // bucket of 1000
        assert_eq!(HistogramSnapshot { counts: [0; POW2_BUCKETS], sum: 0 }.quantile_upper(0.5), 0);
    }
}

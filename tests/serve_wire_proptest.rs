//! Property tests over the network wire protocol, mirroring what
//! `serve_codec_proptest.rs` does for snapshots: truncated frames,
//! bit-flips, oversized length fields and garbage opcodes must always come
//! back as `Err` — never a panic, never a hang, never an unbounded
//! allocation — at both the framing layer and the payload decoders.

use goggles::serve::service::LabelResponse;
use goggles::serve::wire::{
    decode_error_reply, decode_frame, decode_label_reply, decode_label_request,
    decode_metrics_reply, decode_reload_reply, decode_reload_request, decode_stats_reply,
    encode_frame, encode_label_request, encode_metrics_reply, encode_reload_request, read_frame,
    Opcode, MAX_FRAME_LEN,
};
use goggles::serve::ServeError;
use goggles_vision::Image;
use proptest::prelude::*;

/// A deterministic well-formed frame to mutate (label request with a real
/// image payload — the largest and most structured request).
fn reference_frame() -> Vec<u8> {
    let mut image = Image::new(3, 8, 8);
    for (i, v) in image.tensor_mut().as_mut_slice().iter_mut().enumerate() {
        *v = (i as f32).sin();
    }
    encode_frame(Opcode::LabelRequest, 77, &encode_label_request(&image, 1_000))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every truncated prefix fails cleanly in both the slice decoder and
    /// the streaming reader (except the empty prefix, which is a clean
    /// end-of-stream for the streaming reader).
    #[test]
    fn truncated_frames_always_err(cut in 0usize..1_000_000) {
        let bytes = reference_frame();
        let cut = cut % bytes.len();
        prop_assert!(decode_frame(&bytes[..cut]).is_err(), "cut {cut}");
        let mut cursor = std::io::Cursor::new(bytes[..cut].to_vec());
        if cut == 0 {
            prop_assert!(matches!(read_frame(&mut cursor), Ok(None)));
        } else {
            prop_assert!(read_frame(&mut cursor).is_err(), "stream cut {cut}");
        }
    }

    /// Any single bit flip anywhere in the frame is rejected (magic, length
    /// bounds, or checksum — something always catches it).
    #[test]
    fn bit_flips_always_err(pos in 0usize..1_000_000, bit in 0usize..8) {
        let bytes = reference_frame();
        let mut bad = bytes.clone();
        let pos = pos % bad.len();
        bad[pos] ^= 1 << bit;
        prop_assert!(decode_frame(&bad).is_err(), "flip at {pos} bit {bit}");
    }

    /// Oversized length fields are rejected before any allocation.
    #[test]
    fn oversized_frame_lengths_always_err(huge in (MAX_FRAME_LEN as u32 + 1)..u32::MAX) {
        let mut bytes = reference_frame();
        bytes[4..8].copy_from_slice(&huge.to_le_bytes());
        match decode_frame(&bytes) {
            Err(ServeError::Wire(msg)) => prop_assert!(msg.contains("implausible"), "{msg}"),
            other => panic!("expected Wire error, got {other:?}"),
        }
        let mut cursor = std::io::Cursor::new(bytes);
        prop_assert!(read_frame(&mut cursor).is_err());
    }

    /// Garbage opcode bytes (re-checksummed so they reach the opcode
    /// check) are rejected, never dispatched. Valid opcodes stop at 13
    /// (`IngestReply`).
    #[test]
    fn garbage_opcodes_always_err(op in 14u16..256) {
        use goggles::serve::codec::fnv1a;
        let mut bytes = reference_frame();
        bytes[8] = op as u8;
        let n = bytes.len();
        let c = fnv1a(&bytes[8..n - 8]);
        bytes[n - 8..].copy_from_slice(&c.to_le_bytes());
        match decode_frame(&bytes) {
            Err(ServeError::Wire(msg)) => prop_assert!(msg.contains("opcode"), "{msg}"),
            other => panic!("expected Wire error, got {other:?}"),
        }
    }

    /// Arbitrary byte soup never panics any payload decoder, and whatever
    /// decodes as a label request has exactly the advertised shape.
    #[test]
    fn payload_decoders_never_panic_on_byte_soup(
        bytes in proptest::collection::vec(0u16..256, 0..128),
    ) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        if let Ok(req) = decode_label_request(&bytes) {
            let (c, h, w) = req.image.shape();
            prop_assert!(c > 0 && h > 0 && w > 0);
        }
        if let Ok(resp) = decode_label_reply(&bytes) {
            prop_assert!(resp.label < resp.probs.len());
        }
        let _ = decode_error_reply(&bytes);
        let _ = decode_stats_reply(&bytes);
        let _ = decode_metrics_reply(&bytes);
        let _ = decode_reload_request(&bytes);
        let _ = decode_reload_reply(&bytes);
        let _ = decode_frame(&bytes);
    }

    /// Round trip: every encodable (opcode, id, payload) decodes back
    /// identically, including through the streaming reader.
    #[test]
    fn frames_round_trip(id in 0u64..u64::MAX, payload in proptest::collection::vec(0u16..256, 0..64)) {
        let payload: Vec<u8> = payload.into_iter().map(|b| b as u8).collect();
        let bytes = encode_frame(Opcode::StatsReply, id, &payload);
        let (frame, consumed) = decode_frame(&bytes).unwrap();
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(frame.opcode, Opcode::StatsReply);
        prop_assert_eq!(frame.request_id, id);
        prop_assert_eq!(frame.payload, payload);
    }

    /// Label replies round trip bit-exactly for arbitrary probability rows
    /// — the property the "remote ≡ in-process" guarantee rests on.
    #[test]
    fn label_replies_round_trip_bit_exactly(
        probs in proptest::collection::vec(0u16..1000, 1..12),
        version in 0u64..1000,
    ) {
        let probs: Vec<f64> = probs.into_iter().map(|p| f64::from(p) / 999.0).collect();
        let label = goggles_tensor::argmax(&probs);
        let resp = LabelResponse { label, probs, batch_size: 3, version };
        let payload = goggles::serve::wire::encode_label_reply(&resp);
        prop_assert_eq!(decode_label_reply(&payload).unwrap(), resp);
    }

    /// Metrics replies carry arbitrary Prometheus text verbatim, and every
    /// truncation of the encoding is rejected rather than misread.
    #[test]
    fn metrics_replies_round_trip_and_reject_truncation(
        chars in proptest::collection::vec(32u16..127, 0..256),
        cut in 0usize..1_000_000,
    ) {
        let text: String = chars.into_iter().map(|c| c as u8 as char).collect();
        let payload = encode_metrics_reply(&text);
        prop_assert_eq!(decode_metrics_reply(&payload).unwrap(), text);
        let cut = cut % payload.len().max(1);
        if cut < payload.len() {
            prop_assert!(decode_metrics_reply(&payload[..cut]).is_err(), "cut {cut}");
        }
    }

    /// Reload paths with arbitrary (valid-UTF-8) content round trip.
    #[test]
    fn reload_requests_round_trip(chars in proptest::collection::vec(32u16..127, 0..64)) {
        let path: String = chars.into_iter().map(|c| c as u8 as char).collect();
        let payload = encode_reload_request(&path);
        prop_assert_eq!(decode_reload_request(&payload).unwrap(), path);
    }

    /// Every `ServeError` variant round trips through the wire error reply
    /// with its variant *and* retryable flag intact — the property the
    /// client's `RetryPolicy` relies on to classify remote failures.
    #[test]
    fn error_replies_round_trip_variant_and_retryable_flag(
        variant in 0usize..9,
        chars in proptest::collection::vec(32u16..127, 0..48),
    ) {
        use goggles::serve::wire::encode_error_reply;
        let msg: String = chars.into_iter().map(|c| c as u8 as char).collect();
        let e = match variant {
            0 => ServeError::Snapshot(msg),
            1 => ServeError::Corrupt(msg),
            2 => ServeError::Io(msg),
            3 => ServeError::Pipeline(goggles_core::GogglesError::InvalidInput(msg)),
            4 => ServeError::Registry(msg),
            5 => ServeError::Closed,
            6 => ServeError::Deadline,
            7 => ServeError::Wire(msg),
            _ => ServeError::Overloaded,
        };
        let payload = encode_error_reply(&e);
        let decoded = decode_error_reply(&payload).unwrap();
        prop_assert_eq!(std::mem::discriminant(&decoded), std::mem::discriminant(&e));
        prop_assert_eq!(decoded.retryable(), e.retryable());
        // The encoder ships the rendered message; the decoded error must
        // still carry it in full (re-prefixed by its own Display).
        let rendered = e.to_string();
        prop_assert!(decoded.to_string().contains(&rendered));
    }

    /// A forged retryable flag never sneaks through: toggling it (so it
    /// disagrees with the error code) or using any value other than 0/1 is
    /// rejected at decode time.
    #[test]
    fn lying_retryable_flags_always_err(
        variant in 0usize..9,
        junk in 2u16..256,
    ) {
        use goggles::serve::wire::encode_error_reply;
        let e = match variant {
            0 => ServeError::Snapshot("s".into()),
            1 => ServeError::Corrupt("c".into()),
            2 => ServeError::Io("i".into()),
            3 => ServeError::Pipeline(goggles_core::GogglesError::InvalidInput("p".into())),
            4 => ServeError::Registry("r".into()),
            5 => ServeError::Closed,
            6 => ServeError::Deadline,
            7 => ServeError::Wire("w".into()),
            _ => ServeError::Overloaded,
        };
        let mut toggled = encode_error_reply(&e);
        toggled[1] ^= 1; // flag now disagrees with the variant's retryable()
        prop_assert!(matches!(decode_error_reply(&toggled), Err(ServeError::Wire(_))));
        let mut garbage = encode_error_reply(&e);
        garbage[1] = junk as u8; // not a boolean at all
        prop_assert!(matches!(decode_error_reply(&garbage), Err(ServeError::Wire(_))));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// An `Ingest` request round trips shape and pixels bit-exactly: the
    /// trainer's incremental-append guarantee starts at the wire — if the
    /// decoded image differed from what the client sent by even one ULP,
    /// "append ≡ rebuild" would be unprovable.
    #[test]
    fn ingest_requests_round_trip_bit_exactly(
        c in 1usize..4,
        h in 1usize..10,
        w in 1usize..10,
        salt in 0u32..1_000_000,
    ) {
        use goggles::serve::wire::{decode_ingest_request, encode_ingest_request};
        let mut image = Image::new(c, h, w);
        for (i, v) in image.tensor_mut().as_mut_slice().iter_mut().enumerate() {
            *v = ((i as u32).wrapping_mul(2_654_435_761).wrapping_add(salt) as f32).sin();
        }
        let decoded = decode_ingest_request(&encode_ingest_request(&image)).unwrap();
        prop_assert_eq!(decoded.shape(), image.shape());
        let sent: Vec<u32> = image.tensor().as_slice().iter().map(|v| v.to_bits()).collect();
        let got: Vec<u32> = decoded.tensor().as_slice().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(sent, got);
    }

    /// A truncated or padded `Ingest` payload never decodes: the pixel
    /// count must exactly match the shape header.
    #[test]
    fn ingest_requests_reject_length_mismatch(trim in 1usize..12, pad in 1usize..12) {
        use goggles::serve::wire::{decode_ingest_request, encode_ingest_request};
        let image = Image::new(2, 4, 4);
        let encoded = encode_ingest_request(&image);
        let truncated = &encoded[..encoded.len() - trim];
        prop_assert!(matches!(decode_ingest_request(truncated), Err(ServeError::Wire(_))));
        let mut padded = encoded.clone();
        padded.extend(std::iter::repeat_n(0u8, pad));
        prop_assert!(matches!(decode_ingest_request(&padded), Err(ServeError::Wire(_))));
    }

    /// An `IngestReply` is exactly one little-endian u64 — anything longer
    /// or shorter is rejected.
    #[test]
    fn ingest_replies_decode_exactly_eight_bytes(accepted in 0u64..u64::MAX, junk in 1usize..8) {
        use goggles::serve::wire::decode_ingest_reply;
        let payload = accepted.to_le_bytes().to_vec();
        prop_assert_eq!(decode_ingest_reply(&payload).unwrap(), accepted);
        prop_assert!(matches!(decode_ingest_reply(&payload[..8 - junk]), Err(ServeError::Wire(_))));
        let mut long = payload.clone();
        long.push(0);
        prop_assert!(matches!(decode_ingest_reply(&long), Err(ServeError::Wire(_))));
    }
}

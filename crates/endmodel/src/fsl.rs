//! Few-shot learning comparison: the Baseline++ cosine classifier of
//! Chen et al., "A Closer Look at Few-shot Classification" (ICLR 2019) —
//! the FSL column of Table 2.
//!
//! Baseline++ freezes the backbone and trains a classifier whose logit for
//! class `k` is a scaled cosine similarity between the feature vector and a
//! learned class weight vector. §5.1.3: the paper's "2-way 5-shot" setup
//! trains this head on exactly the same 10-example development set GOGGLES
//! uses, over the same frozen VGG-16 features.

use crate::adam::Adam;
use goggles_tensor::rng::{normal, std_rng};
use goggles_tensor::{log_sum_exp, Matrix};

/// Cosine-similarity classifier head (Baseline++).
#[derive(Debug, Clone)]
pub struct CosineClassifier {
    /// Class weight vectors, `K × d`.
    weights: Matrix<f64>,
    /// Logit temperature (Baseline++ uses a fixed scale).
    scale: f64,
}

impl CosineClassifier {
    /// Train on the (few) support examples with cross-entropy + Adam.
    ///
    /// `features`: `n × d` support features (the dev set); `labels` their
    /// classes; `epochs` full-batch steps at learning rate 1e-3 (§5.1.3).
    pub fn train(
        features: &Matrix<f64>,
        labels: &[usize],
        num_classes: usize,
        epochs: usize,
        seed: u64,
    ) -> Self {
        let (n, d) = features.shape();
        assert_eq!(labels.len(), n, "label arity");
        assert!(n > 0 && num_classes >= 2, "need support examples and ≥ 2 classes");
        // Init class weights at the normalized class means (a strong,
        // standard initialization for cosine heads), with tiny noise to
        // break exact ties.
        let mut rng = std_rng(seed);
        let mut weights = Matrix::<f64>::zeros(num_classes, d);
        let mut counts = vec![0.0f64; num_classes];
        for (i, &l) in labels.iter().enumerate() {
            assert!(l < num_classes, "label {l} out of range");
            counts[l] += 1.0;
            for (w, &x) in weights.row_mut(l).iter_mut().zip(features.row(i)) {
                *w += x;
            }
        }
        for c in 0..num_classes {
            let inv = 1.0 / counts[c].max(1.0);
            for w in weights.row_mut(c) {
                *w = *w * inv + 1e-3 * normal(&mut rng);
            }
        }
        let scale = 10.0;
        let mut params: Vec<f64> = weights.as_slice().to_vec();
        let mut opt = Adam::new(params.len(), 1e-3);
        let mut grads = vec![0.0f64; params.len()];
        let mut logits = vec![0.0f64; num_classes];
        for _ in 0..epochs {
            grads.fill(0.0);
            for i in 0..n {
                let x = features.row(i);
                let x_norm = l2_norm(x).max(1e-12);
                // forward: cosine logits
                let mut w_norms = vec![0.0f64; num_classes];
                for c in 0..num_classes {
                    let w = &params[c * d..(c + 1) * d];
                    w_norms[c] = l2_norm(w).max(1e-12);
                    let dot: f64 = w.iter().zip(x).map(|(&a, &b)| a * b).sum();
                    logits[c] = scale * dot / (w_norms[c] * x_norm);
                }
                let lse = log_sum_exp(&logits);
                for c in 0..num_classes {
                    let p = (logits[c] - lse).exp();
                    let err = p - f64::from(u8::from(labels[i] == c));
                    // d cos(w,x)/dw = x/(|w||x|) − cos · w/|w|²
                    let w = &params[c * d..(c + 1) * d];
                    let cos = logits[c] / scale;
                    let g = &mut grads[c * d..(c + 1) * d];
                    for ((gv, &wv), &xv) in g.iter_mut().zip(w).zip(x) {
                        let dcos =
                            xv / (w_norms[c] * x_norm) - cos * wv / (w_norms[c] * w_norms[c]);
                        *gv += err * scale * dcos;
                    }
                }
            }
            let inv_n = 1.0 / n as f64;
            for g in &mut grads {
                *g *= inv_n;
            }
            opt.step(&mut params, &grads);
        }
        let weights = Matrix::from_vec(num_classes, d, params).expect("shape preserved");
        Self { weights, scale }
    }

    /// Class probabilities for query features.
    pub fn predict_proba(&self, features: &Matrix<f64>) -> Matrix<f64> {
        let k = self.weights.rows();
        let d = self.weights.cols();
        assert_eq!(features.cols(), d, "feature dim mismatch");
        let mut out = Matrix::<f64>::zeros(features.rows(), k);
        let mut logits = vec![0.0f64; k];
        for (i, x) in features.rows_iter().enumerate() {
            let xn = l2_norm(x).max(1e-12);
            for c in 0..k {
                let w = self.weights.row(c);
                let wn = l2_norm(w).max(1e-12);
                let dot: f64 = w.iter().zip(x).map(|(&a, &b)| a * b).sum();
                logits[c] = self.scale * dot / (wn * xn);
            }
            let lse = log_sum_exp(&logits);
            for c in 0..k {
                out[(i, c)] = (logits[c] - lse).exp();
            }
        }
        out
    }

    /// Hard predictions.
    pub fn predict(&self, features: &Matrix<f64>) -> Vec<usize> {
        let p = self.predict_proba(features);
        (0..p.rows()).map(|i| goggles_tensor::argmax(p.row(i))).collect()
    }
}

#[inline]
fn l2_norm(v: &[f64]) -> f64 {
    v.iter().map(|&x| x * x).sum::<f64>().sqrt()
}

/// The plain "Baseline" variant of Chen et al. (no cosine normalization):
/// an ordinary linear softmax head trained on the support set. Kept for the
/// Baseline-vs-Baseline++ comparison the FSL reference paper runs; the
/// GOGGLES paper's FSL column uses Baseline++ ([`CosineClassifier`]).
#[derive(Debug, Clone)]
// goggles-lint: allow(dead-pub): the paper's linear few-shot baseline head, API-symmetric with the exported CosineClassifier; exercised only by unit tests
pub struct LinearFewShot {
    head: crate::head::SoftmaxHead,
}

impl LinearFewShot {
    /// Train a linear head on the (few) support examples.
    pub fn train(
        features: &goggles_tensor::Matrix<f64>,
        labels: &[usize],
        num_classes: usize,
        epochs: usize,
        seed: u64,
    ) -> Self {
        let soft = crate::evaluate::one_hot_labels(labels, num_classes);
        let cfg = crate::head::TrainConfig { epochs, seed, ..crate::head::TrainConfig::default() };
        Self { head: crate::head::SoftmaxHead::train(features, &soft, &cfg) }
    }

    /// Hard predictions for query features.
    pub fn predict(&self, features: &goggles_tensor::Matrix<f64>) -> Vec<usize> {
        self.head.predict(features)
    }

    /// Class probabilities for query features.
    pub fn predict_proba(
        &self,
        features: &goggles_tensor::Matrix<f64>,
    ) -> goggles_tensor::Matrix<f64> {
        self.head.predict_proba(features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::accuracy;
    use goggles_tensor::rng::std_rng;

    fn blobs(n_per: usize, sep: f64, seed: u64) -> (Matrix<f64>, Vec<usize>) {
        let mut rng = std_rng(seed);
        let n = 2 * n_per;
        let truth: Vec<usize> = (0..n).map(|i| usize::from(i >= n_per)).collect();
        let feats = Matrix::from_fn(n, 8, |i, j| {
            let c = if truth[i] == 0 { -sep } else { sep };
            // direction varies per feature to avoid axis alignment
            let sign = if j % 2 == 0 { 1.0 } else { -0.5 };
            c * sign + normal(&mut rng)
        });
        (feats, truth)
    }

    #[test]
    fn five_shot_generalizes_on_separable_features() {
        let (support, s_labels) = blobs(5, 2.0, 1); // 5 per class
        let (query, q_labels) = blobs(100, 2.0, 2);
        let clf = CosineClassifier::train(&support, &s_labels, 2, 100, 0);
        let acc = accuracy(&clf.predict(&query), &q_labels);
        assert!(acc > 0.9, "5-shot accuracy = {acc}");
    }

    #[test]
    fn chance_level_on_unseparable_features() {
        let (support, s_labels) = blobs(5, 0.0, 3);
        let (query, q_labels) = blobs(100, 0.0, 4);
        let clf = CosineClassifier::train(&support, &s_labels, 2, 100, 0);
        let acc = accuracy(&clf.predict(&query), &q_labels);
        assert!((0.3..0.7).contains(&acc), "noise accuracy = {acc}");
    }

    #[test]
    fn cosine_head_is_scale_invariant_in_features() {
        let (support, s_labels) = blobs(5, 2.0, 5);
        let (query, _) = blobs(20, 2.0, 6);
        let clf = CosineClassifier::train(&support, &s_labels, 2, 50, 0);
        let scaled = query.map(|v| v * 7.5);
        assert_eq!(clf.predict(&query), clf.predict(&scaled));
    }

    #[test]
    fn probabilities_normalized() {
        let (support, s_labels) = blobs(4, 1.0, 7);
        let clf = CosineClassifier::train(&support, &s_labels, 2, 30, 0);
        let p = clf.predict_proba(&support);
        for i in 0..p.rows() {
            assert!((p.row(i).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn training_improves_over_initialization() {
        // With heavy class overlap the class-mean init is poor; training
        // should not make support accuracy worse.
        let (support, s_labels) = blobs(10, 0.8, 8);
        let init = CosineClassifier::train(&support, &s_labels, 2, 0, 0);
        let trained = CosineClassifier::train(&support, &s_labels, 2, 200, 0);
        let a0 = accuracy(&init.predict(&support), &s_labels);
        let a1 = accuracy(&trained.predict(&support), &s_labels);
        assert!(a1 >= a0 - 0.05, "training hurt: {a0} → {a1}");
    }

    #[test]
    fn linear_baseline_learns_separable_support() {
        let (support, s_labels) = blobs(5, 2.0, 9);
        let (query, q_labels) = blobs(60, 2.0, 10);
        let clf = LinearFewShot::train(&support, &s_labels, 2, 200, 0);
        let acc = accuracy(&clf.predict(&query), &q_labels);
        assert!(acc > 0.85, "linear few-shot accuracy = {acc}");
        let p = clf.predict_proba(&query);
        for i in 0..p.rows() {
            assert!((p.row(i).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn cosine_head_is_not_scale_sensitive_but_linear_is() {
        // The defining difference between Baseline and Baseline++.
        let (support, s_labels) = blobs(5, 1.5, 11);
        let (query, _) = blobs(20, 1.5, 12);
        let cosine = CosineClassifier::train(&support, &s_labels, 2, 50, 0);
        let scaled = query.map(|v| 100.0 * v);
        assert_eq!(cosine.predict(&query), cosine.predict(&scaled));
    }

    use goggles_tensor::rng::normal;
}

//! Minimal netpbm image I/O: binary PPM (P6, color) and PGM (P5, grayscale).
//!
//! Lets users inspect the synthetic datasets with any image viewer and
//! round-trip images through disk without adding an image-codec dependency.

use crate::image::Image;
use std::io::{Read as _, Write as _};
use std::path::Path;

/// Errors from netpbm encoding/decoding.
#[derive(Debug)]
// goggles-lint: allow(dead-pub): error type of the pub write_pnm API: external callers name it only through `?`/inference
pub enum PnmError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed or unsupported file content.
    Format(String),
    /// Image shape unsupported by the requested format.
    Unsupported(String),
}

impl std::fmt::Display for PnmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PnmError::Io(e) => write!(f, "io error: {e}"),
            PnmError::Format(msg) => write!(f, "format error: {msg}"),
            PnmError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for PnmError {}

impl From<std::io::Error> for PnmError {
    fn from(e: std::io::Error) -> Self {
        PnmError::Io(e)
    }
}

/// Write an image as binary PPM (3-channel) or PGM (1-channel), 8-bit,
/// values clamped to `[0, 1]` then scaled to 0–255.
pub fn write_pnm(img: &Image, path: &Path) -> Result<(), PnmError> {
    let (c, h, w) = img.shape();
    let (magic, channels) = match c {
        1 => ("P5", 1usize),
        3 => ("P6", 3usize),
        other => {
            return Err(PnmError::Unsupported(format!(
                "netpbm supports 1 or 3 channels, image has {other}"
            )))
        }
    };
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let file = std::fs::File::create(path)?;
    let mut out = std::io::BufWriter::new(file);
    write!(out, "{magic}\n{w} {h}\n255\n")?;
    let mut buf = Vec::with_capacity(h * w * channels);
    for y in 0..h {
        for x in 0..w {
            for ch in 0..channels {
                let v = img.get(ch, y, x).clamp(0.0, 1.0);
                buf.push((v * 255.0).round() as u8);
            }
        }
    }
    out.write_all(&buf)?;
    out.flush()?;
    Ok(())
}

/// Read a binary PPM (P6) or PGM (P5) file into an [`Image`] with values
/// scaled to `[0, 1]`. Comments (`#`) in the header are honoured.
// goggles-lint: allow(dead-pub): round-trip inverse of the exported write_pnm; exercised by this crate's unit tests
pub fn read_pnm(path: &Path) -> Result<Image, PnmError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    let mut pos = 0usize;

    let mut next_token = |bytes: &[u8]| -> Result<String, PnmError> {
        // skip whitespace and comments
        loop {
            while pos < bytes.len() && bytes[pos].is_ascii_whitespace() {
                pos += 1;
            }
            if pos < bytes.len() && bytes[pos] == b'#' {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            } else {
                break;
            }
        }
        let start = pos;
        while pos < bytes.len() && !bytes[pos].is_ascii_whitespace() {
            pos += 1;
        }
        if start == pos {
            return Err(PnmError::Format("unexpected end of header".into()));
        }
        Ok(String::from_utf8_lossy(&bytes[start..pos]).into_owned())
    };

    let magic = next_token(&bytes)?;
    let channels = match magic.as_str() {
        "P5" => 1usize,
        "P6" => 3usize,
        other => return Err(PnmError::Format(format!("unsupported magic {other:?}"))),
    };
    let parse = |tok: String| -> Result<usize, PnmError> {
        tok.parse::<usize>().map_err(|_| PnmError::Format(format!("bad header token {tok:?}")))
    };
    let w = parse(next_token(&bytes)?)?;
    let h = parse(next_token(&bytes)?)?;
    let maxval = parse(next_token(&bytes)?)?;
    if maxval == 0 || maxval > 255 {
        return Err(PnmError::Format(format!("unsupported maxval {maxval}")));
    }
    // exactly one whitespace byte separates header from raster
    pos += 1;
    let needed = w * h * channels;
    if bytes.len() < pos + needed {
        return Err(PnmError::Format(format!(
            "raster truncated: need {needed} bytes, have {}",
            bytes.len().saturating_sub(pos)
        )));
    }
    let mut img = Image::new(channels, h, w);
    let scale = 1.0 / maxval as f32;
    let mut i = pos;
    for y in 0..h {
        for x in 0..w {
            for ch in 0..channels {
                img.set(ch, y, x, bytes[i] as f32 * scale);
                i += 1;
            }
        }
    }
    Ok(img)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::draw;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("goggles_pnm_{}_{name}", std::process::id()))
    }

    #[test]
    fn ppm_round_trip_color() {
        let mut img = Image::new(3, 9, 7);
        draw::fill_disc(&mut img, 4.0, 3.0, 2.0, &[1.0, 0.5, 0.25]);
        let path = tmp("rt.ppm");
        write_pnm(&img, &path).unwrap();
        let back = read_pnm(&path).unwrap();
        assert_eq!(back.shape(), (3, 9, 7));
        // 8-bit quantization: within 1/255
        for (a, b) in img.tensor().as_slice().iter().zip(back.tensor().as_slice()) {
            assert!((a - b).abs() <= 1.0 / 255.0 + 1e-6, "{a} vs {b}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pgm_round_trip_grayscale() {
        let mut img = Image::new(1, 5, 5);
        img.set(0, 2, 2, 0.7);
        let path = tmp("rt.pgm");
        write_pnm(&img, &path).unwrap();
        let back = read_pnm(&path).unwrap();
        assert_eq!(back.channels(), 1);
        assert!((back.get(0, 2, 2) - 0.7).abs() < 1.0 / 255.0 + 1e-6);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_two_channel_images() {
        let img = Image::new(2, 3, 3);
        let err = write_pnm(&img, &tmp("bad.ppm")).unwrap_err();
        assert!(matches!(err, PnmError::Unsupported(_)));
    }

    #[test]
    fn header_comments_are_skipped() {
        let path = tmp("comment.pgm");
        std::fs::write(&path, b"P5\n# a comment\n2 2\n255\n\x00\x40\x80\xff").unwrap();
        let img = read_pnm(&path).unwrap();
        assert_eq!(img.shape(), (1, 2, 2));
        assert!((img.get(0, 1, 1) - 1.0).abs() < 1e-6);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_raster_is_rejected() {
        let path = tmp("trunc.pgm");
        std::fs::write(&path, b"P5\n4 4\n255\n\x00\x01").unwrap();
        assert!(matches!(read_pnm(&path), Err(PnmError::Format(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn values_clamp_on_write() {
        let mut img = Image::new(1, 1, 2);
        img.set(0, 0, 0, 1.7);
        img.set(0, 0, 1, -0.3);
        let path = tmp("clamp.pgm");
        write_pnm(&img, &path).unwrap();
        let back = read_pnm(&path).unwrap();
        assert_eq!(back.get(0, 0, 0), 1.0);
        assert_eq!(back.get(0, 0, 1), 0.0);
        std::fs::remove_file(&path).ok();
    }
}

//! Shared evaluation protocol: feature standardization (fit on train, apply
//! everywhere) and accuracy metrics.

use goggles_tensor::Matrix;

/// Per-feature affine standardizer fit on training features.
#[derive(Debug, Clone)]
// goggles-lint: allow(dead-pub): return type of pub standardize_fit; external callers reach it through inference
pub struct Standardizer {
    means: Vec<f64>,
    inv_stds: Vec<f64>,
}

impl Standardizer {
    /// Apply to a feature matrix (columns must match the fit dimension).
    pub fn transform(&self, features: &Matrix<f64>) -> Matrix<f64> {
        assert_eq!(features.cols(), self.means.len(), "feature dim mismatch");
        Matrix::from_fn(features.rows(), features.cols(), |i, j| {
            (features[(i, j)] - self.means[j]) * self.inv_stds[j]
        })
    }
}

/// Fit a standardizer on training features (variance floored at 1e-12).
pub fn standardize_fit(train: &Matrix<f64>) -> Standardizer {
    let means = train.col_means();
    let vars = train.col_variances();
    let inv_stds = vars.iter().map(|&v| 1.0 / v.max(1e-12).sqrt()).collect();
    Standardizer { means, inv_stds }
}

/// Fraction of predictions equal to truth.
pub fn accuracy(predicted: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(predicted.len(), truth.len());
    if truth.is_empty() {
        return 0.0;
    }
    predicted.iter().zip(truth).filter(|(a, b)| a == b).count() as f64 / truth.len() as f64
}

/// One-hot probabilistic labels from hard labels (the supervised
/// upper-bound trains on these).
pub fn one_hot_labels(labels: &[usize], num_classes: usize) -> Matrix<f64> {
    let mut out = Matrix::<f64>::zeros(labels.len(), num_classes);
    for (i, &l) in labels.iter().enumerate() {
        assert!(l < num_classes, "label {l} out of range");
        out[(i, l)] = 1.0;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizer_zero_mean_unit_var() {
        let train = Matrix::from_rows(&[&[1.0, 10.0], &[3.0, 10.0], &[5.0, 10.0]]);
        let s = standardize_fit(&train);
        let z = s.transform(&train);
        let means = z.col_means();
        assert!(means[0].abs() < 1e-12);
        let vars = z.col_variances();
        assert!((vars[0] - 1.0).abs() < 1e-9);
        // constant column stays finite (0 after centering)
        assert!(z.col(1).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn standardizer_applies_train_statistics_to_test() {
        let train = Matrix::from_rows(&[&[0.0], &[2.0]]);
        let s = standardize_fit(&train);
        let test = Matrix::from_rows(&[&[4.0]]);
        let z = s.transform(&test);
        // mean 1, std 1 → (4-1)/1 = 3
        assert!((z[(0, 0)] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[0, 1, 1], &[0, 1, 0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn one_hot_shape_and_content() {
        let oh = one_hot_labels(&[1, 0, 2], 3);
        assert_eq!(oh.shape(), (3, 3));
        assert_eq!(oh.row(0), &[0.0, 1.0, 0.0]);
        assert_eq!(oh.row(2), &[0.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic]
    fn one_hot_rejects_out_of_range() {
        let _ = one_hot_labels(&[3], 3);
    }
}

//! A hand-rolled Rust lexer: enough of the language to drive token-level
//! lint rules, with comments and line spans retained.
//!
//! This is deliberately **not** a parser (`syn` is a registry dependency —
//! see the workspace's offline constraint). The rules in this crate match
//! token shapes (`ident '.' ident '('`, `'#' '[' cfg(test) ']'`, postfix
//! `'['`), which a faithful token stream supports without any grammar. The
//! lexer therefore must get exactly one thing right: never confuse code
//! with non-code. Strings (plain, raw, byte), char literals, lifetimes and
//! nested block comments are all handled so that an `unwrap` inside a
//! string literal or a doc comment is never reported as a call.

/// What a token is, at the granularity the rules care about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `unsafe`, `match`, `r#type` …).
    Ident(String),
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime(String),
    /// String / raw-string / byte-string literal (content not retained).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal (integers, floats, any radix or suffix).
    Num,
    /// A single punctuation character (`.`, `[`, `#`, `:` …). Multi-char
    /// operators arrive as consecutive tokens; the rules only ever match
    /// single characters or short sequences, so this is lossless for them.
    Punct(char),
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: usize,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the exact punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// One comment (line or block) with the 1-based line it starts on. Doc
/// comments are comments too — rules like the `SAFETY:` requirement and the
/// `goggles-lint: allow(...)` escape hatch read these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub text: String,
    pub line: usize,
    /// Line the comment ends on (equals `line` for `//` comments).
    pub end_line: usize,
}

/// Lexed view of one source file: code tokens and comments, separately.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Tokenize Rust source. Unterminated constructs (strings, block comments)
/// consume to end-of-input rather than erroring: a lint must degrade
/// gracefully on code that `rustc` itself will reject anyway.
pub fn lex(src: &str) -> Lexed {
    Lexer { chars: src.chars().collect(), pos: 0, line: 1, out: Lexed::default() }.run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(),
                'r' | 'b' if self.raw_or_byte_prefix() => {}
                '\'' => self.char_or_lifetime(),
                _ if c.is_alphabetic() || c == '_' => self.ident(),
                _ if c.is_ascii_digit() => self.number(),
                _ => {
                    let line = self.line;
                    self.bump();
                    self.out.tokens.push(Token { kind: TokenKind::Punct(c), line });
                }
            }
        }
        self.out
    }

    /// Handle `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'` prefixes. Returns
    /// false (consuming nothing) when the `r`/`b` starts a plain identifier.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let c0 = self.peek(0);
        let (skip, next) = match (c0, self.peek(1), self.peek(2)) {
            (Some('r'), Some('"' | '#'), _) => (1, self.peek(1)),
            (Some('b'), Some('"'), _) => (1, self.peek(1)),
            (Some('b'), Some('\''), _) => (1, self.peek(1)),
            (Some('b'), Some('r'), Some('"' | '#')) => (2, self.peek(2)),
            _ => return false,
        };
        // `r#ident` is a raw identifier, not a raw string.
        if next == Some('#') {
            let mut i = skip;
            while self.peek(i) == Some('#') {
                i += 1;
            }
            if self.peek(i) != Some('"') {
                self.ident();
                return true;
            }
        }
        for _ in 0..skip {
            self.bump();
        }
        match next {
            Some('"') => self.string(),
            Some('\'') => self.char_literal(),
            Some('#') => self.raw_string(),
            _ => {}
        }
        true
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { text, line, end_line: line });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment { text, line, end_line: self.line });
    }

    fn string(&mut self) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push_here(TokenKind::Str);
    }

    fn raw_string(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push_here(TokenKind::Str);
    }

    fn char_literal(&mut self) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push_here(TokenKind::Char);
    }

    /// `'` starts either a char literal or a lifetime. Heuristic (the same
    /// one rustc's lexer uses): it is a char literal iff the quote is
    /// followed by `X'` for a single char X, or by an escape.
    fn char_or_lifetime(&mut self) {
        let is_char =
            matches!((self.peek(1), self.peek(2)), (Some('\\'), _) | (Some(_), Some('\'')));
        if is_char {
            self.char_literal();
            return;
        }
        let line = self.line;
        self.bump(); // the quote
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.out.tokens.push(Token { kind: TokenKind::Lifetime(name), line });
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut name = String::new();
        // raw identifier prefix
        if self.peek(0) == Some('r') && self.peek(1) == Some('#') {
            self.bump();
            self.bump();
        }
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.out.tokens.push(Token { kind: TokenKind::Ident(name), line });
    }

    fn number(&mut self) {
        let line = self.line;
        // Consume the full literal: digits, radix prefixes, `_` separators,
        // type suffixes, and float forms (`1.5e-3`). A trailing range like
        // `0..n` must NOT swallow the dots: only a digit after `.` makes it
        // part of the number.
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric()
                || c == '_'
                || (c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()))
            {
                self.bump();
            } else if (c == '+' || c == '-')
                && matches!(self.chars.get(self.pos.wrapping_sub(1)), Some('e' | 'E'))
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
            {
                // exponent sign inside `1e-3`
                self.bump();
            } else {
                break;
            }
        }
        self.out.tokens.push(Token { kind: TokenKind::Num, line });
    }

    fn push_here(&mut self, kind: TokenKind) {
        let line = self.line;
        self.out.tokens.push(Token { kind, line });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).tokens.iter().filter_map(|t| t.ident().map(str::to_string)).collect()
    }

    #[test]
    fn code_in_strings_and_comments_is_not_tokenized() {
        let src = r##"
            // calls unwrap() in a comment
            /* and expect() in /* a nested */ block */
            let s = "x.unwrap()";
            let r = r#"y.expect("no")"#;
            let b = b"unwrap";
            real.call();
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"expect".to_string()));
        assert!(ids.contains(&"real".to_string()));
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("unwrap() in a comment"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'q'; let n = '\\n'; }");
        let lifetimes: Vec<_> =
            lexed.tokens.iter().filter(|t| matches!(t.kind, TokenKind::Lifetime(_))).collect();
        assert_eq!(lifetimes.len(), 2);
        let chars = lexed.tokens.iter().filter(|t| t.kind == TokenKind::Char).count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn lines_are_tracked() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<_> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn numbers_do_not_swallow_range_dots() {
        let lexed = lex("for i in 0..n { x += 1.5e-3; }");
        let dots = lexed.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2, "the two range dots survive");
        let nums = lexed.tokens.iter().filter(|t| t.kind == TokenKind::Num).count();
        assert_eq!(nums, 2, "0 and 1.5e-3");
    }

    #[test]
    fn raw_identifiers_are_identifiers() {
        let ids = idents("let r#type = r#fn;");
        assert_eq!(ids, vec!["let", "type", "fn"]);
    }
}

//! Ablation benches for the design choices DESIGN.md calls out (§4.1 of the
//! paper argues for each of these):
//!
//! 1. **one-hot vs raw-probability ensemble input** — the paper's argument
//!    for categorical modeling of the LP matrix,
//! 2. **hierarchical model vs flat clustering** on the same affinity matrix,
//! 3. **prototypes-per-layer (Z) sweep** — the "top-10 prototypes …
//!    empirically sufficient" claim,
//! 4. **mapping rule**: the `L_g`-maximizing assignment (Equation 14) vs a
//!    greedy per-cluster majority vote that may produce conflicts.
//!
//! ```text
//! GOGGLES_SCALE=quick|standard|paper cargo bench -p goggles-bench --bench ablations
//! ```

use goggles::core::hierarchical::{HierarchicalModel, HierarchicalOptions};
use goggles::core::mapping::{apply_mapping, map_clusters_via_dev_set};
use goggles::experiments::report::Table;
use goggles::experiments::{Scale, TrialContext};
use goggles::models::{hard_labels, DiagonalGmm, EmOptions, KMeans};
use goggles_bench::{emit, timed};
use goggles_datasets::DevSet;
use goggles_tensor::Matrix;

fn main() {
    let scale = Scale::from_env();
    let params = scale.params();
    println!("scale: {scale:?} → {params:?}\n");

    let mut table = Table::new(
        "Ablations: labeling accuracy (%) per design choice",
        &[
            "Dataset",
            "GOGGLES",
            "raw-prob ensemble",
            "flat diag-GMM",
            "flat K-Means",
            "Z=1",
            "Z=half",
            "greedy mapping",
        ],
    );

    for (d, task) in params.tasks_for_trial(0).iter().enumerate() {
        let name = task.kind.dataset_name();
        let ctx = timed(&format!("context {name}"), || TrialContext::build(&params, task, d));
        let em = EmOptions { restarts: 2, ..EmOptions::default() };
        let opts = HierarchicalOptions { num_classes: 2, em, one_hot: true, threads: 8, seed: 7 };

        // 1. paper configuration
        let paper_acc = hierarchical_accuracy(&ctx, &opts);
        // 2. raw probabilities into the ensemble
        let raw_acc = hierarchical_accuracy(&ctx, &HierarchicalOptions { one_hot: false, ..opts });
        // 3. flat clustering on the same matrix (optimal mapping, §5.1.6)
        let flat_gmm = DiagonalGmm::fit(&ctx.affinity.data, 2, &em, 3)
            .map(|g| ctx.optimal_mapping_accuracy(&g.train_labels(), 2))
            .unwrap_or(f64::NAN);
        let flat_km = KMeans::fit(&ctx.affinity.data, 2, 3, 3)
            .map(|k| ctx.optimal_mapping_accuracy(&k.labels, 2))
            .unwrap_or(f64::NAN);
        // 4. fewer prototypes per layer
        let z = params.top_z;
        let z1 = restricted_accuracy(&ctx, &opts, 1, z);
        let zh = restricted_accuracy(&ctx, &opts, (z / 2).max(1), z);
        // 5. greedy (possibly conflicting) mapping instead of Equation 14
        let greedy = greedy_mapping_accuracy(&ctx, &opts);

        table.push_row(vec![
            name.to_string(),
            pct(paper_acc),
            pct(raw_acc),
            pct(flat_gmm),
            pct(flat_km),
            pct(z1),
            pct(zh),
            pct(greedy),
        ]);
    }
    emit(&table, "ablations");
    println!("expected: GOGGLES column ≥ each ablation on average; Z=1 < Z=half ≤ full.");
}

fn pct(v: f64) -> String {
    format!("{:.2}", 100.0 * v)
}

/// Fit the hierarchy with the given options and map via the trial dev set.
fn hierarchical_accuracy(ctx: &TrialContext, opts: &HierarchicalOptions) -> f64 {
    let model = HierarchicalModel::fit(&ctx.affinity, opts).expect("fit");
    let g = map_clusters_via_dev_set(&model.responsibilities, &ctx.dev_rows);
    let mapped = apply_mapping(&model.responsibilities, &g);
    ctx.labeling_accuracy(&hard_labels(&mapped))
}

/// Keep only the first `z_keep` prototypes of each layer, then infer.
fn restricted_accuracy(
    ctx: &TrialContext,
    opts: &HierarchicalOptions,
    z_keep: usize,
    z_total: usize,
) -> f64 {
    let keep: Vec<usize> = (0..ctx.affinity.alpha).filter(|f| f % z_total < z_keep).collect();
    let restricted = ctx.affinity.restrict_functions(&keep);
    let model = HierarchicalModel::fit(&restricted, opts).expect("fit");
    let g = map_clusters_via_dev_set(&model.responsibilities, &ctx.dev_rows);
    let mapped = apply_mapping(&model.responsibilities, &g);
    ctx.labeling_accuracy(&hard_labels(&mapped))
}

/// Greedy mapping: each cluster takes the majority dev class among the dev
/// examples it claims — conflicts allowed (the failure mode §4.3 fixes).
fn greedy_mapping_accuracy(ctx: &TrialContext, opts: &HierarchicalOptions) -> f64 {
    let model = HierarchicalModel::fit(&ctx.affinity, opts).expect("fit");
    let gamma = &model.responsibilities;
    let k = gamma.cols();
    let dev: &DevSet = &ctx.dev_rows;
    let mut mapping = vec![0usize; k];
    for (cluster, slot) in mapping.iter_mut().enumerate() {
        let mut mass = vec![0.0f64; k];
        for (&idx, &class) in dev.indices.iter().zip(&dev.labels) {
            mass[class] += gamma[(idx, cluster)];
        }
        *slot = goggles_tensor::argmax(&mass);
    }
    // apply (possibly non-bijective) mapping
    let n = gamma.rows();
    let mut mapped = Matrix::<f64>::zeros(n, k);
    for (cluster, &class) in mapping.iter().enumerate() {
        for i in 0..n {
            mapped[(i, class)] += gamma[(i, cluster)];
        }
    }
    ctx.labeling_accuracy(&hard_labels(&mapped))
}

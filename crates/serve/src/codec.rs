//! Minimal, dependency-free binary codec for snapshot persistence.
//!
//! Everything is little-endian and length-prefixed; floats are bit-exact
//! (`to_le_bytes`/`from_le_bytes`), so `save → load → save` is byte-for-byte
//! stable. A trailing FNV-1a checksum over the payload catches truncation
//! and bit rot at load time.

use crate::{ServeError, ServeResult};
use goggles_tensor::Matrix;

/// Sanity cap for decoded collection lengths (functions, layers, classes).
/// Corrupt-but-plausibly-shaped snapshots must not trigger huge
/// allocations; every variable-length decode path bounds itself by this or
/// by the remaining payload size, whichever is smaller.
pub const MAX_SMALL_LEN: usize = 1 << 20;

/// FNV-1a over a byte slice (the checksum used by the snapshot trailer).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Append-only byte sink.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finish and return the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    pub(crate) fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    pub(crate) fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    pub(crate) fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    pub(crate) fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed `usize` slice.
    pub(crate) fn put_usize_slice(&mut self, vs: &[usize]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_usize(v);
        }
    }

    /// Length-prefixed `f64` slice.
    pub(crate) fn put_f64_slice(&mut self, vs: &[f64]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_f64(v);
        }
    }

    /// Shape-prefixed `f64` matrix (row-major payload).
    pub(crate) fn put_matrix_f64(&mut self, m: &Matrix<f64>) {
        self.put_usize(m.rows());
        self.put_usize(m.cols());
        for &v in m.as_slice() {
            self.put_f64(v);
        }
    }

    /// Shape-prefixed `f32` matrix (row-major payload).
    pub(crate) fn put_matrix_f32(&mut self, m: &Matrix<f32>) {
        self.put_usize(m.rows());
        self.put_usize(m.cols());
        for &v in m.as_slice() {
            self.put_f32(v);
        }
    }

    /// Raw (no length prefix) `f32` payload — v2 snapshot fields whose
    /// length the schema implies from the header.
    pub(crate) fn put_f32_slice_raw(&mut self, vs: &[f32]) {
        for &v in vs {
            self.put_f32(v);
        }
    }

    /// Raw `f64` payload narrowed to `f32` — the v2 storage for GMM and
    /// ensemble parameters (half the bytes of [`Writer::put_f64_slice`]).
    /// Narrow → widen → narrow is idempotent, so v2 `save → load → save`
    /// stays byte-stable.
    pub(crate) fn put_f64_slice_as_f32_raw(&mut self, vs: &[f64]) {
        for &v in vs {
            self.put_f32(v as f32);
        }
    }

    /// Raw `f32` payload quantized to `u16` on the fixed `[-1, 1]` grid
    /// (see [`quantize_unit`]) — the v2 prototype-bank storage behind the
    /// quantization flag. Values outside `[-1, 1]` saturate; prototype rows
    /// are L2-normalized so none exist in practice.
    pub(crate) fn put_quantized_slice_raw(&mut self, vs: &[f32]) {
        for &v in vs {
            self.put_u16(quantize_unit(v));
        }
    }
}

/// Quantize a value in `[-1, 1]` onto a fixed 16-bit grid (out-of-range
/// values saturate). The grid is format-level (no per-tensor min/max), so
/// re-encoding a dequantized value always returns the same code — quantized
/// snapshots round-trip byte-stably.
pub(crate) fn quantize_unit(v: f32) -> u16 {
    let x = ((f64::from(v) + 1.0) / 2.0 * 65535.0).round();
    // NaN saturates to 0 via the as-cast; prototypes are never NaN.
    x.clamp(0.0, 65535.0) as u16
}

/// Inverse of [`quantize_unit`]: grid code → `f32` value in `[-1, 1]`.
pub(crate) fn dequantize_unit(q: u16) -> f32 {
    (f64::from(q) / 65535.0 * 2.0 - 1.0) as f32
}

/// Cursor over a byte slice with checked reads.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn take(&mut self, n: usize) -> ServeResult<&'a [u8]> {
        let Some(out) = self.pos.checked_add(n).and_then(|end| self.buf.get(self.pos..end)) else {
            return Err(ServeError::Snapshot(format!(
                "unexpected end of snapshot: wanted {n} bytes at offset {}, {} left",
                self.pos,
                self.remaining()
            )));
        };
        self.pos += n;
        Ok(out)
    }

    /// `take` with the length known at compile time, as an array — the
    /// building block for the fixed-width `get_*` decoders below, with no
    /// slice-to-array conversion that could panic.
    fn take_array<const N: usize>(&mut self) -> ServeResult<[u8; N]> {
        self.take(N)?.try_into().map_err(|_| {
            ServeError::Snapshot(format!("internal: take({N}) returned a mis-sized slice"))
        })
    }

    pub fn get_u8(&mut self) -> ServeResult<u8> {
        let [b] = self.take_array::<1>()?;
        Ok(b)
    }

    pub fn get_bool(&mut self) -> ServeResult<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(ServeError::Snapshot(format!("invalid bool byte {v}"))),
        }
    }

    pub fn get_u16(&mut self) -> ServeResult<u16> {
        Ok(u16::from_le_bytes(self.take_array::<2>()?))
    }

    pub fn get_u32(&mut self) -> ServeResult<u32> {
        Ok(u32::from_le_bytes(self.take_array::<4>()?))
    }

    pub(crate) fn get_u64(&mut self) -> ServeResult<u64> {
        Ok(u64::from_le_bytes(self.take_array::<8>()?))
    }

    pub(crate) fn get_usize(&mut self) -> ServeResult<usize> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| ServeError::Snapshot(format!("length {v} exceeds usize")))
    }

    /// A `usize` that is also sanity-bounded (corrupt snapshots must not
    /// trigger huge allocations).
    pub fn get_len(&mut self, max: usize) -> ServeResult<usize> {
        let v = self.get_usize()?;
        if v > max {
            return Err(ServeError::Snapshot(format!(
                "implausible length {v} (cap {max}) at offset {}",
                self.pos
            )));
        }
        Ok(v)
    }

    pub fn get_f64(&mut self) -> ServeResult<f64> {
        Ok(f64::from_le_bytes(self.take_array::<8>()?))
    }

    pub fn get_f32(&mut self) -> ServeResult<f32> {
        Ok(f32::from_le_bytes(self.take_array::<4>()?))
    }

    pub fn get_usize_slice(&mut self) -> ServeResult<Vec<usize>> {
        let n = self.get_len(self.remaining() / 8)?;
        (0..n).map(|_| self.get_usize()).collect()
    }

    pub fn get_f64_slice(&mut self) -> ServeResult<Vec<f64>> {
        let n = self.get_len(self.remaining() / 8)?;
        (0..n).map(|_| self.get_f64()).collect()
    }

    pub fn get_matrix_f64(&mut self) -> ServeResult<Matrix<f64>> {
        let rows = self.get_usize()?;
        let cols = self.get_usize()?;
        let len = rows
            .checked_mul(cols)
            .ok_or_else(|| ServeError::Snapshot(format!("matrix shape {rows}×{cols} overflows")))?;
        if len > self.remaining() / 8 {
            return Err(ServeError::Snapshot(format!(
                "matrix {rows}×{cols} larger than remaining snapshot"
            )));
        }
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            data.push(self.get_f64()?);
        }
        Matrix::from_vec(rows, cols, data)
            .map_err(|e| ServeError::Snapshot(format!("matrix decode: {e}")))
    }

    pub fn get_matrix_f32(&mut self) -> ServeResult<Matrix<f32>> {
        let rows = self.get_usize()?;
        let cols = self.get_usize()?;
        let len = rows
            .checked_mul(cols)
            .ok_or_else(|| ServeError::Snapshot(format!("matrix shape {rows}×{cols} overflows")))?;
        if len > self.remaining() / 4 {
            return Err(ServeError::Snapshot(format!(
                "matrix {rows}×{cols} larger than remaining snapshot"
            )));
        }
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            data.push(self.get_f32()?);
        }
        Matrix::from_vec(rows, cols, data)
            .map_err(|e| ServeError::Snapshot(format!("matrix decode: {e}")))
    }

    /// A `u32` length that is also sanity-bounded — the v2 counterpart of
    /// [`Reader::get_len`] (v2 stores structural integers as `u32`).
    pub fn get_len_u32(&mut self, max: usize) -> ServeResult<usize> {
        let v = self.get_u32()? as usize;
        if v > max {
            return Err(ServeError::Snapshot(format!(
                "implausible length {v} (cap {max}) at offset {}",
                self.pos
            )));
        }
        Ok(v)
    }

    /// Exactly `len` raw `f32`s (no prefix; the v2 schema implies lengths).
    /// Bounded by the remaining payload before any allocation.
    pub fn get_f32_vec(&mut self, len: usize) -> ServeResult<Vec<f32>> {
        if len > self.remaining() / 4 {
            return Err(ServeError::Snapshot(format!(
                "f32 payload of {len} values larger than remaining snapshot"
            )));
        }
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            data.push(self.get_f32()?);
        }
        Ok(data)
    }

    /// Exactly `len` raw `f32`s widened to `f64` — inverse of
    /// [`Writer::put_f64_slice_as_f32_raw`].
    pub(crate) fn get_f32_vec_as_f64(&mut self, len: usize) -> ServeResult<Vec<f64>> {
        Ok(self.get_f32_vec(len)?.into_iter().map(f64::from).collect())
    }

    /// Exactly `len` `u16` grid codes dequantized from the fixed `[-1, 1]`
    /// grid — inverse of `Writer::put_quantized_slice_raw`.
    pub fn get_quantized_vec(&mut self, len: usize) -> ServeResult<Vec<f32>> {
        if len > self.remaining() / 2 {
            return Err(ServeError::Snapshot(format!(
                "quantized payload of {len} values larger than remaining snapshot"
            )));
        }
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            data.push(dequantize_unit(self.get_u16()?));
        }
        Ok(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_f64(-0.125);
        w.put_f32(3.5);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f64().unwrap(), -0.125);
        assert_eq!(r.get_f32().unwrap(), 3.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_and_matrix_round_trip() {
        let mut w = Writer::new();
        w.put_usize_slice(&[1, 0, 99]);
        w.put_f64_slice(&[0.5, -2.0]);
        let m = Matrix::from_rows(&[&[1.0f64, 2.0], &[3.0, 4.0]]);
        w.put_matrix_f64(&m);
        let mf = Matrix::from_rows(&[&[0.5f32, -0.5]]);
        w.put_matrix_f32(&mf);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_usize_slice().unwrap(), vec![1, 0, 99]);
        assert_eq!(r.get_f64_slice().unwrap(), vec![0.5, -2.0]);
        assert_eq!(r.get_matrix_f64().unwrap(), m);
        assert_eq!(r.get_matrix_f32().unwrap(), mf);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.put_f64_slice(&[1.0, 2.0, 3.0]);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(r.get_f64_slice().is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn implausible_lengths_rejected() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX); // absurd length prefix
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.get_usize_slice().is_err());
    }

    #[test]
    fn unit_grid_quantization_is_idempotent_and_bounded() {
        // Every grid code survives a dequantize → requantize round trip —
        // the property that makes quantized v2 snapshots byte-stable.
        for q in [0u16, 1, 2, 32767, 32768, 65534, 65535] {
            assert_eq!(quantize_unit(dequantize_unit(q)), q, "code {q}");
        }
        for q in (0..=65535u16).step_by(17) {
            assert_eq!(quantize_unit(dequantize_unit(q)), q, "code {q}");
        }
        // step size bounds the quantization error
        let step = 2.0 / 65535.0;
        for &v in &[-1.0f32, -0.731, -0.0001, 0.0, 0.5, 0.999, 1.0] {
            let err = (f64::from(dequantize_unit(quantize_unit(v))) - f64::from(v)).abs();
            assert!(err <= step / 2.0 + 1e-9, "v = {v}: err {err}");
        }
        // out-of-range values saturate
        assert_eq!(quantize_unit(-2.0), 0);
        assert_eq!(quantize_unit(7.5), 65535);
    }

    #[test]
    fn raw_f32_and_quantized_payloads_round_trip() {
        let xs64 = [0.125f64, -3.5, 1e-3, 0.75];
        let xsf = [0.5f32, -0.25, 0.0, 1.0, -1.0, 0.333];
        let mut w = Writer::new();
        w.put_f64_slice_as_f32_raw(&xs64);
        w.put_quantized_slice_raw(&xsf);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back64 = r.get_f32_vec_as_f64(xs64.len()).unwrap();
        for (a, b) in back64.iter().zip(&xs64) {
            assert_eq!(*a, f64::from(*b as f32), "widening must be exact");
        }
        let backf = r.get_quantized_vec(xsf.len()).unwrap();
        for (a, b) in backf.iter().zip(&xsf) {
            assert!((a - b).abs() <= 2.0 / 65535.0, "{a} vs {b}");
        }
        assert_eq!(r.remaining(), 0);
        // truncated payloads are errors (bounded before allocation), not panics
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            if r.get_f32_vec_as_f64(xs64.len()).is_ok() {
                assert!(r.get_quantized_vec(xsf.len()).is_err(), "cut {cut}");
            }
        }
        // oversized requested lengths are rejected before allocating
        let mut r = Reader::new(&bytes);
        assert!(r.get_f32_vec(usize::MAX / 8).is_err());
        assert!(r.get_quantized_vec(usize::MAX / 8).is_err());
    }

    #[test]
    fn u32_lengths_are_bounded() {
        let mut w = Writer::new();
        w.put_u32(10);
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_len_u32(MAX_SMALL_LEN).unwrap(), 10);
        assert!(r.get_len_u32(MAX_SMALL_LEN).is_err(), "cap must reject u32::MAX");
    }

    #[test]
    fn checksum_is_stable_and_sensitive() {
        let a = fnv1a(b"goggles");
        assert_eq!(a, fnv1a(b"goggles"));
        assert_ne!(a, fnv1a(b"goggleS"));
    }
}

//! Linear algebra needed by the GOGGLES inference stack:
//!
//! * the fused matmul + column-max kernel behind every affinity function
//!   (Equation 2 reduces `f_L^z` to a patch×prototype product followed by a
//!   max over patches — [`colmax_matmul_f32`] is the serving hot path),
//! * cyclic Jacobi symmetric eigendecomposition (exact, for moderate sizes),
//! * Cholesky factorization + triangular solves + log-determinant
//!   (full-covariance GMM baseline),
//! * PCA (Snuba's primitive extraction projects VGG logits onto the top-10
//!   principal components, §5.1.2),
//! * orthogonal-iteration truncated eigenbasis (spectral co-clustering
//!   baseline needs leading singular vectors of a large rectangular matrix).

// goggles-lint: allow-file(index): register-tiled kernels index with loop bounds derived from
// the same dimensions that size the buffers; rewriting every access through `get` would obscure
// the tiling structure and defeat bounds-check elision in the hot loops.

use crate::matrix::Matrix;
use crate::rng;
use crate::{Result, TensorError};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of GEMM invocations (both [`gemm_f32`] and
/// [`gemm_bias_relu_f32`] funnel through the same implementation). Two
/// relaxed adds per call — noise next to the `2·m·k·n` flops of any real
/// product — but enough for the observability layer to attribute embedding
/// throughput to the kernel.
static GEMM_CALLS: AtomicU64 = AtomicU64::new(0);

/// Process-wide multiply-add flop count (`2·m·k·n` per GEMM call).
static GEMM_FLOPS: AtomicU64 = AtomicU64::new(0);

/// Number of GEMM calls since process start.
pub fn gemm_call_count() -> u64 {
    GEMM_CALLS.load(Ordering::Relaxed)
}

/// Total `2·m·k·n` flops pushed through the GEMM kernel since process start.
pub fn gemm_flop_count() -> u64 {
    GEMM_FLOPS.load(Ordering::Relaxed)
}

/// Prototype rows held as running maxima per register tile of
/// [`colmax_matmul_f32`].
const COLMAX_TILE: usize = 8;

/// Independent accumulator lanes of the unrolled dot product inside
/// [`colmax_matmul_f32`]. Eight f32 lanes map onto one AVX register (or two
/// NEON registers); the per-lane sums are combined in a fixed tree so the
/// result is deterministic.
const DOT_LANES: usize = 8;

/// Multi-lane dot product: `DOT_LANES` independent partial sums over the
/// bulk (which the compiler vectorizes — no float reassociation is needed
/// beyond the explicit lane split), a scalar tail, and a fixed reduction
/// tree. Both inputs must have equal length.
#[inline(always)]
fn dot_lanes(x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len());
    let bulk = x.len() - x.len() % DOT_LANES;
    let mut acc = [0.0f32; DOT_LANES];
    for (xc, yc) in x[..bulk].chunks_exact(DOT_LANES).zip(y[..bulk].chunks_exact(DOT_LANES)) {
        for l in 0..DOT_LANES {
            acc[l] += xc[l] * yc[l];
        }
    }
    let mut tail = 0.0f32;
    for (&xv, &yv) in x[bulk..].iter().zip(&y[bulk..]) {
        tail += xv * yv;
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7])) + tail
}

/// Reusable workspace of [`colmax_matmul_scratch_f32`]: the transposed
/// patch panel and the per-patch accumulator column. Keep one per thread
/// and it grows once to the largest layer geometry, after which the kernel
/// never allocates.
#[derive(Debug, Default, Clone)]
pub struct ColmaxScratch {
    /// `cols × m` transposed copy of the `a` panel (patch axis contiguous).
    a_t: Vec<f32>,
    /// One running dot product per patch row.
    acc: Vec<f32>,
}

/// Fused `A·Bᵀ` + column max over the rows of `A`:
/// `out[j] = max_i Σ_c a[i·cols + c] · b[j·cols + c]`, with `a` an `m×cols`
/// row-major panel (a patch table) and `b` a `(out.len())×cols` row-major
/// table (stacked prototypes). When `m == 0` every output is
/// `f32::NEG_INFINITY` (the max of an empty set).
///
/// This is the affinity hot path (Equation 2 of the paper vectorized over
/// all prototypes at once). Two blocked code paths, picked by panel shape:
///
/// * **Tall panels** (`m ≥ 2·cols`, the shallow backbone layers: thousands
///   of patches, few channels): the panel is transposed once into
///   `scratch.a_t` so the kernel vectorizes along the *patch* axis — for
///   each prototype row, every channel weight is broadcast against a
///   contiguous patch column, accumulating all `m` dot products at once
///   (`c` ascending, so each per-patch sum has exactly the naive order and
///   the result is bit-identical to the scalar reference). The final max
///   over patches runs on `DOT_LANES` lanes.
/// * **Wide panels** (the deep layers: few patches, hundreds of channels):
///   `b`'s rows are register-tiled — `COLMAX_TILE` running maxima in a
///   stack array — while the patch panel streams through the tile, each
///   dot product running on `DOT_LANES` independent accumulator lanes
///   (see `dot_lanes`).
///
/// Deterministic and shard-stable: `out[j]` depends only on row `j` of `b`
/// and on `a` (never on tile alignment), so computing a sub-range of `b`'s
/// rows into a sub-slice of `out` is bit-identical to slicing the full
/// result — which is what lets callers shard the prototype axis across
/// threads.
///
/// # Panics
/// Panics if `cols == 0`, `a.len()` is not a multiple of `cols`, or
/// `b.len() != out.len() * cols`.
pub fn colmax_matmul_scratch_f32(
    scratch: &mut ColmaxScratch,
    a: &[f32],
    b: &[f32],
    cols: usize,
    out: &mut [f32],
) {
    assert!(cols > 0, "colmax_matmul_f32: cols must be ≥ 1");
    assert_eq!(
        a.len() % cols,
        0,
        "colmax_matmul_f32: a.len() {} not a multiple of cols {cols}",
        a.len()
    );
    assert_eq!(
        b.len(),
        out.len() * cols,
        "colmax_matmul_f32: b.len() {} != out.len() {} * cols {cols}",
        b.len(),
        out.len()
    );
    out.fill(f32::NEG_INFINITY);
    if a.is_empty() {
        return;
    }
    let m = a.len() / cols;
    if m >= 2 * cols {
        colmax_tall(scratch, a, m, b, cols, out);
    } else {
        colmax_wide(a, b, cols, out);
    }
}

/// [`colmax_matmul_scratch_f32`] with a throwaway scratch — convenient for
/// tests and one-off calls; hot paths should hold a [`ColmaxScratch`].
pub fn colmax_matmul_f32(a: &[f32], b: &[f32], cols: usize, out: &mut [f32]) {
    colmax_matmul_scratch_f32(&mut ColmaxScratch::default(), a, b, cols, out);
}

/// A prototype table transposed once and cached **across requests**: the
/// column-major (`cols × rows`) copy of a row-major `rows × cols` table.
///
/// [`colmax_matmul_scratch_f32`]'s tall path pays a transpose of the *patch
/// panel* on every call even though the other operand — the stacked
/// prototype table of a frozen bank — never changes between requests. A
/// `ColmaxPanel` moves that restructuring to construction time:
/// [`colmax_matmul_panel_f32`] streams each patch row against contiguous
/// prototype columns of the cached transpose, so the per-request hot path
/// neither transposes nor allocates.
#[derive(Debug, Clone, PartialEq)]
pub struct ColmaxPanel {
    /// `cols × rows` transpose: `b_t[c · rows + j] = b[j · cols + c]`.
    b_t: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl ColmaxPanel {
    /// Transpose a row-major `b` (`rows × cols`, with `rows` inferred from
    /// the slice length) into the cached column-major layout.
    ///
    /// # Panics
    /// Panics if `cols == 0` or `b.len()` is not a multiple of `cols`.
    pub fn new(b: &[f32], cols: usize) -> Self {
        assert!(cols > 0, "ColmaxPanel::new: cols must be ≥ 1");
        assert_eq!(b.len() % cols, 0, "ColmaxPanel::new: b.len() not a multiple of cols");
        let rows = b.len() / cols;
        let mut b_t = vec![0.0f32; b.len()];
        for (j, b_row) in b.chunks_exact(cols).enumerate() {
            for (c, &v) in b_row.iter().enumerate() {
                b_t[c * rows + j] = v;
            }
        }
        Self { b_t, rows, cols }
    }

    /// Prototype rows in the cached table.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Channels per prototype row.
    pub fn cols(&self) -> usize {
        self.cols
    }
}

/// [`colmax_matmul_scratch_f32`] over rows `[lo, lo + out.len())` of a
/// prototype table whose transpose is cached in `panel`:
/// `out[jj] = max_i Σ_c a[i·cols + c] · b[(lo + jj)·cols + c]`.
///
/// `b` is the same row-major table the panel was built from (the wide path
/// streams it directly; the tall path reads only the cached transpose).
/// Path selection (`m ≥ 2·cols`) and per-dot accumulation order match
/// [`colmax_matmul_scratch_f32`] exactly, and the max over patches is
/// order-exact — the output is **bit-identical** to the uncached kernel on
/// the matching row range, for any `lo` shard, which preserves the
/// shard-stability contract callers rely on.
///
/// # Panics
/// Panics if `b` disagrees with the panel geometry or the requested row
/// range `[lo, lo + out.len())` exceeds the table.
pub fn colmax_matmul_panel_f32(
    scratch: &mut ColmaxScratch,
    a: &[f32],
    b: &[f32],
    panel: &ColmaxPanel,
    lo: usize,
    out: &mut [f32],
) {
    let cols = panel.cols;
    assert_eq!(
        b.len(),
        panel.rows * cols,
        "colmax_matmul_panel_f32: b.len() {} != panel {}×{cols}",
        b.len(),
        panel.rows
    );
    assert_eq!(
        a.len() % cols,
        0,
        "colmax_matmul_panel_f32: a.len() {} not a multiple of cols {cols}",
        a.len()
    );
    assert!(
        lo + out.len() <= panel.rows,
        "colmax_matmul_panel_f32: rows [{lo}, {}) exceed the {}-row panel",
        lo + out.len(),
        panel.rows
    );
    out.fill(f32::NEG_INFINITY);
    if a.is_empty() || out.is_empty() {
        return;
    }
    let m = a.len() / cols;
    if m >= 2 * cols {
        colmax_panel_tall(scratch, a, panel, lo, out);
    } else {
        colmax_wide(a, &b[lo * cols..(lo + out.len()) * cols], cols, out);
    }
}

/// Tall-panel path over a cached transpose: patches stream in the outer
/// loop, and every patch's dot products against the whole shard accumulate
/// along contiguous prototype columns of `panel.b_t` (channel `c`
/// ascending, so each per-pair sum has exactly the order of
/// [`colmax_tall`] and the naive reference). The running max over patches
/// is order-independent, so the shard result is bit-identical to the
/// uncached tall path — with no per-request transpose and no per-request
/// allocation once `scratch` has grown.
fn colmax_panel_tall(
    scratch: &mut ColmaxScratch,
    a: &[f32],
    panel: &ColmaxPanel,
    lo: usize,
    out: &mut [f32],
) {
    let cols = panel.cols;
    let stride = panel.rows;
    let nz = out.len();
    if scratch.acc.len() < nz {
        scratch.acc.resize(nz, 0.0);
    }
    let acc = &mut scratch.acc[..nz];
    for a_row in a.chunks_exact(cols) {
        let w0 = a_row[0];
        for (av, &x) in acc.iter_mut().zip(&panel.b_t[lo..lo + nz]) {
            *av = w0 * x;
        }
        for (c, &w) in a_row.iter().enumerate().skip(1) {
            for (av, &x) in acc.iter_mut().zip(&panel.b_t[c * stride + lo..c * stride + lo + nz]) {
                *av += w * x;
            }
        }
        for (o, &d) in out.iter_mut().zip(acc.iter()) {
            if d > *o {
                *o = d;
            }
        }
    }
}

/// Tall-panel path: transpose `a` once, then accumulate all `m` dot
/// products per prototype row along contiguous patch columns.
fn colmax_tall(
    scratch: &mut ColmaxScratch,
    a: &[f32],
    m: usize,
    b: &[f32],
    cols: usize,
    out: &mut [f32],
) {
    if scratch.a_t.len() < a.len() {
        scratch.a_t.resize(a.len(), 0.0);
    }
    if scratch.acc.len() < m {
        scratch.acc.resize(m, 0.0);
    }
    let a_t = &mut scratch.a_t[..a.len()];
    for (p, a_row) in a.chunks_exact(cols).enumerate() {
        for (c, &v) in a_row.iter().enumerate() {
            a_t[c * m + p] = v;
        }
    }
    let acc = &mut scratch.acc[..m];
    for (o, b_row) in out.iter_mut().zip(b.chunks_exact(cols)) {
        let w0 = b_row[0];
        for (av, &x) in acc.iter_mut().zip(&a_t[..m]) {
            *av = w0 * x;
        }
        for (c, &w) in b_row.iter().enumerate().skip(1) {
            for (av, &x) in acc.iter_mut().zip(&a_t[c * m..(c + 1) * m]) {
                *av += w * x;
            }
        }
        *o = max_lanes(acc);
    }
}

/// Wide-panel path: register-tile `b`'s rows, stream the patch panel.
fn colmax_wide(a: &[f32], b: &[f32], cols: usize, out: &mut [f32]) {
    for (tile, out_tile) in out.chunks_mut(COLMAX_TILE).enumerate() {
        let b_tile = &b[tile * COLMAX_TILE * cols..][..out_tile.len() * cols];
        let mut best = [f32::NEG_INFINITY; COLMAX_TILE];
        for a_row in a.chunks_exact(cols) {
            for (bv, b_row) in best.iter_mut().zip(b_tile.chunks_exact(cols)) {
                let d = dot_lanes(a_row, b_row);
                if d > *bv {
                    *bv = d;
                }
            }
        }
        out_tile.copy_from_slice(&best[..out_tile.len()]);
    }
}

/// Maximum of a slice on [`DOT_LANES`] running-max lanes (vectorizable;
/// `max` is order-independent, so this is exact). The slice must be
/// non-empty.
#[inline(always)]
fn max_lanes(xs: &[f32]) -> f32 {
    debug_assert!(!xs.is_empty());
    let bulk = xs.len() - xs.len() % DOT_LANES;
    let mut mx = [f32::NEG_INFINITY; DOT_LANES];
    for ch in xs[..bulk].chunks_exact(DOT_LANES) {
        for l in 0..DOT_LANES {
            if ch[l] > mx[l] {
                mx[l] = ch[l];
            }
        }
    }
    let mut best = f32::NEG_INFINITY;
    for l in 0..DOT_LANES {
        if mx[l] > best {
            best = mx[l];
        }
    }
    for &v in &xs[bulk..] {
        if v > best {
            best = v;
        }
    }
    best
}

/// Output rows per register tile of [`gemm_f32`] (the `MR` of a classic
/// BLIS-style micro-kernel).
const GEMM_MR: usize = 4;

/// Output columns per register tile of [`gemm_f32`]. `GEMM_MR × GEMM_NB`
/// f32 accumulators live in registers across the whole `k` loop —
/// 4×8 = 32 lanes fits the 16 SSE registers of the baseline x86-64 target
/// with room for the broadcast/load operands (and vectorizes wider when
/// AVX is enabled).
const GEMM_NB: usize = 8;

/// Reusable workspace of [`gemm_f32`]: the `A` panel re-packed so each
/// register tile reads its `GEMM_MR` operands contiguously. Keep one per
/// thread; it grows once to the largest layer geometry, after which the
/// kernel never allocates.
#[derive(Debug, Default, Clone)]
pub struct GemmScratch {
    /// `ceil(m / GEMM_MR) · GEMM_MR × k` packed copy of `a`, tile-major:
    /// block `i` holds rows `[i·MR, (i+1)·MR)` interleaved as `[kk][mr]`
    /// (tail rows zero-filled).
    a_pack: Vec<f32>,
}

/// Blocked row-major single-precision GEMM: `out = a · b` with
/// `a: m×k`, `b: k×n`, `out: m×n`, all row-major.
///
/// This is the embedding-side sibling of [`colmax_matmul_f32`]: a 3×3
/// convolution lowered through [`im2col_3x3`] is exactly this product with
/// `a` the `[out_c][in_c·9]` weight table and `b` the patch panel, so one
/// kernel serves every layer of the backbone. Design:
///
/// * **Panel packing** — `a` is re-packed once per call into
///   [`GemmScratch`] so the micro-kernel's `GEMM_MR` row operands sit
///   contiguously (`[kk][mr]` order), turning the strided weight reads
///   into sequential loads.
/// * **Register tiling** — the inner loop computes a `GEMM_MR × GEMM_NB`
///   output tile with all accumulators in registers, streaming `b` row by
///   row; each accumulator sums its `k` terms in ascending-`kk` order, so
///   the result is bit-deterministic (same inputs ⇒ same bits, any call
///   pattern).
///
/// For the fused bias + ReLU epilogue the convolution path wants, see
/// [`gemm_bias_relu_f32`]; both share this implementation.
///
/// # Panics
/// Panics if `a.len() != m·k`, `b.len() != k·n`, or `out.len() != m·n`.
// goggles-lint: allow(dead-pub): the plain GEMM entry point, API-symmetric with gemm_bias_relu_f32; exercised by unit tests and benches history
pub fn gemm_f32(
    scratch: &mut GemmScratch,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    gemm_impl(scratch, a, b, m, k, n, None, false, out);
}

/// [`gemm_f32`] with a fused epilogue: `out = relu?(a·b + bias)`, where
/// `bias` (length `m`) is broadcast along each output row and `relu`
/// clamps negatives to zero in the same pass. This is the whole per-layer
/// arithmetic of a padded 3×3 convolution once [`im2col_3x3`] has built
/// the patch panel — no second sweep over the output.
///
/// # Panics
/// As [`gemm_f32`], plus `bias.len() != m`.
// A GEMM-with-epilogue signature is inherently wide: three panels, three
// dimensions, and the epilogue operands.
#[allow(clippy::too_many_arguments)]
pub fn gemm_bias_relu_f32(
    scratch: &mut GemmScratch,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    bias: &[f32],
    relu: bool,
    out: &mut [f32],
) {
    assert_eq!(bias.len(), m, "gemm_bias_relu_f32: bias.len() != m");
    gemm_impl(scratch, a, b, m, k, n, Some(bias), relu, out);
}

#[allow(clippy::too_many_arguments)]
fn gemm_impl(
    scratch: &mut GemmScratch,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    bias: Option<&[f32]>,
    relu: bool,
    out: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "gemm_f32: a.len() != m*k");
    assert_eq!(b.len(), k * n, "gemm_f32: b.len() != k*n");
    assert_eq!(out.len(), m * n, "gemm_f32: out.len() != m*n");
    if m == 0 || n == 0 {
        return;
    }
    GEMM_CALLS.fetch_add(1, Ordering::Relaxed);
    GEMM_FLOPS.fetch_add(2 * (m as u64) * (k as u64) * (n as u64), Ordering::Relaxed);
    let m_blocks = m.div_ceil(GEMM_MR);
    let packed = m_blocks * GEMM_MR * k;
    if scratch.a_pack.len() < packed {
        scratch.a_pack.resize(packed, 0.0);
    }
    let a_pack = &mut scratch.a_pack[..packed];
    // Pack: block i, layout [kk * GEMM_MR + mr] = a[(i*MR + mr) * k + kk].
    for i in 0..m_blocks {
        let block = &mut a_pack[i * GEMM_MR * k..(i + 1) * GEMM_MR * k];
        for mr in 0..GEMM_MR {
            let row = i * GEMM_MR + mr;
            if row < m {
                for (kk, &v) in a[row * k..(row + 1) * k].iter().enumerate() {
                    block[kk * GEMM_MR + mr] = v;
                }
            } else {
                for kk in 0..k {
                    block[kk * GEMM_MR + mr] = 0.0;
                }
            }
        }
    }
    for i in 0..m_blocks {
        let block = &a_pack[i * GEMM_MR * k..(i + 1) * GEMM_MR * k];
        let rows = GEMM_MR.min(m - i * GEMM_MR);
        let mut j0 = 0;
        while j0 < n {
            let nb = GEMM_NB.min(n - j0);
            let mut acc = [[0.0f32; GEMM_NB]; GEMM_MR];
            if nb == GEMM_NB {
                // Full-width tile: fixed trip counts so the accumulators
                // stay in registers across the k loop.
                for kk in 0..k {
                    let a_col = &block[kk * GEMM_MR..(kk + 1) * GEMM_MR];
                    let b_row = &b[kk * n + j0..kk * n + j0 + GEMM_NB];
                    for mr in 0..GEMM_MR {
                        let av = a_col[mr];
                        for jj in 0..GEMM_NB {
                            acc[mr][jj] += av * b_row[jj];
                        }
                    }
                }
            } else {
                for kk in 0..k {
                    let a_col = &block[kk * GEMM_MR..(kk + 1) * GEMM_MR];
                    let b_row = &b[kk * n + j0..kk * n + j0 + nb];
                    for mr in 0..GEMM_MR {
                        let av = a_col[mr];
                        for (jj, &bv) in b_row.iter().enumerate() {
                            acc[mr][jj] += av * bv;
                        }
                    }
                }
            }
            for mr in 0..rows {
                let row = i * GEMM_MR + mr;
                let add = bias.map_or(0.0, |bs| bs[row]);
                let dst = &mut out[row * n + j0..row * n + j0 + nb];
                for (d, &v) in dst.iter_mut().zip(&acc[mr][..nb]) {
                    let y = v + add;
                    *d = if relu && y < 0.0 { 0.0 } else { y };
                }
            }
            j0 += nb;
        }
    }
}

/// Lower a `C×H×W` channel-major map into the **same-padded 3×3 patch
/// panel**: a `(C·9) × (H·W)` row-major matrix whose row `ic·9 + ky·3 + kx`
/// holds, for every output position `(y, x)` (column `y·W + x`), the input
/// value at `(ic, y + ky - 1, x + kx - 1)` — or `0` where that falls
/// outside the map. A stride-1 zero-padded 3×3 convolution is then exactly
/// `weights · panel` (see [`gemm_f32`]), with the weight table's
/// `[out_c][in_c][ky][kx]` layout matching the panel's row order.
///
/// The panel is written into the caller-owned `out` buffer (resized to
/// `C·9·H·W`; contents fully overwritten), so per-layer lowering costs no
/// allocation once the buffer has grown to the largest layer. Every row is
/// a shifted copy of a channel plane row, so the lowering is pure
/// `memcpy`-speed traffic — `9·C·H·W` writes against the `2·9·C·H·W·out_c`
/// flops of the product it feeds.
///
/// # Panics
/// Panics if `input.len() != channels·height·width` or any dimension is 0.
pub fn im2col_3x3(input: &[f32], channels: usize, height: usize, width: usize, out: &mut Vec<f32>) {
    assert!(channels > 0 && height > 0 && width > 0, "im2col_3x3: empty input");
    assert_eq!(input.len(), channels * height * width, "im2col_3x3: input shape mismatch");
    let plane = height * width;
    out.resize(channels * 9 * plane, 0.0);
    for ic in 0..channels {
        let src = &input[ic * plane..(ic + 1) * plane];
        for ky in 0..3 {
            for kx in 0..3 {
                let dst = &mut out[(ic * 9 + ky * 3 + kx) * plane..][..plane];
                for y in 0..height {
                    let drow = &mut dst[y * width..(y + 1) * width];
                    // Source row index is y + ky - 1; `sy` is that plus one
                    // so the bounds check stays in unsigned arithmetic.
                    let sy = y + ky;
                    if sy < 1 || sy > height {
                        drow.fill(0.0);
                        continue;
                    }
                    let srow = &src[(sy - 1) * width..sy * width];
                    match kx {
                        0 => {
                            drow[0] = 0.0;
                            drow[1..].copy_from_slice(&srow[..width - 1]);
                        }
                        1 => drow.copy_from_slice(srow),
                        _ => {
                            drow[width - 1] = 0.0;
                            drow[..width - 1].copy_from_slice(&srow[1..]);
                        }
                    }
                }
            }
        }
    }
}

/// Reference scalar implementation of [`colmax_matmul_f32`]: plain
/// sequential dot products, one running maximum per output — the shape of
/// the pre-blocking affinity hot path. Kept (and exported) so property
/// tests can cross-check the blocked kernel and `repro -- affinity` can
/// measure the speedup against the original semantics.
pub fn colmax_matmul_naive_f32(a: &[f32], b: &[f32], cols: usize, out: &mut [f32]) {
    assert!(cols > 0, "colmax_matmul_naive_f32: cols must be ≥ 1");
    assert_eq!(a.len() % cols, 0, "colmax_matmul_naive_f32: a.len() not a multiple of cols");
    assert_eq!(b.len(), out.len() * cols, "colmax_matmul_naive_f32: b/out shape mismatch");
    out.fill(f32::NEG_INFINITY);
    for a_row in a.chunks_exact(cols) {
        for (o, b_row) in out.iter_mut().zip(b.chunks_exact(cols)) {
            let mut dot = 0.0f32;
            for (&x, &y) in a_row.iter().zip(b_row) {
                dot += x * y;
            }
            if dot > *o {
                *o = dot;
            }
        }
    }
}

/// Result of a symmetric eigendecomposition: `a = V diag(λ) Vᵀ` with
/// eigenvalues sorted in **descending** order and eigenvectors as columns of
/// `vectors` (i.e. `vectors.col(k)` pairs with `values[k]`).
#[derive(Debug, Clone)]
// goggles-lint: allow(dead-pub): return type of pub `orthogonal_iteration`: external callers destructure it without naming it
pub struct EighResult {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Eigenvectors as columns, aligned with `values`.
    pub vectors: Matrix<f64>,
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix.
///
/// Runs sweeps of Givens rotations until the off-diagonal Frobenius mass
/// drops below `1e-12` times the matrix norm (or 100 sweeps). For the sizes
/// this workspace uses (≤ a few hundred) this is fast and extremely robust.
pub(crate) fn jacobi_eigh(a: &Matrix<f64>) -> Result<EighResult> {
    let n = a.rows();
    if a.cols() != n {
        return Err(TensorError::NotSquare { rows: a.rows(), cols: a.cols() });
    }
    if n == 0 {
        return Err(TensorError::Empty("jacobi_eigh on 0x0 matrix".into()));
    }
    let mut m = a.clone();
    let mut v = Matrix::<f64>::identity(n);
    let norm = m.frobenius_norm().max(1e-300);
    let tol = 1e-12 * norm;

    for _sweep in 0..100 {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                off += m[(p, q)] * m[(p, q)];
            }
        }
        if off.sqrt() <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= f64::MIN_POSITIVE {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Rotate rows/cols p and q of m.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                // Accumulate rotations into v.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[(j, j)].total_cmp(&m[(i, i)]));
    let values: Vec<f64> = order.iter().map(|&i| m[(i, i)]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_col)] = v[(r, old_col)];
        }
    }
    Ok(EighResult { values, vectors })
}

/// Lower-triangular Cholesky factor `L` with `L Lᵀ = a`.
///
/// Fails with [`TensorError::Numerical`] if `a` is not positive definite
/// (within a small tolerance); callers that fit covariance matrices should
/// add ridge regularization before calling.
pub fn cholesky(a: &Matrix<f64>) -> Result<Matrix<f64>> {
    let n = a.rows();
    if a.cols() != n {
        return Err(TensorError::NotSquare { rows: a.rows(), cols: a.cols() });
    }
    let mut l = Matrix::<f64>::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 {
                    // goggles-lint: allow(alloc-hot): numerical-failure return path; the factorization aborts here
                    return Err(TensorError::Numerical(format!(
                        "cholesky: non-positive pivot {sum:.3e} at {i}"
                    )));
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Ok(l)
}

/// Solve `L x = b` for lower-triangular `L` (forward substitution).
pub fn solve_lower_triangular(l: &Matrix<f64>, b: &[f64]) -> Vec<f64> {
    let n = l.rows();
    debug_assert_eq!(b.len(), n);
    let mut x = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[(i, k)] * x[k];
        }
        x[i] = sum / l[(i, i)];
    }
    x
}

/// `log det(a)` of a positive-definite matrix via its Cholesky factor.
// goggles-lint: allow(dead-pub): documented numeric API; currently exercised only by this crate's unit tests
pub fn log_det_psd(a: &Matrix<f64>) -> Result<f64> {
    let l = cholesky(a)?;
    Ok(2.0 * (0..a.rows()).map(|i| l[(i, i)].ln()).sum::<f64>())
}

/// Principal component analysis fit on the rows of a data matrix.
///
/// This mirrors what the Snuba comparison in the paper does with the VGG-16
/// logits: project 1000-dimensional features onto the top-k principal
/// components to obtain dense "primitives" (§5.1.2).
#[derive(Debug, Clone)]
pub struct Pca {
    /// Feature means subtracted before projection (length = input dim).
    pub mean: Vec<f64>,
    /// Projection matrix, `input_dim × k` (columns are components).
    pub components: Matrix<f64>,
    /// Eigenvalues (explained variance) of the retained components.
    pub explained_variance: Vec<f64>,
}

impl Pca {
    /// Fit a `k`-component PCA on the rows of `data` (`n × d`).
    ///
    /// `k` is clamped to `min(n, d)`. Uses the exact Jacobi decomposition of
    /// the `d × d` covariance, so it is intended for `d` up to ~1000.
    pub fn fit(data: &Matrix<f64>, k: usize) -> Result<Self> {
        let n = data.rows();
        let d = data.cols();
        if n == 0 || d == 0 {
            return Err(TensorError::Empty("Pca::fit on empty data".into()));
        }
        let k = k.min(d).min(n).max(1);
        let mean = data.col_means();
        // covariance = centeredᵀ centered / n
        let mut cov = Matrix::<f64>::zeros(d, d);
        for row in data.rows_iter() {
            for i in 0..d {
                let di = row[i] - mean[i];
                if di == 0.0 {
                    continue;
                }
                for j in i..d {
                    cov[(i, j)] += di * (row[j] - mean[j]);
                }
            }
        }
        let inv_n = 1.0 / n as f64;
        for i in 0..d {
            for j in i..d {
                let v = cov[(i, j)] * inv_n;
                cov[(i, j)] = v;
                cov[(j, i)] = v;
            }
        }
        let eig = jacobi_eigh(&cov)?;
        let components = eig.vectors.col_block(0, k);
        let explained_variance = eig.values[..k].to_vec();
        Ok(Self { mean, components, explained_variance })
    }

    /// Project the rows of `data` into the component space (`n × k`).
    pub fn transform(&self, data: &Matrix<f64>) -> Matrix<f64> {
        assert_eq!(data.cols(), self.mean.len(), "Pca::transform: dim mismatch");
        let k = self.components.cols();
        let mut out = Matrix::zeros(data.rows(), k);
        for (i, row) in data.rows_iter().enumerate() {
            for c in 0..k {
                let mut acc = 0.0;
                for (j, &x) in row.iter().enumerate() {
                    acc += (x - self.mean[j]) * self.components[(j, c)];
                }
                out[(i, c)] = acc;
            }
        }
        out
    }
}

/// Top-`k` eigenpairs of a symmetric PSD matrix by orthogonal (subspace)
/// iteration with QR re-orthogonalization. Suitable when the matrix is big
/// enough that full Jacobi would be wasteful but only a few leading
/// directions are needed (spectral co-clustering).
pub fn orthogonal_iteration(
    a: &Matrix<f64>,
    k: usize,
    iters: usize,
    seed: u64,
) -> Result<EighResult> {
    let n = a.rows();
    if a.cols() != n {
        return Err(TensorError::NotSquare { rows: a.rows(), cols: a.cols() });
    }
    if n == 0 || k == 0 {
        return Err(TensorError::Empty("orthogonal_iteration needs n > 0 and k > 0".into()));
    }
    let k = k.min(n);
    let mut rng = rng::std_rng(seed);
    // n × k random start, orthonormalized.
    let mut q = Matrix::from_fn(n, k, |_, _| rng::normal(&mut rng));
    gram_schmidt_columns(&mut q);
    for _ in 0..iters.max(1) {
        let mut z = a.matmul(&q);
        gram_schmidt_columns(&mut z);
        q = z;
    }
    // Rayleigh quotients as eigenvalue estimates.
    let aq = a.matmul(&q);
    let mut values = Vec::with_capacity(k);
    for c in 0..k {
        let mut lambda = 0.0;
        for r in 0..n {
            lambda += q[(r, c)] * aq[(r, c)];
        }
        values.push(lambda);
    }
    // Sort descending by |value| pairing columns.
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&i, &j| values[j].total_cmp(&values[i]));
    let sorted_values: Vec<f64> = order.iter().map(|&i| values[i]).collect();
    let mut vectors = Matrix::zeros(n, k);
    for (new_c, &old_c) in order.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_c)] = q[(r, old_c)];
        }
    }
    Ok(EighResult { values: sorted_values, vectors })
}

/// In-place modified Gram–Schmidt on the columns of `q`. Columns that
/// collapse to (numerical) zero are re-randomized deterministically from
/// their index so the basis stays full-rank.
fn gram_schmidt_columns(q: &mut Matrix<f64>) {
    let (n, k) = q.shape();
    for c in 0..k {
        for prev in 0..c {
            let mut dot = 0.0;
            for r in 0..n {
                dot += q[(r, c)] * q[(r, prev)];
            }
            for r in 0..n {
                let sub = dot * q[(r, prev)];
                q[(r, c)] -= sub;
            }
        }
        let mut norm = 0.0;
        for r in 0..n {
            norm += q[(r, c)] * q[(r, c)];
        }
        norm = norm.sqrt();
        if norm <= 1e-12 {
            // Deterministic re-seed keyed by the column index.
            let mut rng = rng::std_rng(0x9E37_79B9 ^ (c as u64));
            for r in 0..n {
                q[(r, c)] = rng::normal(&mut rng);
            }
            let mut n2 = 0.0;
            for r in 0..n {
                n2 += q[(r, c)] * q[(r, c)];
            }
            norm = n2.sqrt();
        }
        let inv = 1.0 / norm;
        for r in 0..n {
            q[(r, c)] *= inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix<f64> {
        // A known symmetric positive definite matrix.
        Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.2], &[0.5, 0.2, 2.0]])
    }

    #[test]
    fn gemm_counters_advance_by_call_and_flops() {
        let calls_before = gemm_call_count();
        let flops_before = gemm_flop_count();
        let (m, k, n) = (3, 4, 5);
        let a = vec![1.0f32; m * k];
        let b = vec![1.0f32; k * n];
        let mut out = vec![0.0f32; m * n];
        gemm_f32(&mut GemmScratch::default(), &a, &b, m, k, n, &mut out);
        // Counters are process-global and tests run in parallel, so assert
        // monotone growth by at least this call's contribution.
        assert!(gemm_call_count() > calls_before);
        assert!(gemm_flop_count() >= flops_before + 2 * (m * k * n) as u64);
        // Empty products are not counted.
        let calls = gemm_call_count();
        gemm_f32(&mut GemmScratch::default(), &[], &b[..0], 0, 0, 0, &mut []);
        assert!(gemm_call_count() >= calls);
    }

    #[test]
    fn colmax_matmul_small_exact() {
        // 2 patches × 2 dims against 3 prototypes; maxima picked per column.
        let a = [1.0f32, 0.0, 0.0, 1.0];
        let b = [1.0f32, 0.0, 0.0, 1.0, 0.5, 0.5];
        let mut out = [0.0f32; 3];
        colmax_matmul_f32(&a, &b, 2, &mut out);
        assert_eq!(out, [1.0, 1.0, 0.5]);
        let mut naive = [0.0f32; 3];
        colmax_matmul_naive_f32(&a, &b, 2, &mut naive);
        assert_eq!(out, naive);
    }

    #[test]
    fn colmax_matmul_empty_panel_is_neg_infinity() {
        let mut out = [0.0f32; 2];
        colmax_matmul_f32(&[], &[1.0, 2.0, 3.0, 4.0], 2, &mut out);
        assert!(out.iter().all(|v| *v == f32::NEG_INFINITY));
    }

    #[test]
    fn colmax_matmul_matches_naive_on_awkward_shapes() {
        // Shapes chosen to exercise tile and lane remainders: cols not a
        // multiple of DOT_LANES, rows not a multiple of COLMAX_TILE.
        let mut rng = rng::std_rng(42);
        for &(m, n, cols) in &[(1usize, 1usize, 1usize), (3, 7, 5), (9, 17, 13), (16, 33, 8)] {
            let a: Vec<f32> = (0..m * cols).map(|_| rng::normal(&mut rng) as f32).collect();
            let b: Vec<f32> = (0..n * cols).map(|_| rng::normal(&mut rng) as f32).collect();
            let mut blocked = vec![0.0f32; n];
            let mut naive = vec![0.0f32; n];
            colmax_matmul_f32(&a, &b, cols, &mut blocked);
            colmax_matmul_naive_f32(&a, &b, cols, &mut naive);
            for (x, y) in blocked.iter().zip(&naive) {
                assert!((x - y).abs() < 1e-5, "m={m} n={n} cols={cols}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn colmax_matmul_is_shard_stable() {
        // Computing a sub-range of b's rows must be bit-identical to the
        // matching slice of the full result (the sharding contract).
        let mut rng = rng::std_rng(7);
        let (m, n, cols) = (5usize, 21usize, 11usize);
        let a: Vec<f32> = (0..m * cols).map(|_| rng::normal(&mut rng) as f32).collect();
        let b: Vec<f32> = (0..n * cols).map(|_| rng::normal(&mut rng) as f32).collect();
        let mut full = vec![0.0f32; n];
        colmax_matmul_f32(&a, &b, cols, &mut full);
        for &(lo, hi) in &[(0usize, 4usize), (3, 17), (13, 21), (0, 21)] {
            let mut part = vec![0.0f32; hi - lo];
            colmax_matmul_f32(&a, &b[lo * cols..hi * cols], cols, &mut part);
            assert_eq!(part, full[lo..hi], "shard [{lo}, {hi})");
        }
    }

    /// Plain triple-loop reference for the GEMM tests.
    fn gemm_reference(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for kk in 0..k {
                let av = a[i * k + kk];
                for j in 0..n {
                    c[i * n + j] += av * b[kk * n + j];
                }
            }
        }
        c
    }

    #[test]
    fn gemm_small_exact() {
        // 2×3 · 3×2 with integer values: exact in f32.
        let a = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [7.0f32, 8.0, 9.0, 10.0, 11.0, 12.0];
        let mut out = [0.0f32; 4];
        gemm_f32(&mut GemmScratch::default(), &a, &b, 2, 3, 2, &mut out);
        assert_eq!(out, [58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn gemm_matches_reference_on_awkward_shapes() {
        // Shapes exercising the MR and NB tails and k = 0.
        let mut rng = rng::std_rng(99);
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (4, 9, 8),
            (5, 27, 13),
            (6, 1, 20),
            (8, 72, 33),
            (2, 0, 5),
        ] {
            let a: Vec<f32> = (0..m * k).map(|_| rng::normal(&mut rng) as f32).collect();
            let b: Vec<f32> = (0..k * n).map(|_| rng::normal(&mut rng) as f32).collect();
            let mut out = vec![f32::NAN; m * n];
            gemm_f32(&mut GemmScratch::default(), &a, &b, m, k, n, &mut out);
            let reference = gemm_reference(&a, &b, m, k, n);
            for (i, (x, y)) in out.iter().zip(&reference).enumerate() {
                assert!((x - y).abs() < 1e-5, "m={m} k={k} n={n} i={i}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn gemm_scratch_reuse_is_bit_identical() {
        let mut rng = rng::std_rng(5);
        let (m, k, n) = (7usize, 20usize, 19usize);
        let a: Vec<f32> = (0..m * k).map(|_| rng::normal(&mut rng) as f32).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng::normal(&mut rng) as f32).collect();
        let mut scratch = GemmScratch::default();
        // Grow the scratch on a larger problem first, then reuse.
        let big: Vec<f32> = (0..16 * 40).map(|_| rng::normal(&mut rng) as f32).collect();
        let bigb: Vec<f32> = (0..40 * 24).map(|_| rng::normal(&mut rng) as f32).collect();
        let mut sink = vec![0.0f32; 16 * 24];
        gemm_f32(&mut scratch, &big, &bigb, 16, 40, 24, &mut sink);
        let mut first = vec![0.0f32; m * n];
        let mut second = vec![0.0f32; m * n];
        gemm_f32(&mut scratch, &a, &b, m, k, n, &mut first);
        gemm_f32(&mut scratch, &a, &b, m, k, n, &mut second);
        let fresh = {
            let mut out = vec![0.0f32; m * n];
            gemm_f32(&mut GemmScratch::default(), &a, &b, m, k, n, &mut out);
            out
        };
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&first), bits(&second));
        assert_eq!(bits(&first), bits(&fresh));
    }

    #[test]
    fn gemm_bias_relu_epilogue() {
        // 1×2 · 2×3 = [5, 7, 9]; bias -6 then ReLU clamps two entries.
        let a = [1.0f32, 1.0];
        let b = [2.0f32, 3.0, 4.0, 3.0, 4.0, 5.0];
        let mut out = [0.0f32; 3];
        gemm_bias_relu_f32(&mut GemmScratch::default(), &a, &b, 1, 2, 3, &[-6.0], true, &mut out);
        assert_eq!(out, [0.0, 1.0, 3.0]);
        // Without relu the negatives pass through.
        gemm_bias_relu_f32(&mut GemmScratch::default(), &a, &b, 1, 2, 3, &[-6.0], false, &mut out);
        assert_eq!(out, [-1.0, 1.0, 3.0]);
    }

    #[test]
    fn im2col_3x3_center_and_borders() {
        // One 2×2 channel [[1,2],[3,4]]: check the center row (ky=1,kx=1)
        // is the identity and a corner-shift row zero-pads correctly.
        let input = [1.0f32, 2.0, 3.0, 4.0];
        let mut panel = Vec::new();
        im2col_3x3(&input, 1, 2, 2, &mut panel);
        assert_eq!(panel.len(), 9 * 4);
        // Row 4 = (ky=1, kx=1): the untouched plane.
        assert_eq!(&panel[4 * 4..5 * 4], &input);
        // Row 0 = (ky=0, kx=0): input shifted down-right, top row and left
        // column zero.
        assert_eq!(&panel[0..4], &[0.0, 0.0, 0.0, 1.0]);
        // Row 8 = (ky=2, kx=2): shifted up-left, bottom row and right
        // column zero.
        assert_eq!(&panel[8 * 4..9 * 4], &[4.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn im2col_gemm_equals_direct_conv_sum() {
        // 3×3 all-ones kernel over a delta image via im2col+gemm spreads
        // the delta over its 3×3 neighbourhood (cf. the Conv2d box test).
        let mut input = vec![0.0f32; 25];
        input[2 * 5 + 2] = 1.0;
        let mut panel = Vec::new();
        im2col_3x3(&input, 1, 5, 5, &mut panel);
        let weights = [1.0f32; 9];
        let mut out = vec![0.0f32; 25];
        gemm_f32(&mut GemmScratch::default(), &weights, &panel, 1, 9, 25, &mut out);
        for y in 0..5 {
            for x in 0..5 {
                let expect = if (1..=3).contains(&y) && (1..=3).contains(&x) { 1.0 } else { 0.0 };
                assert_eq!(out[y * 5 + x], expect, "at ({y},{x})");
            }
        }
    }

    #[test]
    fn im2col_handles_width_one() {
        let input = [1.0f32, 2.0, 3.0];
        let mut panel = Vec::new();
        im2col_3x3(&input, 1, 3, 1, &mut panel);
        // kx=0 and kx=2 rows are entirely zero-padded at width 1.
        assert_eq!(&panel[3 * 3..4 * 3], &[0.0, 0.0, 0.0]); // ky=1, kx=0
        assert_eq!(&panel[4 * 3..5 * 3], &[1.0, 2.0, 3.0]); // ky=1, kx=1 (identity)
        assert_eq!(&panel[3..2 * 3], &[0.0, 1.0, 2.0]); // ky=0, kx=1 (shift down)
    }

    #[test]
    fn jacobi_reconstructs_matrix() {
        let a = spd3();
        let eig = jacobi_eigh(&a).unwrap();
        // V diag(λ) Vᵀ == a
        let n = 3;
        let mut recon = Matrix::<f64>::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += eig.vectors[(i, k)] * eig.values[k] * eig.vectors[(j, k)];
                }
                recon[(i, j)] = s;
            }
        }
        assert!(a.max_abs_diff(&recon) < 1e-9);
    }

    #[test]
    fn jacobi_eigenvalues_sorted_descending() {
        let eig = jacobi_eigh(&spd3()).unwrap();
        assert!(eig.values.windows(2).all(|w| w[0] >= w[1]));
        // trace preserved
        let trace: f64 = eig.values.iter().sum();
        assert!((trace - 9.0).abs() < 1e-9);
    }

    #[test]
    fn jacobi_diagonal_matrix_is_fixed_point() {
        let a = Matrix::from_rows(&[&[5.0, 0.0], &[0.0, 2.0]]);
        let eig = jacobi_eigh(&a).unwrap();
        assert!((eig.values[0] - 5.0).abs() < 1e-12);
        assert!((eig.values[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn jacobi_rejects_rectangular() {
        let a = Matrix::<f64>::zeros(2, 3);
        assert!(matches!(jacobi_eigh(&a), Err(TensorError::NotSquare { .. })));
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd3();
        let l = cholesky(&a).unwrap();
        let recon = l.matmul(&l.transpose());
        assert!(a.max_abs_diff(&recon) < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(cholesky(&a).is_err());
    }

    #[test]
    fn solve_lower_triangular_roundtrip() {
        let a = spd3();
        let l = cholesky(&a).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let x = solve_lower_triangular(&l, &b);
        let back = l.matvec(&x);
        for (bb, xb) in b.iter().zip(back.iter()) {
            assert!((bb - xb).abs() < 1e-12);
        }
    }

    #[test]
    fn log_det_matches_eigenvalue_product() {
        let a = spd3();
        let eig = jacobi_eigh(&a).unwrap();
        let expect: f64 = eig.values.iter().map(|v| v.ln()).sum();
        assert!((log_det_psd(&a).unwrap() - expect).abs() < 1e-9);
    }

    #[test]
    fn pca_recovers_dominant_direction() {
        // Points spread along (1, 1)/√2 with tiny orthogonal noise.
        let mut rows = Vec::new();
        let mut rng = crate::rng::std_rng(1);
        for _ in 0..200 {
            let t = crate::rng::normal(&mut rng) * 5.0;
            let e = crate::rng::normal(&mut rng) * 0.05;
            rows.push(vec![t + e, t - e]);
        }
        let data = Matrix::from_fn(200, 2, |i, j| rows[i][j]);
        let pca = Pca::fit(&data, 1).unwrap();
        let c = pca.components.col(0);
        let dir = (c[0].abs() - c[1].abs()).abs();
        assert!(dir < 0.05, "component not along diagonal: {c:?}");
        assert!(pca.explained_variance[0] > 10.0);
        let z = pca.transform(&data);
        assert_eq!(z.shape(), (200, 1));
    }

    #[test]
    fn pca_transform_centers_data() {
        let data = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let pca = Pca::fit(&data, 2).unwrap();
        let z = pca.transform(&data);
        // projected data must be centered
        let means = z.col_means();
        for m in means {
            assert!(m.abs() < 1e-9);
        }
    }

    #[test]
    fn orthogonal_iteration_matches_jacobi_leading_pair() {
        let a = spd3();
        let full = jacobi_eigh(&a).unwrap();
        let top = orthogonal_iteration(&a, 2, 200, 7).unwrap();
        assert!((top.values[0] - full.values[0]).abs() < 1e-6);
        assert!((top.values[1] - full.values[1]).abs() < 1e-6);
        // eigenvector alignment up to sign
        for k in 0..2 {
            let mut dot = 0.0;
            for r in 0..3 {
                dot += top.vectors[(r, k)] * full.vectors[(r, k)];
            }
            assert!(dot.abs() > 0.999, "k={k} dot={dot}");
        }
    }

    #[test]
    fn orthogonal_iteration_columns_are_orthonormal() {
        let a = spd3();
        let top = orthogonal_iteration(&a, 3, 100, 3).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let mut dot = 0.0;
                for r in 0..3 {
                    dot += top.vectors[(r, i)] * top.vectors[(r, j)];
                }
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-8);
            }
        }
    }
}

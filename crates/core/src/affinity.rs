//! Affinity functions and the affinity matrix (§2.2 Step 1, §3.2).
//!
//! An affinity function `f_L^z` is indexed by a max-pool layer `L` and a
//! prototype rank `z`; its value on an ordered pair is
//! `f_L^z(x_i, x_j) = max_{h,w} cos(v_j^z, v_i^{(h,w)})` (Equation 2) — "find
//! the most similar patch in image x_i with respect to the z-th prototype of
//! image x_j".
//!
//! The affinity matrix `A ∈ R^{N×αN}` packs every function's `N × N` block
//! side by side: `A[i, f·N + j] = f(x_i, x_j)` (the paper's
//! `A[i, j] = f_{j/N}(x_i, x_{j%N})`).
//!
//! Because patch tables and prototypes are pre-normalized, each block
//! reduces to a matrix product followed by a column-max, and rows are
//! computed in parallel.

use crate::prototypes::ImageEmbedding;
use goggles_tensor::Matrix;

/// Identifier of one affinity function: `(layer L, prototype rank z)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AffinityFunction {
    /// Max-pool layer index, shallow → deep (`0..5` for the VGG backbone).
    pub layer: usize,
    /// Prototype rank within the layer, `0..Z`.
    pub z: usize,
}

impl AffinityFunction {
    /// All `n_layers · z_per_layer` functions in canonical order
    /// (layer-major). `n_layers` must match the backbone the affinity matrix
    /// was built with — deriving it here (instead of hardcoding the VGG-16
    /// count of 5) keeps flat indices in sync with
    /// [`PrototypeBank::alpha`] for any backbone depth.
    pub fn library(n_layers: usize, z_per_layer: usize) -> Vec<AffinityFunction> {
        (0..n_layers)
            .flat_map(|layer| (0..z_per_layer).map(move |z| AffinityFunction { layer, z }))
            .collect()
    }

    /// Flat index of this function in the canonical library.
    // goggles-lint: allow(dead-pub): documented cell-addressing contract of the pub AffinityMatrix; exercised only by unit tests
    pub fn flat_index(&self, z_per_layer: usize) -> usize {
        self.layer * z_per_layer + self.z
    }
}

impl std::fmt::Display for AffinityFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "f[L{}:z{}]", self.layer + 1, self.z + 1)
    }
}

/// The dense `N × αN` affinity matrix plus its layout metadata.
#[derive(Debug, Clone)]
pub struct AffinityMatrix {
    /// Row-major scores; row `i`, column `f·N + j`.
    pub data: Matrix<f64>,
    /// Number of instances `N = n + m`.
    pub n: usize,
    /// Number of affinity functions `α`.
    pub alpha: usize,
    /// Prototypes per layer (`Z`), recorded for function bookkeeping.
    pub z_per_layer: usize,
}

/// The frozen prototype side of a fitted affinity matrix: per layer, the
/// stacked `(n·z) × C` prototype table of all `n` training images (row
/// `j·z + r` holds prototype `r` of image `j`).
///
/// A bank is everything needed to evaluate every affinity function against
/// the *stored* training corpus for a **new** image: the `1 × αN` row
/// `A[x, f·N + j] = f(x, x_j)` follows from the new image's patch tables
/// alone, so out-of-sample inference never re-embeds the training set (the
/// serving path of `goggles-serve`).
#[derive(Debug, Clone, PartialEq)]
pub struct PrototypeBank {
    /// One stacked prototype table per backbone layer, shallow → deep.
    pub stacked: Vec<Matrix<f32>>,
    /// Number of stored (training) images `N`.
    pub n: usize,
    /// Prototypes per layer (`Z`).
    pub z_per_layer: usize,
    /// Transposed prototype panels (one per layer), built once at
    /// construction and reused by every affinity request: the kernel's tall
    /// path reads prototypes column-major, and caching the transpose here
    /// keeps the per-request hot path transpose- and allocation-free.
    panels: Vec<goggles_tensor::ColmaxPanel>,
}

impl PrototypeBank {
    /// Stack the prototypes of a training corpus.
    ///
    /// All embeddings must share one backbone geometry (same layer count,
    /// same prototypes-per-layer `Z`, same channel width per layer); the
    /// bank's shape is taken from it. A mismatch panics loudly — an
    /// embedding with *more* prototypes would otherwise be silently
    /// truncated to `Z`, and one with a different layer count would index
    /// out of bounds.
    pub fn from_embeddings(embeddings: &[ImageEmbedding]) -> Self {
        let n = embeddings.len();
        assert!(n > 0, "need at least one embedding");
        let n_layers = embeddings[0].layers.len();
        let z = embeddings[0].layers[0].prototypes.rows();
        for (i, emb) in embeddings.iter().enumerate() {
            assert_eq!(
                emb.layers.len(),
                n_layers,
                "PrototypeBank::from_embeddings: embedding {i} has {} layers but embedding 0 \
                 has {n_layers} — all embeddings must come from the same backbone config",
                emb.layers.len()
            );
            for (l, layer) in emb.layers.iter().enumerate() {
                assert_eq!(
                    layer.prototypes.rows(),
                    z,
                    "PrototypeBank::from_embeddings: embedding {i} layer {l} has {} prototypes \
                     but embedding 0 has Z = {z} — was it extracted with a different top_z?",
                    layer.prototypes.rows()
                );
                assert_eq!(
                    layer.prototypes.cols(),
                    embeddings[0].layers[l].prototypes.cols(),
                    "PrototypeBank::from_embeddings: embedding {i} layer {l} has prototype dim \
                     {} but embedding 0 has {} — mixed backbone channel widths",
                    layer.prototypes.cols(),
                    embeddings[0].layers[l].prototypes.cols()
                );
            }
        }
        let stacked: Vec<Matrix<f32>> = (0..n_layers)
            .map(|layer| {
                let c = embeddings[0].layers[layer].prototypes.cols();
                let mut p = Matrix::<f32>::zeros(n * z, c);
                for (j, emb) in embeddings.iter().enumerate() {
                    for r in 0..z {
                        p.row_mut(j * z + r).copy_from_slice(emb.layers[layer].prototypes.row(r));
                    }
                }
                p
            })
            .collect();
        let panels = build_panels(&stacked);
        Self { stacked, n, z_per_layer: z, panels }
    }

    /// Build a bank directly from already-stacked per-layer prototype
    /// tables — the deserialization path (`goggles-serve` snapshots, any
    /// future external bank source). Unlike a struct literal this validates
    /// the geometry, so a corrupt or hand-built bank fails here instead of
    /// panicking later inside the affinity kernel:
    ///
    /// * `n ≥ 1`, `z_per_layer ≥ 1`, at least one layer,
    /// * every layer is `(n · z_per_layer) × C_l` with `C_l ≥ 1`.
    pub fn from_stacked(
        stacked: Vec<Matrix<f32>>,
        n: usize,
        z_per_layer: usize,
    ) -> crate::Result<Self> {
        if n == 0 || z_per_layer == 0 || stacked.is_empty() {
            return Err(crate::GogglesError::InvalidInput(format!(
                "prototype bank must be non-empty (N = {n}, Z = {z_per_layer}, layers = {})",
                stacked.len()
            )));
        }
        // Deserialized dimensions are untrusted: a corrupt N/Z pair must
        // come back as an error, not an arithmetic-overflow panic.
        let rows = n.checked_mul(z_per_layer).ok_or_else(|| {
            crate::GogglesError::InvalidInput(format!(
                "bank shape N·Z = {n}·{z_per_layer} overflows"
            ))
        })?;
        for (l, layer) in stacked.iter().enumerate() {
            if layer.rows() != rows || layer.cols() == 0 {
                return Err(crate::GogglesError::InvalidInput(format!(
                    "bank layer {l} is {}×{}; expected N·Z = {n}·{z_per_layer} = {rows} rows \
                     and ≥ 1 channel",
                    layer.rows(),
                    layer.cols(),
                )));
            }
        }
        let panels = build_panels(&stacked);
        Ok(Self { stacked, n, z_per_layer, panels })
    }

    /// Number of affinity functions `α = layers · Z`.
    pub fn alpha(&self) -> usize {
        self.stacked.len() * self.z_per_layer
    }

    /// Affinity rows of `queries` against the stored prototypes: an
    /// `m × αN` matrix laid out exactly like [`AffinityMatrix::data`]
    /// (`row q, column f·N + j = f(query_q, train_j)`). Cost is
    /// `O(m · N)` affinity evaluations — independent of `N²`.
    ///
    /// Parallelism adapts to the request shape: with `m ≥ threads` queries
    /// the rows are fanned out across the pool (batch builds), while with
    /// `m < threads` — the online serving case, typically `m = 1` — each
    /// row's stacked `n·z` prototype axis is sharded across the pool
    /// instead, so a single request saturates every core. Both paths run
    /// the blocked [`goggles_tensor::colmax_matmul_f32`] kernel and produce
    /// bit-identical output for every thread count.
    pub fn affinity_rows(&self, queries: &[ImageEmbedding], threads: usize) -> Matrix<f64> {
        let m = queries.len();
        let row_len = self.alpha() * self.n;
        let mut data = Matrix::<f64>::zeros(m, row_len);
        if m == 0 {
            return data;
        }
        self.validate_queries(queries);
        let threads = threads.max(1);
        let (n, z) = (self.n, self.z_per_layer);
        if threads == 1 {
            let mut scratch = RowScratch::default();
            for (q, row) in data.as_mut_slice().chunks_mut(row_len).enumerate() {
                fill_row(row, &queries[q], &self.stacked, &self.panels, n, z, &mut scratch);
            }
        } else if m >= threads {
            let chunk = m.div_ceil(threads);
            std::thread::scope(|scope| {
                for (t, rows_chunk) in data.as_mut_slice().chunks_mut(chunk * row_len).enumerate() {
                    let start = t * chunk;
                    let stacked = &self.stacked;
                    let panels = &self.panels;
                    scope.spawn(move || {
                        // One workspace per worker, reused across every row
                        // and layer it fills.
                        let mut scratch = RowScratch::default();
                        for (local, row) in rows_chunk.chunks_mut(row_len).enumerate() {
                            fill_row(
                                row,
                                &queries[start + local],
                                stacked,
                                panels,
                                n,
                                z,
                                &mut scratch,
                            );
                        }
                    });
                }
            });
        } else {
            // Maxima buffer shared across rows (each pass overwrites it).
            let mut best = Vec::new();
            for (q, row) in data.as_mut_slice().chunks_mut(row_len).enumerate() {
                fill_row_sharded(
                    row,
                    &queries[q],
                    &self.stacked,
                    &self.panels,
                    n,
                    z,
                    threads,
                    &mut best,
                );
            }
        }
        data
    }

    /// The pre-blocking scalar reference path: the same `m × αN` rows via
    /// plain per-prototype dot-product loops on one thread, allocating its
    /// maxima buffer per row like the original hot path did. Retained so
    /// tests can cross-check the blocked kernel end-to-end and
    /// `repro -- affinity` can measure the speedup against it.
    pub fn affinity_rows_reference(&self, queries: &[ImageEmbedding]) -> Matrix<f64> {
        let m = queries.len();
        let row_len = self.alpha() * self.n;
        let mut data = Matrix::<f64>::zeros(m, row_len);
        if m == 0 {
            return data;
        }
        self.validate_queries(queries);
        for (q, row) in data.as_mut_slice().chunks_mut(row_len).enumerate() {
            fill_row_reference(row, &queries[q], &self.stacked, self.n, self.z_per_layer);
        }
        data
    }

    /// Fail loudly (also in release) on geometry mismatches — a query
    /// embedded with a different backbone config would otherwise produce
    /// silently truncated dot products in the kernel.
    fn validate_queries(&self, queries: &[ImageEmbedding]) {
        for (q, emb) in queries.iter().enumerate() {
            assert_eq!(
                emb.layers.len(),
                self.stacked.len(),
                "query {q}: {} layers but the bank holds {}",
                emb.layers.len(),
                self.stacked.len()
            );
            for (l, (layer, protos)) in emb.layers.iter().zip(&self.stacked).enumerate() {
                assert_eq!(
                    layer.patches.cols(),
                    protos.cols(),
                    "query {q} layer {l}: patch dim {} != bank prototype dim {} \
                     (was it embedded with the same backbone config?)",
                    layer.patches.cols(),
                    protos.cols()
                );
            }
        }
    }
}

impl AffinityMatrix {
    /// Build the matrix from per-image embeddings (Algorithm 1 applied to
    /// all ordered pairs). `threads` bounds the row-parallel fan-out.
    pub fn build(embeddings: &[ImageEmbedding], threads: usize) -> Self {
        let bank = PrototypeBank::from_embeddings(embeddings);
        let data = bank.affinity_rows(embeddings, threads);
        Self { data, n: bank.n, alpha: bank.alpha(), z_per_layer: bank.z_per_layer }
    }

    /// The `N × N` block of affinity function `f` (by flat index).
    pub fn function_block(&self, f: usize) -> Matrix<f64> {
        assert!(f < self.alpha, "function index {f} out of range ({})", self.alpha);
        self.data.col_block(f * self.n, (f + 1) * self.n)
    }

    /// A copy restricted to the affinity functions selected by `keep` —
    /// arbitrary **flat** function indices, required to be strictly
    /// increasing (used by the Figure 9 sweep over the number of affinity
    /// functions). Duplicate or out-of-order indices would silently
    /// desynchronize the `z_per_layer` bookkeeping of the copy, so they are
    /// rejected.
    pub fn restrict_functions(&self, keep: &[usize]) -> AffinityMatrix {
        assert!(!keep.is_empty());
        assert!(
            keep.windows(2).all(|w| w[0] < w[1]),
            "restrict_functions: indices must be strictly increasing (no duplicates), got {keep:?}"
        );
        let mut blocks: Vec<Matrix<f64>> = Vec::with_capacity(keep.len());
        for &f in keep {
            blocks.push(self.function_block(f));
        }
        let mut data = blocks[0].clone();
        for b in &blocks[1..] {
            data = data.hstack(b).expect("equal row counts");
        }
        AffinityMatrix { data, n: self.n, alpha: keep.len(), z_per_layer: self.z_per_layer }
    }

    /// Build a **single-function** affinity matrix from arbitrary feature
    /// vectors via pairwise cosine similarity — the HOG / Logits
    /// representation baselines of §5.1.5 feed this into the same inference
    /// module.
    pub fn from_feature_vectors(features: &Matrix<f64>) -> Self {
        let n = features.rows();
        assert!(n > 0, "need at least one feature row");
        let mut normalized = features.clone();
        normalized.l2_normalize_rows();
        let sims = normalized.matmul(&normalized.transpose());
        Self { data: sims, n, alpha: 1, z_per_layer: 1 }
    }

    /// Per-function separation diagnostics against ground truth (drives the
    /// Figure 2 and Figure 5 harnesses).
    pub fn score_distribution(&self, f: usize, labels: &[usize]) -> ScoreDistribution {
        assert_eq!(labels.len(), self.n, "labels must cover all instances");
        let block = self.function_block(f);
        let mut same = Vec::new();
        let mut diff = Vec::new();
        for i in 0..self.n {
            for j in 0..self.n {
                if i == j {
                    continue;
                }
                let v = block[(i, j)];
                if labels[i] == labels[j] {
                    same.push(v);
                } else {
                    diff.push(v);
                }
            }
        }
        let auc = goggles_tensor::auc(&same, &diff);
        ScoreDistribution { function: f, same_class: same, cross_class: diff, auc }
    }

    /// Class-sorted block means of one function's `N × N` slice — the
    /// numeric content of the paper's Figure 5 heatmap. Entry `[a][b]` is
    /// the mean affinity of (row class `a`, column class `b`) pairs.
    pub fn sorted_block_view(&self, f: usize, labels: &[usize], k: usize) -> Vec<Vec<f64>> {
        let block = self.function_block(f);
        let mut sums = vec![vec![0.0f64; k]; k];
        let mut counts = vec![vec![0usize; k]; k];
        for i in 0..self.n {
            for j in 0..self.n {
                if i == j {
                    continue;
                }
                sums[labels[i]][labels[j]] += block[(i, j)];
                counts[labels[i]][labels[j]] += 1;
            }
        }
        for a in 0..k {
            for b in 0..k {
                if counts[a][b] > 0 {
                    sums[a][b] /= counts[a][b] as f64;
                }
            }
        }
        sums
    }
}

/// Same-class vs cross-class affinity scores of one function, plus the AUC
/// separation measure used to rank functions (Example 2 / Figure 2).
#[derive(Debug, Clone)]
// goggles-lint: allow(dead-pub): return type of pub PrototypeBank scoring API; external callers destructure it without naming it
pub struct ScoreDistribution {
    /// Flat function index.
    pub function: usize,
    /// Scores of ordered same-class pairs (diagonal excluded).
    pub same_class: Vec<f64>,
    /// Scores of ordered cross-class pairs.
    pub cross_class: Vec<f64>,
    /// P(same-class score > cross-class score); 0.5 = uninformative.
    pub auc: f64,
}

/// Per-thread workspace of the row-filling hot path: the kernel scratch
/// (transposed patch panel + accumulator column) plus the per-layer maxima
/// buffer. Each buffer grows once to the largest layer geometry and is
/// then reused across every layer and row the thread fills — the hot path
/// never reallocates.
#[derive(Default)]
struct RowScratch {
    kernel: goggles_tensor::ColmaxScratch,
    best: Vec<f32>,
}

/// One [`goggles_tensor::ColmaxPanel`] per stacked layer — the transposed
/// prototype cache every affinity request reuses.
fn build_panels(stacked: &[Matrix<f32>]) -> Vec<goggles_tensor::ColmaxPanel> {
    stacked.iter().map(|p| goggles_tensor::ColmaxPanel::new(p.as_slice(), p.cols())).collect()
}

/// Fill row `i` of the affinity matrix: for every layer, run the blocked
/// fused matmul + column-max kernel over the image's patch table and the
/// stacked prototype table (Equation 2 vectorized over all (j, z) pairs at
/// once), then scatter the maxima into the paper's `f·N + j` column layout.
/// The kernel's tall path reads the bank's cached transposed panel, so the
/// per-request work is pure streaming arithmetic.
fn fill_row(
    row: &mut [f64],
    embedding: &ImageEmbedding,
    stacked: &[Matrix<f32>],
    panels: &[goggles_tensor::ColmaxPanel],
    n: usize,
    z: usize,
    scratch: &mut RowScratch,
) {
    for ((layer, protos), panel) in stacked.iter().enumerate().zip(panels) {
        let patches = &embedding.layers[layer].patches; // HW × C
        let nz = protos.rows(); // n·z
        debug_assert_eq!(patches.cols(), protos.cols());
        if scratch.best.len() < nz {
            scratch.best.resize(nz, 0.0);
        }
        let best = &mut scratch.best[..nz];
        goggles_tensor::colmax_matmul_panel_f32(
            &mut scratch.kernel,
            patches.as_slice(),
            protos.as_slice(),
            panel,
            0,
            best,
        );
        scatter_layer(row, best, layer, n, z);
    }
}

/// Intra-request sharded fill of one affinity row: the concatenation of the
/// per-layer stacked prototype axes (total length `Σ_layers n·z = αN`) is
/// cut into `threads` contiguous chunks; each worker runs the blocked
/// kernel over its sub-ranges (a shard may straddle layer boundaries —
/// prototype rows are contiguous in memory, so a sub-range is just a
/// sub-slice), and the maxima are scattered once at the end.
///
/// Bit-identical to [`fill_row`]: the kernel's output for a prototype row
/// never depends on shard alignment.
///
/// Spawning the scoped workers costs tens of microseconds per row — the
/// price of letting one online request use the whole pool. It amortizes as
/// soon as a row outweighs it (any realistic bank size); for rows cheaper
/// than the fan-out, callers should pass `threads = 1` and take the serial
/// kernel. `best` is caller-owned so repeated rows reuse one allocation.
// The shard bookkeeping needs the stacked tables, their panels and the
// layout metadata side by side; bundling them into a struct would obscure
// the (hot) call sites more than the argument list does.
#[allow(clippy::too_many_arguments)]
fn fill_row_sharded(
    row: &mut [f64],
    embedding: &ImageEmbedding,
    stacked: &[Matrix<f32>],
    panels: &[goggles_tensor::ColmaxPanel],
    n: usize,
    z: usize,
    threads: usize,
    best: &mut Vec<f32>,
) {
    let total: usize = stacked.iter().map(Matrix::rows).sum();
    if best.len() < total {
        best.resize(total, 0.0);
    }
    let best = &mut best[..total];
    let chunk = total.div_ceil(threads).max(1);
    std::thread::scope(|scope| {
        for (t, out_chunk) in best.chunks_mut(chunk).enumerate() {
            let start = t * chunk;
            scope.spawn(move || {
                let mut kernel = goggles_tensor::ColmaxScratch::default();
                let mut offset = 0usize;
                for ((layer, protos), panel) in stacked.iter().enumerate().zip(panels) {
                    let nz = protos.rows();
                    let lo = start.max(offset);
                    let hi = (start + out_chunk.len()).min(offset + nz);
                    if lo < hi {
                        let patches = &embedding.layers[layer].patches;
                        goggles_tensor::colmax_matmul_panel_f32(
                            &mut kernel,
                            patches.as_slice(),
                            protos.as_slice(),
                            panel,
                            lo - offset,
                            &mut out_chunk[lo - start..hi - start],
                        );
                    }
                    offset += nz;
                }
            });
        }
    });
    let mut offset = 0usize;
    for (layer, protos) in stacked.iter().enumerate() {
        scatter_layer(row, &best[offset..offset + protos.rows()], layer, n, z);
        offset += protos.rows();
    }
}

/// Scatter one layer's per-prototype maxima (`best[j·z + r]`) into the
/// affinity row: function `layer·z + r` block, column `j`.
fn scatter_layer(row: &mut [f64], best: &[f32], layer: usize, n: usize, z: usize) {
    for j in 0..n {
        for r in 0..z {
            row[(layer * z + r) * n + j] = best[j * z + r] as f64;
        }
    }
}

/// The original scalar hot path, kept verbatim as the reference
/// implementation: per-patch, per-prototype sequential dot products with a
/// freshly allocated maxima buffer each call. See
/// [`PrototypeBank::affinity_rows_reference`].
fn fill_row_reference(
    row: &mut [f64],
    embedding: &ImageEmbedding,
    stacked: &[Matrix<f32>],
    n: usize,
    z: usize,
) {
    for (layer, protos) in stacked.iter().enumerate() {
        let patches = &embedding.layers[layer].patches; // HW × C
        let hw = patches.rows();
        let nz = protos.rows(); // n·z
        debug_assert_eq!(patches.cols(), protos.cols());
        // scores[(j·z + r)] = max over patches of dot(patch, proto)
        let mut best = vec![f32::NEG_INFINITY; nz];
        for p in 0..hw {
            let patch = patches.row(p);
            for (b, proto_row) in best.iter_mut().zip(0..nz) {
                let proto = protos.row(proto_row);
                let mut dot = 0.0f32;
                for (&a, &q) in patch.iter().zip(proto) {
                    dot += a * q;
                }
                if dot > *b {
                    *b = dot;
                }
            }
        }
        scatter_layer(row, &best, layer, n, z);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prototypes::{embed_images, LayerEmbedding};
    use goggles_cnn::{Vgg16, VggConfig};
    use goggles_vision::{draw, Image};

    /// Hand-built one-layer embedding for exact-value tests.
    fn toy_embedding(patch_rows: &[&[f32]], proto_rows: &[&[f32]]) -> ImageEmbedding {
        let mut patches = Matrix::from_rows(patch_rows);
        patches.l2_normalize_rows();
        let mut prototypes = Matrix::from_rows(proto_rows);
        prototypes.l2_normalize_rows();
        let locations = vec![(0, 0); proto_rows.len()];
        ImageEmbedding { layers: vec![LayerEmbedding { patches, prototypes, locations }] }
    }

    #[test]
    fn affinity_is_max_cosine_over_patches() {
        // Image 0 has patches along x and y axes; image 1's prototype is
        // along x. f(x_0, x_1) must be cos(x, x) = 1.
        let e0 = toy_embedding(&[&[1.0, 0.0], &[0.0, 1.0]], &[&[0.0, 1.0]]);
        let e1 = toy_embedding(&[&[0.7, 0.7]], &[&[1.0, 0.0]]);
        let am = AffinityMatrix::build(&[e0, e1], 1);
        assert_eq!(am.alpha, 1);
        assert_eq!(am.n, 2);
        let block = am.function_block(0);
        // A[0, 1] = max cos(patches of 0, proto of 1) = max(1, 0) = 1
        assert!((block[(0, 1)] - 1.0).abs() < 1e-6);
        // A[1, 0] = max cos(patch (0.7,0.7)/√.98, proto y) = √0.5
        assert!((block[(1, 0)] - 0.5f64.sqrt()).abs() < 1e-6);
        // Self-affinity: image's own prototype is among its patches -> 1
        assert!((block[(0, 0)] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn layout_matches_paper_indexing() {
        // Two functions (z=2), three images: column f·N + j.
        let mk = |a: f32, b: f32| toy_embedding(&[&[a, b]], &[&[a, b], &[b, a]]);
        let embs = vec![mk(1.0, 0.0), mk(0.0, 1.0), mk(0.7, 0.7)];
        let am = AffinityMatrix::build(&embs, 2);
        assert_eq!(am.data.shape(), (3, 2 * 3));
        // block f=1, j=0 lives at column 1*3+0 = 3
        let b1 = am.function_block(1);
        assert_eq!(am.data[(2, 3)], b1[(2, 0)]);
    }

    #[test]
    fn parallel_build_matches_serial() {
        let net = Vgg16::new(&VggConfig::tiny(), 3);
        let images: Vec<Image> = (0..5)
            .map(|i| {
                let mut img = Image::filled(3, 32, 32, 0.2);
                draw::fill_disc(&mut img, 8.0 + i as f32 * 3.0, 16.0, 5.0, &[0.9, 0.3, 0.1]);
                img
            })
            .collect();
        let refs: Vec<&Image> = images.iter().collect();
        let embs = embed_images(&net, &refs, 3, 1, false);
        let a1 = AffinityMatrix::build(&embs, 1);
        let a4 = AffinityMatrix::build(&embs, 4);
        assert!(a1.data.max_abs_diff(&a4.data) < 1e-12);
    }

    #[test]
    fn from_feature_vectors_is_cosine_gram() {
        let feats = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0], &[1.0, 1.0]]);
        let am = AffinityMatrix::from_feature_vectors(&feats);
        assert_eq!(am.alpha, 1);
        assert!((am.data[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((am.data[(0, 1)]).abs() < 1e-12);
        assert!((am.data[(0, 2)] - 0.5f64.sqrt()).abs() < 1e-12);
        // symmetric
        assert!((am.data[(2, 1)] - am.data[(1, 2)]).abs() < 1e-12);
    }

    #[test]
    fn score_distribution_separates_good_function() {
        // Build features where class 0 ⟂ class 1: affinity within class 1,
        // across class 0 → AUC must be 1.
        let feats = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 0.0], &[0.0, 1.0], &[0.0, 1.0]]);
        let am = AffinityMatrix::from_feature_vectors(&feats);
        let dist = am.score_distribution(0, &[0, 0, 1, 1]);
        assert!((dist.auc - 1.0).abs() < 1e-9);
        assert_eq!(dist.same_class.len(), 4);
        assert_eq!(dist.cross_class.len(), 8);
    }

    #[test]
    fn sorted_block_view_shows_block_structure() {
        let feats = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 0.0], &[0.0, 1.0], &[0.0, 1.0]]);
        let am = AffinityMatrix::from_feature_vectors(&feats);
        let blocks = am.sorted_block_view(0, &[0, 0, 1, 1], 2);
        assert!(blocks[0][0] > 0.99 && blocks[1][1] > 0.99);
        assert!(blocks[0][1] < 0.01 && blocks[1][0] < 0.01);
    }

    #[test]
    fn restrict_functions_keeps_selected_blocks() {
        let mk = |a: f32, b: f32| toy_embedding(&[&[a, b]], &[&[a, b], &[b, a]]);
        let embs = vec![mk(1.0, 0.0), mk(0.0, 1.0)];
        let am = AffinityMatrix::build(&embs, 1);
        let restricted = am.restrict_functions(&[1]);
        assert_eq!(restricted.alpha, 1);
        assert_eq!(restricted.data, am.function_block(1));
    }

    #[test]
    fn prototype_bank_rows_match_full_matrix() {
        // The out-of-sample row path must agree exactly with the batch build
        // when the "queries" are the training images themselves.
        let net = Vgg16::new(&VggConfig::tiny(), 5);
        let images: Vec<Image> = (0..6)
            .map(|i| {
                let mut img = Image::filled(3, 32, 32, 0.25);
                draw::fill_disc(&mut img, 6.0 + 3.0 * i as f32, 14.0, 5.0, &[0.8, 0.4, 0.2]);
                img
            })
            .collect();
        let refs: Vec<&Image> = images.iter().collect();
        let embs = embed_images(&net, &refs, 3, 1, false);
        let am = AffinityMatrix::build(&embs, 2);
        let bank = PrototypeBank::from_embeddings(&embs);
        assert_eq!(bank.alpha(), am.alpha);
        let rows = bank.affinity_rows(&embs, 3);
        assert!(rows.max_abs_diff(&am.data) < 1e-12);
        // A strict subset of queries reproduces the matching rows.
        let sub = bank.affinity_rows(&embs[2..4], 1);
        assert_eq!(sub.shape(), (2, am.alpha * am.n));
        for (q, i) in (2..4).enumerate() {
            for c in 0..sub.cols() {
                assert_eq!(sub[(q, c)], am.data[(i, c)]);
            }
        }
    }

    #[test]
    fn from_stacked_validates_geometry() {
        let layer = Matrix::<f32>::zeros(6, 4); // N·Z = 3·2
        let bank = PrototypeBank::from_stacked(vec![layer.clone()], 3, 2).unwrap();
        assert_eq!(bank.alpha(), 2);
        assert_eq!(bank.n, 3);
        // wrong row count, empty channel axis, and empty banks are rejected
        assert!(PrototypeBank::from_stacked(vec![Matrix::<f32>::zeros(5, 4)], 3, 2).is_err());
        assert!(PrototypeBank::from_stacked(vec![Matrix::<f32>::zeros(6, 0)], 3, 2).is_err());
        assert!(PrototypeBank::from_stacked(vec![], 3, 2).is_err());
        assert!(PrototypeBank::from_stacked(vec![layer.clone()], 0, 2).is_err());
        assert!(PrototypeBank::from_stacked(vec![layer], 3, 0).is_err());
    }

    #[test]
    fn prototype_bank_empty_queries() {
        let e0 = toy_embedding(&[&[1.0, 0.0]], &[&[1.0, 0.0]]);
        let bank = PrototypeBank::from_embeddings(&[e0]);
        let rows = bank.affinity_rows(&[], 4);
        assert_eq!(rows.shape(), (0, 1));
    }

    #[test]
    fn library_enumerates_layer_major() {
        let lib = AffinityFunction::library(5, 10);
        assert_eq!(lib.len(), 50);
        assert_eq!(lib[0], AffinityFunction { layer: 0, z: 0 });
        assert_eq!(lib[10], AffinityFunction { layer: 1, z: 0 });
        assert_eq!(lib[49].flat_index(10), 49);
        assert_eq!(format!("{}", lib[10]), "f[L2:z1]");
    }

    #[test]
    fn library_tracks_bank_layer_count() {
        // A non-5-layer geometry must stay in sync with the bank's α
        // (regression: the layer count used to be hardcoded to 5).
        let e0 = toy_embedding(&[&[1.0, 0.0]], &[&[1.0, 0.0], &[0.0, 1.0]]);
        let bank = PrototypeBank::from_embeddings(&[e0]);
        let lib = AffinityFunction::library(bank.stacked.len(), bank.z_per_layer);
        assert_eq!(lib.len(), bank.alpha());
        assert_eq!(lib.len(), 2);
        for (f, func) in lib.iter().enumerate() {
            assert_eq!(func.flat_index(bank.z_per_layer), f);
        }
    }

    #[test]
    #[should_panic(expected = "embedding 1 has 2 layers but embedding 0 has 1")]
    fn from_embeddings_rejects_layer_count_mismatch() {
        let e0 = toy_embedding(&[&[1.0, 0.0]], &[&[1.0, 0.0]]);
        let mut e1 = toy_embedding(&[&[1.0, 0.0]], &[&[1.0, 0.0]]);
        e1.layers.push(e1.layers[0].clone());
        PrototypeBank::from_embeddings(&[e0, e1]);
    }

    #[test]
    #[should_panic(expected = "embedding 1 layer 0 has 2 prototypes but embedding 0 has Z = 1")]
    fn from_embeddings_rejects_prototype_count_mismatch() {
        // The extra prototype used to be silently truncated to Z.
        let e0 = toy_embedding(&[&[1.0, 0.0]], &[&[1.0, 0.0]]);
        let e1 = toy_embedding(&[&[1.0, 0.0]], &[&[1.0, 0.0], &[0.0, 1.0]]);
        PrototypeBank::from_embeddings(&[e0, e1]);
    }

    #[test]
    #[should_panic(expected = "prototype dim 3 but embedding 0 has 2")]
    fn from_embeddings_rejects_channel_width_mismatch() {
        let e0 = toy_embedding(&[&[1.0, 0.0]], &[&[1.0, 0.0]]);
        let e1 = toy_embedding(&[&[1.0, 0.0, 0.0]], &[&[1.0, 0.0, 0.0]]);
        PrototypeBank::from_embeddings(&[e0, e1]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn restrict_functions_rejects_duplicates() {
        let mk = |a: f32, b: f32| toy_embedding(&[&[a, b]], &[&[a, b], &[b, a]]);
        let am = AffinityMatrix::build(&[mk(1.0, 0.0), mk(0.0, 1.0)], 1);
        am.restrict_functions(&[1, 1]);
    }

    #[test]
    fn affinity_rows_bit_identical_across_thread_counts() {
        // Covers all three paths: serial (threads = 1), row-parallel
        // (m ≥ threads) and intra-request nz-sharding (m < threads). Every
        // combination must produce bit-identical output.
        let net = Vgg16::new(&VggConfig::tiny(), 7);
        let images: Vec<Image> = (0..3)
            .map(|i| {
                let mut img = Image::filled(3, 32, 32, 0.3);
                draw::fill_disc(&mut img, 7.0 + 4.0 * i as f32, 15.0, 4.0, &[0.7, 0.2, 0.4]);
                img
            })
            .collect();
        let refs: Vec<&Image> = images.iter().collect();
        let embs = embed_images(&net, &refs, 3, 1, false);
        let bank = PrototypeBank::from_embeddings(&embs);
        let serial = bank.affinity_rows(&embs[..2], 1);
        for threads in [2, 3, 5, 8] {
            let parallel = bank.affinity_rows(&embs[..2], threads);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
        // Single-query sharding (the online case) included.
        let one = bank.affinity_rows(&embs[..1], 1);
        for threads in [2, 4, 7] {
            assert_eq!(one, bank.affinity_rows(&embs[..1], threads), "m=1 threads={threads}");
        }
    }

    #[test]
    fn blocked_rows_match_scalar_reference() {
        // End-to-end agreement of the blocked kernel path (all thread
        // shapes) with the original scalar triple loop, within 1e-5.
        let net = Vgg16::new(&VggConfig::tiny(), 9);
        let images: Vec<Image> = (0..4)
            .map(|i| {
                let mut img = Image::filled(3, 32, 32, 0.22);
                draw::fill_disc(&mut img, 9.0 + 3.0 * i as f32, 17.0, 5.0, &[0.3, 0.8, 0.2]);
                img
            })
            .collect();
        let refs: Vec<&Image> = images.iter().collect();
        let embs = embed_images(&net, &refs, 4, 1, true);
        let bank = PrototypeBank::from_embeddings(&embs);
        let reference = bank.affinity_rows_reference(&embs);
        for threads in [1, 2, 8] {
            let blocked = bank.affinity_rows(&embs, threads);
            let diff = blocked.max_abs_diff(&reference);
            assert!(diff < 1e-5, "threads = {threads}: diff = {diff}");
        }
    }
}

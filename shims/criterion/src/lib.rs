//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the subset of the criterion API the workspace's micro-benchmarks
//! use — [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — backed by a simple wall-clock timer: each
//! benchmark is warmed up, then timed over `sample_size` samples, and the
//! per-iteration mean/min are printed to stdout. No statistical analysis,
//! plots, or baselines; the numbers are indicative, which is all the offline
//! environment supports.

use std::time::{Duration, Instant};

/// How batched inputs are grouped (accepted for API compatibility; the
/// stand-in times every batch individually regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// (total measured time, iterations) accumulated by the closure.
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: one call outside the measurement.
        let _ = routine();
        let iters = self.samples as u64;
        let start = Instant::now();
        for _ in 0..iters {
            let _ = routine();
        }
        self.measured = Some((start.elapsed(), iters));
    }

    /// Time `routine` on fresh inputs produced by `setup`; only the routine
    /// is measured.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let _ = routine(setup());
        let iters = self.samples as u64;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            let _ = routine(input);
            total += start.elapsed();
        }
        self.measured = Some((total, iters));
    }
}

/// Benchmark registry + runner (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be ≥ 1");
        self.sample_size = n;
        self
    }

    /// Run one named benchmark immediately and report its timing.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: self.sample_size, measured: None };
        f(&mut b);
        match b.measured {
            Some((total, iters)) if iters > 0 => {
                let per = total.as_secs_f64() / iters as f64;
                println!("bench: {id:<40} {:>12} /iter ({iters} iters)", format_time(per));
            }
            _ => println!("bench: {id:<40} (no measurement)"),
        }
        self
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Group benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_square(c: &mut Criterion) {
        c.bench_function("square", |b| b.iter(|| std::hint::black_box(7u64).pow(2)));
        c.bench_function("square_batched", |b| {
            b.iter_batched(|| 7u64, |x| x.pow(2), BatchSize::SmallInput)
        });
    }

    criterion_group!(group_short, bench_square);

    #[test]
    fn group_runs_all_targets() {
        group_short();
    }

    #[test]
    fn time_formatting() {
        assert_eq!(format_time(2.0), "2.000 s");
        assert_eq!(format_time(2e-3), "2.000 ms");
        assert_eq!(format_time(2e-6), "2.000 µs");
        assert_eq!(format_time(2e-9), "2.0 ns");
    }
}

//! `alloc-hot`: no per-iteration allocation inside hot-path loops.
//!
//! The register-tiled kernels and the per-request serve paths are sized so
//! their steady state allocates nothing: buffers are preallocated, rows are
//! borrowed, frames reuse scratch. An allocation *inside a loop* on those
//! paths (`Vec::new`, `.to_vec()`, `.clone()`, `format!`, `Box::new`, …)
//! multiplies allocator traffic by the trip count and shows up directly in
//! tail latency. Loop bodies are found lexically (`for`/`while`/`loop`
//! blocks); iterator-adapter closures are a documented false negative.

use crate::engine::{Diagnostic, SourceFile, Workspace};
use crate::model::items::match_brace;
use crate::rules::is_hot_path;
use std::collections::BTreeSet;

const ALLOC_METHODS: &[&str] = &["to_vec", "to_owned", "to_string", "clone"];
const ALLOC_MACROS: &[&str] = &["format", "vec"];
const ALLOC_TYPES: &[&str] = &["Vec", "VecDeque", "String", "Box", "HashMap", "BTreeMap"];
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from"];

pub(crate) fn check(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for file in ws.files.iter().filter(|f| is_hot_path(f)) {
        check_file(file, out);
    }
}

fn check_file(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &file.tokens;
    // Loop body token ranges: `loop {`, or `for`/`while` followed by the
    // first brace outside parens/brackets.
    let mut regions: Vec<(usize, usize)> = Vec::new();
    for j in 0..toks.len() {
        if !matches!(toks[j].ident(), Some("for" | "while" | "loop")) {
            continue;
        }
        let mut paren = 0i32;
        let mut bracket = 0i32;
        for k in j + 1..toks.len() {
            match () {
                () if toks[k].is_punct('(') => paren += 1,
                () if toks[k].is_punct(')') => paren -= 1,
                () if toks[k].is_punct('[') => bracket += 1,
                () if toks[k].is_punct(']') => bracket -= 1,
                () if toks[k].is_punct(';') && paren == 0 && bracket == 0 => break,
                () if toks[k].is_punct('{') && paren == 0 && bracket == 0 => {
                    if let Some(close) = match_brace(toks, k) {
                        regions.push((k, close));
                    }
                    break;
                }
                () => {}
            }
        }
    }

    let mut flagged: BTreeSet<usize> = BTreeSet::new();
    for &(open, close) in &regions {
        for j in open + 1..close {
            let Some(name) = toks[j].ident() else { continue };
            if flagged.contains(&j) {
                continue;
            }
            let next_open = toks.get(j + 1).is_some_and(|t| t.is_punct('('));
            let what = if ALLOC_METHODS.contains(&name) && toks[j - 1].is_punct('.') && next_open {
                Some(format!(".{name}()"))
            } else if ALLOC_MACROS.contains(&name)
                && toks.get(j + 1).is_some_and(|t| t.is_punct('!'))
            {
                Some(format!("{name}!"))
            } else if ALLOC_CTORS.contains(&name)
                && next_open
                && j >= 3
                && toks[j - 1].is_punct(':')
                && toks[j - 2].is_punct(':')
                && toks[j - 3].ident().is_some_and(|q| ALLOC_TYPES.contains(&q))
            {
                Some(format!("{}::{name}", toks[j - 3].ident().unwrap_or_default()))
            } else {
                None
            };
            if let Some(what) = what {
                flagged.insert(j);
                file.report(
                    out,
                    "alloc-hot",
                    toks[j].line,
                    format!(
                        "{what} allocates inside a hot-path loop — hoist the buffer out of \
                         the loop, borrow instead of cloning, or annotate why the per-iteration \
                         cost is intended"
                    ),
                );
            }
        }
    }
}

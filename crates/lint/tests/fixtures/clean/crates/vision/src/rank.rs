//! Fixture: total_cmp comparator — no NaN panic possible.

pub fn sort_scores(xs: &mut [f32]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}

//! `atomics`: audited memory orderings.
//!
//! PR 6's metrics hot path is "relaxed atomics only" by design: counters
//! and gauges tolerate reordering, and anything stronger puts fences in the
//! per-request path. Elsewhere, `SeqCst` is almost always cargo-culted — a
//! global total order is rarely what a shutdown flag needs. The rule:
//! `Relaxed` is always fine; `Acquire`/`Release`/`AcqRel` on a hot-path
//! module and `SeqCst` anywhere must carry an `allow(atomics)` annotation
//! explaining what the ordering synchronizes.

use crate::engine::{Diagnostic, SourceFile};

/// Orderings that insert fences; each entry is `(name, hot_path_only)` —
/// `SeqCst` is audited workspace-wide, acquire/release only where the
/// per-request cost matters.
const STRONG_ORDERINGS: &[(&str, bool)] =
    &[("SeqCst", false), ("AcqRel", true), ("Acquire", true), ("Release", true)];

/// Flag `Ordering::<strong>` path expressions (including `use` imports of
/// a specific strong ordering, which lex to the same shape).
pub(crate) fn check_orderings(file: &SourceFile, is_hot: bool, out: &mut Vec<Diagnostic>) {
    let tokens = &file.tokens;
    for (i, t) in tokens.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        let Some(&(_, hot_only)) = STRONG_ORDERINGS.iter().find(|(n, _)| *n == name) else {
            continue;
        };
        if hot_only && !is_hot {
            continue;
        }
        // Must be the `X` of `Ordering :: X` so enum variants or locals that
        // happen to share a name (e.g. `cmp::Ordering` has no such variants,
        // but a user type might) are not flagged.
        let path_qualified = i >= 3
            && tokens[i - 1].is_punct(':')
            && tokens[i - 2].is_punct(':')
            && tokens[i - 3].ident() == Some("Ordering");
        if !path_qualified {
            continue;
        }
        let scope = if hot_only { "a hot-path module" } else { "this workspace" };
        file.report(
            out,
            "atomics",
            t.line,
            format!(
                "Ordering::{name} in {scope}: prefer Relaxed unless this access \
                 publishes or consumes other memory, and annotate what it synchronizes"
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(rel: &str, src: &str, is_hot: bool) -> Vec<Diagnostic> {
        let f = SourceFile::new(rel.into(), src);
        let mut out = Vec::new();
        check_orderings(&f, is_hot, &mut out);
        out
    }

    #[test]
    fn relaxed_is_always_fine() {
        let src = "fn f(a: &AtomicU64) { a.fetch_add(1, Ordering::Relaxed); }";
        assert!(diags("crates/obs/src/metrics.rs", src, true).is_empty());
    }

    #[test]
    fn seqcst_flagged_everywhere_acquire_only_hot() {
        let src =
            "fn f(a: &AtomicBool) { a.store(true, Ordering::SeqCst); a.load(Ordering::Acquire); }";
        assert_eq!(diags("crates/obs/src/http.rs", src, false).len(), 1, "SeqCst only");
        assert_eq!(diags("crates/serve/src/server.rs", src, true).len(), 2);
    }

    #[test]
    fn annotated_orderings_pass() {
        let src = "\
fn f(a: &AtomicBool) {
    // goggles-lint: allow(atomics): Release publishes the drained queue to the reader thread
    a.store(true, Ordering::Release);
}
";
        assert!(diags("crates/serve/src/client.rs", src, true).is_empty());
    }

    #[test]
    fn bare_idents_are_not_orderings() {
        let src = "enum Mode { Acquire, Release } fn f(m: Mode) { let x = Mode::Acquire; }";
        assert!(diags("crates/serve/src/server.rs", src, true).is_empty());
    }
}

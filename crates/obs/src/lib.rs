//! `goggles-obs`: std-only observability for the GOGGLES stack.
//!
//! Four pieces, all dependency-free:
//!
//! - [`metrics`]: a lock-free registry of counters, gauges, and
//!   power-of-two histograms (the same bucket scheme as the serving
//!   crate's `LatencyHistogram`), rendered in the Prometheus text
//!   exposition format. Registration takes a mutex once; the recording
//!   hot path is relaxed atomics only.
//! - [`span`]: RAII stage timers ([`Span`]) feeding those histograms,
//!   plus a bounded [`TraceRing`] of recent per-stage events.
//! - [`log`]: a leveled structured logger (text or JSONL to stderr).
//! - [`http`]: a minimal HTTP/1.0 `GET /metrics` listener so standard
//!   scrapers work against any registry.
//!
//! Instrumentation built from these primitives only reads clocks and bumps
//! atomics — it can never alter model numerics, which is what lets the
//! serving stack guarantee bit-identical labels with tracing enabled.

pub mod http;
pub mod log;
pub mod metrics;
pub mod span;

pub use http::MetricsServer;
pub use log::{Level, Value};
pub use metrics::{
    bucket_index, global, Counter, FloatGauge, Gauge, Histogram, HistogramSnapshot, Registry,
};
pub use span::{Span, TraceEvent, TraceRing};

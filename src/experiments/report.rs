//! Plain-text table rendering and CSV output for the experiment harness.
//! (No serde: tables are small and the formats are trivial.)

use std::io::Write as _;
use std::path::Path;

/// A rendered results table: headers plus rows of cells.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (ragged rows are padded when rendering).
    pub rows: Vec<Vec<String>>,
    /// Title printed above the table.
    pub title: String,
}

impl Table {
    /// Start a table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            title: title.into(),
        }
    }

    /// Append a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Format a percentage cell (`None` → `-`, the paper's "evaluation was
    /// not possible" marker).
    pub fn pct(value: Option<f64>) -> String {
        match value {
            Some(v) => format!("{:.2}", 100.0 * v),
            None => "-".to_string(),
        }
    }

    /// Render as an aligned monospace table.
    pub fn render(&self) -> String {
        let cols = self.headers.len().max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        fn cell(row: &[String], c: usize) -> &str {
            row.get(c).map(String::as_str).unwrap_or("")
        }
        let mut widths = vec![0usize; cols];
        for (c, w) in widths.iter_mut().enumerate() {
            *w = self
                .rows
                .iter()
                .map(|r| cell(r, c).len())
                .chain(std::iter::once(cell(&self.headers, c).len()))
                .max()
                .unwrap_or(0);
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("## {}\n", self.title));
        }
        let fmt_row = |row: &[String]| {
            let mut line = String::new();
            for (c, w) in widths.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<w$}", cell(row, c), w = *w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Write as CSV (RFC-4180-enough for these tables: cells are quoted only
    /// when they contain commas or quotes).
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = std::fs::File::create(path)?;
        let mut w = std::io::BufWriter::new(file);
        let esc = |cell: &str| {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        writeln!(w, "{}", self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","))?;
        for row in &self.rows {
            writeln!(w, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","))?;
        }
        w.flush()
    }
}

/// Directory where the bench harness drops CSV artifacts. Defaults to
/// `<workspace root>/results` (benches run with the *package* directory as
/// CWD, so a relative path would scatter artifacts); override with
/// `GOGGLES_RESULTS_DIR`.
pub fn results_dir() -> std::path::PathBuf {
    match std::env::var("GOGGLES_RESULTS_DIR") {
        Ok(dir) => std::path::PathBuf::from(dir),
        Err(_) => std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("results"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["Dataset", "Acc"]);
        t.push_row(vec!["CUB".into(), "97.83".into()]);
        t.push_row(vec!["PN-Xray".into(), "74.39".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        let lines: Vec<&str> = s.lines().collect();
        // title + header + separator + 2 rows
        assert_eq!(lines.len(), 5);
        let col = lines[3].find("97.83").unwrap();
        assert_eq!(lines[4].find("74.39").unwrap(), col);
    }

    #[test]
    fn pct_formats_and_dashes() {
        assert_eq!(Table::pct(Some(0.97834)), "97.83");
        assert_eq!(Table::pct(None), "-");
    }

    #[test]
    fn csv_round_trip_and_escaping() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["plain".into(), "with,comma".into()]);
        t.push_row(vec!["with\"quote".into(), "z".into()]);
        let dir = std::env::temp_dir().join("goggles_report_test");
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("a,b\n"));
        assert!(content.contains("\"with,comma\""));
        assert!(content.contains("\"with\"\"quote\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ragged_rows_are_padded() {
        let mut t = Table::new("", &["a", "b", "c"]);
        t.push_row(vec!["1".into()]);
        let s = t.render();
        assert!(s.lines().count() >= 3);
    }
}

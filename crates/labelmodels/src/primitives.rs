//! Primitive extraction for Snuba (§5.1.2).
//!
//! The paper, after consulting Snuba's authors, feeds Snuba "a rich feature
//! representation extracted from images as their primitives": the VGG-16
//! logits projected onto the top-10 principal components. This module
//! implements that projection over any feature matrix.

use crate::{LabelModelError, Result};
use goggles_tensor::{Matrix, Pca};

/// PCA-projected primitives plus the fitted projection (so test-time
/// features can be mapped consistently).
#[derive(Debug, Clone)]
// goggles-lint: allow(dead-pub): return type of pub extract_primitives; external callers reach it through inference
pub struct Primitives {
    /// `n × k` projected primitive matrix.
    pub values: Matrix<f64>,
    /// The fitted PCA.
    pub pca: Pca,
}

/// Project `features` (`n × d`, e.g. backbone logits) onto the top-`k`
/// principal components. The paper uses `k = 10` and notes that "providing
/// more components does not change the results significantly".
pub fn extract_primitives(features: &Matrix<f64>, k: usize) -> Result<Primitives> {
    if features.rows() == 0 || features.cols() == 0 {
        return Err(LabelModelError::EmptyInput);
    }
    let pca = Pca::fit(features, k)
        .map_err(|e| LabelModelError::InvalidInput(format!("PCA failed: {e}")))?;
    let values = pca.transform(features);
    Ok(Primitives { values, pca })
}

/// Convert an `f32` feature matrix (CNN output) to `f64`.
pub fn to_f64(features: &Matrix<f32>) -> Matrix<f64> {
    Matrix::from_fn(features.rows(), features.cols(), |i, j| features[(i, j)] as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use goggles_tensor::rng::{normal, std_rng};

    #[test]
    fn primitives_have_requested_dims() {
        let mut rng = std_rng(1);
        let feats = Matrix::from_fn(50, 20, |_, _| normal(&mut rng));
        let prim = extract_primitives(&feats, 10).unwrap();
        assert_eq!(prim.values.shape(), (50, 10));
    }

    #[test]
    fn k_clamped_to_dim() {
        let mut rng = std_rng(2);
        let feats = Matrix::from_fn(30, 4, |_, _| normal(&mut rng));
        let prim = extract_primitives(&feats, 10).unwrap();
        assert_eq!(prim.values.cols(), 4);
    }

    #[test]
    fn variance_concentrates_in_leading_components() {
        // embed a dominant 1-D signal in 6 dims
        let mut rng = std_rng(3);
        let feats = Matrix::from_fn(200, 6, |_, j| {
            let t = normal(&mut rng);
            if j == 0 {
                5.0 * t
            } else {
                0.1 * normal(&mut rng)
            }
        });
        let prim = extract_primitives(&feats, 3).unwrap();
        let vars = prim.values.col_variances();
        assert!(vars[0] > 10.0 * vars[1], "{vars:?}");
    }

    #[test]
    fn empty_input_rejected() {
        let feats = Matrix::<f64>::zeros(0, 5);
        assert!(extract_primitives(&feats, 3).is_err());
    }

    #[test]
    fn to_f64_preserves_values() {
        let f32m = Matrix::<f32>::from_rows(&[&[1.5, -2.25]]);
        let f64m = to_f64(&f32m);
        assert_eq!(f64m[(0, 0)], 1.5);
        assert_eq!(f64m[(0, 1)], -2.25);
    }
}

//! Fixture: unsafe block without an adjacent SAFETY comment.

pub fn first_unchecked(xs: &[f32]) -> f32 {
    unsafe { *xs.get_unchecked(0) }
}

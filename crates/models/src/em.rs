//! Shared expectation–maximization machinery: options, convergence
//! bookkeeping and the log-domain E-step common to every mixture model in
//! this crate (Equation 8 of the paper).

use goggles_tensor::{log_sum_exp, Matrix};

/// Options shared by the EM-fit models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmOptions {
    /// Maximum EM iterations per restart.
    pub max_iters: usize,
    /// Convergence threshold on the relative log-likelihood improvement.
    pub tol: f64,
    /// Number of random restarts; the fit with the best final
    /// log-likelihood wins.
    pub restarts: usize,
    /// Floor applied to Gaussian variances (and eigenvalue ridge for full
    /// covariances).
    pub var_floor: f64,
}

impl Default for EmOptions {
    fn default() -> Self {
        Self { max_iters: 100, tol: 1e-6, restarts: 3, var_floor: 1e-6 }
    }
}

/// Fit diagnostics returned alongside fitted models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitStats {
    /// Final (per-dataset, not per-sample) log-likelihood.
    pub log_likelihood: f64,
    /// EM iterations consumed by the winning restart.
    pub iterations: usize,
    /// Whether the winning restart converged before `max_iters`.
    pub converged: bool,
}

/// Log-domain E-step: given per-sample per-component **log joint**
/// probabilities `log π_k + log p(x_i | θ_k)` in `log_joint` (n × K), fill
/// `resp` with posteriors γ_{ik} (Equation 8) and return the data
/// log-likelihood `Σ_i log Σ_k exp(log_joint[i,k])`.
pub(crate) fn e_step_from_log_joint(log_joint: &Matrix<f64>, resp: &mut Matrix<f64>) -> f64 {
    assert_eq!(log_joint.shape(), resp.shape());
    let k = log_joint.cols();
    let mut total = 0.0;
    let mut buf = vec![0.0f64; k];
    for i in 0..log_joint.rows() {
        let row = log_joint.row(i);
        let lse = log_sum_exp(row);
        total += lse;
        if lse.is_finite() {
            for (b, &lj) in buf.iter_mut().zip(row.iter()) {
                *b = (lj - lse).exp();
            }
        } else {
            // Degenerate sample: uniform responsibility keeps EM moving.
            buf.fill(1.0 / k as f64);
        }
        resp.row_mut(i).copy_from_slice(&buf);
    }
    total
}

/// Convert soft responsibilities (n × K) into hard cluster labels by
/// per-row argmax.
pub fn hard_labels(resp: &Matrix<f64>) -> Vec<usize> {
    (0..resp.rows()).map(|i| goggles_tensor::argmax(resp.row(i))).collect()
}

/// Mixture weights from responsibilities: `π_k = N_k / N` with
/// `N_k = Σ_i γ_{ik}` (first line of Equations 10 and 11). A tiny floor
/// keeps empty components alive so later log π terms stay finite.
pub(crate) fn update_weights(resp: &Matrix<f64>) -> (Vec<f64>, Vec<f64>) {
    let n = resp.rows();
    let k = resp.cols();
    let mut nk = vec![0.0f64; k];
    for i in 0..n {
        for (acc, &g) in nk.iter_mut().zip(resp.row(i)) {
            *acc += g;
        }
    }
    let mut weights = Vec::with_capacity(k);
    for &v in &nk {
        weights.push((v / n as f64).max(1e-10));
    }
    // renormalize after flooring
    let s: f64 = weights.iter().sum();
    for w in &mut weights {
        *w /= s;
    }
    (weights, nk)
}

/// Relative improvement used for the convergence check; robust to
/// near-zero likelihoods.
pub(crate) fn relative_improvement(prev: f64, cur: f64) -> f64 {
    if !prev.is_finite() {
        return f64::INFINITY;
    }
    (cur - prev).abs() / prev.abs().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e_step_normalizes_rows() {
        let log_joint = Matrix::from_rows(&[&[0.0, (2.0f64).ln()], &[-1.0, -1.0]]);
        let mut resp = Matrix::zeros(2, 2);
        let ll = e_step_from_log_joint(&log_joint, &mut resp);
        assert!((resp[(0, 0)] - 1.0 / 3.0).abs() < 1e-12);
        assert!((resp[(0, 1)] - 2.0 / 3.0).abs() < 1e-12);
        assert!((resp[(1, 0)] - 0.5).abs() < 1e-12);
        let expect = (1.0f64 + 2.0).ln() + (-1.0 + 2.0f64.ln());
        assert!((ll - expect).abs() < 1e-12);
    }

    #[test]
    fn e_step_handles_all_neg_inf_row() {
        let log_joint = Matrix::from_rows(&[&[f64::NEG_INFINITY, f64::NEG_INFINITY], &[0.0, 0.0]]);
        let mut resp = Matrix::zeros(2, 2);
        let _ = e_step_from_log_joint(&log_joint, &mut resp);
        assert_eq!(resp.row(0), &[0.5, 0.5]);
    }

    #[test]
    fn hard_labels_argmax() {
        let resp = Matrix::from_rows(&[&[0.9, 0.1], &[0.2, 0.8], &[0.5, 0.5]]);
        assert_eq!(hard_labels(&resp), vec![0, 1, 0]);
    }

    #[test]
    fn update_weights_sums_to_one() {
        let resp = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 0.0], &[0.0, 1.0]]);
        let (w, nk) = update_weights(&resp);
        assert!((w[0] - 2.0 / 3.0).abs() < 1e-9);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(nk, vec![2.0, 1.0]);
    }

    #[test]
    fn update_weights_floors_empty_components() {
        let resp = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 0.0]]);
        let (w, _) = update_weights(&resp);
        assert!(w[1] > 0.0);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relative_improvement_handles_infinite_prev() {
        assert_eq!(relative_improvement(f64::NEG_INFINITY, -5.0), f64::INFINITY);
        assert!((relative_improvement(-100.0, -99.0) - 0.01).abs() < 1e-12);
    }
}

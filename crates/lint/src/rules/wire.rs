//! `wire`: opcode codec exhaustiveness.
//!
//! The wire protocol (PR 5) evolves by appending `Opcode` variants. Rust's
//! exhaustive `match` protects the decode path, but the *cross-file*
//! contract — every opcode is decodable (`from_u8`), dispatched by the
//! server, and speakable by the client — is exactly the kind of invariant
//! a new variant silently misses: `from_u8` returning `None` for a real
//! opcode turns into a `BadFrame` at runtime, not a compile error. This
//! rule closes the loop: each enum variant must appear in `from_u8`'s body
//! and be referenced in both `server.rs` and `client.rs`.

use crate::engine::{Diagnostic, Workspace};
use crate::lexer::Token;
use std::collections::BTreeSet;

const WIRE: &str = "crates/serve/src/wire.rs";
const PEERS: &[&str] = &["crates/serve/src/server.rs", "crates/serve/src/client.rs"];

/// Cross-file exhaustiveness over `enum Opcode`. A no-op when the workspace
/// under lint has no wire module (fixture trees exercising other rules).
pub(crate) fn check_opcode_exhaustiveness(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let Some(wire) = ws.file(WIRE) else { return };
    let Some((enum_line, variants)) = parse_enum(&wire.tokens, "Opcode") else { return };

    let decoder = body_idents_of_fn(&wire.tokens, "from_u8");
    for v in &variants {
        if !decoder.contains(v.as_str()) {
            wire.report(
                out,
                "wire",
                enum_line,
                format!(
                    "Opcode::{v} is not handled by from_u8: the decoder will reject \
                         frames carrying it as BadFrame"
                ),
            );
        }
    }

    for peer in PEERS {
        let Some(peer_file) = ws.file(peer) else { continue };
        let referenced = path_refs(&peer_file.tokens, "Opcode");
        for v in &variants {
            if !referenced.contains(v.as_str()) {
                wire.report(
                    out,
                    "wire",
                    enum_line,
                    format!(
                        "Opcode::{v} is never referenced in {peer}: the variant is \
                             decodable but not dispatched/encoded there"
                    ),
                );
            }
        }
    }
}

/// `(line, variant names)` of `enum <name> { … }`, if present.
fn parse_enum(tokens: &[Token], name: &str) -> Option<(usize, Vec<String>)> {
    let start = tokens.windows(3).position(|w| {
        w[0].ident() == Some("enum") && w[1].ident() == Some(name) && w[2].is_punct('{')
    })?;
    let enum_line = tokens[start].line;
    let mut variants = Vec::new();
    let mut depth = 1usize;
    let mut expect_variant = true;
    let mut i = start + 3;
    while i < tokens.len() && depth > 0 {
        let t = &tokens[i];
        if t.is_punct('#') {
            // skip a variant attribute: `# [ … ]`
            let mut bd = 0usize;
            i += 1;
            while i < tokens.len() {
                if tokens[i].is_punct('[') {
                    bd += 1;
                } else if tokens[i].is_punct(']') {
                    bd -= 1;
                    if bd == 0 {
                        break;
                    }
                }
                i += 1;
            }
        } else if t.is_punct('{') || t.is_punct('(') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') {
            depth -= 1;
        } else if depth == 1 && t.is_punct(',') {
            expect_variant = true;
        } else if depth == 1 && expect_variant {
            if let Some(v) = t.ident() {
                variants.push(v.to_string());
            }
            expect_variant = false;
        }
        i += 1;
    }
    Some((enum_line, variants))
}

/// All identifiers inside the brace-matched body of `fn <name>`.
fn body_idents_of_fn<'t>(tokens: &'t [Token], name: &str) -> BTreeSet<&'t str> {
    let mut idents = BTreeSet::new();
    let Some(at) =
        tokens.windows(2).position(|w| w[0].ident() == Some("fn") && w[1].ident() == Some(name))
    else {
        return idents;
    };
    let mut i = at + 2;
    while i < tokens.len() && !tokens[i].is_punct('{') {
        i += 1;
    }
    let mut depth = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if let Some(id) = t.ident() {
            idents.insert(id);
        }
        i += 1;
    }
    idents
}

/// All `X` of `<prefix> :: X` path expressions in a file.
fn path_refs<'t>(tokens: &'t [Token], prefix: &str) -> BTreeSet<&'t str> {
    let mut refs = BTreeSet::new();
    for w in tokens.windows(4) {
        if w[0].ident() == Some(prefix) && w[1].is_punct(':') && w[2].is_punct(':') {
            if let Some(v) = w[3].ident() {
                refs.insert(v);
            }
        }
    }
    refs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn enum_variants_parse_with_discriminants_and_attrs() {
        let src = "\
#[repr(u8)]
pub enum Opcode {
    LabelRequest = 1,
    #[allow(dead_code)]
    LabelReply = 2,
    Ping,
}
";
        let (line, vs) = parse_enum(&lex(src).tokens, "Opcode").unwrap();
        assert_eq!(line, 2);
        assert_eq!(vs, vec!["LabelRequest", "LabelReply", "Ping"]);
    }

    #[test]
    fn fn_body_and_path_refs() {
        let src = "fn from_u8(v: u8) -> Option<Opcode> { match v { 1 => Some(Opcode::Ping), _ => None } }";
        let tokens = lex(src).tokens;
        assert!(body_idents_of_fn(&tokens, "from_u8").contains("Ping"));
        assert!(path_refs(&tokens, "Opcode").contains("Ping"));
        assert!(!path_refs(&tokens, "Opcode").contains("from_u8"));
    }
}

//! `dead-pub`: `pub` items no other workspace crate, test, bench, or
//! example ever references.
//!
//! A `pub` that nothing external uses is an API promise nobody collects on:
//! it escapes dead-code detection (rustc sees "reachable"), it invites
//! drift, and it hides what the real inter-crate surface is. Aliveness is
//! name-based and deliberately generous: any identifier occurrence in a
//! *different* crate, in any test/bench/example (the reference corpus), or
//! in a binary target keeps an item alive — so a finding means the name
//! appears nowhere outside its own crate at all.

use crate::engine::{Diagnostic, Workspace};
use crate::model::items::crate_of;
use crate::model::SemanticModel;
use std::collections::{BTreeMap, BTreeSet};

pub(crate) fn check(ws: &Workspace, model: &SemanticModel, out: &mut Vec<Diagnostic>) {
    // The audit needs an external observer to be meaningful: a tree with a
    // single crate and no reference corpus (most rule fixtures) has nobody
    // who *could* reference anything.
    let crates: BTreeSet<&str> = ws.files.iter().map(|f| crate_of(&f.rel)).collect();
    if crates.len() < 2 && ws.ref_files.is_empty() {
        return;
    }

    // Ident → set of realms referencing it. A realm is a crate name, or
    // "//ref" for the corpus (tests/benches/examples) and binary targets,
    // which count as external for everyone.
    let mut refs: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for file in &ws.files {
        let realm = if is_binary_target(&file.rel) { "//ref" } else { crate_of(&file.rel) };
        for t in &file.tokens {
            if let Some(name) = t.ident() {
                refs.entry(name).or_default().insert(realm);
            }
        }
    }
    for file in &ws.ref_files {
        for t in &file.tokens {
            if let Some(name) = t.ident() {
                refs.entry(name).or_default().insert("//ref");
            }
        }
    }

    for item in &model.pubs {
        let file = &ws.files[item.file];
        if !file.rel.starts_with("crates/") || is_binary_target(&file.rel) {
            continue;
        }
        let krate = crate_of(&file.rel);
        let alive = refs
            .get(item.name.as_str())
            .is_some_and(|realms| realms.iter().any(|r| *r == "//ref" || *r != krate));
        if !alive {
            file.report(
                out,
                "dead-pub",
                item.line,
                format!(
                    "pub {} `{}` is never referenced by another crate, test, bench, or \
                     example — demote to pub(crate)/private, delete it, or annotate why the \
                     surface stays public",
                    item.kind, item.name
                ),
            );
        }
    }
}

/// Binary targets consume APIs like an external crate does, and their own
/// `pub` items are main-module plumbing, not API surface.
fn is_binary_target(rel: &str) -> bool {
    rel.contains("/bin/") || rel.ends_with("/main.rs")
}

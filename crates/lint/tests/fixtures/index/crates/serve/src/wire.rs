//! Fixture: bare slice indexing on a hot-path module.

pub fn header_byte(frame: &[u8]) -> u8 {
    frame[0]
}

//! Rank-3 tensor in `C × H × W` layout.
//!
//! Used for images and CNN filter maps. The channel-major layout matches the
//! paper's prototype extraction: a *prototype* is the vector spanning the
//! channel axis at one spatial location `(h, w)` of a filter map (§3.1).

use crate::scalar::Scalar;
use crate::{Result, TensorError};

/// Dense rank-3 tensor stored as `C` contiguous `H×W` planes.
#[derive(Clone, PartialEq)]
pub struct Tensor3<T: Scalar> {
    channels: usize,
    height: usize,
    width: usize,
    data: Vec<T>,
}

impl<T: Scalar> Tensor3<T> {
    /// Zero-filled tensor of the given shape.
    pub fn zeros(channels: usize, height: usize, width: usize) -> Self {
        Self { channels, height, width, data: vec![T::ZERO; channels * height * width] }
    }

    /// Build from a `C*H*W`-length vector in channel-major order.
    pub fn from_vec(channels: usize, height: usize, width: usize, data: Vec<T>) -> Result<Self> {
        if data.len() != channels * height * width {
            return Err(TensorError::ShapeMismatch(format!(
                "Tensor3::from_vec: {} elements for shape {channels}x{height}x{width}",
                data.len()
            )));
        }
        Ok(Self { channels, height, width, data })
    }

    /// Number of channels `C`.
    #[inline(always)]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Spatial height `H`.
    #[inline(always)]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Spatial width `W`.
    #[inline(always)]
    pub fn width(&self) -> usize {
        self.width
    }

    /// `(C, H, W)` triple.
    #[inline(always)]
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.channels, self.height, self.width)
    }

    /// Flat immutable storage.
    #[inline(always)]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Flat mutable storage.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// The `H×W` plane of channel `c` as a slice.
    #[inline(always)]
    pub fn channel(&self, c: usize) -> &[T] {
        debug_assert!(c < self.channels);
        let plane = self.height * self.width;
        &self.data[c * plane..(c + 1) * plane]
    }

    /// The `H×W` plane of channel `c` as a mutable slice.
    #[inline(always)]
    pub fn channel_mut(&mut self, c: usize) -> &mut [T] {
        debug_assert!(c < self.channels);
        let plane = self.height * self.width;
        &mut self.data[c * plane..(c + 1) * plane]
    }

    /// Element accessor.
    #[inline(always)]
    pub fn get(&self, c: usize, h: usize, w: usize) -> T {
        debug_assert!(c < self.channels && h < self.height && w < self.width);
        self.data[(c * self.height + h) * self.width + w]
    }

    /// Element setter.
    #[inline(always)]
    pub fn set(&mut self, c: usize, h: usize, w: usize, v: T) {
        debug_assert!(c < self.channels && h < self.height && w < self.width);
        self.data[(c * self.height + h) * self.width + w] = v;
    }

    /// The channel-axis vector at spatial position `(h, w)` — a *prototype*
    /// in the paper's terminology (length `C`).
    pub fn spatial_vector(&self, h: usize, w: usize) -> Vec<T> {
        assert!(h < self.height && w < self.width);
        let plane = self.height * self.width;
        let offset = h * self.width + w;
        (0..self.channels).map(|c| self.data[c * plane + offset]).collect()
    }

    /// Per-channel global max (the "2D Global Max Pooling" of §3.1).
    // goggles-lint: allow(dead-pub): documented tensor API; exercised only by unit tests
    pub fn global_max_pool(&self) -> Vec<T> {
        (0..self.channels)
            .map(|c| {
                self.channel(c)
                    .iter()
                    .copied()
                    .fold(T::from_f64(f64::NEG_INFINITY), |a, v| a.maximum(v))
            })
            .collect()
    }

    /// Location `(h, w)` of the maximum value of channel `c`
    /// (first occurrence wins on ties, scanning row-major).
    // goggles-lint: allow(dead-pub): documented tensor API; exercised only by unit tests
    pub fn channel_argmax(&self, c: usize) -> (usize, usize) {
        let plane = self.channel(c);
        let mut best = 0usize;
        for (idx, &v) in plane.iter().enumerate() {
            if v > plane[best] {
                best = idx;
            }
        }
        (best / self.width, best % self.width)
    }

    /// Elementwise in-place map.
    pub fn map_in_place(&mut self, f: impl Fn(T) -> T) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Flatten all spatial vectors into a `(H*W) × C` matrix whose row
    /// `h*W + w` is [`Self::spatial_vector`]`(h, w)`. This is the patch table
    /// the affinity computation consumes (one row per receptive field).
    pub fn spatial_vectors_matrix(&self) -> crate::Matrix<T> {
        let hw = self.height * self.width;
        let mut m = crate::Matrix::zeros(hw, self.channels);
        let plane = hw;
        for c in 0..self.channels {
            let ch = &self.data[c * plane..(c + 1) * plane];
            for (pos, &v) in ch.iter().enumerate() {
                m[(pos, c)] = v;
            }
        }
        m
    }
}

impl<T: Scalar> std::fmt::Debug for Tensor3<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor3({}x{}x{})", self.channels, self.height, self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2 channels of 2x2: ch0 = [[1,2],[3,4]], ch1 = [[5,6],[7,8]].
    fn sample() -> Tensor3<f32> {
        Tensor3::from_vec(2, 2, 2, vec![1., 2., 3., 4., 5., 6., 7., 8.]).unwrap()
    }

    #[test]
    fn shape_and_accessors() {
        let t = sample();
        assert_eq!(t.shape(), (2, 2, 2));
        assert_eq!(t.get(0, 1, 0), 3.0);
        assert_eq!(t.get(1, 0, 1), 6.0);
    }

    #[test]
    fn from_vec_validates() {
        assert!(Tensor3::<f32>::from_vec(2, 2, 2, vec![0.0; 7]).is_err());
    }

    #[test]
    fn spatial_vector_spans_channels() {
        let t = sample();
        assert_eq!(t.spatial_vector(0, 1), vec![2.0, 6.0]);
        assert_eq!(t.spatial_vector(1, 1), vec![4.0, 8.0]);
    }

    #[test]
    fn global_max_pool_per_channel() {
        let t = sample();
        assert_eq!(t.global_max_pool(), vec![4.0, 8.0]);
    }

    #[test]
    fn channel_argmax_finds_peak() {
        let t = sample();
        assert_eq!(t.channel_argmax(0), (1, 1));
        let mut t2 = t.clone();
        t2.set(0, 0, 0, 100.0);
        assert_eq!(t2.channel_argmax(0), (0, 0));
    }

    #[test]
    fn spatial_vectors_matrix_layout() {
        let t = sample();
        let m = t.spatial_vectors_matrix();
        assert_eq!(m.shape(), (4, 2));
        // row of position (h=1, w=0) is index 2
        assert_eq!(m.row(2), &[3.0, 7.0]);
    }

    #[test]
    fn paper_example4_top2_prototypes() {
        // Example 4 of the paper: 3 channels of 2x2.
        let t = Tensor3::from_vec(
            3,
            2,
            2,
            vec![1.0, 0.5, 0.3, 0.6, 0.1, 0.7, 0.4, 0.3, 0.2, 0.9, 0.5, 0.1],
        )
        .unwrap();
        let maxes = t.global_max_pool();
        assert_eq!(maxes, vec![1.0, 0.7, 0.9]);
        // top-2 channels by activation: C1 (1.0) then C3 (0.9)
        assert_eq!(t.channel_argmax(0), (0, 0));
        assert_eq!(t.channel_argmax(2), (0, 1));
        assert_eq!(t.spatial_vector(0, 0), vec![1.0, 0.1, 0.2]);
        assert_eq!(t.spatial_vector(0, 1), vec![0.5, 0.7, 0.9]);
    }
}

//! CLI front end: `goggles-lint --workspace` (discover the workspace root
//! from the current directory) or `goggles-lint --root <path>`. Exits 0
//! when clean, 1 on violations, 2 on usage or I/O errors — so CI can gate
//! on it directly.

use goggles_lint::Workspace;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
goggles-lint: machine-check the workspace's panic-freedom, determinism,
atomic-ordering, unsafe, wire-exhaustiveness, and dependency invariants.

usage:
  goggles-lint --workspace      lint the enclosing cargo workspace (default)
  goggles-lint --root <path>    lint the tree rooted at <path>
  goggles-lint --help           this text

exit status: 0 clean, 1 violations found, 2 usage or I/O error
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = match parse_args(&args) {
        Ok(Some(root)) => root,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("goggles-lint: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("goggles-lint: failed to load {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let diagnostics = ws.lint();
    for d in &diagnostics {
        println!("{d}");
    }
    let files = ws.files.len();
    if diagnostics.is_empty() {
        eprintln!("goggles-lint: {files} files clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("goggles-lint: {} violation(s) across {files} files", diagnostics.len());
        ExitCode::from(1)
    }
}

/// `Ok(Some(root))` to lint, `Ok(None)` for `--help`, `Err` on bad usage.
fn parse_args(args: &[String]) -> Result<Option<PathBuf>, String> {
    match args {
        [] => workspace_root().map(Some),
        [flag] if flag == "--workspace" => workspace_root().map(Some),
        [flag] if flag == "--help" || flag == "-h" => Ok(None),
        [flag, path] if flag == "--root" => Ok(Some(PathBuf::from(path))),
        _ => Err(format!("unrecognized arguments: {}", args.join(" "))),
    }
}

/// Walk ancestors of the current directory for the `Cargo.toml` that
/// declares `[workspace]`.
fn workspace_root() -> Result<PathBuf, String> {
    let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    for dir in cwd.ancestors() {
        if is_workspace_manifest(&dir.join("Cargo.toml")) {
            return Ok(dir.to_path_buf());
        }
    }
    Err(format!("no workspace Cargo.toml found above {}", cwd.display()))
}

fn is_workspace_manifest(manifest: &Path) -> bool {
    std::fs::read_to_string(manifest)
        .is_ok_and(|text| text.lines().any(|l| l.trim() == "[workspace]"))
}

//! # goggles
//!
//! Umbrella crate of the GOGGLES reproduction (Das et al., *GOGGLES:
//! Automatic Image Labeling with Affinity Coding*, SIGMOD 2020): re-exports
//! every subsystem and hosts the [`experiments`] harness that regenerates
//! all tables and figures of the paper's evaluation.
//!
//! ## Quick start
//!
//! ```no_run
//! use goggles::prelude::*;
//!
//! // 1. Synthesize an unlabeled image task (stand-in for a real corpus).
//! let ds = generate(&TaskConfig::new(TaskKind::Surface, 40, 10, 7));
//! // 2. Label 5 images per class — the only supervision GOGGLES needs.
//! let dev = ds.sample_dev_set(5, 7);
//! // 3. Run affinity coding.
//! let goggles = Goggles::new(GogglesConfig::default());
//! let result = goggles.label_dataset(&ds, &dev).expect("pipeline failed");
//! println!("labeling accuracy = {:.1}%", 100.0 * result.accuracy_excluding_dev(&ds, &dev));
//! ```
//!
//! For **online** labeling — fit once, snapshot, then answer single-image
//! requests without refitting — see [`serve`] ([`goggles_serve`]) and the
//! `examples/serving.rs` demo. For labeling **over the network** (the
//! `goggles-served` TCP server, the `RemoteLabeler` client and the
//! transport-agnostic `Labeler` trait) see `examples/network.rs`.
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench` for
//! the table/figure reproduction harness.

pub use goggles_cnn as cnn;
pub use goggles_core as core;
pub use goggles_datasets as datasets;
pub use goggles_endmodel as endmodel;
pub use goggles_labelmodels as labelmodels;
pub use goggles_models as models;
pub use goggles_serve as serve;
pub use goggles_tensor as tensor;
pub use goggles_trainer as trainer;
pub use goggles_vision as vision;

pub mod experiments;

/// One-stop imports for typical usage.
pub mod prelude {
    pub use goggles_cnn::{Vgg16, VggConfig};
    pub use goggles_core::{
        AffinityMatrix, Goggles, GogglesConfig, LabelingResult, ProbabilisticLabels,
    };
    pub use goggles_datasets::{generate, Dataset, DevSet, TaskConfig, TaskKind};
    pub use goggles_endmodel::{CosineClassifier, MlpHead, SoftmaxHead, TrainConfig};
    pub use goggles_labelmodels::{LabelMatrix, SnorkelModel, Snuba, SnubaConfig};
    pub use goggles_models::{
        BernoulliMixture, DiagonalGmm, EmOptions, FullGmm, KMeans, SpectralCoclustering,
    };
    pub use goggles_serve::{
        FaultPlan, FittedLabeler, LabelResponse, LabelService, Labeler, RemoteLabeler, RetryPolicy,
        ServeConfig, ServerOptions, SnapshotFormat, SnapshotRegistry, Ticket, WireServer,
    };
    pub use goggles_trainer::{RefitOutcome, Trainer, TrainerConfig, TrainerStatus};
    pub use goggles_vision::Image;
}

//! The transport-agnostic labeling API: the [`Labeler`] trait and the
//! non-blocking [`Ticket`] it hands out.
//!
//! Every way of getting an image labeled — calling a [`FittedLabeler`]
//! in-process, queueing into a [`crate::LabelService`] micro-batcher, or
//! crossing the network through a [`crate::RemoteLabeler`] — exposes the
//! same request lifecycle:
//!
//! ```text
//! submit(Arc<Image>) ─→ Ticket ──poll()/wait()/wait_timeout()──→ LabelResponse
//!        │                 │
//!        │                 └─ drop before the answer = cancel
//!        └─ submit_with_deadline: expired requests answered with
//!           ServeError::Deadline instead of occupying a batch slot
//! ```
//!
//! Callers are written once against `&dyn Labeler` (or a generic bound) and
//! work unchanged whether the labeler lives in-process or behind a TCP
//! connection. The blocking [`Labeler::label`] / [`Labeler::label_all`]
//! entry points are thin wrappers over tickets — `label_all` submits every
//! image *before* awaiting the first answer, which is what feeds the
//! micro-batcher full batches and keeps a remote connection pipelined.

use crate::service::LabelResponse;
use crate::snapshot::FittedLabeler;
use crate::{ServeError, ServeResult};
use goggles_vision::Image;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// A pending (or already-resolved) labeling request.
///
/// Obtained from [`Labeler::submit`]. The outcome is delivered exactly
/// once: the first `poll`/`wait`/`wait_timeout` call that observes it
/// consumes it, after which the ticket is *spent* and further calls report
/// [`ServeError::Closed`]. Dropping an unresolved ticket **cancels** the
/// request: a queued request whose ticket is gone is skipped by the
/// micro-batcher instead of being labeled for nobody.
#[derive(Debug)]
pub struct Ticket {
    state: TicketState,
    /// Set on drop while unresolved; the micro-batcher checks it when
    /// assembling batches. `None` for tickets whose submission site has no
    /// queue to cancel from (in-process compute, remote submissions).
    cancel: Option<Arc<AtomicBool>>,
}

#[derive(Debug)]
enum TicketState {
    /// Resolved at submission time (in-process labelers, expired deadlines).
    /// `None` once the outcome has been taken.
    Ready(Option<ServeResult<LabelResponse>>),
    /// In flight: the answer will arrive on this channel.
    Pending(mpsc::Receiver<ServeResult<LabelResponse>>),
}

impl Ticket {
    /// A ticket that is already resolved (in-process labelers answer at
    /// submission time; an expired deadline resolves to `Err(Deadline)`).
    pub(crate) fn ready(outcome: ServeResult<LabelResponse>) -> Self {
        Self { state: TicketState::Ready(Some(outcome)), cancel: None }
    }

    /// A ticket whose answer will arrive on `rx` and whose queued request
    /// can be cancelled through `cancel` (drop-to-cancel).
    pub(crate) fn pending(
        rx: mpsc::Receiver<ServeResult<LabelResponse>>,
        cancel: Option<Arc<AtomicBool>>,
    ) -> Self {
        Self { state: TicketState::Pending(rx), cancel }
    }

    /// Non-blocking check: `Some(outcome)` when resolved (the ticket is
    /// then spent), `None` while the request is still in flight.
    pub fn poll(&mut self) -> Option<ServeResult<LabelResponse>> {
        match &mut self.state {
            TicketState::Ready(slot) => Some(slot.take().unwrap_or(Err(ServeError::Closed))),
            TicketState::Pending(rx) => match rx.try_recv() {
                Ok(outcome) => {
                    self.state = TicketState::Ready(None); // spent
                    Some(outcome)
                }
                Err(mpsc::TryRecvError::Empty) => None,
                Err(mpsc::TryRecvError::Disconnected) => {
                    self.state = TicketState::Ready(None);
                    Some(Err(ServeError::Closed))
                }
            },
        }
    }

    /// Block until the request resolves.
    pub fn wait(mut self) -> ServeResult<LabelResponse> {
        match std::mem::replace(&mut self.state, TicketState::Ready(None)) {
            TicketState::Ready(slot) => slot.unwrap_or(Err(ServeError::Closed)),
            TicketState::Pending(rx) => rx.recv().unwrap_or(Err(ServeError::Closed)),
        }
    }

    /// Block up to `timeout` for the request to resolve. `None` means it is
    /// still in flight and the ticket stays usable; `Some(outcome)` spends
    /// the ticket like [`Ticket::poll`].
    pub fn wait_timeout(&mut self, timeout: Duration) -> Option<ServeResult<LabelResponse>> {
        match &mut self.state {
            TicketState::Ready(slot) => Some(slot.take().unwrap_or(Err(ServeError::Closed))),
            TicketState::Pending(rx) => match rx.recv_timeout(timeout) {
                Ok(outcome) => {
                    self.state = TicketState::Ready(None);
                    Some(outcome)
                }
                Err(mpsc::RecvTimeoutError::Timeout) => None,
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    self.state = TicketState::Ready(None);
                    Some(Err(ServeError::Closed))
                }
            },
        }
    }
}

impl Drop for Ticket {
    fn drop(&mut self) {
        // Drop-to-cancel: a still-queued request whose client is gone is
        // skipped by the batcher. Setting the flag after resolution is
        // harmless — the request already left the queue.
        if let Some(cancel) = &self.cancel {
            cancel.store(true, Ordering::Relaxed);
        }
    }
}

/// The transport-agnostic labeling interface.
///
/// Implemented by the in-process [`FittedLabeler`] (compute at submission),
/// the micro-batching [`crate::LabelService`] (queue + ticket), and the
/// network client [`crate::RemoteLabeler`] (wire frame + pipelined reply).
/// `submit` takes `Arc<Image>` so the hot path never copies pixel data —
/// the service queues the `Arc`, and the wire server decodes a request
/// straight into one.
pub trait Labeler {
    /// Enqueue one image without a deadline. Non-blocking with respect to
    /// labeling (implementations may apply queue backpressure).
    fn submit(&self, image: Arc<Image>) -> ServeResult<Ticket> {
        self.submit_with_deadline(image, None)
    }

    /// Enqueue one image with an optional absolute deadline. A request
    /// whose deadline expires before a worker labels it resolves to
    /// [`ServeError::Deadline`] — it is never labeled and never occupies a
    /// batch slot.
    fn submit_with_deadline(
        &self,
        image: Arc<Image>,
        deadline: Option<Instant>,
    ) -> ServeResult<Ticket>;

    /// Label one image, blocking until the answer arrives — a thin wrapper
    /// over [`Labeler::submit`] + [`Ticket::wait`].
    fn label(&self, image: &Image) -> ServeResult<LabelResponse> {
        self.submit(Arc::new(image.clone()))?.wait()
    }

    /// Label several images; answers come back in input order. All images
    /// are submitted **before** the first answer is awaited, so one caller
    /// feeds the micro-batcher full batches (and keeps a network connection
    /// pipelined) instead of paying one round trip per image.
    fn label_all(&self, images: &[&Image]) -> ServeResult<Vec<LabelResponse>> {
        let tickets: Vec<Ticket> = images
            .iter()
            .map(|img| self.submit(Arc::new((*img).clone())))
            .collect::<ServeResult<_>>()?;
        tickets.into_iter().map(Ticket::wait).collect()
    }
}

impl Labeler for FittedLabeler {
    /// In-process submission: the image is labeled immediately on the
    /// calling thread and the ticket comes back already resolved. Responses
    /// report `version` 0 (no registry behind a bare labeler) and
    /// `batch_size` 1.
    fn submit_with_deadline(
        &self,
        image: Arc<Image>,
        deadline: Option<Instant>,
    ) -> ServeResult<Ticket> {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return Ok(Ticket::ready(Err(ServeError::Deadline)));
        }
        let (label, probs) = self.label_one(&image);
        Ok(Ticket::ready(Ok(LabelResponse { label, probs, batch_size: 1, version: 0 })))
    }

    /// Overrides the default: the synchronous path computes from the
    /// borrowed image directly — no pixel-buffer clone into a throwaway
    /// `Arc`.
    fn label(&self, image: &Image) -> ServeResult<LabelResponse> {
        let (label, probs) = self.label_one(image);
        Ok(LabelResponse { label, probs, batch_size: 1, version: 0 })
    }

    /// Overrides the default for the same reason as [`Labeler::label`].
    fn label_all(&self, images: &[&Image]) -> ServeResult<Vec<LabelResponse>> {
        images.iter().map(|img| Labeler::label(self, img)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn response(label: usize) -> LabelResponse {
        LabelResponse { label, probs: vec![1.0], batch_size: 1, version: 0 }
    }

    #[test]
    fn ready_ticket_resolves_once_then_reports_spent() {
        let mut t = Ticket::ready(Ok(response(3)));
        match t.poll() {
            Some(Ok(r)) => assert_eq!(r.label, 3),
            other => panic!("expected resolved, got {other:?}"),
        }
        assert!(matches!(t.poll(), Some(Err(ServeError::Closed))), "spent ticket");
        assert!(matches!(t.wait_timeout(Duration::ZERO), Some(Err(ServeError::Closed))));
    }

    #[test]
    fn pending_ticket_polls_none_until_sent_and_wait_blocks() {
        let (tx, rx) = mpsc::channel();
        let mut t = Ticket::pending(rx, None);
        assert!(t.poll().is_none());
        assert!(t.wait_timeout(Duration::from_millis(1)).is_none(), "still in flight");
        tx.send(Ok(response(1))).unwrap();
        match t.wait_timeout(Duration::from_secs(5)) {
            Some(Ok(r)) => assert_eq!(r.label, 1),
            other => panic!("expected resolved, got {other:?}"),
        }
    }

    #[test]
    fn disconnected_channel_resolves_to_closed() {
        let (tx, rx) = mpsc::channel::<ServeResult<LabelResponse>>();
        drop(tx);
        let mut t = Ticket::pending(rx, None);
        assert!(matches!(t.poll(), Some(Err(ServeError::Closed))));
        let (tx2, rx2) = mpsc::channel::<ServeResult<LabelResponse>>();
        drop(tx2);
        assert!(matches!(Ticket::pending(rx2, None).wait(), Err(ServeError::Closed)));
    }

    #[test]
    fn drop_sets_the_cancel_flag() {
        let (_tx, rx) = mpsc::channel();
        let cancel = Arc::new(AtomicBool::new(false));
        let t = Ticket::pending(rx, Some(Arc::clone(&cancel)));
        assert!(!cancel.load(Ordering::Relaxed));
        drop(t);
        assert!(cancel.load(Ordering::Relaxed), "dropping an unresolved ticket cancels");
    }
}

//! Fixture: a hot-path call whose panic is two hops away — the chain must
//! walk `handle` → `load_header` → `parse_magic` to the `.unwrap()`.

use crate::snapshot::load_header;

pub fn handle(xs: &[u8]) -> u8 {
    load_header(xs)
}

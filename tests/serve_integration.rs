//! Integration tests of the serving subsystem: snapshot round-tripping,
//! out-of-sample agreement with the batch pipeline, and the model-lifecycle
//! guarantee — a snapshot published under live concurrent traffic swaps in
//! without dropping, blocking or corrupting a single request (the
//! guarantees `goggles-serve` is sold on).

use goggles::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn task(train_per_class: usize, test_per_class: usize, seed: u64) -> (Dataset, DevSet) {
    let mut cfg = TaskConfig::new(
        TaskKind::Cub { class_a: 0, class_b: 1 },
        train_per_class,
        test_per_class,
        seed,
    );
    cfg.image_size = 32;
    let ds = generate(&cfg);
    let dev = ds.sample_dev_set(4, seed);
    (ds, dev)
}

#[test]
fn snapshot_round_trip_is_byte_deterministic_and_label_stable() {
    let (ds, dev) = task(10, 8, 21);
    let config = GogglesConfig { seed: 21, ..GogglesConfig::fast() };
    let (labeler, _) = FittedLabeler::fit(&config, &ds, &dev).unwrap();

    // save is deterministic, and save→load→save is byte-for-byte stable
    let bytes = labeler.save();
    assert_eq!(bytes, labeler.save());
    let reloaded = FittedLabeler::load(&bytes).unwrap();
    assert_eq!(reloaded.save(), bytes);

    // label_batch is identical before and after reload
    let held_out = ds.test_images();
    let before = labeler.label_batch(&held_out, 2);
    let after = reloaded.label_batch(&held_out, 2);
    assert_eq!(before.probs, after.probs);
}

#[test]
fn out_of_sample_labels_agree_with_batch_pipeline() {
    // Serve held-out images from a snapshot, then refit the batch pipeline
    // transductively over train + held-out and compare accuracy on exactly
    // those images: the gap must be within 2 points.
    let (ds, dev) = task(20, 15, 7);
    let config = GogglesConfig { seed: 7, ..GogglesConfig::fast() };
    let (labeler, _) = FittedLabeler::fit(&config, &ds, &dev).unwrap();

    let held_out = ds.test_images();
    let truth = ds.test_labels();
    let served = labeler.label_batch(&held_out, 2);
    let served_acc = served.accuracy(&truth);

    let all: Vec<(Image, usize)> = ds
        .train_indices
        .iter()
        .chain(&ds.test_indices)
        .map(|&i| (ds.images[i].clone(), ds.labels[i]))
        .collect();
    let transductive = Dataset::from_parts(ds.name.clone(), ds.kind, ds.num_classes, all, vec![]);
    let batch = Goggles::new(config).label_dataset(&transductive, &dev).unwrap();
    let hard = batch.labels.hard_labels();
    let n_train = ds.train_indices.len();
    let batch_acc = (0..truth.len()).filter(|&i| hard[n_train + i] == truth[i]).count() as f64
        / truth.len() as f64;

    // One-sided: the snapshot fold-in must not *degrade* accuracy by more
    // than 2 points relative to a full refit (beating it is fine — the
    // frozen models were fit on a cleaner, train-only affinity matrix).
    assert!(
        served_acc + 0.02 + 1e-9 >= batch_acc,
        "served {served_acc:.3} trails batch {batch_acc:.3} by more than 2 points"
    );
}

#[test]
fn service_answers_match_direct_inference_and_count_requests() {
    let (ds, dev) = task(8, 6, 33);
    let config = GogglesConfig { seed: 33, ..GogglesConfig::fast() };
    let (labeler, _) = FittedLabeler::fit(&config, &ds, &dev).unwrap();
    let expected = labeler.label_batch(&ds.test_images(), 1);

    let service = Arc::new(LabelService::spawn(
        FittedLabeler::load(&labeler.save()).unwrap(),
        ServeConfig {
            workers: 2,
            max_batch: 4,
            batch_timeout: Duration::from_millis(10),
            ..ServeConfig::default()
        },
    ));
    let handles: Vec<_> = ds
        .test_images()
        .iter()
        .enumerate()
        .map(|(i, img)| {
            let service = Arc::clone(&service);
            let img = (*img).clone();
            std::thread::spawn(move || (i, service.label(&img).unwrap()))
        })
        .collect();
    for h in handles {
        let (i, resp) = h.join().unwrap();
        assert_eq!(resp.probs, expected.probs.row(i), "request {i}");
    }
    let stats = service.stats();
    assert_eq!(stats.requests, ds.test_indices.len() as u64);
    assert!(stats.batches >= 1 && stats.batches <= stats.requests);
}

#[test]
fn publish_under_concurrent_load_never_drops_or_corrupts_a_request() {
    // The swap-under-load acceptance criterion: with concurrent clients
    // running, `registry.publish(v2)` completes without any request
    // erroring, every response is bit-identical to one of the two published
    // versions (on the version it reports), and post-swap responses match
    // the new version's direct `label_batch` output.
    let (ds, dev) = task(8, 6, 55);
    let config = GogglesConfig { seed: 55, ..GogglesConfig::fast() };
    let (labeler, _) = FittedLabeler::fit(&config, &ds, &dev).unwrap();
    // "retrained" artifact: the same model shipped as a quantized v2
    // snapshot (the compressed republish path)
    let swapped = FittedLabeler::load(&labeler.save_v2(true)).unwrap();

    let images: Vec<Image> = ds.test_images().iter().map(|img| (*img).clone()).collect();
    let expected_v1 = labeler.label_batch(&ds.test_images(), 1);
    let expected_v2 = swapped.label_batch(&ds.test_images(), 1);

    let service = Arc::new(LabelService::spawn(
        labeler,
        ServeConfig {
            workers: 2,
            max_batch: 4,
            batch_timeout: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    ));
    let keep_running = Arc::new(AtomicBool::new(true));
    let clients: Vec<_> = (0..3)
        .map(|c| {
            let service = Arc::clone(&service);
            let keep_running = Arc::clone(&keep_running);
            let images = images.clone();
            let expected_v1 = expected_v1.probs.clone();
            let expected_v2 = expected_v2.probs.clone();
            std::thread::spawn(move || {
                let mut rounds = 0u64;
                let mut served = 0u64;
                // keep at least a few rounds in flight on both sides of the
                // publish, then drain until told to stop
                while keep_running.load(Ordering::Relaxed) || rounds < 3 {
                    for (i, img) in images.iter().enumerate() {
                        let resp = service
                            .label(img)
                            .unwrap_or_else(|e| panic!("client {c} request {i} errored: {e}"));
                        // bit-identical to the version the response claims
                        match resp.version {
                            1 => assert_eq!(resp.probs, expected_v1.row(i), "request {i} on v1"),
                            2 => assert_eq!(resp.probs, expected_v2.row(i), "request {i} on v2"),
                            v => panic!("response from unpublished version {v}"),
                        }
                        served += 1;
                    }
                    rounds += 1;
                }
                served
            })
        })
        .collect();

    // let traffic build up, then swap mid-stream
    std::thread::sleep(Duration::from_millis(30));
    let v = service.registry().publish(swapped).expect("publish under load");
    assert_eq!(v, 2);
    std::thread::sleep(Duration::from_millis(30));
    keep_running.store(false, Ordering::Relaxed);
    let mut total = 0u64;
    for c in clients {
        total += c.join().expect("swap client must not panic");
    }
    let stats = service.stats();
    assert_eq!(stats.requests, total, "every submitted request was answered");
    assert_eq!(stats.failed_requests, 0, "no request may be dropped by the swap");
    assert_eq!(stats.failed_batches, 0);

    // post-swap: fresh requests resolve version 2 and match its direct output
    for (i, img) in images.iter().enumerate() {
        let resp = service.label(img).unwrap();
        assert_eq!(resp.version, 2, "post-swap request {i}");
        assert_eq!(resp.probs, expected_v2.probs.row(i), "post-swap request {i}");
    }
    // both versions actually carried traffic, and the counters account for
    // every request (clients + the verification loop above)
    let versions = service.registry().versions();
    assert_eq!(versions.len(), 2);
    assert!(versions[1].current);
    assert!(versions[1].served >= images.len() as u64, "v2 must have served traffic");
    let by_version: u64 = versions.iter().map(|v| v.served).sum();
    assert_eq!(by_version, total + images.len() as u64);
}

#[test]
fn rollback_behind_running_service_restores_old_answers() {
    let (ds, dev) = task(8, 5, 56);
    let config = GogglesConfig { seed: 56, ..GogglesConfig::fast() };
    let (labeler, _) = FittedLabeler::fit(&config, &ds, &dev).unwrap();
    let swapped = FittedLabeler::load(&labeler.save_v2(true)).unwrap();
    let img = ds.test_images()[0].clone();
    let expected_v1 = labeler.label_batch(&[&img], 1);

    let service = LabelService::spawn(labeler, ServeConfig::default());
    service.registry().publish(swapped).unwrap();
    assert_eq!(service.label(&img).unwrap().version, 2);
    let restored = service.registry().rollback().unwrap();
    assert_eq!(restored, 1);
    let resp = service.label(&img).unwrap();
    assert_eq!(resp.version, 1);
    assert_eq!(resp.probs, expected_v1.probs.row(0));
}

//! Image filters: separable Gaussian blur, Sobel gradients and bilinear
//! resize. Sobel feeds the HOG baseline; blur and resize are used by the
//! dataset generators (defocus, scale jitter).

use crate::image::Image;

/// Build a normalized 1-D Gaussian kernel with radius `ceil(3σ)`.
fn gaussian_kernel(sigma: f32) -> Vec<f32> {
    let sigma = sigma.max(1e-3);
    let radius = (3.0 * sigma).ceil() as i32;
    let mut k: Vec<f32> =
        (-radius..=radius).map(|i| (-0.5 * (i as f32 / sigma).powi(2)).exp()).collect();
    let sum: f32 = k.iter().sum();
    for v in &mut k {
        *v /= sum;
    }
    k
}

/// Separable Gaussian blur with clamp-to-edge boundary handling.
pub fn gaussian_blur(img: &Image, sigma: f32) -> Image {
    if sigma <= 0.0 {
        return img.clone();
    }
    let kernel = gaussian_kernel(sigma);
    let radius = (kernel.len() / 2) as i32;
    let (c, h, w) = img.shape();
    // horizontal pass
    let mut tmp = Image::new(c, h, w);
    for ch in 0..c {
        for y in 0..h {
            for x in 0..w {
                let mut acc = 0.0;
                for (ki, &kv) in kernel.iter().enumerate() {
                    let sx = (x as i32 + ki as i32 - radius).clamp(0, w as i32 - 1) as usize;
                    acc += kv * img.get(ch, y, sx);
                }
                tmp.set(ch, y, x, acc);
            }
        }
    }
    // vertical pass
    let mut out = Image::new(c, h, w);
    for ch in 0..c {
        for y in 0..h {
            for x in 0..w {
                let mut acc = 0.0;
                for (ki, &kv) in kernel.iter().enumerate() {
                    let sy = (y as i32 + ki as i32 - radius).clamp(0, h as i32 - 1) as usize;
                    acc += kv * tmp.get(ch, sy, x);
                }
                out.set(ch, y, x, acc);
            }
        }
    }
    out
}

/// Sobel gradient magnitudes and orientations of a grayscale image.
///
/// Returns `(magnitude, orientation)` planes of the same `H×W` size;
/// orientation is in `[0, π)` (unsigned gradients, as HOG uses).
pub(crate) fn sobel_gradients(gray: &Image) -> (Vec<f32>, Vec<f32>) {
    assert_eq!(gray.channels(), 1, "sobel_gradients expects a grayscale image");
    let (_, h, w) = gray.shape();
    let mut mag = vec![0.0f32; h * w];
    let mut ori = vec![0.0f32; h * w];
    let at = |y: i32, x: i32| -> f32 {
        let yy = y.clamp(0, h as i32 - 1) as usize;
        let xx = x.clamp(0, w as i32 - 1) as usize;
        gray.get(0, yy, xx)
    };
    for y in 0..h as i32 {
        for x in 0..w as i32 {
            let gx = -at(y - 1, x - 1) - 2.0 * at(y, x - 1) - at(y + 1, x - 1)
                + at(y - 1, x + 1)
                + 2.0 * at(y, x + 1)
                + at(y + 1, x + 1);
            let gy = -at(y - 1, x - 1) - 2.0 * at(y - 1, x) - at(y - 1, x + 1)
                + at(y + 1, x - 1)
                + 2.0 * at(y + 1, x)
                + at(y + 1, x + 1);
            let idx = y as usize * w + x as usize;
            mag[idx] = (gx * gx + gy * gy).sqrt();
            let mut angle = gy.atan2(gx); // [-π, π]
            if angle < 0.0 {
                angle += std::f32::consts::PI; // unsigned orientation [0, π)
            }
            if angle >= std::f32::consts::PI {
                angle -= std::f32::consts::PI;
            }
            ori[idx] = angle;
        }
    }
    (mag, ori)
}

/// Bilinear resize to `(new_h, new_w)`.
pub fn resize_bilinear(img: &Image, new_h: usize, new_w: usize) -> Image {
    assert!(new_h > 0 && new_w > 0);
    let (c, h, w) = img.shape();
    let mut out = Image::new(c, new_h, new_w);
    let sy = h as f32 / new_h as f32;
    let sx = w as f32 / new_w as f32;
    for ch in 0..c {
        for y in 0..new_h {
            // align sample positions with pixel centers
            let fy = ((y as f32 + 0.5) * sy - 0.5).clamp(0.0, h as f32 - 1.0);
            let y0 = fy.floor() as usize;
            let y1 = (y0 + 1).min(h - 1);
            let ty = fy - y0 as f32;
            for x in 0..new_w {
                let fx = ((x as f32 + 0.5) * sx - 0.5).clamp(0.0, w as f32 - 1.0);
                let x0 = fx.floor() as usize;
                let x1 = (x0 + 1).min(w - 1);
                let tx = fx - x0 as f32;
                let top = img.get(ch, y0, x0) * (1.0 - tx) + img.get(ch, y0, x1) * tx;
                let bot = img.get(ch, y1, x0) * (1.0 - tx) + img.get(ch, y1, x1) * tx;
                out.set(ch, y, x, top * (1.0 - ty) + bot * ty);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::draw;

    #[test]
    fn gaussian_kernel_normalized_and_symmetric() {
        let k = gaussian_kernel(1.5);
        assert!((k.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        let n = k.len();
        for i in 0..n / 2 {
            assert!((k[i] - k[n - 1 - i]).abs() < 1e-6);
        }
    }

    #[test]
    fn blur_preserves_mean_and_reduces_variance() {
        let mut img = Image::new(1, 32, 32);
        draw::fill_checkerboard(&mut img, 1, &[1.0], &[0.0]);
        let before_mean = img.mean();
        let blurred = gaussian_blur(&img, 1.2);
        assert!((blurred.mean() - before_mean).abs() < 0.01);
        let var = |im: &Image| {
            let m = im.mean();
            im.tensor().as_slice().iter().map(|v| (v - m) * (v - m)).sum::<f32>()
        };
        assert!(var(&blurred) < 0.2 * var(&img));
    }

    #[test]
    fn blur_sigma_zero_is_identity() {
        let img = Image::filled(2, 4, 4, 0.3);
        assert_eq!(gaussian_blur(&img, 0.0), img);
    }

    #[test]
    fn sobel_on_vertical_edge() {
        // left half dark, right half bright => strong horizontal gradient
        let mut img = Image::new(1, 16, 16);
        draw::fill_rect(&mut img, 0, 8, 16, 16, &[1.0]);
        let (mag, ori) = sobel_gradients(&img);
        // strongest response on the edge column (x = 7..8), orientation ≈ 0
        let idx = 8 * 16 + 7;
        assert!(mag[idx] > 1.0, "edge magnitude = {}", mag[idx]);
        assert!(
            ori[idx] < 0.2 || ori[idx] > std::f32::consts::PI - 0.2,
            "edge orientation = {}",
            ori[idx]
        );
        // interior flat regions: no gradient
        assert_eq!(mag[8 * 16 + 2], 0.0);
    }

    #[test]
    fn sobel_on_horizontal_edge_orientation() {
        let mut img = Image::new(1, 16, 16);
        draw::fill_rect(&mut img, 8, 0, 16, 16, &[1.0]);
        let (mag, ori) = sobel_gradients(&img);
        let idx = 7 * 16 + 8;
        assert!(mag[idx] > 1.0);
        assert!((ori[idx] - std::f32::consts::FRAC_PI_2).abs() < 0.2);
    }

    #[test]
    fn resize_identity_shape() {
        let mut img = Image::new(1, 8, 8);
        draw::fill_disc(&mut img, 4.0, 4.0, 2.0, &[1.0]);
        let same = resize_bilinear(&img, 8, 8);
        assert!(img
            .tensor()
            .as_slice()
            .iter()
            .zip(same.tensor().as_slice())
            .all(|(a, b)| (a - b).abs() < 1e-6));
    }

    #[test]
    fn resize_preserves_mean_roughly() {
        let mut img = Image::new(1, 32, 32);
        draw::fill_disc(&mut img, 16.0, 16.0, 8.0, &[1.0]);
        let down = resize_bilinear(&img, 16, 16);
        let up = resize_bilinear(&img, 64, 64);
        assert!((down.mean() - img.mean()).abs() < 0.03);
        assert!((up.mean() - img.mean()).abs() < 0.03);
    }

    #[test]
    fn resize_constant_image_is_constant() {
        let img = Image::filled(3, 5, 7, 0.42);
        let r = resize_bilinear(&img, 13, 3);
        for v in r.tensor().as_slice() {
            assert!((v - 0.42).abs() < 1e-6);
        }
    }
}

//! `panic` + `index`: panic-freedom of the hot-path modules.
//!
//! A panic inside the serving path kills a worker mid-batch; PR 3's salvage
//! machinery exists precisely because one poisoned request used to take its
//! whole micro-batch down. These rules make the "no panics on the hot path"
//! discipline machine-checked: no `unwrap`/`expect` calls, no panicking
//! macros, and no bare slice indexing (every `xs[i]` is an implicit
//! `panic!` behind a bounds check).

use crate::engine::{Diagnostic, SourceFile, Workspace};
use crate::lexer::TokenKind;

/// Macros that unconditionally panic when reached. `assert!`-family macros
/// are deliberately *not* listed: they encode checked preconditions at
/// non-per-request boundaries (constructors, config validation) and removing
/// them would trade a loud failure for silent corruption.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Methods that panic on `None`/`Err`.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Flag `.unwrap()` / `.expect(...)` calls and `panic!`-family macro
/// invocations.
pub(crate) fn check_panics(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let tokens = &file.tokens;
    for (i, t) in tokens.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        // `.unwrap(` / `.expect(` — method position only, so identifiers
        // like `unwrap_or_else` or a local named `expect` don't match.
        if PANIC_METHODS.contains(&name)
            && i > 0
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            file.report(
                out,
                "panic",
                t.line,
                format!(
                    ".{name}() can panic on the hot path; return a ServeError \
                     (or annotate why this is provably infallible)"
                ),
            );
        }
        // `panic!(` etc — macro position.
        if PANIC_MACROS.contains(&name)
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
            && (i == 0 || !tokens[i - 1].is_punct('.'))
        {
            file.report(
                out,
                "panic",
                t.line,
                format!("{name}! is forbidden on the hot path; return an error instead"),
            );
        }
    }
}

/// Allow-audit over the chaos suite: test code is normally exempt from the
/// panic rules, and the chaos tests *rely* on that exemption for their
/// intentional panics (failpoint assertions, lost-ticket probes). This
/// audit closes the loophole the exemption opens — every panicking call in
/// `tests/serve_chaos*.rs` must actually sit inside a `#[cfg(test)]` item,
/// so nothing panicky can leak into a non-test build of the binary.
pub(crate) fn check_chaos_panic_confinement(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for file in ws.ref_files.iter().filter(|f| f.rel.starts_with("tests/serve_chaos")) {
        for (i, t) in file.tokens.iter().enumerate() {
            let Some(name) = t.ident() else { continue };
            let is_macro = PANIC_MACROS.contains(&name)
                && file.tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
                && (i == 0 || !file.tokens[i - 1].is_punct('.'));
            let is_method = PANIC_METHODS.contains(&name)
                && i > 0
                && file.tokens[i - 1].is_punct('.')
                && file.tokens.get(i + 1).is_some_and(|n| n.is_punct('('));
            if (is_macro || is_method) && !file.in_test_code(t.line) {
                out.push(Diagnostic {
                    file: file.rel.clone(),
                    line: t.line,
                    rule: "panic",
                    message: format!(
                        "chaos suite calls {name} outside #[cfg(test)]; its intentional \
                         panics must stay inside a #[cfg(test)] item"
                    ),
                    chain: Vec::new(),
                });
            }
        }
    }
}

/// Keywords after which a `[` opens a pattern, type, or array literal —
/// never an index expression.
const NON_POSTFIX_KEYWORDS: &[&str] = &[
    "let", "in", "return", "if", "else", "match", "while", "loop", "for", "break", "continue",
    "move", "mut", "ref", "as", "where", "use", "pub", "fn", "impl", "dyn", "const", "static",
    "unsafe", "box", "yield", "await",
];

/// Flag postfix `expr[...]` index expressions: a token stream `[` is an
/// index (not an array literal, attribute, pattern, or type) exactly when
/// the previous token could end an expression — an identifier (that is not
/// a keyword), a closing `)` / `]`, or a literal.
pub(crate) fn check_indexing(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let tokens = &file.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_punct('[') || i == 0 {
            continue;
        }
        let postfix = match &tokens[i - 1].kind {
            TokenKind::Ident(name) => !NON_POSTFIX_KEYWORDS.contains(&name.as_str()),
            TokenKind::Punct(')') | TokenKind::Punct(']') => true,
            TokenKind::Num | TokenKind::Str => true,
            _ => false,
        };
        if postfix {
            file.report(
                out,
                "index",
                t.line,
                "slice index can panic on the hot path; use .get()/.get_mut(), iterators, \
                 or annotate why the bound holds"
                    .to_string(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SourceFile;

    fn diags(src: &str, check: fn(&SourceFile, &mut Vec<Diagnostic>)) -> Vec<Diagnostic> {
        let f = SourceFile::new("crates/serve/src/service.rs".into(), src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn flags_unwrap_expect_and_macros() {
        let src = "fn f() { a.unwrap(); b.expect(\"x\"); panic!(\"y\"); unreachable!(); }";
        let out = diags(src, check_panics);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn ignores_lookalikes_and_test_code() {
        let src = "\
fn f() { a.unwrap_or_else(|| 0); let unwrap = 1; b(unwrap); s.push_str(\"x.unwrap()\"); }
#[cfg(test)]
mod tests { fn t() { a.unwrap(); panic!(); } }
";
        assert!(diags(src, check_panics).is_empty());
    }

    #[test]
    fn index_postfix_only() {
        let flagged = "fn f(xs: &[u8], i: usize) { let a = xs[i]; let b = m.row(0)[1]; }";
        assert_eq!(diags(flagged, check_indexing).len(), 2);
        let clean = "\
fn f() -> [u8; 2] { let [a, b] = [1, 2]; let v = vec![0; 4]; let s: &[u8] = &v; \
let t: Vec<[f32; 4]> = Vec::new(); #[derive(Debug)] struct X; [a, b] }";
        assert!(diags(clean, check_indexing).is_empty());
    }

    #[test]
    fn chaos_audit_flags_panics_outside_cfg_test() {
        let ws = |src: &str| Workspace {
            root: std::path::PathBuf::new(),
            files: Vec::new(),
            ref_files: vec![SourceFile::new("tests/serve_chaos.rs".into(), src)],
            manifests: std::collections::BTreeMap::new(),
        };
        // The real suite's shape: everything under `#[cfg(test)] mod chaos`.
        let confined = "#[cfg(test)]\nmod chaos { fn t() { a.unwrap(); panic!(\"boom\"); } }\n";
        let mut out = Vec::new();
        check_chaos_panic_confinement(&ws(confined), &mut out);
        assert!(out.is_empty(), "{out:?}");
        // A helper that escaped the module is exactly what the audit exists
        // to catch.
        let leaked = "fn helper() { a.unwrap(); }\n#[cfg(test)]\nmod chaos { fn t() {} }\n";
        let mut out = Vec::new();
        check_chaos_panic_confinement(&ws(leaked), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("outside #[cfg(test)]"));
    }

    #[test]
    fn allow_suppresses() {
        let src = "\
fn f() {
    // goggles-lint: allow(panic): the mutex cannot be poisoned, no panics under the lock
    a.unwrap();
}
";
        assert!(diags(src, check_panics).is_empty());
    }
}

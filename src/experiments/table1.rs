//! Table 1: labeling accuracy on the training set for GOGGLES, the data
//! programming systems, the representation ablations and the class-inference
//! baselines, across the five datasets.

use super::methods::{
    run_flat_gmm, run_goggles, run_hog, run_kmeans, run_logits, run_snorkel, run_snuba,
    run_spectral, MethodOutput,
};
use super::report::Table;
use super::{RunParams, TrialContext};

/// Column order follows the paper's Table 1.
pub const METHOD_NAMES: [&str; 8] =
    ["GOGGLES", "Snorkel", "Snuba", "HoG", "Logits", "K-Means", "GMM", "Spectral"];

/// Accumulated Table 1 numbers: `accuracy[dataset][method]`, `None` for the
/// paper's `-` cells.
#[derive(Debug, Clone)]
pub struct Table1Results {
    /// Dataset row labels.
    pub datasets: Vec<String>,
    /// Mean accuracy per dataset × method.
    pub accuracy: Vec<Vec<Option<f64>>>,
}

impl Table1Results {
    /// Column-wise averages over datasets (ignoring `-` cells), the paper's
    /// `Average` row.
    pub fn averages(&self) -> Vec<Option<f64>> {
        (0..METHOD_NAMES.len())
            .map(|m| {
                let vals: Vec<f64> = self.accuracy.iter().filter_map(|row| row[m]).collect();
                if vals.is_empty() {
                    None
                } else {
                    Some(vals.iter().sum::<f64>() / vals.len() as f64)
                }
            })
            .collect()
    }

    /// Render in the paper's layout.
    pub fn to_table(&self) -> Table {
        let mut headers = vec!["Dataset"];
        headers.extend(METHOD_NAMES);
        let mut t = Table::new("Table 1: labeling accuracy on training set (%)", &headers);
        for (ds, row) in self.datasets.iter().zip(&self.accuracy) {
            let mut cells = vec![ds.clone()];
            cells.extend(row.iter().map(|&v| Table::pct(v)));
            t.push_row(cells);
        }
        let mut avg = vec!["Average".to_string()];
        avg.extend(self.averages().iter().map(|&v| Table::pct(v)));
        t.push_row(avg);
        t
    }
}

/// Run the Table 1 evaluation at the given parameters. Every method sees
/// the same affinity matrix / dev set / backbone per trial; results are
/// averaged over `params.trials` trials (CUB/GTSRB rotate class pairs).
pub fn run(params: &RunParams) -> Table1Results {
    let dataset_names = ["CUB", "GTSRB", "Surface", "TB-Xray", "PN-Xray"];
    let mut sums = vec![vec![0.0f64; METHOD_NAMES.len()]; dataset_names.len()];
    let mut counts = vec![vec![0usize; METHOD_NAMES.len()]; dataset_names.len()];
    for trial in 0..params.trials.max(1) {
        let tasks = params.tasks_for_trial(trial);
        for (d, task) in tasks.iter().enumerate() {
            let ctx = TrialContext::build(params, task, trial);
            let outputs: Vec<Option<MethodOutput>> = vec![
                Some(run_goggles(&ctx)),
                run_snorkel(&ctx),
                Some(run_snuba(&ctx)),
                Some(run_hog(&ctx)),
                Some(run_logits(&ctx)),
                Some(run_kmeans(&ctx)),
                Some(run_flat_gmm(&ctx)),
                Some(run_spectral(&ctx)),
            ];
            for (m, out) in outputs.iter().enumerate() {
                if let Some(out) = out {
                    sums[d][m] += out.labeling_accuracy(&ctx);
                    counts[d][m] += 1;
                }
            }
        }
    }
    let accuracy = sums
        .iter()
        .zip(&counts)
        .map(|(srow, crow)| {
            srow.iter()
                .zip(crow)
                .map(|(&s, &c)| if c > 0 { Some(s / c as f64) } else { None })
                .collect()
        })
        .collect();
    Table1Results { datasets: dataset_names.iter().map(|s| s.to_string()).collect(), accuracy }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_skip_missing_cells() {
        let r = Table1Results {
            datasets: vec!["A".into(), "B".into()],
            accuracy: vec![
                vec![Some(0.9), Some(0.8), None, None, None, None, None, None],
                vec![Some(0.7), None, None, None, None, None, None, None],
            ],
        };
        let avg = r.averages();
        assert!((avg[0].unwrap() - 0.8).abs() < 1e-12);
        assert!((avg[1].unwrap() - 0.8).abs() < 1e-12);
        assert_eq!(avg[2], None);
    }

    #[test]
    fn to_table_layout_matches_paper() {
        let r = Table1Results {
            datasets: vec!["CUB".into()],
            accuracy: vec![vec![
                Some(0.9783),
                Some(0.8917),
                Some(0.5883),
                Some(0.6293),
                Some(0.9635),
                Some(0.9867),
                Some(0.9762),
                Some(0.7208),
            ]],
        };
        let t = r.to_table();
        let s = t.render();
        assert!(s.contains("GOGGLES"));
        assert!(s.contains("97.83"));
        assert!(s.contains("Average"));
    }
}

//! End-to-end serving demo: fit GOGGLES once, freeze it into a snapshot,
//! reload from bytes, and label held-out images **online** through the
//! micro-batching [`LabelService`] — per-request cost is O(image): no
//! training-matrix rebuild, no mixture-model refit. The demo then
//! **hot-reloads** a quantized v2 snapshot behind the running service
//! (publish → new version, rollback → old version) without stopping it.
//!
//! ```text
//! cargo run --release --example serving
//! ```
//!
//! The demo also runs the paper's batch (transductive) pipeline over the
//! same held-out images and checks the served accuracy lands within
//! 2 points of it.

use goggles::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let seed = 7u64;
    // 30 train + 25 held-out images per class (binary task → 50 held out).
    let mut task = TaskConfig::new(TaskKind::Cub { class_a: 0, class_b: 1 }, 30, 25, seed);
    task.image_size = 32;
    let ds = generate(&task);
    let dev = ds.sample_dev_set(5, seed);
    let config = GogglesConfig { seed, ..GogglesConfig::fast() };

    // ---- 1. fit once (batch) and freeze -------------------------------
    let t0 = Instant::now();
    let (labeler, fit_result) = FittedLabeler::fit(&config, &ds, &dev).expect("fitting failed");
    let fit_time = t0.elapsed();
    println!(
        "fitted on {} images in {:.2?} (train accuracy {:.1}%)",
        ds.train_indices.len(),
        fit_time,
        100.0 * fit_result.accuracy_excluding_dev(&ds, &dev),
    );

    // ---- 2. snapshot to bytes and reload ------------------------------
    let bytes = labeler.save();
    println!("snapshot: {} KiB", bytes.len() / 1024);
    let reloaded = FittedLabeler::load(&bytes).expect("snapshot reload failed");

    // ---- 3. serve the held-out images through the micro-batcher -------
    let held_out = ds.test_images();
    let truth = ds.test_labels();
    assert!(held_out.len() >= 50, "need ≥ 50 held-out images");
    let service = Arc::new(LabelService::spawn(
        reloaded,
        ServeConfig {
            workers: 2,
            max_batch: 8,
            batch_timeout: Duration::from_millis(5),
            ..ServeConfig::default()
        },
    ));
    let t1 = Instant::now();
    let handles: Vec<_> = held_out
        .iter()
        .enumerate()
        .map(|(i, img)| {
            let service = Arc::clone(&service);
            let img = (*img).clone();
            std::thread::spawn(move || (i, service.label(&img).expect("service closed")))
        })
        .collect();
    let mut served_labels = vec![0usize; held_out.len()];
    for h in handles {
        let (i, resp) = h.join().expect("client thread");
        served_labels[i] = resp.label;
    }
    let serve_time = t1.elapsed();
    let stats = service.stats();
    let served_acc = served_labels.iter().zip(&truth).filter(|(a, b)| a == b).count() as f64
        / truth.len() as f64;
    println!(
        "served {} held-out images in {:.2?} ({:.0} img/s, {} batches, mean batch {:.1}, mean latency {:.1} ms)",
        stats.requests,
        serve_time,
        stats.requests as f64 / serve_time.as_secs_f64(),
        stats.batches,
        stats.mean_batch_size(),
        stats.mean_latency_us() / 1000.0,
    );
    println!("served accuracy on held-out images: {:.1}%", 100.0 * served_acc);

    // ---- 4. hot-reload a compressed v2 snapshot behind the service ----
    // A production labeler is refit as the corpus grows; the registry
    // publishes the new version under live traffic — in-flight batches
    // finish on the old version, the next batch serves the new one.
    let v2_bytes = labeler.save_v2(true);
    println!(
        "v2 (quantized) snapshot: {} KiB ({:.1}% of v1)",
        v2_bytes.len() / 1024,
        100.0 * v2_bytes.len() as f64 / bytes.len() as f64,
    );
    let snap_path = std::env::temp_dir().join("goggles_serving_demo_v2.ggl");
    std::fs::write(&snap_path, &v2_bytes).expect("write v2 snapshot");
    let version = service.reload_from(&snap_path).expect("hot-reload failed");
    let resp = service.label(held_out[0]).expect("service closed");
    assert_eq!(resp.version, version, "post-swap requests serve the new version");
    println!(
        "hot-reloaded v2 as version {version}; next answer came from version {} (class {})",
        resp.version, resp.label
    );
    let rolled_back = service.registry().rollback().expect("rollback failed");
    assert_eq!(service.label(held_out[0]).expect("service closed").version, rolled_back);
    println!("rolled back to version {rolled_back}; registry: {:?}", service.registry().versions());
    std::fs::remove_file(&snap_path).ok();

    // ---- 5. reference: the paper's batch pipeline over the same images -
    // The batch system can only label images inside its affinity matrix, so
    // it must refit on train + held-out (transductive) — exactly the cost
    // the serving path avoids.
    let t2 = Instant::now();
    let all: Vec<(Image, usize)> = ds
        .train_indices
        .iter()
        .chain(&ds.test_indices)
        .map(|&i| (ds.images[i].clone(), ds.labels[i]))
        .collect();
    let transductive = Dataset::from_parts(ds.name.clone(), ds.kind, ds.num_classes, all, vec![]);
    let dev_t = DevSet {
        // dev indices keep their positions: train block order is unchanged.
        indices: dev
            .indices
            .iter()
            .map(|&g| ds.train_indices.iter().position(|&t| t == g).unwrap())
            .collect(),
        labels: dev.labels.clone(),
    };
    let batch_result =
        Goggles::new(config).label_dataset(&transductive, &dev_t).expect("batch pipeline failed");
    let batch_time = t2.elapsed();
    let batch_hard = batch_result.labels.hard_labels();
    let n_train = ds.train_indices.len();
    let batch_acc = (0..held_out.len()).filter(|&i| batch_hard[n_train + i] == truth[i]).count()
        as f64
        / truth.len() as f64;
    println!(
        "batch (refit) pipeline on the same images: {:.1}% in {:.2?}",
        100.0 * batch_acc,
        batch_time
    );

    let gap = (served_acc - batch_acc).abs();
    println!("accuracy gap: {:.1} points", 100.0 * gap);
    assert!(
        gap <= 0.02 + 1e-9,
        "served accuracy must be within 2 points of the batch pipeline (gap {:.3})",
        gap
    );
    println!("OK: online serving matches the batch pipeline within 2 points.");
}

//! Table 2: end-model accuracy on the held-out test set. Probabilistic
//! labels from each labeling system train an MLP head over frozen backbone
//! features (the paper fine-tunes VGG FC layers — same freeze-the-trunk
//! protocol); FSL trains on the dev set only; the upper bound trains on
//! ground truth.

use super::methods::{run_goggles, run_snorkel, run_snuba};
use super::report::Table;
use super::{RunParams, TrialContext};
use goggles_endmodel::{
    accuracy, one_hot_labels, standardize_fit, CosineClassifier, MlpHead, TrainConfig,
};
use goggles_tensor::Matrix;

/// Column order follows the paper's Table 2.
pub const METHOD_NAMES: [&str; 5] = ["FSL", "Snorkel", "Snuba", "GOGGLES", "UpperBound"];

/// Accumulated Table 2 numbers.
#[derive(Debug, Clone)]
pub struct Table2Results {
    /// Dataset row labels.
    pub datasets: Vec<String>,
    /// Mean test accuracy per dataset × method (`None` = not applicable).
    pub accuracy: Vec<Vec<Option<f64>>>,
}

impl Table2Results {
    /// Column averages (ignoring missing cells).
    pub fn averages(&self) -> Vec<Option<f64>> {
        (0..METHOD_NAMES.len())
            .map(|m| {
                let vals: Vec<f64> = self.accuracy.iter().filter_map(|row| row[m]).collect();
                if vals.is_empty() {
                    None
                } else {
                    Some(vals.iter().sum::<f64>() / vals.len() as f64)
                }
            })
            .collect()
    }

    /// Render in the paper's layout.
    pub fn to_table(&self) -> Table {
        let mut headers = vec!["Dataset"];
        headers.extend(METHOD_NAMES);
        let mut t = Table::new("Table 2: end model accuracy on held-out test set (%)", &headers);
        for (ds, row) in self.datasets.iter().zip(&self.accuracy) {
            let mut cells = vec![ds.clone()];
            cells.extend(row.iter().map(|&v| Table::pct(v)));
            t.push_row(cells);
        }
        let mut avg = vec!["Average".to_string()];
        avg.extend(self.averages().iter().map(|&v| Table::pct(v)));
        t.push_row(avg);
        t
    }
}

/// Train an MLP head on probabilistic labels and evaluate on the test set.
fn end_model_accuracy(ctx: &TrialContext, soft_labels: &Matrix<f64>, seed: u64) -> f64 {
    let standardizer = standardize_fit(&ctx.train_logits);
    let train = standardizer.transform(&ctx.train_logits);
    let test = standardizer.transform(&ctx.test_logits);
    let cfg = TrainConfig { epochs: 200, seed, ..TrainConfig::default() };
    let head = MlpHead::train(&train, soft_labels, 32, &cfg);
    accuracy(&head.predict(&test), &ctx.dataset.test_labels())
}

/// The FSL Baseline++ protocol: cosine head trained on dev features only.
fn fsl_accuracy(ctx: &TrialContext, seed: u64) -> f64 {
    let standardizer = standardize_fit(&ctx.train_logits);
    let train = standardizer.transform(&ctx.train_logits);
    let test = standardizer.transform(&ctx.test_logits);
    let support = train.select_rows(&ctx.dev_rows.indices);
    let clf =
        CosineClassifier::train(&support, &ctx.dev_rows.labels, ctx.dataset.num_classes, 150, seed);
    accuracy(&clf.predict(&test), &ctx.dataset.test_labels())
}

/// Run the Table 2 evaluation.
pub fn run(params: &RunParams) -> Table2Results {
    let dataset_names = ["CUB", "GTSRB", "Surface", "TB-Xray", "PN-Xray"];
    let mut sums = vec![vec![0.0f64; METHOD_NAMES.len()]; dataset_names.len()];
    let mut counts = vec![vec![0usize; METHOD_NAMES.len()]; dataset_names.len()];
    for trial in 0..params.trials.max(1) {
        let tasks = params.tasks_for_trial(trial);
        for (d, task) in tasks.iter().enumerate() {
            let ctx = TrialContext::build(params, task, trial);
            let seed = 0xE4D + trial as u64;
            // FSL
            sums[d][0] += fsl_accuracy(&ctx, seed);
            counts[d][0] += 1;
            // Snorkel (CUB only)
            if let Some(out) = run_snorkel(&ctx) {
                let probs = out.probs.expect("snorkel is probabilistic");
                sums[d][1] += end_model_accuracy(&ctx, &probs, seed);
                counts[d][1] += 1;
            }
            // Snuba
            let snuba = run_snuba(&ctx);
            sums[d][2] += end_model_accuracy(&ctx, &snuba.probs.expect("snuba probs"), seed);
            counts[d][2] += 1;
            // GOGGLES
            let gg = run_goggles(&ctx);
            sums[d][3] += end_model_accuracy(&ctx, &gg.probs.expect("goggles probs"), seed);
            counts[d][3] += 1;
            // Supervised upper bound
            let oh = one_hot_labels(&ctx.train_truth(), ctx.dataset.num_classes);
            sums[d][4] += end_model_accuracy(&ctx, &oh, seed);
            counts[d][4] += 1;
        }
    }
    let accuracy = sums
        .iter()
        .zip(&counts)
        .map(|(srow, crow)| {
            srow.iter()
                .zip(crow)
                .map(|(&s, &c)| if c > 0 { Some(s / c as f64) } else { None })
                .collect()
        })
        .collect();
    Table2Results { datasets: dataset_names.iter().map(|s| s.to_string()).collect(), accuracy }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_with_missing_snorkel_cells() {
        let r = Table2Results {
            datasets: vec!["Surface".into()],
            accuracy: vec![vec![Some(0.76), None, Some(0.5167), Some(0.8333), Some(0.92)]],
        };
        let s = r.to_table().render();
        assert!(s.contains("UpperBound"));
        assert!(s.contains("-"));
        assert!(s.contains("83.33"));
    }

    #[test]
    fn averages_ignore_missing() {
        let r = Table2Results {
            datasets: vec!["A".into(), "B".into()],
            accuracy: vec![
                vec![Some(0.5), Some(0.9), Some(0.4), Some(0.8), Some(0.95)],
                vec![Some(0.7), None, Some(0.6), Some(0.9), Some(0.99)],
            ],
        };
        let avg = r.averages();
        assert!((avg[0].unwrap() - 0.6).abs() < 1e-12);
        assert!((avg[1].unwrap() - 0.9).abs() < 1e-12);
    }
}
